#![forbid(unsafe_code)]
//! # meet-asynch
//!
//! A complete reproduction of *How to Meet Asynchronously at Polynomial
//! Cost* (Dieudonné, Pelc, Villain; PODC 2013): deterministic rendezvous of
//! two labeled mobile agents in an arbitrary unknown anonymous network under
//! a fully asynchronous adversary, at cost polynomial in the graph size and
//! in the length of the smaller label — plus the paper's applications
//! (team size, leader election, perfect renaming, gossiping via Algorithm
//! SGL).
//!
//! This crate is a facade re-exporting the workspace's public API. See the
//! individual crates for details:
//!
//! * [`graph`] — anonymous port-numbered networks and generators,
//! * [`explore`] — universal exploration sequences, `R(k,v)`, procedure ESST,
//! * [`trajectory`] — the lazy trajectory algebra `X,Q,Y,Z,A,B,K,Ω`,
//! * [`core`] — Algorithm RV-asynch-poly, the naive baseline, cost bounds,
//! * [`sim`] — the asynchronous adversarial scheduler with forced-meeting
//!   semantics,
//! * [`protocols`] — Algorithm SGL and the four applications,
//! * [`arith`] — exact bignum arithmetic for the cost bounds.

pub use rv_arith as arith;
pub use rv_core as core;
pub use rv_explore as explore;
pub use rv_graph as graph;
pub use rv_protocols as protocols;
pub use rv_sim as sim;
pub use rv_trajectory as trajectory;
