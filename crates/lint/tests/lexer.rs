//! Token-level unit tests for the hand-rolled lexer: the four hard cases
//! (raw strings, nested block comments, lifetimes vs char literals, `//`
//! inside strings) plus the comment-adjacency machinery the rules lean on.

use rv_lint::lexer::{lex, TokKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn line_comment_tokens_are_not_code() {
    let l = lex("let x = 1; // HashMap is only mentioned here\nlet y = 2;");
    assert!(!idents("// HashMap\n").contains(&"HashMap".to_string()));
    assert_eq!(
        l.comments.get(&1).map(String::as_str).unwrap_or(""),
        "// HashMap is only mentioned here"
    );
    assert!(l.tokens.iter().all(|t| t.text != "HashMap"));
}

#[test]
fn double_slash_inside_string_is_not_a_comment() {
    let l = lex(r#"let url = "https://example.com"; let after = 1;"#);
    // Everything after the string must still lex as code…
    assert!(l.tokens.iter().any(|t| t.is_ident("after")));
    // …and nothing was recorded as a comment.
    assert!(l.comments.is_empty());
}

#[test]
fn comment_markers_inside_strings_do_not_open_comments() {
    let l = lex("let s = \"/* not a comment */ // neither\"; let tail = 2;");
    assert!(l.comments.is_empty());
    assert!(l.tokens.iter().any(|t| t.is_ident("tail")));
}

#[test]
fn nested_block_comments_close_at_matching_depth() {
    let src = "/* outer /* inner */ still comment */ let code = 1;";
    let l = lex(src);
    assert!(l.tokens.iter().any(|t| t.is_ident("code")));
    assert!(!l.tokens.iter().any(|t| t.is_ident("outer")));
    assert!(l.comments.get(&1).is_some_and(|c| c.contains("inner")));
}

#[test]
fn multiline_block_comment_covers_every_line() {
    let l = lex("/* a\nb\nc */\nlet x = 1;");
    for line in 1..=3 {
        assert!(l.comments.contains_key(&line), "line {line} uncovered");
    }
    assert_eq!(l.tokens.first().map(|t| t.line), Some(4));
}

#[test]
fn raw_strings_with_hashes_swallow_quotes_and_idents() {
    let src = r###"let s = r#"contains "quotes" and HashMap and // slashes"#; let t = 1;"###;
    let l = lex(src);
    assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
    assert!(l.tokens.iter().any(|t| t.is_ident("t")));
    assert!(l.comments.is_empty());
}

#[test]
fn byte_and_raw_byte_literals_lex_as_literals() {
    let l = lex(r##"let a = b"bytes"; let b2 = br#"raw bytes"#; let c = b'x'; let d = 1;"##);
    assert!(l.tokens.iter().any(|t| t.is_ident("d")));
    assert!(!l.tokens.iter().any(|t| t.is_ident("bytes")));
}

#[test]
fn raw_identifier_is_not_a_raw_string() {
    // `r#match` is a raw identifier, not the opening of r#"…"#.
    let l = lex("let r#match = 1; let unwrap_tail = 2;");
    assert!(l.tokens.iter().any(|t| t.is_ident("unwrap_tail")));
}

#[test]
fn lifetimes_vs_char_literals() {
    let l = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
    let lifetimes: Vec<_> = l
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .collect();
    assert_eq!(lifetimes.len(), 2, "two uses of the lifetime 'a");
    let chars = l
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Literal)
        .count();
    assert_eq!(chars, 1, "one char literal 'a'");
}

#[test]
fn escaped_quote_char_literal() {
    // '\'' then real code after — the escape must not desync the lexer.
    let l = lex(r"let q = '\''; let after_quote = 1;");
    assert!(l.tokens.iter().any(|t| t.is_ident("after_quote")));
}

#[test]
fn static_lifetime_and_unicode_char() {
    let l = lex("static S: &'static str = \"s\"; let c = '\\u{1F980}'; let z = 1;");
    assert!(l
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    assert!(l.tokens.iter().any(|t| t.is_ident("z")));
}

#[test]
fn number_with_dot_vs_range() {
    let l = lex("let a = 1.5; for i in 0..10 {}");
    let nums: Vec<_> = l
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(nums, vec!["1.5", "0", "10"]);
}

#[test]
fn adjacent_comment_text_sees_same_line_and_block_above() {
    let src = "\
fn f(c: &C) {
    // ordering: publish before retire
    // (second comment line)
    c.store(1); // trailing too
}";
    let l = lex(src);
    let adj = l.adjacent_comment_text(4);
    assert!(adj.contains("trailing too"));
    assert!(adj.contains("ordering: publish before retire"));
    assert!(adj.contains("second comment line"));
}

#[test]
fn adjacent_comment_walk_stops_at_code_lines() {
    let src = "\
fn f(c: &C) {
    // ordering: belongs to the line below only
    c.store(1);
    c.store(2);
}";
    let l = lex(src);
    assert!(l.adjacent_comment_text(3).contains("ordering:"));
    assert!(!l.adjacent_comment_text(4).contains("ordering:"));
}

#[test]
fn token_lines_are_accurate_across_literals() {
    let src = "let a = \"one\nstring\nspanning\";\nlet marker = 9;";
    let l = lex(src);
    let marker = l
        .tokens
        .iter()
        .find(|t| t.is_ident("marker"))
        .expect("marker ident is lexed");
    assert_eq!(marker.line, 4);
}
