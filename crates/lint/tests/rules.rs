//! Rule-level tests: every fixture under `tests/fixtures/` triggers
//! exactly the one rule it is named after, suppressions work (and demand
//! reasons), and — the self-test — the workspace itself lints clean with
//! the committed allowlist.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Scans one fixture and asserts every finding carries `rule` (and that
/// there is at least one — a fixture that stops firing is a dead test).
fn assert_fixture_triggers(name: &str, rule: &str, expected_count: usize) {
    let report = rv_lint::scan(&fixture(name)).expect("fixture scans");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        vec![rule; expected_count],
        "fixture {name} must trigger exactly {expected_count} × {rule}, got {:#?}",
        report.findings
    );
}

#[test]
fn det_hash_collections_fixture() {
    assert_fixture_triggers("det_hash_collections.rs", "det-hash-collections", 1);
}

#[test]
fn det_wall_clock_fixture() {
    assert_fixture_triggers("det_wall_clock.rs", "det-wall-clock", 1);
}

#[test]
fn det_thread_id_fixture() {
    assert_fixture_triggers("det_thread_id.rs", "det-thread-id", 1);
}

#[test]
fn panic_bare_unwrap_fixture() {
    assert_fixture_triggers("panic_bare_unwrap.rs", "panic-bare-unwrap", 1);
}

#[test]
fn panic_bare_macro_fixture() {
    assert_fixture_triggers("panic_bare_macro.rs", "panic-bare-macro", 1);
}

#[test]
fn panic_catch_unwind_recovery_fixture() {
    assert_fixture_triggers(
        "panic_catch_unwind_recovery.rs",
        "panic-catch-unwind-recovery",
        1,
    );
}

#[test]
fn atomics_ordering_comment_fixture() {
    assert_fixture_triggers("atomics_ordering_comment.rs", "atomics-ordering-comment", 1);
}

#[test]
fn unsafe_needs_safety_comment_fixture() {
    assert_fixture_triggers(
        "unsafe_needs_safety_comment.rs",
        "unsafe-needs-safety-comment",
        1,
    );
}

#[test]
fn crate_forbids_unsafe_fixture() {
    assert_fixture_triggers("crate_forbids_unsafe.rs", "crate-forbids-unsafe", 1);
}

#[test]
fn api_meetinglog_to_vec_fixture() {
    assert_fixture_triggers("api_meetinglog_to_vec.rs", "api-meetinglog-to-vec", 1);
}

#[test]
fn api_lock_across_dispatch_fixture() {
    assert_fixture_triggers("api_lock_across_dispatch.rs", "api-lock-across-dispatch", 1);
}

#[test]
fn api_memo_reserve_publish_fixture() {
    assert_fixture_triggers("api_memo_reserve_publish.rs", "api-memo-reserve-publish", 1);
}

#[test]
fn api_atomic_output_write_fixture() {
    assert_fixture_triggers("api_atomic_output_write.rs", "api-atomic-output-write", 2);
}

// ------------------------------------------------------ scoping behaviour

/// Scans inline source by writing it to a temp file (unique per test).
fn scan_src(name: &str, src: &str) -> rv_lint::Report {
    let dir = std::env::temp_dir().join(format!("rv_lint_test_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("input.rs");
    std::fs::write(&path, src).expect("write temp fixture");
    let report = rv_lint::scan(&path).expect("temp fixture scans");
    std::fs::remove_dir_all(&dir).ok();
    report
}

#[test]
fn test_like_paths_are_exempt_from_panic_and_determinism_packs() {
    let src = "\
// lint-fixture: as=crates/sim/tests/integration.rs
pub fn f(m: &std::collections::HashMap<u8, u8>) -> u8 { *m.get(&0).unwrap() }
";
    let report = scan_src("testlike", src);
    assert!(
        report.findings.is_empty(),
        "tests are exempt, got {:#?}",
        report.findings
    );
}

#[test]
fn bench_crate_is_exempt_from_panic_and_determinism_packs() {
    let src = "\
// lint-fixture: as=crates/bench/src/bin/perf_baseline.rs
pub fn t() -> std::time::Instant { std::time::Instant::now() }
";
    let report = scan_src("bench", src);
    assert!(
        report.findings.is_empty(),
        "the bench harness may use wall-clock, got {:#?}",
        report.findings
    );
}

#[test]
fn non_fingerprint_crates_may_use_hash_collections() {
    let src = "\
// lint-fixture: as=crates/graph/src/fixture.rs
pub fn f(m: &std::collections::HashMap<u8, u8>) -> usize { m.len() }
";
    let report = scan_src("nonfingerprint", src);
    assert!(
        report.findings.is_empty(),
        "rv_graph is not fingerprint-feeding, got {:#?}",
        report.findings
    );
}

#[test]
fn atomics_rule_applies_even_in_cfg_test_modules() {
    // Concurrency discipline has no test exemption: a miscommented
    // ordering in a test misleads the next reader just as much.
    let src = "\
// lint-fixture: as=crates/sim/src/fixture.rs
#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    fn f(c: &AtomicUsize) -> usize { c.load(Ordering::SeqCst) }
}
";
    let report = scan_src("atomics_test_mod", src);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "atomics-ordering-comment");
}

// -------------------------------------------------------------- suppressions

#[test]
fn inline_allow_with_reason_suppresses() {
    let src = "\
// lint-fixture: as=crates/sim/src/fixture.rs
pub fn f(m: &std::collections::HashMap<u8, u8>) -> usize {
    // lint:allow(det-hash-collections) — keyed lookups only, never iterated
    m.len()
}
";
    // The suppression must sit adjacent to the *finding* line.
    let src = src.replace(
        "pub fn f(m: &std::collections::HashMap<u8, u8>) -> usize {",
        "// lint:allow(det-hash-collections) — keyed lookups only, never iterated\npub fn f(m: &std::collections::HashMap<u8, u8>) -> usize {",
    );
    let report = scan_src("allow_ok", &src);
    assert!(
        report.findings.is_empty(),
        "justified suppression must hold, got {:#?}",
        report.findings
    );
}

#[test]
fn inline_allow_without_reason_is_itself_a_finding() {
    let src = "\
// lint-fixture: as=crates/sim/src/fixture.rs
// lint:allow(det-hash-collections)
pub fn f(m: &std::collections::HashMap<u8, u8>) -> usize { m.len() }
";
    let report = scan_src("allow_bare", src);
    assert_eq!(
        report.findings.iter().map(|f| f.rule).collect::<Vec<_>>(),
        vec!["meta-allow-needs-reason"],
        "got {:#?}",
        report.findings
    );
}

#[test]
fn inline_allow_of_unknown_rule_is_reported() {
    let src = "\
// lint-fixture: as=crates/sim/src/fixture.rs
// lint:allow(det-hashmap-typo) — a justification that is long enough
pub fn f() {}
";
    let report = scan_src("allow_unknown", src);
    assert_eq!(
        report.findings.iter().map(|f| f.rule).collect::<Vec<_>>(),
        vec!["meta-unknown-rule"],
        "got {:#?}",
        report.findings
    );
}

#[test]
fn allow_on_unrelated_line_does_not_suppress() {
    let src = "\
// lint-fixture: as=crates/sim/src/fixture.rs
// lint:allow(det-hash-collections) — far away from the finding, void

pub fn spacer() {}

pub fn f(m: &std::collections::HashMap<u8, u8>) -> usize { m.len() }
";
    let report = scan_src("allow_far", src);
    assert_eq!(
        report.findings.iter().map(|f| f.rule).collect::<Vec<_>>(),
        vec!["det-hash-collections"],
        "got {:#?}",
        report.findings
    );
}

// ----------------------------------------------------------------- allowlist

#[test]
fn allowlist_parses_and_demands_reasons() {
    let good = r#"
[[allow]]
rule = "det-hash-collections"
path = "crates/sim/src/x.rs"
reason = "keyed lookups only; the map is never iterated"
"#;
    let parsed = rv_lint::config::parse_allowlist(good);
    assert_eq!(parsed.entries.len(), 1);
    assert!(parsed.errors.is_empty());
    assert!(parsed.entries[0].covers("det-hash-collections", "crates/sim/src/x.rs", 7));
    assert!(!parsed.entries[0].covers("det-wall-clock", "crates/sim/src/x.rs", 7));

    let bare = r#"
[[allow]]
rule = "det-hash-collections"
path = "crates/sim/src/x.rs"
reason = "because"
"#;
    let parsed = rv_lint::config::parse_allowlist(bare);
    assert!(parsed.entries.is_empty());
    assert_eq!(parsed.errors.len(), 1, "too-short reason must be rejected");

    let unknown_key = "[[allow]]\nruel = \"typo\"\n";
    assert!(!rv_lint::config::parse_allowlist(unknown_key)
        .errors
        .is_empty());
}

// ------------------------------------------------------------------ self-test

/// THE gate: the workspace — with its committed `lint.toml` — lints clean.
/// Any regression against any rule pack fails `cargo test` right here,
/// before CI.
#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file() && root.join("crates").is_dir(),
        "workspace root resolution broke: {}",
        root.display()
    );
    let report = rv_lint::scan(&root).expect("workspace scans");
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk actually visited the tree (≈90 files today; a
    // collapse to a handful means the walker broke, not the code).
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}
