// lint-fixture: as=crates/sim/src/fixture.rs
//! Fixture: exactly one `det-thread-id` finding — thread-identity-derived
//! logic outside the minimax worker loop.

pub fn shard() -> std::thread::ThreadId {
    std::thread::current().id()
}
