// lint-fixture: as=crates/sim/src/fixture.rs
//! Fixture: exactly one `unsafe-needs-safety-comment` finding — the first
//! block has no SAFETY comment, the second does.

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer into a live, aligned buffer.
    unsafe { *p }
}
