// lint-fixture: as=crates/graph/src/fixture.rs
//! Fixture: exactly one `panic-bare-unwrap` finding — and proof the rule
//! skips `#[cfg(test)]` modules and comments.

pub fn first(xs: &[u64]) -> u64 {
    // A doc mention of unwrap() must not fire; only the call below does.
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
