// lint-fixture: as=crates/bench/src/bin/fixture_writer.rs
//! Fixture: exactly two `api-atomic-output-write` findings — one per
//! in-place write form. The blessed `write_atomic` call and the reads
//! stay clean, and the `#[cfg(test)]` mod is exempt (tests may stage
//! scratch files however they like).

use std::fs::{self, File};

pub fn torn_on_sigkill(rows: &[u8]) {
    fs::write("rows.jsonl", rows).unwrap();
    let _f = File::create("meta.json").unwrap();
}

pub fn blessed(rows: &[u8]) {
    rv_bench::write_atomic("rows.jsonl", rows);
    let _meta = fs::read_to_string("meta.json");
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_are_exempt() {
        std::fs::write("scratch.txt", b"ok").unwrap();
    }
}
