// lint-fixture: as=crates/sim/src/fixture.rs
//! Fixture: exactly one `api-memo-reserve-publish` finding — the first
//! `publish` has no protocol comment; the rest show the two accepted
//! comment positions, for both `publish` and `release`.

pub struct Table;

impl Table {
    pub fn publish(&self, _key: u64, _value: u64) {}
    pub fn release(&self, _key: u64) {}
}

pub fn undocumented(t: &Table) {
    t.publish(1, 2)
}

pub fn documented_same_line(t: &Table) {
    t.publish(1, 2) // publish: completes the reservation taken by the caller
}

pub fn documented_above(t: &Table) {
    // publish: abandoned — this path never computed a value to store
    t.release(1)
}
