// lint-fixture: as=crates/sim/src/fixture.rs
//! Fixture: exactly one `det-wall-clock` finding — wall-clock time read
//! inside simulator core. (A comment saying Instant must not fire.)

pub fn elapsed_nanos() -> u64 {
    let start = std::time::Instant::now();
    u64::from(start.elapsed().subsec_nanos())
}
