// lint-fixture: as=crates/sim/src/fixture.rs
//! Fixture: exactly one `api-meetinglog-to-vec` finding — a view
//! materialised with `.to_vec()` inside a COW-log crate.

pub fn snapshot_view(entries: &[u64]) -> Vec<u64> {
    entries.to_vec()
}
