// lint-fixture: as=crates/sim/src/fixture.rs
//! Fixture: exactly one `atomics-ordering-comment` finding — the first
//! fetch_add has no justification; the second and third show the two
//! accepted comment positions.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn undocumented(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::SeqCst)
}

pub fn documented_same_line(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::SeqCst) // ordering: test-only counter, no data published
}

pub fn documented_above(c: &AtomicUsize) -> usize {
    // ordering: test-only counter, no data published
    c.fetch_add(1, Ordering::SeqCst)
}
