// lint-fixture: as=crates/protocols/src/fixture.rs
//! Fixture: exactly one `panic-bare-macro` finding — an `unreachable!()`
//! with no invariant message. The documented form right below it is fine.

pub fn pick(flag: bool) -> u64 {
    if flag {
        1
    } else {
        unreachable!()
    }
}

pub fn pick_documented(flag: bool) -> u64 {
    if flag {
        1
    } else {
        unreachable!("callers guarantee `flag` — see fixture docs")
    }
}
