// lint-fixture: as=crates/sim/src/lib.rs
//! Fixture: exactly one `crate-forbids-unsafe` finding — a crate root
//! without `#![forbid(unsafe_code)]`.

pub mod runtime {}
