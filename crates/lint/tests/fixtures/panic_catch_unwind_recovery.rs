// lint-fixture: as=crates/sim/src/fixture.rs
//! Fixture: exactly one `panic-catch-unwind-recovery` finding — the first
//! boundary has no recovery argument; the second and third show the two
//! accepted comment positions.

pub fn undocumented(f: impl Fn() + std::panic::UnwindSafe) -> bool {
    std::panic::catch_unwind(f).is_ok()
}

pub fn documented_same_line(f: impl Fn() + std::panic::UnwindSafe) -> bool {
    std::panic::catch_unwind(f).is_ok() // recovery: stateless probe, nothing to restore
}

pub fn documented_above(f: impl Fn() + std::panic::UnwindSafe) -> bool {
    // recovery: stateless probe, nothing to restore; the payload is dropped
    std::panic::catch_unwind(f).is_ok()
}
