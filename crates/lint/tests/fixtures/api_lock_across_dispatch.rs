// lint-fixture: as=crates/sim/src/minimax.rs
//! Fixture: exactly one `api-lock-across-dispatch` finding — a deque
//! guard still live at the `run_job` call. The second function shows the
//! compliant shape (guard dropped first).

use std::collections::VecDeque;
use std::sync::Mutex;

pub fn worker_bad(q: &Mutex<VecDeque<u64>>) {
    let mut guard = q.lock().expect("deque poisoned");
    let job = guard.pop_back();
    if let Some(job) = job {
        run_job(job);
    }
}

pub fn worker_good(q: &Mutex<VecDeque<u64>>) {
    let job = {
        let mut guard = q.lock().expect("deque poisoned");
        guard.pop_back()
    };
    if let Some(job) = job {
        run_job(job);
    }
}

fn run_job(_job: u64) {}
