// lint-fixture: as=crates/sim/src/fixture.rs
//! Fixture: exactly one `det-hash-collections` finding — a std hash
//! collection named in a fingerprint-feeding crate's library source.

pub fn occupancy_size(m: &std::collections::HashMap<u64, u64>) -> usize {
    m.len()
}
