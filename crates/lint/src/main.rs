#![forbid(unsafe_code)]
//! CLI for the workspace lint engine. See `rv_lint --help`.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
rv_lint — std-only static analysis for this workspace's invariants

USAGE:
    rv_lint [OPTIONS] [PATH]

ARGS:
    <PATH>    Directory to walk (default: the enclosing workspace root)
              or a single .rs file to lint standalone (no allowlist)

OPTIONS:
    --check        Same as the default (exit 1 on findings); the explicit
                   spelling CI uses
    --json         Machine-readable output
    --list-rules   Print every rule id and exit
    -h, --help     This help

Findings print as `file:line:rule-id: message`. Suppress inline with
`// lint:allow(rule-id) — reason` or in the committed lint.toml (every
entry needs a written justification). See docs/LINTS.md.";

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--check" => {} // exit-nonzero-on-findings is already the default
            "--list-rules" => {
                for r in rv_lint::rules::ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--root=") => {
                root = Some(PathBuf::from(other.trim_start_matches("--root=")));
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => root = Some(PathBuf::from(path)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("rv_lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match rv_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("rv_lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match rv_lint::scan(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rv_lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", rv_lint::to_json(&report));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        eprintln!(
            "rv_lint: {} finding(s) across {} file(s)",
            report.findings.len(),
            report.files_scanned
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
