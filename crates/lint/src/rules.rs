//! The rule packs. Every rule is a named, individually suppressible check
//! over one file's token stream (see [`crate::lexer`]); scoping decisions
//! (which crates feed golden fingerprints, what counts as test code) live
//! here as data, next to the rules that consume them.
//!
//! | pack | rule ids |
//! |---|---|
//! | determinism | `det-hash-collections`, `det-wall-clock`, `det-thread-id` |
//! | panic-safety | `panic-bare-unwrap`, `panic-bare-macro`, `panic-catch-unwind-recovery` |
//! | concurrency | `atomics-ordering-comment`, `unsafe-needs-safety-comment`, `crate-forbids-unsafe` |
//! | api-misuse | `api-meetinglog-to-vec`, `api-lock-across-dispatch`, `api-memo-reserve-publish`, `api-atomic-output-write` |
//!
//! See `docs/LINTS.md` for the rationale and an example per rule.

use crate::lexer::{Lexed, TokKind, Token};
use crate::{Finding, SourceKind};

/// Crates whose runtime state feeds golden fingerprints: any
/// iteration-order or wall-clock dependence here shows up (eventually,
/// on some seed) as a broken golden hash. The facade (`src/lib.rs`,
/// re-exports only) is held to the same bar.
pub const FINGERPRINT_CRATES: &[&str] = &["sim", "protocols", "trajectory", "core", "explore"];

/// Crates where `.to_vec()` is banned in library sources: these own the
/// COW `MeetingLog` / ESST walk machinery whose whole point is not
/// materialising views.
pub const NO_TO_VEC_CRATES: &[&str] = &["sim", "protocols", "explore"];

/// The only file allowed to consult worker/thread identity, and the
/// functions in it that dispatch a stealing-frontier `Job` (no `Mutex`
/// guard may be live across a call to one of these).
pub const MINIMAX_PATH: &str = "crates/sim/src/minimax.rs";
const DISPATCH_FNS: &[&str] = &["run_job", "split_job", "explore_subtree", "explore_memo"];

/// Crates owning the transposition table: every `.publish(…)`/`.release(…)`
/// call there must document which reservation it settles.
pub const MEMO_TABLE_CRATES: &[&str] = &["sim"];

/// Source tree whose binaries write results artifacts (row files, metadata,
/// checkpoints) that chaos gates SIGKILL mid-write: every output write there
/// must go through `rv_bench::write_atomic` (temp + rename), never a direct
/// in-place `fs::write` / `File::create`.
pub const ATOMIC_OUTPUT_PATH: &str = "crates/bench/src";

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Per-file context handed to every rule.
pub struct FileCtx<'a> {
    /// Workspace-relative `/`-separated path — the *effective* path when a
    /// fixture header (`// lint-fixture: as=…`) overrides it.
    pub rel_path: &'a str,
    /// `crates/<dir>/…` directory name, if under `crates/`.
    pub crate_dir: Option<&'a str>,
    pub kind: SourceKind,
    /// True for `src/lib.rs` files (crate roots).
    pub is_crate_root: bool,
    pub lexed: &'a Lexed,
    /// Line ranges of `#[cfg(test)] mod … { … }` bodies.
    pub test_spans: &'a [(u32, u32)],
}

impl FileCtx<'_> {
    fn is_lib(&self) -> bool {
        self.kind == SourceKind::LibSrc
    }

    fn in_test_mod(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Library code outside `#[cfg(test)]` — the scope of the determinism
    /// and panic-safety packs (tests/benches/examples are exempt).
    fn shipping_code(&self, line: u32) -> bool {
        self.is_lib() && !self.in_test_mod(line)
    }

    fn in_crate(&self, list: &[&str]) -> bool {
        match self.crate_dir {
            Some(d) => list.contains(&d),
            // Workspace-root `src/` (the facade) is in every scope.
            None => true,
        }
    }

    fn finding(&self, line: u32, rule: &'static str, message: String) -> Finding {
        Finding {
            path: self.rel_path.to_string(),
            line,
            rule,
            message,
        }
    }
}

/// Runs every rule against one file.
pub fn run_all(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    det_hash_collections(ctx, out);
    det_wall_clock(ctx, out);
    det_thread_id(ctx, out);
    panic_bare_unwrap(ctx, out);
    panic_bare_macro(ctx, out);
    panic_catch_unwind_recovery(ctx, out);
    atomics_ordering_comment(ctx, out);
    unsafe_needs_safety_comment(ctx, out);
    crate_forbids_unsafe(ctx, out);
    api_to_vec(ctx, out);
    api_lock_across_dispatch(ctx, out);
    api_memo_reserve_publish(ctx, out);
    api_atomic_output_write(ctx, out);
}

/// Every rule id this engine can emit (used by `--list-rules` and the
/// suppression-validity check).
pub const ALL_RULES: &[&str] = &[
    "det-hash-collections",
    "det-wall-clock",
    "det-thread-id",
    "panic-bare-unwrap",
    "panic-bare-macro",
    "panic-catch-unwind-recovery",
    "atomics-ordering-comment",
    "unsafe-needs-safety-comment",
    "crate-forbids-unsafe",
    "api-meetinglog-to-vec",
    "api-lock-across-dispatch",
    "api-memo-reserve-publish",
    "api-atomic-output-write",
];

// ---------------------------------------------------------------- determinism

/// `det-hash-collections`: no `HashMap`/`HashSet`/`RandomState`/
/// `DefaultHasher` in fingerprint-feeding library code. Iteration order of
/// the std hash collections is randomized per process (`RandomState`), so
/// any iteration — today's or one added in a refactor two years from now —
/// is a latent golden-fingerprint break. `BTreeMap`/`BTreeSet` cost one
/// log factor and are order-deterministic forever.
fn det_hash_collections(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_crate(FINGERPRINT_CRATES) {
        return;
    }
    for t in &ctx.lexed.tokens {
        if t.kind != TokKind::Ident || !ctx.shipping_code(t.line) {
            continue;
        }
        if matches!(
            t.text.as_str(),
            "HashMap" | "HashSet" | "RandomState" | "DefaultHasher"
        ) {
            out.push(ctx.finding(
                t.line,
                "det-hash-collections",
                format!(
                    "`{}` in a fingerprint-feeding crate: iteration order is \
                     process-random; use BTreeMap/BTreeSet (or prove non-iteration \
                     and allowlist with a justification)",
                    t.text
                ),
            ));
        }
    }
}

/// `det-wall-clock`: no `Instant`/`SystemTime` in library code anywhere
/// but the bench harness. Simulation time is action counts; wall-clock in
/// the core would make stop policies and traces machine-dependent.
fn det_wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in &ctx.lexed.tokens {
        if t.kind != TokKind::Ident || !ctx.shipping_code(t.line) {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            out.push(ctx.finding(
                t.line,
                "det-wall-clock",
                format!(
                    "`{}` in simulator core: time must be action counts, never \
                     wall-clock (the bench harness is the sanctioned consumer)",
                    t.text
                ),
            ));
        }
    }
}

/// `det-thread-id`: `thread::current().id()`-derived logic is banned
/// outside the minimax worker loop — results must be worker-count- and
/// scheduler-independent.
fn det_thread_id(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.rel_path == MINIMAX_PATH {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if !ctx.shipping_code(toks[i].line) {
            continue;
        }
        // `current ( ) . id ( )`
        if toks[i].is_ident("current")
            && matches_punct_run(&toks[i + 1..], &['(', ')', '.'])
            && toks.get(i + 4).is_some_and(|t| t.is_ident("id"))
            && matches_punct_run(&toks[i + 5..], &['(', ')'])
        {
            out.push(
                ctx.finding(
                    toks[i].line,
                    "det-thread-id",
                    "thread-identity-dependent logic outside the minimax worker loop: \
                 results must not depend on which thread runs what"
                        .to_string(),
                ),
            );
        }
    }
}

// --------------------------------------------------------------- panic-safety

/// `panic-bare-unwrap`: library code must state the invariant it relies on
/// — `expect(\"<invariant>\")` or fallible handling — never a bare
/// `unwrap()`. Tests, benches and examples are exempt.
fn panic_bare_unwrap(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if !ctx.shipping_code(toks[i].line) {
            continue;
        }
        if toks[i].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("unwrap"))
            && matches_punct_run(&toks[i + 2..], &['(', ')'])
        {
            out.push(
                ctx.finding(
                    toks[i + 1].line,
                    "panic-bare-unwrap",
                    "bare `unwrap()` in library code: use `expect(\"<invariant>\")` \
                 or return the error"
                        .to_string(),
                ),
            );
        }
    }
}

/// `panic-bare-macro`: `panic!()`/`unreachable!()` without a message (and
/// `todo!`/`unimplemented!` in any form) in library code. A panic with no
/// invariant text is as undiagnosable as a bare unwrap; `todo!` is
/// unfinished work shipping.
fn panic_bare_macro(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if !ctx.shipping_code(toks[i].line) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let is_macro = toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
        if !is_macro {
            continue;
        }
        let placeholder = matches!(name, "todo" | "unimplemented");
        let bare = matches!(name, "panic" | "unreachable")
            && matches_punct_run(&toks[i + 2..], &['(', ')']);
        if placeholder || bare {
            out.push(ctx.finding(
                toks[i].line,
                "panic-bare-macro",
                format!(
                    "`{name}!` without an invariant message in library code: \
                     state what was violated (or handle it)"
                ),
            ));
        }
    }
}

/// `panic-catch-unwind-recovery`: every `catch_unwind` boundary must
/// carry an adjacent `// recovery:` comment (same line or the block
/// directly above) stating what happens to the in-flight state — what is
/// discarded, what is restored, and where the payload goes if recovery
/// gives up. A panic boundary without that argument is how half-merged
/// results and wedged termination counters ship. No test exemption:
/// a test that swallows panics undocumented misleads just as much.
fn panic_catch_unwind_recovery(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in &ctx.lexed.tokens {
        if t.is_ident("catch_unwind")
            && !ctx
                .lexed
                .adjacent_comment_text(t.line)
                .to_lowercase()
                .contains("recovery:")
        {
            out.push(
                ctx.finding(
                    t.line,
                    "panic-catch-unwind-recovery",
                    "`catch_unwind` without an adjacent `// recovery:` comment stating \
                 how partial state is discarded/restored and where a terminal \
                 panic propagates"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- concurrency

/// `atomics-ordering-comment`: every `Ordering::{Relaxed,…,SeqCst}` use
/// must carry an adjacent `// ordering:` comment justifying the chosen
/// strength — same line or the comment block directly above. Memory
/// orderings are unreviewable without the author's argument.
fn atomics_ordering_comment(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("Ordering")
            || !matches_punct_run(&toks[i + 1..], &[':', ':'])
            || !toks.get(i + 3).is_some_and(|t| {
                t.kind == TokKind::Ident && ATOMIC_ORDERINGS.contains(&t.text.as_str())
            })
        {
            continue;
        }
        let line = toks[i].line;
        let justification = ctx.lexed.adjacent_comment_text(line).to_lowercase();
        if !justification.contains("ordering:") {
            out.push(ctx.finding(
                line,
                "atomics-ordering-comment",
                format!(
                    "`Ordering::{}` without an adjacent `// ordering:` justification \
                     comment (same line or directly above)",
                    toks[i + 3].text
                ),
            ));
        }
    }
}

/// `unsafe-needs-safety-comment`: any `unsafe` keyword needs an adjacent
/// `// SAFETY:` comment. The workspace currently has zero unsafe blocks
/// and crate roots forbid them; this rule covers the day someone lifts a
/// forbid.
fn unsafe_needs_safety_comment(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in &ctx.lexed.tokens {
        if t.is_ident("unsafe") && !ctx.lexed.adjacent_comment_text(t.line).contains("SAFETY:") {
            out.push(
                ctx.finding(
                    t.line,
                    "unsafe-needs-safety-comment",
                    "`unsafe` without an adjacent `// SAFETY:` comment stating the \
                 obligation being discharged"
                        .to_string(),
                ),
            );
        }
    }
}

/// `crate-forbids-unsafe`: every crate root must declare
/// `#![forbid(unsafe_code)]` — the workspace has no unsafe and forbidding
/// it at the root turns "keep it that way" into a compile error instead
/// of a review comment.
fn crate_forbids_unsafe(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.is_crate_root {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let has = (0..toks.len()).any(|i| {
        toks[i].is_punct('#')
            && matches_punct_run(&toks[i + 1..], &['!', '['])
            && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
            && matches_punct_run(&toks[i + 6..], &[')', ']'])
    });
    if !has {
        out.push(ctx.finding(
            1,
            "crate-forbids-unsafe",
            "crate root does not declare `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}

// ----------------------------------------------------------------- api-misuse

/// `api-meetinglog-to-vec`: no `.to_vec()` in the crates owning the COW
/// `MeetingLog` and the ESST walk machinery. Their views exist precisely
/// so million-entry logs are never materialised; a `to_vec()` on one is an
/// O(run length) copy hiding in an O(1) API.
fn api_to_vec(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_crate(NO_TO_VEC_CRATES) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if !ctx.shipping_code(toks[i].line) {
            continue;
        }
        if toks[i].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("to_vec"))
            && matches_punct_run(&toks[i + 2..], &['(', ')'])
        {
            out.push(
                ctx.finding(
                    toks[i + 1].line,
                    "api-meetinglog-to-vec",
                    "`.to_vec()` in a COW-log crate: iterate the view or take \
                 ownership with an `into_…` accessor instead of materialising"
                        .to_string(),
                ),
            );
        }
    }
}

/// `api-lock-across-dispatch`: in `minimax.rs`, a `Mutex` guard bound by
/// `let` must not still be in scope at a call to a `Job`-dispatching or
/// subtree-exploring function
/// (`run_job`/`split_job`/`explore_subtree`/`explore_memo`). A guard held across
/// a subtree search serialises the stealing frontier (the PR 5 regression
/// class). The heuristic is conservative: only bindings whose initialiser
/// *ends* in `.lock()` (optionally `.expect(…)`/`.unwrap()`) are treated
/// as guards, and an intervening `drop(guard)` clears them.
fn api_lock_across_dispatch(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.rel_path != MINIMAX_PATH {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let mut depth = 0i32;
    let mut i = 0usize;
    // Live guards: (binding name, brace depth of the binding).
    let mut guards: Vec<(String, i32)> = Vec::new();
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                guards.retain(|&(_, d)| d <= depth);
            }
            TokKind::Ident => {
                let t = &toks[i];
                if t.text == "let" {
                    if let Some((names, end)) = guard_binding(toks, i) {
                        guards.extend(names.into_iter().map(|n| (n, depth)));
                        i = end;
                        continue;
                    }
                } else if t.text == "drop" && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                    if let Some(arg) = toks.get(i + 2) {
                        guards.retain(|(n, _)| n != &arg.text);
                    }
                } else if DISPATCH_FNS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && !guards.is_empty()
                {
                    let (name, _) = &guards[0];
                    out.push(ctx.finding(
                        t.line,
                        "api-lock-across-dispatch",
                        format!(
                            "`{}` called while the `Mutex` guard `{name}` is still \
                             live: a lock held across a Job dispatch serialises the \
                             stealing frontier — drop the guard first",
                            t.text
                        ),
                    ));
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// `api-memo-reserve-publish`: in the crate owning the transposition
/// table, every `.publish(…)` / `.release(…)` call must carry an adjacent
/// `// publish:` comment (same line or the block directly above) naming
/// the reservation it completes or abandons. The reserve/publish protocol
/// is what keeps workers from duplicating a reserved subtree and what the
/// panic-recovery journal unwinds; an unannotated settle site is where a
/// leaked or double-completed reservation hides. No test exemption — the
/// protocol examples in `memo.rs` tests document themselves the same way.
fn api_memo_reserve_publish(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_crate(MEMO_TABLE_CRATES) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        let is_settle = toks
            .get(i + 1)
            .is_some_and(|t| t.is_ident("publish") || t.is_ident("release"));
        if !is_settle || !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let name = &toks[i + 1];
        if !ctx
            .lexed
            .adjacent_comment_text(name.line)
            .to_lowercase()
            .contains("publish:")
        {
            out.push(ctx.finding(
                name.line,
                "api-memo-reserve-publish",
                format!(
                    "`.{}(…)` without an adjacent `// publish:` comment naming \
                     the table reservation this call completes or abandons",
                    name.text
                ),
            ));
        }
    }
}

/// `api-atomic-output-write`: in the experiment-binary tree
/// (`crates/bench/src`), no direct `fs::write(…)` or `File::create(…)`.
/// The chaos gates SIGKILL these binaries mid-sweep, and a torn half-written
/// row file or `meta.json` then poisons every later resume; writes must go
/// through `rv_bench::write_atomic` (same-directory temp + atomic rename),
/// which makes every artifact either the old complete bytes or the new ones.
/// The store's segment writer (`rv_store`) is the one place allowed to
/// manage its own file handles, and it lives outside this tree.
fn api_atomic_output_write(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.rel_path.starts_with(ATOMIC_OUTPUT_PATH) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.in_test_mod(toks[i].line) {
            continue;
        }
        let callee = if toks[i].is_ident("fs") {
            "write"
        } else if toks[i].is_ident("File") {
            "create"
        } else {
            continue;
        };
        if matches_punct_run(&toks[i + 1..], &[':', ':'])
            && toks.get(i + 3).is_some_and(|t| t.is_ident(callee))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            out.push(ctx.finding(
                toks[i].line,
                "api-atomic-output-write",
                format!(
                    "`{}::{callee}(…)` writes an output file in place: a SIGKILL \
                     mid-write leaves a torn artifact — use `rv_bench::write_atomic` \
                     (temp + rename) instead",
                    toks[i].text
                ),
            ));
        }
    }
}

/// If the `let` statement starting at `toks[i]` binds a `Mutex` guard
/// (initialiser ends in `.lock()` / `.lock().expect(…)` / `.lock().unwrap()`
/// right before `;`), returns the bound names and the index of the `;`.
fn guard_binding(toks: &[Token], i: usize) -> Option<(Vec<String>, usize)> {
    let mut names = Vec::new();
    let mut j = i + 1;
    // Pattern region: up to `=` (stop early at `;` — a `let … else` or
    // bindingless form we don't model).
    while j < toks.len() && !toks[j].is_punct('=') {
        if toks[j].is_punct(';') {
            return None;
        }
        // Stop collecting names once a type annotation starts.
        if toks[j].is_punct(':') {
            while j < toks.len() && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
                j += 1;
            }
            break;
        }
        if toks[j].kind == TokKind::Ident && toks[j].text != "mut" {
            names.push(toks[j].text.clone());
        }
        j += 1;
    }
    if names.is_empty() {
        return None;
    }
    // Initialiser region: scan to the `;` that closes the statement
    // (tracking nesting so `;`s inside closures don't end it early).
    let mut nest = 0i32;
    let mut end = None;
    let init_start = j;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => nest -= 1,
            TokKind::Punct(';') if nest == 0 => {
                end = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let end = end?;
    let init = &toks[init_start..end];
    if ends_in_lock_chain(init) {
        Some((names, end))
    } else {
        None
    }
}

/// Whether a token slice ends with `.lock()`, `.lock().expect(<lit>)` or
/// `.lock().unwrap()`.
fn ends_in_lock_chain(init: &[Token]) -> bool {
    let n = init.len();
    let ends_with_call = |k: usize, name: &str, args: usize| -> bool {
        // `. name ( …args… )` occupying the last `3 + args` tokens.
        let w = 4 + args;
        if k < w {
            return false;
        }
        init[k - w].is_punct('.')
            && init[k - w + 1].is_ident(name)
            && init[k - w + 2].is_punct('(')
            && init[k - 1].is_punct(')')
    };
    if ends_with_call(n, "lock", 0) {
        return true;
    }
    for (name, args) in [("expect", 1), ("unwrap", 0)] {
        if ends_with_call(n, name, args) {
            let rest = n - (4 + args);
            if ends_with_call(rest, "lock", 0) {
                return true;
            }
        }
    }
    false
}

/// True if `toks` starts with exactly the punctuation run `run`.
fn matches_punct_run(toks: &[Token], run: &[char]) -> bool {
    run.len() <= toks.len() && run.iter().zip(toks).all(|(&c, t)| t.is_punct(c))
}
