//! A small hand-rolled Rust lexer — just enough fidelity for lint rules.
//!
//! The rules in this crate match on *token* sequences, never on raw text,
//! so an identifier inside a string literal, a `//` inside a string, or a
//! `HashMap` mentioned in a doc comment can never produce a false finding.
//! The lexer therefore has to get exactly four hard cases right:
//!
//! * line (`//`) and **nested** block (`/* /* */ */`) comments,
//! * string, byte-string and **raw** string literals (`r#"…"#`, any number
//!   of `#`s), with escapes,
//! * char literals vs lifetimes (`'a'` vs `'a`, including `'\''`),
//! * numeric literals containing `.` without swallowing `..` ranges.
//!
//! Comments are not discarded: they are collected per line so rules can
//! demand *adjacent justification comments* (`// ordering:`, `// SAFETY:`)
//! and honour inline suppressions (`// lint:allow(<rule-id>) — reason`).

/// What kind of token a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime such as `'a` (without the quote in [`Token::text`]).
    Lifetime,
    /// String, raw-string, byte-string or char literal (contents dropped).
    Literal,
    /// Numeric literal.
    Num,
    /// A single punctuation character (`:`, `.`, `(`, `{`, `!`, …).
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    /// Identifier/number text; empty for literals and punctuation.
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// The result of lexing one file: the token stream plus per-line comment
/// text (keyed by 1-based line; a line covered by a block comment gets the
/// whole comment's text, so multi-line justifications work).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// Concatenated comment text per source line.
    pub comments: std::collections::BTreeMap<u32, String>,
}

impl Lexed {
    /// Lines that carry at least one code token.
    pub fn code_lines(&self) -> std::collections::BTreeSet<u32> {
        self.tokens.iter().map(|t| t.line).collect()
    }

    /// The justification context for a token on `line`: comment text on the
    /// same line plus the run of comment-only lines directly above it.
    /// This is what "adjacent comment" means for the `// ordering:`,
    /// `// SAFETY:` and `// lint:allow(...)` checks.
    pub fn adjacent_comment_text(&self, line: u32) -> String {
        let code = self.code_lines();
        let mut text = String::new();
        if let Some(c) = self.comments.get(&line) {
            text.push_str(c);
        }
        let mut l = line.saturating_sub(1);
        while l > 0 {
            match self.comments.get(&l) {
                Some(c) if !code.contains(&l) => {
                    text.push('\n');
                    text.push_str(c);
                    l -= 1;
                }
                _ => break,
            }
        }
        text
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` (one Rust source file) into tokens and per-line comments.
/// Unterminated constructs are tolerated — the lexer consumes to EOF
/// rather than erroring, since lint input may be a broken fixture.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let push_comment = |out: &mut Lexed, first: u32, last: u32, text: &str| {
        for l in first..=last {
            let entry = out.comments.entry(l).or_default();
            if !entry.is_empty() {
                entry.push('\n');
            }
            entry.push_str(text);
        }
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                push_comment(&mut out, line, line, &text);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let (start, first_line) = (i, line);
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                push_comment(&mut out, first_line, line, &text);
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            'r' | 'b' if starts_prefixed_literal(&chars, i) => {
                let lit_line = line;
                i = skip_prefixed_literal(&chars, i, &mut line);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: lit_line,
                });
            }
            '\'' => {
                // Lifetime iff a bare identifier follows with no closing
                // quote (`'a`, `'static`); otherwise a char literal
                // (`'a'`, `'\''`, `'\u{1F980}'`).
                let mut j = i + 1;
                if j < chars.len() && is_ident_start(chars[j]) && chars[j] != '\\' {
                    let ident_start = j;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    if chars.get(j) != Some(&'\'') {
                        out.tokens.push(Token {
                            kind: TokKind::Lifetime,
                            text: chars[ident_start..j].iter().collect(),
                            line,
                        });
                        i = j;
                        continue;
                    }
                }
                // Char literal: consume to the closing quote, honouring
                // escapes.
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            // Tolerate a stray quote (e.g. inside macro
                            // token trees); treat it as punctuation.
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() {
                    let d = chars[i];
                    if is_ident_continue(d) {
                        i += 1;
                    } else if d == '.'
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && chars.get(i.wrapping_sub(1)) != Some(&'.')
                        && !chars[start..i].contains(&'.')
                    {
                        // `1.5` continues the number; `0..10` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c => {
                out.tokens.push(Token {
                    kind: TokKind::Punct(c),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True if position `i` (at `r` or `b`) starts a raw/byte string or byte
/// char literal rather than an identifier.
fn starts_prefixed_literal(chars: &[char], i: usize) -> bool {
    // Only when the `r`/`b` is not the tail of a longer identifier.
    if i > 0 && is_ident_continue(chars[i - 1]) {
        return false;
    }
    let rest = &chars[i..];
    match rest {
        ['r', '"', ..] | ['b', '"', ..] | ['b', '\'', ..] => true,
        ['b', 'r', ..] => matches!(rest.get(2), Some('"') | Some('#')) && raw_hashes_ok(rest, 2),
        ['r', '#', ..] => raw_hashes_ok(rest, 1),
        _ => false,
    }
}

/// After the `r` (at offset `from`), checks `#…#"` actually leads to a
/// quote — distinguishing `r#"…"#` from the raw identifier `r#match`.
fn raw_hashes_ok(rest: &[char], from: usize) -> bool {
    let mut j = from;
    while rest.get(j) == Some(&'#') {
        j += 1;
    }
    rest.get(j) == Some(&'"')
}

/// Consumes a `"…"` string starting at `i`; returns the index past it.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Consumes an `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'` literal
/// starting at `i`; returns the index past it.
fn skip_prefixed_literal(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if chars[i] == 'b' {
        i += 1;
    }
    if chars.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    if !raw {
        return match chars.get(i) {
            Some('"') => skip_string(chars, i, line),
            Some('\'') => {
                // b'…' byte literal.
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '\'' => return i + 1,
                        _ => i += 1,
                    }
                }
                i
            }
            _ => i,
        };
    }
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return i;
    }
    i += 1;
    // Scan for `"` followed by `hashes` `#`s.
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if chars[i] == '"' && chars[i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}
