#![forbid(unsafe_code)]
//! `rv_lint` — a std-only workspace lint engine.
//!
//! The golden suites check the workspace's core invariants — bit-identical
//! determinism, panic-freedom, atomics discipline — *dynamically*: a bug
//! ships first and a seed has to hit it. This crate states the same
//! invariants *statically*, as named rules over every `.rs` file in the
//! workspace, and gates CI on them. See [`rules`] for the rule packs and
//! `docs/LINTS.md` for the catalogue.
//!
//! Design constraints:
//!
//! * **No dependencies at all** (not even the vendored stubs): the linter
//!   is the root of trust, so it lexes Rust ([`lexer`]) and parses its
//!   allowlist ([`config`]) by hand.
//! * **Token-level matching**: rules never fire on comments or string
//!   literals.
//! * **Every suppression is justified**: inline
//!   `// lint:allow(<rule-id>) — reason` and `lint.toml` entries both
//!   require written reasons; unjustified or stale suppressions are
//!   findings themselves (`meta-*` rules).

pub mod config;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// How a file participates in rule scoping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// Library source — full rule coverage.
    LibSrc,
    /// Tests, benches, examples, and the bench crate: exempt from the
    /// determinism and panic-safety packs (concurrency rules still apply).
    TestLike,
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative `/`-separated path (the *real* path, even when a
    /// fixture header declared an effective one).
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A whole engine run: findings plus scan statistics.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Lints `root` — a directory (walked recursively, honouring the
/// `lint.toml` allowlist found there) or a single `.rs` file (linted
/// standalone, no allowlist).
pub fn scan(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    if root.is_file() {
        let rel = root
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("input.rs")
            .to_string();
        lint_file(root, &rel, &mut report)?;
        report.findings.sort_by(cmp_findings);
        return Ok(report);
    }
    if !root.is_dir() {
        return Err(format!("{}: not a file or directory", root.display()));
    }

    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    for rel in &files {
        lint_file(&root.join(rel), rel, &mut report)?;
    }

    // Apply the committed allowlist, tracking per-entry usage so stale
    // entries surface as findings.
    let allow_path = root.join("lint.toml");
    if let Ok(src) = std::fs::read_to_string(&allow_path) {
        let allowlist = config::parse_allowlist(&src);
        for (line, msg) in &allowlist.errors {
            report.findings.push(Finding {
                path: "lint.toml".to_string(),
                line: *line,
                rule: "meta-allowlist-entry",
                message: msg.clone(),
            });
        }
        let mut used = vec![false; allowlist.entries.len()];
        report.findings.retain(|f| {
            match allowlist
                .entries
                .iter()
                .position(|e| e.covers(f.rule, &f.path, f.line))
            {
                Some(i) => {
                    used[i] = true;
                    false
                }
                None => true,
            }
        });
        for (i, e) in allowlist.entries.iter().enumerate() {
            if !used[i] {
                report.findings.push(Finding {
                    path: "lint.toml".to_string(),
                    line: e.defined_at,
                    rule: "meta-stale-allow",
                    message: format!(
                        "allowlist entry (rule `{}`, path `{}`) no longer matches \
                         any finding — delete it",
                        e.rule, e.path
                    ),
                });
            }
        }
    }
    report.findings.sort_by(cmp_findings);
    Ok(report)
}

fn cmp_findings(a: &Finding, b: &Finding) -> std::cmp::Ordering {
    (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule))
}

/// Directories never descended into: build output, vendored stubs (not
/// ours to police), VCS/tool state, and the lint fixtures (linted only
/// when targeted explicitly — they exist to be findings).
fn skip_dir(name: &str) -> bool {
    name.starts_with('.') || matches!(name, "target" | "vendor" | "fixtures" | "node_modules")
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect_rs_files(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints one file, appending its surviving findings to `report`.
fn lint_file(path: &Path, rel: &str, report: &mut Report) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    report.files_scanned += 1;

    // Fixture files declare the path they should be judged as, so rule
    // scoping (crate lists, lib-vs-test) is testable from standalone files.
    let effective: String = fixture_override(&src).unwrap_or_else(|| rel.to_string());

    let lexed = lexer::lex(&src);
    let test_spans = cfg_test_spans(&lexed.tokens);
    let ctx = rules::FileCtx {
        rel_path: &effective,
        crate_dir: crate_dir_of(&effective),
        kind: classify(&effective),
        is_crate_root: effective.ends_with("src/lib.rs") || effective == "lib.rs",
        lexed: &lexed,
        test_spans: &test_spans,
    };
    let mut findings = Vec::new();
    rules::run_all(&ctx, &mut findings);

    // Inline suppressions: `// lint:allow(<rule-id>) — reason`, adjacent to
    // the finding (same line or the comment block directly above).
    findings.retain(|f| {
        !lexed
            .adjacent_comment_text(f.line)
            .contains(&format!("lint:allow({})", f.rule))
    });
    // …and every inline suppression must carry a reason and name a rule
    // that exists.
    for (line, text) in &lexed.comments {
        for (rule, reason) in parse_inline_allows(text) {
            // Placeholder shapes like `lint:allow(<rule-id>)` are syntax
            // documentation, not suppression attempts.
            if !rule
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                || rule.is_empty()
            {
                continue;
            }
            if !rules::ALL_RULES.contains(&rule.as_str()) {
                findings.push(Finding {
                    path: String::new(),
                    line: *line,
                    rule: "meta-unknown-rule",
                    message: format!("`lint:allow({rule})` names a rule that does not exist"),
                });
            } else if reason.trim().len() < 10 {
                findings.push(Finding {
                    path: String::new(),
                    line: *line,
                    rule: "meta-allow-needs-reason",
                    message: format!(
                        "`lint:allow({rule})` without a written reason — append \
                         `— why this is sound`"
                    ),
                });
            }
        }
    }

    for mut f in findings {
        f.path = rel.to_string();
        report.findings.push(f);
    }
    Ok(())
}

/// Extracts `(rule, trailing reason)` pairs from one comment's text.
fn parse_inline_allows(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        rest = &rest[close + 1..];
        let reason = rest.lines().next().unwrap_or("").to_string();
        out.push((rule, reason));
    }
    out
}

/// Reads a `// lint-fixture: as=<path>` header from the first lines.
fn fixture_override(src: &str) -> Option<String> {
    for line in src.lines().take(5) {
        if let Some(pos) = line.find("lint-fixture: as=") {
            let path = line[pos + "lint-fixture: as=".len()..].trim();
            if !path.is_empty() {
                return Some(path.to_string());
            }
        }
    }
    None
}

/// The `crates/<dir>/…` directory name, if any.
fn crate_dir_of(rel: &str) -> Option<&str> {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        parts.next()
    } else {
        None
    }
}

/// Classifies a workspace-relative path for rule scoping.
fn classify(rel: &str) -> SourceKind {
    let parts: Vec<&str> = rel.split('/').collect();
    let in_crate = parts.first() == Some(&"crates");
    let crate_dir = if in_crate {
        parts.get(1).copied()
    } else {
        None
    };
    // The bench crate is harness code end to end (its `src/bin` binaries
    // are experiment drivers), as is anything under tests/benches/examples.
    if crate_dir == Some("bench") {
        return SourceKind::TestLike;
    }
    let tree_root = if in_crate {
        parts.get(2)
    } else {
        parts.first()
    };
    match tree_root {
        Some(&"src") => SourceKind::LibSrc,
        _ => SourceKind::TestLike,
    }
}

/// Line spans of `#[cfg(test)] mod … { … }` bodies (attribute line through
/// closing brace).
fn cfg_test_spans(toks: &[lexer::Token]) -> Vec<(u32, u32)> {
    use lexer::TokKind;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // `# [ cfg ( test ) ]`
        let is_attr = toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(']'));
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut j = i + 7;
        // Skip any further attributes between cfg(test) and the item.
        while toks.get(j).is_some_and(|t| t.is_punct('#')) {
            let mut depth = 0i32;
            j += 1;
            while let Some(t) = toks.get(j) {
                match t.kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Only the `mod name { … }` form scopes a span; other cfg(test)
        // items (stray fns) are rare and not worth modelling.
        if toks.get(j).is_some_and(|t| t.is_ident("mod")) {
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            while let Some(t) = toks.get(j) {
                match t.kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            spans.push((start_line, t.line));
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        i = j.max(i + 1);
    }
    spans
}

/// Renders a report as machine-readable JSON (hand-rolled — see the
/// no-dependency constraint in the crate docs).
pub fn to_json(report: &Report) -> String {
    let mut s = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"path\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            json_str(&f.path),
            f.line,
            json_str(f.rule),
            json_str(&f.message)
        ));
    }
    s.push_str(&format!(
        "],\"count\":{},\"files_scanned\":{}}}",
        report.findings.len(),
        report.files_scanned
    ));
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Resolves the workspace root from a `--root` argument or the current
/// directory (walking up to the first dir containing `Cargo.toml` +
/// `crates/`).
pub fn find_workspace_root(from: &Path) -> Option<PathBuf> {
    let mut cur = Some(from.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
