//! The committed allowlist: `lint.toml` at the workspace root.
//!
//! A deliberately tiny TOML subset — `[[allow]]` tables with string/integer
//! scalar keys — parsed by hand so the linter stays dependency-free. Every
//! entry **must** carry a non-empty `reason`; an unjustified entry is
//! itself reported as a finding (the gate cannot be silenced silently),
//! and so is an entry that no longer matches anything (stale suppressions
//! rot the allowlist).
//!
//! ```toml
//! # lint.toml
//! [[allow]]
//! rule = "det-hash-collections"
//! path = "crates/sim/src/cache.rs"   # suffix match on the workspace-relative path
//! line = 42                          # optional: restrict to one line
//! reason = "keyed lookups only; the map is never iterated"
//! ```

/// One `[[allow]]` entry from `lint.toml`.
#[derive(Clone, Debug, Default)]
pub struct AllowEntry {
    pub rule: String,
    /// Suffix-matched against the `/`-separated workspace-relative path.
    pub path: String,
    /// When present, the entry only covers findings on this 1-based line.
    pub line: Option<u32>,
    pub reason: String,
    /// The line in `lint.toml` where the entry starts (for diagnostics).
    pub defined_at: u32,
}

impl AllowEntry {
    /// Whether this entry suppresses a finding of `rule` at `path:line`.
    pub fn covers(&self, rule: &str, path: &str, line: u32) -> bool {
        if self.rule != rule {
            return false;
        }
        if self.line.is_some_and(|l| l != line) {
            return false;
        }
        path == self.path || path.ends_with(&format!("/{}", self.path))
    }
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    /// Malformed lines or entries (reported as `meta-` findings).
    pub errors: Vec<(u32, String)>,
}

/// Parses the `lint.toml` subset. Unknown keys are errors — a typoed
/// `ruel = …` must not silently widen the gate.
pub fn parse_allowlist(src: &str) -> Allowlist {
    let mut out = Allowlist::default();
    let mut cur: Option<AllowEntry> = None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = cur.take() {
                out.push_entry(e);
            }
            cur = Some(AllowEntry {
                defined_at: lineno,
                ..AllowEntry::default()
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            out.errors
                .push((lineno, format!("unparseable line: `{raw}`")));
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        let Some(entry) = cur.as_mut() else {
            out.errors
                .push((lineno, format!("`{key}` outside an [[allow]] table")));
            continue;
        };
        match key {
            "rule" | "path" | "reason" => match parse_toml_string(value) {
                Some(s) => match key {
                    "rule" => entry.rule = s,
                    "path" => entry.path = s,
                    _ => entry.reason = s,
                },
                None => out
                    .errors
                    .push((lineno, format!("`{key}` must be a quoted string"))),
            },
            "line" => match value.parse::<u32>() {
                Ok(n) => entry.line = Some(n),
                Err(_) => out
                    .errors
                    .push((lineno, format!("`line` must be an integer, got `{value}`"))),
            },
            other => out
                .errors
                .push((lineno, format!("unknown allowlist key `{other}`"))),
        }
    }
    if let Some(e) = cur.take() {
        out.push_entry(e);
    }
    out
}

impl Allowlist {
    fn push_entry(&mut self, e: AllowEntry) {
        if e.rule.is_empty() || e.path.is_empty() {
            self.errors.push((
                e.defined_at,
                "allowlist entry needs both `rule` and `path`".to_string(),
            ));
            return;
        }
        if e.reason.trim().len() < 10 {
            self.errors.push((
                e.defined_at,
                format!(
                    "allowlist entry for `{}` needs a written justification \
                     (`reason = \"…\"`, at least 10 characters)",
                    e.rule
                ),
            ));
            return;
        }
        self.entries.push(e);
    }
}

/// Drops a `#`-comment, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a double-quoted TOML string (no escape support needed here).
fn parse_toml_string(value: &str) -> Option<String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Some(v[1..v.len() - 1].to_string())
    } else {
        None
    }
}
