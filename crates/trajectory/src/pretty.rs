//! Structural rendering of the trajectory combinators — the textual
//! counterpart of the paper's Figures 1–4 — plus the compact `Debug`
//! rendering of live cursor state.
//!
//! [`TrajectoryCursor`]'s `Debug` output lives here beside [`describe`] so
//! the two stay consistent: a forked cursor printed by a failing test shows
//! one short combinator-notation frame per stack entry (e.g.
//! `Y(2)^311040` or `X fwd@17/32`) instead of megabytes of replay logs,
//! and without requiring the provider to be `Debug`.

use crate::cursor::{Body, Inner, Task, TrajectoryCursor};
use crate::spec::Spec;
use rv_explore::ExplorationProvider;
use std::fmt;
use std::fmt::Write as _;

impl<P: ExplorationProvider> fmt::Debug for Task<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `Inner::Q` sweeps build `Y′`, `Inner::Z` sweeps build `A′`.
        let sweep = |inner: &Inner| match inner {
            Inner::Q => "Y",
            Inner::Z => "A",
        };
        match self {
            Task::RFwd { walker } => {
                write!(f, "R@{}/{}", walker.steps_taken(), walker.total_steps())
            }
            Task::X {
                walker: Some(w),
                log,
                ..
            } => write!(
                f,
                "X fwd@{}/{} (log {})",
                w.steps_taken(),
                w.total_steps(),
                log.len()
            ),
            Task::X {
                walker: None, rev, ..
            } => write!(f, "X rev@{rev}"),
            Task::XChain { k, i, descending } => {
                write!(f, "{}({k})@X({i})", if *descending { "Q̄" } else { "Q" })
            }
            Task::YChain { k, i, descending } => {
                write!(f, "{}({k})@Y({i})", if *descending { "Z̄" } else { "Z" })
            }
            Task::SweepFwd { k, inner, idx, .. } => write!(f, "{}′({k})@{idx}", sweep(inner)),
            Task::SweepRev { k, inner, idx, .. } => write!(f, "{}̅′({k})@{idx}", sweep(inner)),
            Task::Palindrome {
                k, inner, phase, ..
            } => write!(f, "{}({k}) phase {phase}", sweep(inner)),
            Task::Repeat { body, k, remaining } => {
                let body = match body {
                    Body::X => "X",
                    Body::Y => "Y",
                };
                write!(f, "{body}({k})^{remaining}")
            }
        }
    }
}

impl<P: ExplorationProvider + Clone> fmt::Debug for TrajectoryCursor<'_, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrajectoryCursor")
            .field("at", &self.position())
            .field("entry", &self.last_entry())
            .field("steps", &self.steps())
            .field("stack", &self.stack)
            .finish()
    }
}

/// Renders the structure of `spec` as nested composition, expanding one
/// level per line up to `depth` levels — e.g. Figure 1 (`Q`), Figure 2
/// (`Y′` inside `Y`), Figure 3 (`Z`) and Figure 4 (`A′` inside `A`).
///
/// # Examples
///
/// ```
/// use rv_trajectory::{describe, Spec};
///
/// let fig1 = describe(Spec::Q(3), 1);
/// assert!(fig1.contains("X(1) X(2) X(3)"));
/// ```
pub fn describe(spec: Spec, depth: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{spec} =");
    render(spec, depth, 1, &mut out);
    out
}

fn render(spec: Spec, depth: usize, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let line = expansion(spec);
    let _ = writeln!(out, "{pad}{line}");
    if depth == 0 {
        return;
    }
    for child in children(spec) {
        render(child, depth - 1, indent + 1, out);
    }
}

/// One-line expansion of a combinator (the paper's definition).
fn expansion(spec: Spec) -> String {
    match spec {
        Spec::R(k) => format!("R({k}): exploration sequence, P({k}) traversals"),
        Spec::X(k) => format!("X({k}) = R({k}) R̄({k})"),
        Spec::Q(k) => {
            let parts: Vec<String> = (1..=k).map(|i| format!("X({i})")).collect();
            format!("Q({k}) = {}", parts.join(" "))
        }
        Spec::Y(k) => format!(
            "Y({k}) = Y′({k}) Y̅′({k}),  Y′({k}) = Q({k},v₁) (v₁v₂) Q({k},v₂) … Q({k},vₛ) along R({k})"
        ),
        Spec::Z(k) => {
            let parts: Vec<String> = (1..=k).map(|i| format!("Y({i})")).collect();
            format!("Z({k}) = {}", parts.join(" "))
        }
        Spec::A(k) => format!(
            "A({k}) = A′({k}) A̅′({k}),  A′({k}) = Z({k},v₁) (v₁v₂) Z({k},v₂) … Z({k},vₛ) along R({k})"
        ),
        Spec::B(k) => format!("B({k}) = Y({k})^(2·|A({})|)", 4 * k),
        Spec::K(k) => format!("K({k}) = X({k})^(2·(|B({})| + |A({})|))", 4 * k, 8 * k),
        Spec::Omega(k) => format!("Ω({k}) = X({k})^(({}·2−1)·|K({k})|)", k),
    }
}

/// Immediate structural children (one representative per distinct child).
fn children(spec: Spec) -> Vec<Spec> {
    match spec {
        Spec::R(_) => vec![],
        Spec::X(k) => vec![Spec::R(k)],
        Spec::Q(k) => (1..=k).map(Spec::X).collect(),
        Spec::Y(k) => vec![Spec::Q(k), Spec::R(k)],
        Spec::Z(k) => (1..=k).map(Spec::Y).collect(),
        Spec::A(k) => vec![Spec::Z(k), Spec::R(k)],
        Spec::B(k) => vec![Spec::Y(k)],
        Spec::K(k) => vec![Spec::X(k)],
        Spec::Omega(k) => vec![Spec::X(k)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_q_structure() {
        let s = describe(Spec::Q(4), 0);
        assert!(s.contains("Q(4) = X(1) X(2) X(3) X(4)"));
    }

    #[test]
    fn figure2_y_structure() {
        let s = describe(Spec::Y(3), 1);
        assert!(s.contains("Y′(3)"));
        assert!(s.contains("Q(3) = X(1) X(2) X(3)"));
    }

    #[test]
    fn figure3_z_structure() {
        let s = describe(Spec::Z(3), 0);
        assert!(s.contains("Z(3) = Y(1) Y(2) Y(3)"));
    }

    #[test]
    fn figure4_a_structure() {
        let s = describe(Spec::A(2), 1);
        assert!(s.contains("A′(2)"));
        assert!(s.contains("Z(2) = Y(1) Y(2)"));
    }

    #[test]
    fn deep_rendering_terminates() {
        let s = describe(Spec::Omega(2), 6);
        // Ω(2) → X(2) → R(2): header + three expansion lines.
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("R(2): exploration sequence"));
    }

    #[test]
    fn cursor_debug_is_compact_combinator_notation() {
        use rv_explore::TableUxs;
        use rv_graph::{generators, NodeId};

        let g = generators::ring(3);
        let uxs = TableUxs::new(vec![vec![1]]);
        let mut c = TrajectoryCursor::new(&g, uxs, NodeId(0));
        c.push(Spec::B(1));
        c.next_traversal().unwrap();
        let dump = format!("{c:?}");
        assert!(dump.contains("steps: 1"), "missing step count: {dump}");
        assert!(
            dump.contains("Y(1)^"),
            "Repeat frames print in combinator notation: {dump}"
        );
        // Megabyte-scale replay logs must never leak into Debug output.
        assert!(dump.len() < 500, "Debug output not compact: {dump}");
    }
}
