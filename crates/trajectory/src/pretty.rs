//! Structural rendering of the trajectory combinators — the textual
//! counterpart of the paper's Figures 1–4.

use crate::spec::Spec;
use std::fmt::Write as _;

/// Renders the structure of `spec` as nested composition, expanding one
/// level per line up to `depth` levels — e.g. Figure 1 (`Q`), Figure 2
/// (`Y′` inside `Y`), Figure 3 (`Z`) and Figure 4 (`A′` inside `A`).
///
/// # Examples
///
/// ```
/// use rv_trajectory::{describe, Spec};
///
/// let fig1 = describe(Spec::Q(3), 1);
/// assert!(fig1.contains("X(1) X(2) X(3)"));
/// ```
pub fn describe(spec: Spec, depth: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{spec} =");
    render(spec, depth, 1, &mut out);
    out
}

fn render(spec: Spec, depth: usize, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let line = expansion(spec);
    let _ = writeln!(out, "{pad}{line}");
    if depth == 0 {
        return;
    }
    for child in children(spec) {
        render(child, depth - 1, indent + 1, out);
    }
}

/// One-line expansion of a combinator (the paper's definition).
fn expansion(spec: Spec) -> String {
    match spec {
        Spec::R(k) => format!("R({k}): exploration sequence, P({k}) traversals"),
        Spec::X(k) => format!("X({k}) = R({k}) R̄({k})"),
        Spec::Q(k) => {
            let parts: Vec<String> = (1..=k).map(|i| format!("X({i})")).collect();
            format!("Q({k}) = {}", parts.join(" "))
        }
        Spec::Y(k) => format!(
            "Y({k}) = Y′({k}) Y̅′({k}),  Y′({k}) = Q({k},v₁) (v₁v₂) Q({k},v₂) … Q({k},vₛ) along R({k})"
        ),
        Spec::Z(k) => {
            let parts: Vec<String> = (1..=k).map(|i| format!("Y({i})")).collect();
            format!("Z({k}) = {}", parts.join(" "))
        }
        Spec::A(k) => format!(
            "A({k}) = A′({k}) A̅′({k}),  A′({k}) = Z({k},v₁) (v₁v₂) Z({k},v₂) … Z({k},vₛ) along R({k})"
        ),
        Spec::B(k) => format!("B({k}) = Y({k})^(2·|A({})|)", 4 * k),
        Spec::K(k) => format!("K({k}) = X({k})^(2·(|B({})| + |A({})|))", 4 * k, 8 * k),
        Spec::Omega(k) => format!("Ω({k}) = X({k})^(({}·2−1)·|K({k})|)", k),
    }
}

/// Immediate structural children (one representative per distinct child).
fn children(spec: Spec) -> Vec<Spec> {
    match spec {
        Spec::R(_) => vec![],
        Spec::X(k) => vec![Spec::R(k)],
        Spec::Q(k) => (1..=k).map(Spec::X).collect(),
        Spec::Y(k) => vec![Spec::Q(k), Spec::R(k)],
        Spec::Z(k) => (1..=k).map(Spec::Y).collect(),
        Spec::A(k) => vec![Spec::Z(k), Spec::R(k)],
        Spec::B(k) => vec![Spec::Y(k)],
        Spec::K(k) => vec![Spec::X(k)],
        Spec::Omega(k) => vec![Spec::X(k)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_q_structure() {
        let s = describe(Spec::Q(4), 0);
        assert!(s.contains("Q(4) = X(1) X(2) X(3) X(4)"));
    }

    #[test]
    fn figure2_y_structure() {
        let s = describe(Spec::Y(3), 1);
        assert!(s.contains("Y′(3)"));
        assert!(s.contains("Q(3) = X(1) X(2) X(3)"));
    }

    #[test]
    fn figure3_z_structure() {
        let s = describe(Spec::Z(3), 0);
        assert!(s.contains("Z(3) = Y(1) Y(2) Y(3)"));
    }

    #[test]
    fn figure4_a_structure() {
        let s = describe(Spec::A(2), 1);
        assert!(s.contains("A′(2)"));
        assert!(s.contains("Z(2) = Y(1) Y(2)"));
    }

    #[test]
    fn deep_rendering_terminates() {
        let s = describe(Spec::Omega(2), 6);
        // Ω(2) → X(2) → R(2): header + three expansion lines.
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("R(2): exploration sequence"));
    }
}
