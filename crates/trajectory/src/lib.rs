#![forbid(unsafe_code)]
//! The trajectory algebra of *How to Meet Asynchronously at Polynomial
//! Cost*, §3.1 (Definitions 3.1–3.8).
//!
//! The rendezvous algorithm is built from nine trajectory combinators over
//! the exploration trajectory `R(k, v)`:
//!
//! | Trajectory | Definition | Role |
//! |---|---|---|
//! | `X(k,v)`  | `R(k,v) R̄(k,v)` | integral out-and-back probe |
//! | `Q(k,v)`  | `X(1,v) … X(k,v)` | probes of all scales (Fig. 1) |
//! | `Y′(k,v)` | `R(k,v)` with `Q(k,·)` inserted at every node (Fig. 2) | probing sweep |
//! | `Y(k,v)`  | `Y′(k,v) Y̅′(k,v)` | palindromic sweep |
//! | `Z(k,v)`  | `Y(1,v) … Y(k,v)` | sweeps of all scales (Fig. 3) |
//! | `A′(k,v)` | `R(k,v)` with `Z(k,·)` inserted at every node (Fig. 4) | deep sweep |
//! | `A(k,v)`  | `A′(k,v) A̅′(k,v)` | bit-0 atom |
//! | `B(k,v)`  | `Y(k,v)^(2·|A(4k)|)` | bit-1 atom |
//! | `K(k,v)`  | `X(k,v)^(2(|B(4k)|+|A(8k)|))` | border (synchroniser) |
//! | `Ω(k,v)`  | `X(k,v)^((2k−1)·|K(k)|)` | fence (synchroniser) |
//!
//! Even `Ω(1)` is billions of edge traversals, so nothing is ever
//! materialised: [`TrajectoryCursor`] streams traversals from a frame
//! stack, and [`Lengths`] evaluates the exact sizes with bignums
//! ([`rv_arith::Big`]). Reversal is structural — `rev(R) = R̄` and both `X`
//! and `Y` are walk-palindromes — and the cursor's recomputation of earlier
//! `R` walks stands in for the unbounded memory of the paper's agents (the
//! walks are deterministic, so replaying a log and recomputing coincide).
//!
//! # Examples
//!
//! ```
//! use rv_trajectory::{Lengths, Spec, TrajectoryCursor};
//! use rv_explore::SeededUxs;
//! use rv_graph::{generators, NodeId};
//!
//! let g = generators::ring(4);
//! let uxs = SeededUxs::default();
//!
//! // Exact length of X(3): 2·P(3).
//! let lengths = Lengths::new(uxs);
//! assert_eq!(lengths.x(3).to_string(), (2 * 4 * 27).to_string());
//!
//! // Stream the actual walk and confirm it matches.
//! let mut cur = TrajectoryCursor::new(&g, uxs, NodeId(0));
//! cur.push(Spec::X(3));
//! let mut steps = 0u64;
//! while cur.next_traversal().is_some() { steps += 1; }
//! assert_eq!(steps.to_string(), lengths.x(3).to_string());
//! // X returns to its start node.
//! assert_eq!(cur.position(), NodeId(0));
//! ```

mod cursor;
mod lengths;
mod pretty;
mod spec;

pub use cursor::{TrajectoryCursor, Traversal};
pub use lengths::Lengths;
pub use pretty::describe;
pub use spec::Spec;
