//! The trajectory grammar.

use std::fmt;

/// A trajectory combinator from §3.1 of the paper, relative to the node the
/// cursor occupies when it starts playing (the paper's `v`).
///
/// All parameters `k` must be ≥ 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Spec {
    /// `R(k, v)` — the raw exploration trajectory (Definition: §2).
    R(u64),
    /// `X(k, v) = R(k, v) R̄(k, v)` (Definition 3.1). Starts and ends at `v`.
    X(u64),
    /// `Q(k, v) = X(1, v) … X(k, v)` (Definition 3.2). Starts and ends at `v`.
    Q(u64),
    /// `Y(k, v) = Y′(k, v) Y̅′(k, v)` (Definition 3.3). Starts and ends at `v`.
    Y(u64),
    /// `Z(k, v) = Y(1, v) … Y(k, v)` (Definition 3.4). Starts and ends at `v`.
    Z(u64),
    /// `A(k, v) = A′(k, v) A̅′(k, v)` (Definition 3.5). Starts and ends at `v`.
    A(u64),
    /// `B(k, v) = Y(k, v)^(2·|A(4k)|)` (Definition 3.6). Starts and ends at `v`.
    B(u64),
    /// `K(k, v) = X(k, v)^(2(|B(4k)| + |A(8k)|))` (Definition 3.7).
    K(u64),
    /// `Ω(k, v) = X(k, v)^((2k−1)·|K(k)|)` (Definition 3.8).
    Omega(u64),
}

impl Spec {
    /// The parameter `k` of the combinator.
    pub fn k(&self) -> u64 {
        match *self {
            Spec::R(k)
            | Spec::X(k)
            | Spec::Q(k)
            | Spec::Y(k)
            | Spec::Z(k)
            | Spec::A(k)
            | Spec::B(k)
            | Spec::K(k)
            | Spec::Omega(k) => k,
        }
    }

    /// Whether playing this trajectory returns the agent to its start node.
    pub fn is_closed(&self) -> bool {
        !matches!(self, Spec::R(_))
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Spec::R(k) => write!(f, "R({k})"),
            Spec::X(k) => write!(f, "X({k})"),
            Spec::Q(k) => write!(f, "Q({k})"),
            Spec::Y(k) => write!(f, "Y({k})"),
            Spec::Z(k) => write!(f, "Z({k})"),
            Spec::A(k) => write!(f, "A({k})"),
            Spec::B(k) => write!(f, "B({k})"),
            Spec::K(k) => write!(f, "K({k})"),
            Spec::Omega(k) => write!(f, "Ω({k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_extraction_and_display() {
        assert_eq!(Spec::B(7).k(), 7);
        assert_eq!(Spec::Omega(3).to_string(), "Ω(3)");
        assert_eq!(Spec::X(1).to_string(), "X(1)");
    }

    #[test]
    fn closedness() {
        assert!(!Spec::R(2).is_closed());
        for s in [
            Spec::X(2),
            Spec::Q(2),
            Spec::Y(2),
            Spec::Z(2),
            Spec::A(2),
            Spec::B(2),
            Spec::K(2),
            Spec::Omega(2),
        ] {
            assert!(s.is_closed(), "{s} must be closed");
        }
    }
}
