//! Exact trajectory lengths (number of edge traversals), evaluated with
//! bignums.
//!
//! These are the *exact* counterparts of the upper bounds `X*, Q*, Y*, Z*,
//! A*, B*, K*, Ω*` listed at the end of the proof of Theorem 3.1. The
//! trajectory definitions fix the length of each combinator independently of
//! the graph and start node (each `R(k, ·)` contributes exactly `P(k)`
//! traversals), so lengths are pure functions of `k`:
//!
//! ```text
//! |R(k)| = P(k)                |X(k)| = 2 P(k)
//! |Q(k)| = Σ_{i≤k} |X(i)|      |Y′(k)| = (P(k)+1)·|Q(k)| + P(k)
//! |Y(k)| = 2 |Y′(k)|           |Z(k)| = Σ_{i≤k} |Y(i)|
//! |A′(k)| = (P(k)+1)·|Z(k)| + P(k)        |A(k)| = 2 |A′(k)|
//! |B(k)| = 2 |A(4k)| · |Y(k)|
//! |K(k)| = 2 (|B(4k)| + |A(8k)|) · |X(k)|
//! |Ω(k)| = (2k−1) · |K(k)| · |X(k)|
//! ```

use rv_arith::Big;
use rv_explore::ExplorationProvider;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Memoizing evaluator of exact trajectory lengths for a given exploration
/// provider.
///
/// # Examples
///
/// ```
/// use rv_trajectory::Lengths;
/// use rv_explore::{SeededUxs, ExplorationProvider};
///
/// let uxs = SeededUxs::default();
/// let l = Lengths::new(uxs);
/// let p1 = uxs.len(1);
/// assert_eq!(l.x(1), rv_arith::Big::from(2 * p1));
/// // Ω(1) is already astronomical; the bignum evaluates it exactly.
/// assert!(l.omega(1).bit_len() > 30);
/// ```
#[derive(Debug)]
pub struct Lengths<P> {
    provider: P,
    /// Shared across clones: the evaluator is a pure function of the
    /// provider, so every fork of a cursor can safely read and extend one
    /// common memo. Sharing (rather than deep-copying) makes cloning O(1)
    /// — the minimax search forks cursors once per schedule-tree node —
    /// and keeps the chain warm for all of them. Accesses are rare (only
    /// [`crate::TrajectoryCursor::push`] consults lengths; steady-state
    /// streaming never does), so the mutex is effectively uncontended.
    memo: Arc<Mutex<BTreeMap<(Kind, u64), Big>>>,
}

impl<P: Clone> Clone for Lengths<P> {
    /// Clones share the memo chain — see the field docs; forked evaluators
    /// never recompute a length the original already evaluated, and vice
    /// versa.
    fn clone(&self) -> Self {
        Lengths {
            provider: self.provider.clone(),
            memo: Arc::clone(&self.memo),
        }
    }
}

// `Ord` keys the shared BTreeMap memo (deterministic, unlike a hash map).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Q,
    Yp,
    Z,
    Ap,
    B,
    K,
    Omega,
}

impl<P: ExplorationProvider> Lengths<P> {
    /// Creates an evaluator over `provider`'s length polynomial `P`.
    pub fn new(provider: P) -> Self {
        Lengths {
            provider,
            memo: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    fn p(&self, k: u64) -> Big {
        Big::from(self.provider.len(k))
    }

    /// Takes the memo lock **once** and evaluates `kind(k)` — the whole
    /// recurrence chain runs under the one guard (`eval` recursion passes
    /// the map down), so a cold evaluation pays a single lock rather than
    /// one per sub-term. Uncontended in practice: lengths are consulted
    /// only when specs are pushed, never in steady-state streaming.
    fn locked(&self, kind: Kind, k: u64) -> Big {
        let mut memo = self.memo.lock().expect("memo poisoned");
        self.eval(kind, k, &mut memo)
    }

    /// Memoised recurrence evaluation under an already-held guard. Each
    /// formula lives **only here** (or in the `_in` helpers below for the
    /// derived quantities); the public accessors are lock-then-delegate
    /// wrappers, so there is a single source of truth per combinator.
    fn eval(&self, kind: Kind, k: u64, memo: &mut BTreeMap<(Kind, u64), Big>) -> Big {
        if let Some(v) = memo.get(&(kind, k)) {
            return v.clone();
        }
        let v = match kind {
            Kind::Q => (1..=k).map(|i| self.x(i)).sum(),
            Kind::Yp => {
                let p = self.p(k);
                (&p + 1u64) * self.eval(Kind::Q, k, memo) + p
            }
            Kind::Z => {
                let mut sum = Big::zero();
                for i in 1..=k {
                    sum += self.y_in(i, memo);
                }
                sum
            }
            Kind::Ap => {
                let p = self.p(k);
                (&p + 1u64) * self.eval(Kind::Z, k, memo) + p
            }
            Kind::B => self.b_reps_in(k, memo) * self.y_in(k, memo),
            Kind::K => self.k_reps_in(k, memo) * self.x(k),
            Kind::Omega => self.omega_reps_in(k, memo) * self.x(k),
        };
        memo.insert((kind, k), v.clone());
        v
    }

    /// `|Y(k)| = 2 |Y′(k)|`, under the guard.
    fn y_in(&self, k: u64, memo: &mut BTreeMap<(Kind, u64), Big>) -> Big {
        self.eval(Kind::Yp, k, memo) * 2u64
    }

    /// `|A(k)| = 2 |A′(k)|`, under the guard.
    fn a_in(&self, k: u64, memo: &mut BTreeMap<(Kind, u64), Big>) -> Big {
        self.eval(Kind::Ap, k, memo) * 2u64
    }

    /// `b_reps(k) = 2 |A(4k)|`, under the guard.
    fn b_reps_in(&self, k: u64, memo: &mut BTreeMap<(Kind, u64), Big>) -> Big {
        self.a_in(4 * k, memo) * 2u64
    }

    /// `k_reps(k) = 2 (|B(4k)| + |A(8k)|)`, under the guard.
    fn k_reps_in(&self, k: u64, memo: &mut BTreeMap<(Kind, u64), Big>) -> Big {
        (self.eval(Kind::B, 4 * k, memo) + self.a_in(8 * k, memo)) * 2u64
    }

    /// `omega_reps(k) = (2k−1) |K(k)|`, under the guard.
    fn omega_reps_in(&self, k: u64, memo: &mut BTreeMap<(Kind, u64), Big>) -> Big {
        self.eval(Kind::K, k, memo) * (2 * k - 1)
    }

    /// `|R(k)| = P(k)`.
    pub fn r(&self, k: u64) -> Big {
        self.p(k)
    }

    /// `|X(k)| = 2 P(k)`.
    pub fn x(&self, k: u64) -> Big {
        self.p(k) * 2u64
    }

    /// `|Q(k)| = Σ_{i=1..k} |X(i)|`.
    pub fn q(&self, k: u64) -> Big {
        self.locked(Kind::Q, k)
    }

    /// `|Y′(k)| = (P(k)+1)·|Q(k)| + P(k)`.
    pub fn y_prime(&self, k: u64) -> Big {
        self.locked(Kind::Yp, k)
    }

    /// `|Y(k)| = 2 |Y′(k)|`.
    pub fn y(&self, k: u64) -> Big {
        let mut memo = self.memo.lock().expect("memo poisoned");
        self.y_in(k, &mut memo)
    }

    /// `|Z(k)| = Σ_{i=1..k} |Y(i)|`.
    pub fn z(&self, k: u64) -> Big {
        self.locked(Kind::Z, k)
    }

    /// `|A′(k)| = (P(k)+1)·|Z(k)| + P(k)`.
    pub fn a_prime(&self, k: u64) -> Big {
        self.locked(Kind::Ap, k)
    }

    /// `|A(k)| = 2 |A′(k)|`.
    pub fn a(&self, k: u64) -> Big {
        let mut memo = self.memo.lock().expect("memo poisoned");
        self.a_in(k, &mut memo)
    }

    /// Repetition count of `Y(k)` within `B(k)`: `2·|A(4k)|`.
    pub fn b_reps(&self, k: u64) -> Big {
        let mut memo = self.memo.lock().expect("memo poisoned");
        self.b_reps_in(k, &mut memo)
    }

    /// `|B(k)| = 2 |A(4k)| · |Y(k)|`.
    pub fn b(&self, k: u64) -> Big {
        self.locked(Kind::B, k)
    }

    /// Repetition count of `X(k)` within `K(k)`: `2(|B(4k)| + |A(8k)|)`.
    pub fn k_reps(&self, k: u64) -> Big {
        let mut memo = self.memo.lock().expect("memo poisoned");
        self.k_reps_in(k, &mut memo)
    }

    /// `|K(k)| = 2(|B(4k)| + |A(8k)|) · |X(k)|`.
    pub fn k(&self, k: u64) -> Big {
        self.locked(Kind::K, k)
    }

    /// Repetition count of `X(k)` within `Ω(k)`: `(2k−1)·|K(k)|`.
    pub fn omega_reps(&self, k: u64) -> Big {
        let mut memo = self.memo.lock().expect("memo poisoned");
        self.omega_reps_in(k, &mut memo)
    }

    /// `|Ω(k)| = (2k−1)·|K(k)|·|X(k)|`.
    pub fn omega(&self, k: u64) -> Big {
        self.locked(Kind::Omega, k)
    }

    /// Length of an arbitrary [`crate::Spec`].
    pub fn of(&self, spec: crate::Spec) -> Big {
        match spec {
            crate::Spec::R(k) => self.r(k),
            crate::Spec::X(k) => self.x(k),
            crate::Spec::Q(k) => self.q(k),
            crate::Spec::Y(k) => self.y(k),
            crate::Spec::Z(k) => self.z(k),
            crate::Spec::A(k) => self.a(k),
            crate::Spec::B(k) => self.b(k),
            crate::Spec::K(k) => self.k(k),
            crate::Spec::Omega(k) => self.omega(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Spec;
    use rv_explore::TableUxs;

    /// A provider with P(k) = 1 for every k keeps lengths tiny and
    /// hand-checkable.
    fn unit_p() -> TableUxs {
        TableUxs::new(vec![vec![0]])
    }

    #[test]
    fn hand_computed_lengths_with_unit_p() {
        let l = Lengths::new(unit_p());
        // P = 1 everywhere.
        assert_eq!(l.x(5), Big::from(2u64));
        assert_eq!(l.q(5), Big::from(10u64)); // Σ 2
        assert_eq!(l.y_prime(3), Big::from(2 * 6 + 1u64)); // (1+1)·Q(3)=2·6, +1
        assert_eq!(l.y(3), Big::from(26u64));
        // Z(3) = Y(1)+Y(2)+Y(3) = 2(2·2+1) + 2(2·4+1) + 26 = 10+18+26 = 54.
        assert_eq!(l.z(3), Big::from(54u64));
    }

    #[test]
    fn b_k_omega_compose_correctly() {
        let l = Lengths::new(unit_p());
        let b1 = l.b(1);
        assert_eq!(b1, l.b_reps(1) * l.y(1));
        let k1 = l.k(1);
        assert_eq!(k1, (l.b(4) + l.a(8)) * 2u64 * l.x(1));
        assert_eq!(l.omega(1), l.k(1) * l.x(1)); // (2·1−1) = 1
        assert_eq!(l.omega(2), l.k(2) * 3u64 * l.x(2));
    }

    #[test]
    fn lengths_are_strictly_monotone_in_k() {
        let l = Lengths::new(rv_explore::SeededUxs::default());
        for k in 1..8 {
            assert!(l.x(k) < l.x(k + 1));
            assert!(l.y(k) < l.y(k + 1));
            assert!(l.a(k) < l.a(k + 1));
            assert!(l.b(k) < l.b(k + 1));
            assert!(l.omega(k) < l.omega(k + 1));
        }
    }

    #[test]
    fn paper_bound_hierarchy_holds() {
        // The proof of Theorem 3.1 relies on |Ω(k)| dominating pieces and
        // |K(k)| dominating segments; sanity-check the exact values.
        let l = Lengths::new(rv_explore::SeededUxs::default());
        for k in 1..6 {
            assert!(l.omega(k) > l.k(k));
            assert!(l.k(k) > l.b(k.div_ceil(4)));
            assert!(l.b(k) > l.a(4 * k)); // B(k) repeats Y(k) 2|A(4k)| times
        }
    }

    #[test]
    fn of_matches_individual_accessors() {
        let l = Lengths::new(rv_explore::SeededUxs::default());
        assert_eq!(l.of(Spec::Q(3)), l.q(3));
        assert_eq!(l.of(Spec::Omega(2)), l.omega(2));
        assert_eq!(l.of(Spec::R(4)), l.r(4));
    }

    #[test]
    fn clone_carries_the_warm_memo() {
        let l = Lengths::new(rv_explore::SeededUxs::default());
        let omega = l.omega(2);
        let fork = l.clone();
        assert_eq!(fork.omega(2), omega);
        assert_eq!(fork.of(Spec::B(3)), l.of(Spec::B(3)));
    }

    #[test]
    fn memoization_is_consistent() {
        let l = Lengths::new(rv_explore::SeededUxs::default());
        let first = l.omega(3);
        let second = l.omega(3);
        assert_eq!(first, second);
    }

    #[test]
    fn omega_1_is_astronomical_with_default_p() {
        let l = Lengths::new(rv_explore::SeededUxs::default());
        // With P(k) = 4k³, Ω(1) has ~10^10 edge traversals: the reason the
        // cursor must be lazy.
        assert!(l.omega(1).log10() > 9.0);
    }
}
