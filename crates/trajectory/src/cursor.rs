//! Lazy streaming execution of trajectory specs.
//!
//! [`TrajectoryCursor`] plays any [`Spec`] as a stream of edge traversals
//! using an explicit frame stack, in O(nesting depth · P(k)) memory — never
//! materialising a trajectory (`|Ω(1)|` ≈ 10²² traversals under the
//! default provider).
//!
//! **Agent-model honesty.** The cursor reads the graph only through
//! [`rv_graph::Graph::traverse`] — the local operation the paper grants an
//! agent — plus *recomputation* of `R(k, u)` walks from nodes the cursor has
//! itself visited (to reverse the sweeps `Y̅′`/`A̅′`). A paper agent with
//! unbounded memory would replay its own traversal log instead; since the
//! walks are deterministic, log replay and recomputation produce the same
//! route, so the cursor is an exact implementation of the agent's behaviour,
//! not an oracle shortcut.

use crate::lengths::Lengths;
use crate::spec::Spec;
use rv_arith::RepCount;
use rv_explore::{r_trajectory, ConcreteTrajectory, ExplorationProvider, RWalker};
use rv_graph::{Graph, NodeId, PortId};
use std::sync::Arc;

/// One executed edge traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Traversal {
    /// Node the agent left.
    pub from: NodeId,
    /// Port it left through.
    pub exit: PortId,
    /// Node it arrived at.
    pub to: NodeId,
    /// Port it entered through.
    pub entry: PortId,
}

/// What a sweep inserts at every node of its `R(k, ·)` spine:
/// `Q(k)` for `Y′` (Definition 3.3) or `Z(k)` for `A′` (Definition 3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Inner {
    Q,
    Z,
}

/// Body of a repetition combinator: `Y(k)` for `B`, `X(k)` for `K`/`Ω`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Body {
    X,
    Y,
}

#[derive(Clone)]
pub(crate) enum Task<P> {
    /// `R(k, ·)` from the current node.
    RFwd { walker: RWalker<P> },
    /// `X(k, ·) = R R̄`: walk forward logging entry ports, then replay the
    /// log backwards.
    X {
        walker: Option<RWalker<P>>,
        log: Vec<PortId>,
        rev: usize,
    },
    /// `X(1)…X(k)` ascending (Q) or `X(k)…X(1)` descending (Q̄ — valid
    /// because `X` is a walk-palindrome: `rev(R R̄) = R R̄`).
    XChain { k: u64, i: u64, descending: bool },
    /// `Y(1)…Y(k)` ascending (Z) or descending (Z̄; `Y` is a palindrome too).
    YChain { k: u64, i: u64, descending: bool },
    /// Forward sweep `Y′`/`A′`: insert `inner` at every node of `R(k, v)`.
    /// The materialised spine is immutable once computed and snapshot forks
    /// (see the struct docs) clone the frame stack freely, so it is shared
    /// behind an `Arc`: a fork bumps a refcount instead of copying three
    /// vectors.
    SweepFwd {
        k: u64,
        inner: Inner,
        r: Option<Arc<ConcreteTrajectory>>,
        idx: usize,
        inner_pushed: bool,
    },
    /// Reverse sweep `Y̅′`/`A̅′`: replay from the stored forward start node.
    SweepRev {
        k: u64,
        inner: Inner,
        start: NodeId,
        r: Option<Arc<ConcreteTrajectory>>,
        idx: usize,
        inner_pushed: bool,
    },
    /// `Y(k)` (`inner = Q`) or `A(k)` (`inner = Z`): forward sweep then
    /// reverse sweep from the recorded start.
    Palindrome {
        k: u64,
        inner: Inner,
        start: Option<NodeId>,
        phase: u8,
    },
    /// `body(k)` repeated `remaining` more times (`B`, `K`, `Ω`). The
    /// counter is native `u64` until the repetition count exceeds `2^64`
    /// (see [`RepCount`]) — decrements dominate deep-combinator streaming.
    Repeat {
        body: Body,
        k: u64,
        remaining: RepCount,
    },
}

enum Outcome {
    Yield(PortId),
    /// The task to push was stored in the caller-provided slot.
    Push,
    Pop,
}

/// Streaming executor of trajectory [`Spec`]s over a graph.
///
/// Push specs with [`TrajectoryCursor::push`]; pushed specs play in LIFO
/// order (the most recently pushed plays first — callers that sequence
/// whole-algorithm phases push one spec at a time as the stack drains).
///
/// # Forking
///
/// The cursor is `Clone`, and cloning is a **fork**: the clone captures the
/// complete mid-stream state — position, entry port, the frame stack with
/// its replay logs and repetition counters, and the warm [`Lengths`] memo —
/// in O(state), so original and clone continue with bit-identical traversal
/// streams. The simulator's snapshot/restore machinery
/// (`rv_sim::Runtime::snapshot`) relies on this to explore schedule trees
/// without replaying trajectory prefixes.
#[derive(Clone)]
pub struct TrajectoryCursor<'g, P> {
    g: &'g Graph,
    provider: P,
    lengths: Lengths<P>,
    pub(crate) stack: Vec<Task<P>>,
    cur: NodeId,
    entry: Option<PortId>,
    steps: u64,
    /// Exit port already decided by [`TrajectoryCursor::prime`] but not yet
    /// executed. Invariant: `Some` only while the yielding task is still on
    /// top of the stack.
    pending: Option<PortId>,
}

impl<'g, P: ExplorationProvider + Clone> TrajectoryCursor<'g, P> {
    /// Creates an idle cursor positioned at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range for `g`.
    pub fn new(g: &'g Graph, provider: P, start: NodeId) -> Self {
        assert!(start.0 < g.order(), "start node out of range");
        TrajectoryCursor {
            g,
            provider: provider.clone(),
            lengths: Lengths::new(provider),
            stack: Vec::new(),
            cur: start,
            entry: None,
            steps: 0,
            pending: None,
        }
    }

    /// Current node.
    pub fn position(&self) -> NodeId {
        self.cur
    }

    /// Entry port at the current node (`None` before the first traversal).
    pub fn last_entry(&self) -> Option<PortId> {
        self.entry
    }

    /// Total traversals executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// `true` when no trajectory is pending.
    pub fn is_idle(&self) -> bool {
        self.stack.is_empty()
    }

    /// The exact-length evaluator sharing this cursor's provider.
    pub fn lengths(&self) -> &Lengths<P> {
        &self.lengths
    }

    /// Schedules `spec` to play next (LIFO relative to other pushes).
    ///
    /// # Panics
    ///
    /// Panics if a primed traversal is pending (see
    /// [`TrajectoryCursor::prime`]): the pending port belongs to the task
    /// currently on top, and a LIFO push would reorder the stream around it.
    /// Consume the pending traversal first.
    pub fn push(&mut self, spec: Spec) {
        assert!(
            self.pending.is_none(),
            "cannot push a spec while a primed traversal is pending"
        );
        let task = self.task_for(spec);
        self.stack.push(task);
    }

    fn task_for(&self, spec: Spec) -> Task<P> {
        match spec {
            Spec::R(k) => Task::RFwd {
                walker: RWalker::new(self.provider.clone(), k),
            },
            Spec::X(k) => Task::X {
                walker: Some(RWalker::new(self.provider.clone(), k)),
                log: Vec::new(),
                rev: 0,
            },
            Spec::Q(k) => Task::XChain {
                k,
                i: 1,
                descending: false,
            },
            Spec::Y(k) => Task::Palindrome {
                k,
                inner: Inner::Q,
                start: None,
                phase: 0,
            },
            Spec::Z(k) => Task::YChain {
                k,
                i: 1,
                descending: false,
            },
            Spec::A(k) => Task::Palindrome {
                k,
                inner: Inner::Z,
                start: None,
                phase: 0,
            },
            Spec::B(k) => Task::Repeat {
                body: Body::Y,
                k,
                remaining: RepCount::from(self.lengths.b_reps(k)),
            },
            Spec::K(k) => Task::Repeat {
                body: Body::X,
                k,
                remaining: RepCount::from(self.lengths.k_reps(k)),
            },
            Spec::Omega(k) => Task::Repeat {
                body: Body::X,
                k,
                remaining: RepCount::from(self.lengths.omega_reps(k)),
            },
        }
    }

    /// Executes and returns the next traversal, or `None` if idle.
    pub fn next_traversal(&mut self) -> Option<Traversal> {
        let port = match self.pending.take() {
            Some(p) => p,
            None => self.advance_to_yield()?,
        };
        Some(self.execute(port))
    }

    /// Advances the frame stack to the next exit port **without executing
    /// the traversal**, and returns `true` if one is ready. A primed cursor
    /// answers its next [`TrajectoryCursor::next_traversal`] in O(1); clones
    /// inherit the materialised stack, so priming once before a fan-out of
    /// forks amortises the spec-expansion cost (repetition-count evaluation,
    /// walker construction) across all of them. Priming commutes with
    /// streaming: the traversal sequence is bit-identical either way.
    pub fn prime(&mut self) -> bool {
        if self.pending.is_none() {
            self.pending = self.advance_to_yield();
        }
        self.pending.is_some()
    }

    /// Drives push/pop outcomes until the top task yields an exit port, or
    /// the stack drains (`None`). The yielding task stays on top.
    fn advance_to_yield(&mut self) -> Option<PortId> {
        loop {
            // Decide what the top task wants; push/pop are handled inline,
            // yields are returned to the caller for execution.
            let mut push_task: Option<Task<P>> = None;
            let outcome = {
                let (g, provider, cur, entry) = (self.g, &self.provider, self.cur, self.entry);
                let top = self.stack.last_mut()?;
                Self::advance(top, g, provider, cur, entry, &mut push_task)
            };
            match outcome {
                Outcome::Pop => {
                    self.stack.pop();
                }
                Outcome::Push => {
                    self.stack
                        .push(push_task.expect("Push outcome always sets pending task"));
                }
                Outcome::Yield(port) => return Some(port),
            }
        }
    }

    /// Performs the traversal, updates position, and feeds the entry port
    /// back to a logging `X` task.
    fn execute(&mut self, port: PortId) -> Traversal {
        debug_assert!(port.0 < self.g.degree(self.cur), "invalid exit port");
        let from = self.cur;
        let arr = self.g.traverse(from, port);
        self.cur = arr.node;
        self.entry = Some(arr.entry_port);
        self.steps += 1;
        if let Some(Task::X {
            walker: Some(_),
            log,
            ..
        }) = self.stack.last_mut()
        {
            log.push(arr.entry_port);
        }
        Traversal {
            from,
            exit: port,
            to: arr.node,
            entry: arr.entry_port,
        }
    }

    fn advance(
        task: &mut Task<P>,
        g: &Graph,
        provider: &P,
        cur: NodeId,
        entry: Option<PortId>,
        push_task: &mut Option<Task<P>>,
    ) -> Outcome {
        match task {
            Task::RFwd { walker } => match walker.next_exit(entry, g.degree(cur)) {
                Some(port) => Outcome::Yield(port),
                None => Outcome::Pop,
            },
            Task::X { walker, log, rev } => {
                if let Some(w) = walker {
                    if let Some(port) = w.next_exit(entry, g.degree(cur)) {
                        return Outcome::Yield(port);
                    }
                    *rev = log.len();
                    *walker = None;
                }
                if *rev > 0 {
                    *rev -= 1;
                    Outcome::Yield(log[*rev])
                } else {
                    Outcome::Pop
                }
            }
            Task::XChain { k, i, descending } => {
                let next = if *descending {
                    if *i == 0 {
                        return Outcome::Pop;
                    }
                    let v = *i;
                    *i -= 1;
                    v
                } else {
                    if *i > *k {
                        return Outcome::Pop;
                    }
                    let v = *i;
                    *i += 1;
                    v
                };
                *push_task = Some(Task::X {
                    walker: Some(RWalker::new(provider.clone(), next)),
                    log: Vec::new(),
                    rev: 0,
                });
                Outcome::Push
            }
            Task::YChain { k, i, descending } => {
                let next = if *descending {
                    if *i == 0 {
                        return Outcome::Pop;
                    }
                    let v = *i;
                    *i -= 1;
                    v
                } else {
                    if *i > *k {
                        return Outcome::Pop;
                    }
                    let v = *i;
                    *i += 1;
                    v
                };
                *push_task = Some(Task::Palindrome {
                    k: next,
                    inner: Inner::Q,
                    start: None,
                    phase: 0,
                });
                Outcome::Push
            }
            Task::SweepFwd {
                k,
                inner,
                r,
                idx,
                inner_pushed,
            } => {
                let traj = r.get_or_insert_with(|| Arc::new(r_trajectory(g, provider, *k, cur)));
                if !*inner_pushed {
                    *inner_pushed = true;
                    *push_task = Some(chain_task(*inner, *k, false));
                    return Outcome::Push;
                }
                if *idx < traj.len() {
                    let port = traj.exit_ports[*idx];
                    *idx += 1;
                    *inner_pushed = false;
                    Outcome::Yield(port)
                } else {
                    Outcome::Pop
                }
            }
            Task::SweepRev {
                k,
                inner,
                start,
                r,
                idx,
                inner_pushed,
            } => {
                if r.is_none() {
                    let traj = Arc::new(r_trajectory(g, provider, *k, *start));
                    debug_assert_eq!(
                        traj.nodes.last(),
                        Some(&cur),
                        "reverse sweep must begin at the forward sweep's end"
                    );
                    *idx = traj.len();
                    *r = Some(traj);
                }
                let traj = r.as_ref().expect("just initialised");
                if !*inner_pushed {
                    *inner_pushed = true;
                    *push_task = Some(chain_task(*inner, *k, true));
                    return Outcome::Push;
                }
                if *idx > 0 {
                    let port = traj.entry_ports[*idx - 1];
                    *idx -= 1;
                    *inner_pushed = false;
                    Outcome::Yield(port)
                } else {
                    Outcome::Pop
                }
            }
            Task::Palindrome {
                k,
                inner,
                start,
                phase,
            } => match *phase {
                0 => {
                    *start = Some(cur);
                    *phase = 1;
                    *push_task = Some(Task::SweepFwd {
                        k: *k,
                        inner: *inner,
                        r: None,
                        idx: 0,
                        inner_pushed: false,
                    });
                    Outcome::Push
                }
                1 => {
                    *phase = 2;
                    *push_task = Some(Task::SweepRev {
                        k: *k,
                        inner: *inner,
                        start: start.expect("phase 0 sets start"),
                        r: None,
                        idx: 0,
                        inner_pushed: false,
                    });
                    Outcome::Push
                }
                _ => Outcome::Pop,
            },
            Task::Repeat { body, k, remaining } => {
                if !remaining.try_decrement() {
                    return Outcome::Pop;
                }
                *push_task = Some(match body {
                    Body::X => Task::X {
                        walker: Some(RWalker::new(provider.clone(), *k)),
                        log: Vec::new(),
                        rev: 0,
                    },
                    Body::Y => Task::Palindrome {
                        k: *k,
                        inner: Inner::Q,
                        start: None,
                        phase: 0,
                    },
                });
                Outcome::Push
            }
        }
    }
}

fn chain_task<P>(inner: Inner, k: u64, descending: bool) -> Task<P> {
    let i = if descending { k } else { 1 };
    match inner {
        Inner::Q => Task::XChain { k, i, descending },
        Inner::Z => Task::YChain { k, i, descending },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_arith::Big;
    use rv_explore::{SeededUxs, TableUxs};
    use rv_graph::generators;

    /// Plays `spec` to completion, asserting walk validity, and returns the
    /// number of traversals.
    fn play(g: &Graph, spec: Spec, start: NodeId) -> (u64, NodeId) {
        let uxs = SeededUxs::default();
        let mut c = TrajectoryCursor::new(g, uxs, start);
        c.push(spec);
        let mut prev = start;
        while let Some(t) = c.next_traversal() {
            assert_eq!(t.from, prev, "walk must be contiguous");
            assert_eq!(
                g.traverse(t.from, t.exit).node,
                t.to,
                "walk must follow edges"
            );
            prev = t.to;
        }
        (c.steps(), c.position())
    }

    #[test]
    fn r_length_matches_p() {
        let g = generators::ring(5);
        let uxs = SeededUxs::default();
        let (steps, _) = play(&g, Spec::R(5), NodeId(0));
        assert_eq!(steps, uxs.len(5));
    }

    #[test]
    fn x_is_closed_and_has_exact_length() {
        let g = generators::gnp_connected(8, 0.4, 9);
        for k in 1..5 {
            let uxs = SeededUxs::default();
            let lengths = Lengths::new(uxs);
            let (steps, end) = play(&g, Spec::X(k), NodeId(3));
            assert_eq!(Big::from(steps), lengths.x(k), "X({k})");
            assert_eq!(end, NodeId(3), "X({k}) must return to start");
        }
    }

    #[test]
    fn q_y_z_a_lengths_and_closure() {
        let g = generators::ring(4);
        let uxs = SeededUxs::default();
        let lengths = Lengths::new(uxs);
        for (spec, expect) in [
            (Spec::Q(3), lengths.q(3)),
            (Spec::Y(2), lengths.y(2)),
            (Spec::Z(2), lengths.z(2)),
            (Spec::A(1), lengths.a(1)),
        ] {
            let (steps, end) = play(&g, spec, NodeId(1));
            assert_eq!(Big::from(steps), expect, "{spec}");
            assert_eq!(end, NodeId(1), "{spec} must be closed");
        }
    }

    #[test]
    fn b_k_omega_lengths_with_unit_provider() {
        // With P(k) = 1 the giant combinators shrink enough to play fully.
        let g = generators::ring(3);
        let uxs = TableUxs::new(vec![vec![1]]);
        let lengths = Lengths::new(uxs.clone());
        for spec in [Spec::B(1), Spec::B(2), Spec::K(1)] {
            let mut c = TrajectoryCursor::new(&g, uxs.clone(), NodeId(0));
            c.push(spec);
            let mut steps = 0u64;
            while c.next_traversal().is_some() {
                steps += 1;
            }
            assert_eq!(Big::from(steps), lengths.of(spec), "{spec}");
            assert_eq!(c.position(), NodeId(0), "{spec} closed");
        }
    }

    #[test]
    #[ignore = "plays ~2.4M steps; run with --ignored for the full check"]
    fn omega_length_with_unit_provider() {
        let g = generators::ring(3);
        let uxs = TableUxs::new(vec![vec![1]]);
        let lengths = Lengths::new(uxs.clone());
        let mut c = TrajectoryCursor::new(&g, uxs, NodeId(0));
        c.push(Spec::Omega(1));
        let mut steps = 0u64;
        while c.next_traversal().is_some() {
            steps += 1;
        }
        assert_eq!(Big::from(steps), lengths.omega(1));
    }

    #[test]
    fn sweep_reversal_returns_exactly_backwards() {
        // Y(k) = Y′ Y̅′: after Y′ the cursor sits at R(k,v)'s end; after the
        // reverse sweep it must be back at v having retraced the spine.
        let g = generators::gnp_connected(7, 0.5, 21);
        let (_, end) = play(&g, Spec::Y(3), NodeId(2));
        assert_eq!(end, NodeId(2));
    }

    #[test]
    fn interleaved_pushes_play_lifo() {
        let g = generators::ring(4);
        let mut c = TrajectoryCursor::new(&g, SeededUxs::default(), NodeId(0));
        c.push(Spec::X(1));
        c.push(Spec::X(2)); // plays first
        let lengths = Lengths::new(SeededUxs::default());
        let first_len = lengths.x(2).to_u128().unwrap() as u64;
        for _ in 0..first_len {
            c.next_traversal().unwrap();
        }
        // X(2) done, back at start; X(1) remains.
        assert_eq!(c.position(), NodeId(0));
        assert!(!c.is_idle());
        while c.next_traversal().is_some() {}
        assert_eq!(
            c.steps(),
            first_len + lengths.x(1).to_u128().unwrap() as u64
        );
    }

    #[test]
    fn cursor_is_deterministic() {
        let g = generators::random_tree(9, 77);
        let run = || {
            let mut c = TrajectoryCursor::new(&g, SeededUxs::default(), NodeId(4));
            c.push(Spec::Y(2));
            let mut v = Vec::new();
            while let Some(t) = c.next_traversal() {
                v.push((t.from, t.to));
            }
            v
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cloned_cursor_streams_identically_from_any_point() {
        // Fork mid-stream at several depths; original and clone must
        // produce bit-identical continuations, including across Repeat
        // counter decrements and sweep reversals.
        let g = generators::gnp_connected(8, 0.4, 9);
        for split in [0u64, 1, 17, 500, 4096] {
            let mut original = TrajectoryCursor::new(&g, SeededUxs::default(), NodeId(3));
            original.push(Spec::B(2));
            for _ in 0..split {
                original.next_traversal().unwrap();
            }
            let mut fork = original.clone();
            assert_eq!(fork.position(), original.position());
            assert_eq!(fork.steps(), original.steps());
            for _ in 0..2000 {
                assert_eq!(
                    original.next_traversal(),
                    fork.next_traversal(),
                    "fork diverged after split at {split}"
                );
            }
        }
    }

    #[test]
    fn clone_does_not_perturb_the_original() {
        // Streaming the clone must leave the original untouched.
        let g = generators::ring(5);
        let mut a = TrajectoryCursor::new(&g, SeededUxs::default(), NodeId(0));
        a.push(Spec::Y(2));
        for _ in 0..10 {
            a.next_traversal().unwrap();
        }
        let reference: Vec<_> = {
            let mut probe = a.clone();
            (0..50).map(|_| probe.next_traversal()).collect()
        };
        let mut b = a.clone();
        for _ in 0..50 {
            b.next_traversal();
        }
        let got: Vec<_> = (0..50).map(|_| a.next_traversal()).collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn repeat_counters_use_the_native_fast_path() {
        // B(1) under the unit provider repeats Y(1) a tiny number of times;
        // the counter must be the inline u64 variant.
        let g = generators::ring(3);
        let uxs = TableUxs::new(vec![vec![1]]);
        let mut c = TrajectoryCursor::new(&g, uxs, NodeId(0));
        c.push(Spec::B(1));
        match c.stack.last() {
            Some(Task::Repeat { remaining, .. }) => {
                assert!(
                    !remaining.is_spilled(),
                    "small repetition counts stay inline"
                );
                assert_eq!(remaining.to_big(), c.lengths().b_reps(1));
            }
            other => panic!("expected a Repeat task, found {:?}", other.is_some()),
        }
    }

    #[test]
    fn idle_cursor_yields_none() {
        let g = generators::ring(3);
        let mut c = TrajectoryCursor::new(&g, SeededUxs::default(), NodeId(0));
        assert!(c.is_idle());
        assert_eq!(c.next_traversal(), None);
        assert_eq!(c.steps(), 0);
    }
}
