//! Property tests: the trajectory algebra's structural invariants hold on
//! random graphs, random start nodes and random parameters.

use proptest::prelude::*;
use rv_arith::Big;
use rv_explore::SeededUxs;
use rv_graph::{generators, NodeId};
use rv_trajectory::{Lengths, Spec, TrajectoryCursor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Streamed length equals the closed-form length, for every combinator
    /// small enough to play, on random graphs — and closed combinators end
    /// where they started.
    #[test]
    fn cursor_agrees_with_length_algebra(
        n in 4usize..12,
        p in 0.2f64..0.8,
        gseed in any::<u64>(),
        start_sel in any::<u64>(),
        k in 1u64..4,
    ) {
        let g = generators::gnp_connected(n, p, gseed);
        let start = NodeId((start_sel % n as u64) as usize);
        let uxs = SeededUxs::default();
        let lengths = Lengths::new(uxs);
        for spec in [Spec::R(k), Spec::X(k), Spec::Q(k), Spec::Y(k), Spec::Z(k)] {
            let mut c = TrajectoryCursor::new(&g, uxs, start);
            c.push(spec);
            let mut steps = 0u64;
            let mut prev = start;
            while let Some(t) = c.next_traversal() {
                prop_assert_eq!(t.from, prev, "contiguity in {}", spec);
                prop_assert_eq!(g.traverse(t.from, t.exit).node, t.to);
                prev = t.to;
                steps += 1;
            }
            prop_assert_eq!(Big::from(steps), lengths.of(spec), "length of {}", spec);
            if spec.is_closed() {
                prop_assert_eq!(c.position(), start, "{} must close", spec);
            }
        }
    }

    /// A(k) closes too (deep nesting: A′ = Z-insertions over R, reversed).
    #[test]
    fn a_trajectory_closes_on_random_trees(n in 4usize..9, seed in any::<u64>()) {
        let g = generators::random_tree(n, seed);
        let uxs = SeededUxs::default();
        let mut c = TrajectoryCursor::new(&g, uxs, NodeId(0));
        c.push(Spec::A(1));
        let mut steps = 0u64;
        while c.next_traversal().is_some() { steps += 1; }
        prop_assert_eq!(Big::from(steps), Lengths::new(uxs).a(1));
        prop_assert_eq!(c.position(), NodeId(0));
    }

    /// The first and second halves of X(k) are exact walk-reverses of each
    /// other (the palindrome property that structural reversal relies on).
    #[test]
    fn x_halves_mirror(n in 4usize..12, gseed in any::<u64>(), k in 1u64..5) {
        let g = generators::gnp_connected(n, 0.4, gseed);
        let uxs = SeededUxs::default();
        let mut c = TrajectoryCursor::new(&g, uxs, NodeId(0));
        c.push(Spec::X(k));
        let mut walk = Vec::new();
        while let Some(t) = c.next_traversal() {
            walk.push(t);
        }
        let half = walk.len() / 2;
        prop_assert_eq!(half * 2, walk.len());
        for i in 0..half {
            let fwd = walk[i];
            let bwd = walk[walk.len() - 1 - i];
            prop_assert_eq!(fwd.from, bwd.to);
            prop_assert_eq!(fwd.to, bwd.from);
            prop_assert_eq!(fwd.exit, bwd.entry);
            prop_assert_eq!(fwd.entry, bwd.exit);
        }
    }

    /// Lengths are graph-independent: the same spec takes the same number
    /// of steps on any graph (the defining property of the combinators).
    #[test]
    fn lengths_are_graph_independent(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        k in 1u64..4,
    ) {
        let ga = generators::gnp_connected(6, 0.5, seed_a);
        let gb = generators::random_tree(9, seed_b);
        let uxs = SeededUxs::default();
        let count = |g: &rv_graph::Graph| {
            let mut c = TrajectoryCursor::new(g, uxs, NodeId(0));
            c.push(Spec::Y(k));
            let mut steps = 0u64;
            while c.next_traversal().is_some() { steps += 1; }
            steps
        };
        prop_assert_eq!(count(&ga), count(&gb));
    }
}
