//! End-to-end crash-recovery gate for the durable sweep (`docs/FAULTS.md`):
//! SIGKILL a checkpointed `scenario_matrix` slice mid-flight, resume it,
//! and require the final table to match an uninterrupted reference run
//! exactly (timing column aside). Runs the real binary — the same code
//! path CI's chaos smoke exercises — via `CARGO_BIN_EXE_scenario_matrix`.

// Chaos harness: polling and killing a child process is inherently
// wall-clock; the sweep under test stays deterministic.
#![allow(clippy::disallowed_methods)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_scenario_matrix");

fn tmp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rv_ckpt_{}_{tag}", std::process::id()))
}

fn run(args: &[&str], cwd: &Path) -> std::process::ExitStatus {
    Command::new(BIN)
        .args(args)
        .current_dir(cwd)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("scenario_matrix spawns")
}

#[test]
fn sigkilled_sweep_resumes_to_the_identical_table() {
    let dir = tmp_root("chaos");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    // The uninterrupted reference table.
    assert!(
        run(&["--smoke", "--only", "ring8", "--out", "ref.jsonl"], &dir).success(),
        "reference sweep failed"
    );

    // The victim: same slice, checkpointed — killed as soon as a few
    // rows are durable.
    let mut child = Command::new(BIN)
        .args([
            "--smoke",
            "--only",
            "ring8",
            "--checkpoint",
            "ckpt",
            "--out",
            "victim.jsonl",
        ])
        .current_dir(&dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("victim sweep spawns");
    let rows = dir.join("ckpt/rows.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let durable = std::fs::read_to_string(&rows)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if durable >= 3 {
            break;
        }
        // A fast machine may finish the slice before we land the kill —
        // then the resume below is a pure replay, which must also work.
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sweep made no checkpoint progress within the deadline"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().ok(); // SIGKILL; racing a normal exit is fine
    child.wait().expect("victim reaped");

    // Resume from the (possibly truncated) checkpoint.
    assert!(
        run(
            &[
                "--smoke",
                "--only",
                "ring8",
                "--checkpoint",
                "ckpt",
                "--resume",
                "--out",
                "resumed.jsonl",
            ],
            &dir
        )
        .success(),
        "resume run failed"
    );

    // The recovered table must be identical to the reference, timing
    // aside — the binary's own --diff is the arbiter.
    assert!(
        run(&["--diff", "ref.jsonl", "resumed.jsonl"], &dir).success(),
        "resumed table differs from the uninterrupted reference"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_a_checkpoint_from_a_different_configuration() {
    let dir = tmp_root("mismatch");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let slice = "ring8/round-robin/paper"; // one cell: fast and sufficient
    assert!(
        run(
            &[
                "--smoke",
                "--only",
                slice,
                "--checkpoint",
                "ckpt",
                "--out",
                "a.jsonl"
            ],
            &dir
        )
        .success(),
        "checkpointed run failed"
    );

    // Same checkpoint, different trial count: splicing rows measured
    // under different settings must be refused, not silently mixed.
    let status = run(
        &[
            "--smoke",
            "--only",
            slice,
            "--trials",
            "2",
            "--checkpoint",
            "ckpt",
            "--resume",
            "--out",
            "b.jsonl",
        ],
        &dir,
    );
    assert!(
        !status.success(),
        "resume must refuse a configuration mismatch"
    );

    std::fs::remove_dir_all(&dir).ok();
}
