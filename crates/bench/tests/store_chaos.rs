//! End-to-end gates for the content-addressed cell store (`docs/STORE.md`),
//! against the real `scenario_matrix` binary:
//!
//! * a SIGKILL mid-sweep loses at most the cell in flight — the rerun
//!   serves every stored cell and matches an uninterrupted reference;
//! * a fully-warm run executes **zero** cells and writes a byte-identical
//!   row file;
//! * flipping the engine fingerprint orphans the whole population
//!   (everything recomputes), and the flipped population then serves warm
//!   under the same flip;
//! * `--diff` is schema-aware: a field-order permutation of the same rows
//!   diffs clean, a value change does not.

// Chaos harness: polling and killing a child process is inherently
// wall-clock; the sweep under test stays deterministic.
#![allow(clippy::disallowed_methods)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_scenario_matrix");

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rv_store_chaos_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn run(args: &[&str], cwd: &Path) -> std::process::ExitStatus {
    Command::new(BIN)
        .args(args)
        .current_dir(cwd)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("scenario_matrix spawns")
}

/// Runs the binary and returns its stdout (asserting success).
fn run_stdout(args: &[&str], cwd: &Path) -> String {
    let out = Command::new(BIN)
        .args(args)
        .current_dir(cwd)
        .stderr(Stdio::null())
        .output()
        .expect("scenario_matrix spawns");
    assert!(out.status.success(), "scenario_matrix {args:?} failed");
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

#[test]
fn sigkilled_store_sweep_reruns_to_the_identical_table() {
    let dir = tmp_root("kill");

    // The uninterrupted reference table.
    assert!(
        run(&["--smoke", "--only", "ring8", "--out", "ref.jsonl"], &dir).success(),
        "reference sweep failed"
    );

    // The victim: same slice against a fresh store — killed as soon as a
    // few records are durable.
    let mut child = Command::new(BIN)
        .args([
            "--smoke",
            "--only",
            "ring8",
            "--store",
            "st",
            "--out",
            "victim.jsonl",
        ])
        .current_dir(&dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("victim sweep spawns");
    let segment = dir.join("st/segment.log");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        // Each cell appends one few-hundred-byte record; once the segment
        // holds a handful of them, some cells are durable and some are
        // still to come — the interesting window for the kill.
        let durable = std::fs::metadata(&segment).map(|m| m.len()).unwrap_or(0);
        if durable >= 1500 {
            break;
        }
        // A fast machine may finish the slice before we land the kill —
        // then the rerun below is a pure replay, which must also work.
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sweep made no store progress within the deadline"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().ok(); // SIGKILL; racing a normal exit is fine
    child.wait().expect("victim reaped");

    // Rerun against the same store: stored cells serve, missing cells
    // recompute, and the table matches the reference (timing aside).
    assert!(
        run(
            &[
                "--smoke",
                "--only",
                "ring8",
                "--store",
                "st",
                "--out",
                "rerun.jsonl",
            ],
            &dir
        )
        .success(),
        "store rerun failed"
    );
    assert!(
        run(&["--diff", "ref.jsonl", "rerun.jsonl"], &dir).success(),
        "store-served table differs from the uninterrupted reference"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_store_run_executes_nothing_and_is_byte_identical() {
    let dir = tmp_root("warm");

    let cold = run_stdout(
        &[
            "--smoke",
            "--only",
            "ring8",
            "--store",
            "st",
            "--out",
            "cold.jsonl",
        ],
        &dir,
    );
    assert!(
        cold.contains("0/28 from store, 28 executed"),
        "cold run must execute every cell of the slice: {cold:?}"
    );
    let warm = run_stdout(
        &[
            "--smoke",
            "--only",
            "ring8",
            "--store",
            "st",
            "--out",
            "warm.jsonl",
        ],
        &dir,
    );
    assert!(
        warm.contains("28/28 from store, 0 executed"),
        "a fully-warm run must execute zero cells: {warm:?}"
    );
    let cold_rows = std::fs::read(dir.join("cold.jsonl")).expect("cold rows");
    let warm_rows = std::fs::read(dir.join("warm.jsonl")).expect("warm rows");
    assert_eq!(
        cold_rows, warm_rows,
        "a fully-warm run must write a byte-identical row file"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_fingerprint_flip_orphans_the_stored_population() {
    let dir = tmp_root("flip");
    let slice = "ring8/round-robin"; // 4 variants + 3 team sizes: small and fast

    let cold = run_stdout(
        &[
            "--smoke", "--only", slice, "--store", "st", "--out", "a.jsonl",
        ],
        &dir,
    );
    assert!(cold.contains("0/7 from store, 7 executed"), "{cold:?}");

    // Same cells, same store, different engine fingerprint: every key
    // misses — a semantic engine change recomputes the world.
    let flipped = run_stdout(
        &[
            "--smoke",
            "--only",
            slice,
            "--store",
            "st",
            "--engine-fp",
            "0xdead",
            "--out",
            "b.jsonl",
        ],
        &dir,
    );
    assert!(
        flipped.contains("0/7 from store, 7 executed"),
        "a fingerprint flip must orphan every stored row: {flipped:?}"
    );

    // And the flipped population is itself stored: rerunning under the
    // same flip serves warm.
    let flipped_warm = run_stdout(
        &[
            "--smoke",
            "--only",
            slice,
            "--store",
            "st",
            "--engine-fp",
            "0xdead",
            "--out",
            "c.jsonl",
        ],
        &dir,
    );
    assert!(
        flipped_warm.contains("7/7 from store, 0 executed"),
        "the flipped population must serve warm under the same flip: {flipped_warm:?}"
    );
    // Both populations coexist: the original fingerprint still serves.
    let original_warm = run_stdout(
        &[
            "--smoke", "--only", slice, "--store", "st", "--out", "d.jsonl",
        ],
        &dir,
    );
    assert!(
        original_warm.contains("7/7 from store, 0 executed"),
        "the original population must survive the flip: {original_warm:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_is_schema_aware_not_positional() {
    let dir = tmp_root("diff");

    // The same logical row, with the field order permuted (timing moved
    // off the tail, scenario not first) and a different wall-clock value.
    // The old suffix-strip comparison broke on exactly this; the
    // schema-aware diff must accept it.
    let canonical = concat!(
        r#"{"scenario":"x/y/z","mode":"protocol","n":6,"end":"Stalled","#,
        r#""median_ns_per_run":101.5,"cost":null}"#,
        "\n"
    );
    let permuted = concat!(
        r#"{"median_ns_per_run":999.25,"mode":"protocol","cost":null,"#,
        r#""end":"Stalled","n":6,"scenario":"x/y/z"}"#,
        "\n"
    );
    std::fs::write(dir.join("a.jsonl"), canonical).expect("write a");
    std::fs::write(dir.join("b.jsonl"), permuted).expect("write b");
    assert!(
        run(&["--diff", "a.jsonl", "b.jsonl"], &dir).success(),
        "a field-order permutation of the same row must diff clean"
    );

    // A real value difference must still be caught, wherever it sits.
    let changed = permuted.replace(r#""end":"Stalled""#, r#""end":"Cutoff""#);
    std::fs::write(dir.join("c.jsonl"), changed).expect("write c");
    assert!(
        !run(&["--diff", "a.jsonl", "c.jsonl"], &dir).success(),
        "a non-timing value change must fail the diff"
    );

    std::fs::remove_dir_all(&dir).ok();
}
