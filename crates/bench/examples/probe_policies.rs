//! Probe: end-to-end stop-policy verification over the matrix's critical
//! cells — the 18 divergent rendezvous cells under `DivergenceDetector`,
//! the 3 protocol outliers plus the worst converging cells under
//! `AdaptiveThreshold`, and the large-order ring cells.

// Timing harness: wall-clock here is the product, not a determinism leak.
#![allow(clippy::disallowed_methods)]
use rv_core::{Label, RvVariant};
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_protocols::{SglBehavior, SglConfig};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{AdaptiveThreshold, DivergenceDetector, RunConfig, Runtime, RvBehavior};
use std::time::Instant;

const GRAPH_SEED: u64 = 5;
const ADVERSARY_SEED: u64 = 3;
const SGL_LABELS: [u64; 4] = [6, 9, 14, 21];

fn family(name: &str) -> GraphFamily {
    match name {
        "ring" => GraphFamily::Ring,
        "path" => GraphFamily::Path,
        "tree" => GraphFamily::RandomTree,
        "gnp" => GraphFamily::Gnp,
        "lollipop" => GraphFamily::Lollipop,
        other => panic!("unknown family {other}"),
    }
}

fn rendezvous(fname: &str, n: usize, kind: AdversaryKind, vname: &str) {
    let paper = RvVariant::default();
    let variant = match vname {
        "paper" => paper,
        "unscaled" => RvVariant {
            scaled_params: false,
            ..paper
        },
        _ => panic!("unknown variant"),
    };
    let uxs = SeededUxs::quadratic();
    let g = family(fname).generate(n, GRAPH_SEED);
    let agents = vec![
        RvBehavior::with_variant(&g, uxs, NodeId(0), Label::new(6).unwrap(), variant),
        RvBehavior::with_variant(
            &g,
            uxs,
            NodeId(g.order() / 2),
            Label::new(9).unwrap(),
            variant,
        ),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(100_000));
    let mut adv = kind.build(ADVERSARY_SEED);
    let mut policy = DivergenceDetector::default();
    let start = Instant::now();
    let out = rt.run_with_policy(adv.as_mut(), &mut policy);
    println!(
        "{fname}{n}/{kind}/{vname}: end={:?} cost={} wall={:?}",
        out.end,
        out.total_traversals,
        start.elapsed()
    );
}

fn protocol(fname: &str, n: usize, k: usize, kind: AdversaryKind, cutoff: u64) {
    let uxs = SeededUxs::quadratic();
    let g = family(fname).generate(n, GRAPH_SEED);
    let behaviors: Vec<_> = SGL_LABELS[..k]
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                &g,
                uxs,
                NodeId(i * g.order() / k),
                Label::new(l).unwrap(),
                l + 1000,
                SglConfig::default(),
            )
        })
        .collect();
    let mut rt = Runtime::new(&g, behaviors, RunConfig::protocol().with_cutoff(cutoff));
    let mut adv = kind.build(ADVERSARY_SEED);
    let mut policy = AdaptiveThreshold::default();
    let start = Instant::now();
    let out = rt.run_with_policy(adv.as_mut(), &mut policy);
    println!(
        "{fname}{n}/{kind}/sgl-k{k}: end={:?} cost={} actions={} wall={:?}",
        out.end,
        out.total_traversals,
        out.actions,
        start.elapsed()
    );
}

fn main() {
    println!("--- divergent rendezvous cells (expect Diverged well under 100k) ---");
    for (f, n, a) in [
        ("ring", 8, AdversaryKind::LazySecond),
        ("ring", 12, AdversaryKind::GreedyAvoid),
        ("ring", 16, AdversaryKind::RoundRobin),
        ("ring", 16, AdversaryKind::EagerMeet),
        ("path", 16, AdversaryKind::LazySecond),
        ("tree", 16, AdversaryKind::GreedyAvoid),
        ("tree", 16, AdversaryKind::EagerMeet),
    ] {
        rendezvous(f, n, a, "unscaled");
    }
    println!("--- converging rendezvous control (expect Meeting, unchanged) ---");
    rendezvous("ring", 12, AdversaryKind::GreedyAvoid, "paper");
    rendezvous("lollipop", 16, AdversaryKind::LazySecond, "paper");

    println!("--- protocol outliers (expect Stalled under 2.5M) ---");
    protocol("tree", 8, 3, AdversaryKind::LazySecond, 2_500_000);
    protocol("tree", 8, 3, AdversaryKind::GreedyAvoid, 2_500_000);
    protocol("gnp", 8, 4, AdversaryKind::GreedyAvoid, 2_500_000);

    println!("--- worst converging protocol cells (expect AllParked, unchanged) ---");
    protocol("tree", 8, 2, AdversaryKind::GreedyAvoid, 2_500_000);
    protocol("lollipop", 8, 4, AdversaryKind::GreedyAvoid, 2_500_000);
    protocol("lollipop", 8, 2, AdversaryKind::EagerMeet, 2_500_000);

    println!("--- large-order cells under the adaptive policy (expect AllParked) ---");
    protocol("ring", 12, 2, AdversaryKind::RoundRobin, 50_000_000);
    protocol("ring", 12, 3, AdversaryKind::GreedyAvoid, 50_000_000);
    protocol("ring", 16, 2, AdversaryKind::RoundRobin, 50_000_000);
    protocol("ring", 16, 3, AdversaryKind::EagerMeet, 50_000_000);
    protocol("ring", 16, 2, AdversaryKind::GreedyAvoid, 50_000_000);
}
