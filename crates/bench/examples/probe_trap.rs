//! Probe: find (graph, starts) where exact-lockstep naive agents never meet
//! incidentally, so the meeting cost equals the smaller agent's full
//! exponential schedule.

use rv_core::Label;
use rv_explore::{is_integral, ExplorationProvider, SeededUxs};
use rv_graph::{generators, Graph, NodeId};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{NaiveBehavior, RunConfig, Runtime};

fn main() {
    let uxs = SeededUxs::new(0x5EED_CAFE, 2).with_power(2);
    let candidates: Vec<(&str, Graph, usize, usize)> = vec![
        ("ring4 (0,1)", generators::ring(4), 0, 1),
        ("ring4 (0,2)", generators::ring(4), 0, 2),
        ("hcube2 (0,1)", generators::hypercube(2), 0, 1),
        ("hcube2 (0,2)", generators::hypercube(2), 0, 2),
        ("hcube3 (0,4)", generators::hypercube(3), 0, 4),
        ("hcube3 (0,1)", generators::hypercube(3), 0, 1),
        ("ring6 (0,3)", generators::ring(6), 0, 3),
        ("ring6 (0,1)", generators::ring(6), 0, 1),
        ("ring8 (0,1)", generators::ring(8), 0, 1),
    ];
    for (name, g, s1, s2) in candidates {
        let n = g.order() as u64;
        let integral = is_integral(&g, uxs, n, NodeId(0));
        let p = uxs.len(n);
        // L = 1: schedule = (2P+1)^1 repetitions of X(n).
        let predicted = (2 * p + 1) * 2 * p;
        let agents = vec![
            NaiveBehavior::new(&g, uxs, NodeId(s1), Label::new(1).unwrap()),
            NaiveBehavior::new(&g, uxs, NodeId(s2), Label::new(2).unwrap()),
        ];
        let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(100_000_000));
        let mut adv = AdversaryKind::RoundRobin.build(0);
        let out = rt.run(adv.as_mut());
        println!(
            "{name:14} integral={integral} end={:?} cost={} (full schedule ≈ {predicted})",
            out.end, out.total_traversals
        );
    }
}
