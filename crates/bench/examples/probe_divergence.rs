//! Probe: piece-number growth across all rendezvous matrix cells.
//!
//! For every rendezvous cell of the scenario matrix, runs to the 100k
//! cutoff (or the first meeting) while tracking the agents' piece numbers,
//! and prints: end, cost, max piece reached, and — for cells that hit the
//! cutoff — the cost at which each piece number was first entered. Used to
//! calibrate the divergence detector's piece threshold.

use rv_core::{Label, RvVariant};
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, Runtime, RvBehavior};

const CUTOFF: u64 = 100_000;

fn variants() -> [(&'static str, RvVariant); 4] {
    let paper = RvVariant::default();
    [
        ("paper", paper),
        (
            "single-atoms",
            RvVariant {
                doubled_atoms: false,
                ..paper
            },
        ),
        (
            "unscaled",
            RvVariant {
                scaled_params: false,
                ..paper
            },
        ),
        (
            "raw-label",
            RvVariant {
                modified_label: false,
                ..paper
            },
        ),
    ]
}

fn main() {
    let uxs = SeededUxs::quadratic();
    let families = [
        (GraphFamily::Ring, "ring"),
        (GraphFamily::Path, "path"),
        (GraphFamily::RandomTree, "tree"),
        (GraphFamily::Gnp, "gnp"),
        (GraphFamily::Lollipop, "lollipop"),
    ];
    let adversaries = [
        AdversaryKind::RoundRobin,
        AdversaryKind::LazySecond,
        AdversaryKind::GreedyAvoid,
        AdversaryKind::EagerMeet,
    ];
    let mut max_converging_piece = 0u64;
    for (family, fname) in families {
        for n in [8usize, 12, 16] {
            for adversary in adversaries {
                for (vname, variant) in variants() {
                    let g = family.generate(n, 5);
                    let agents = vec![
                        RvBehavior::with_variant(
                            &g,
                            uxs,
                            NodeId(0),
                            Label::new(6).unwrap(),
                            variant,
                        ),
                        RvBehavior::with_variant(
                            &g,
                            uxs,
                            NodeId(g.order() / 2),
                            Label::new(9).unwrap(),
                            variant,
                        ),
                    ];
                    let mut rt =
                        Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(CUTOFF));
                    let mut adv = adversary.build(3);
                    let mut meetings = Vec::new();
                    let mut piece_entry_costs: Vec<(u64, u64)> = Vec::new(); // (piece, cost)
                    let mut last_piece = 0u64;
                    let end = loop {
                        if let Some(end) = rt.step(adv.as_mut(), &mut meetings) {
                            break end;
                        }
                        let p = rt.behavior(0).piece().max(rt.behavior(1).piece());
                        if p > last_piece {
                            piece_entry_costs.push((p, rt.total_traversals()));
                            last_piece = p;
                        }
                    };
                    let scenario = format!("{fname}{n}/{adversary}/{vname}");
                    if end == RunEnd::Cutoff {
                        println!(
                            "DIVERGED {scenario}: cost={} pieces={:?}",
                            rt.total_traversals(),
                            piece_entry_costs
                        );
                    } else {
                        max_converging_piece = max_converging_piece.max(last_piece);
                        println!(
                            "{end:?} {scenario}: cost={} max_piece={last_piece}",
                            rt.total_traversals()
                        );
                    }
                }
            }
        }
    }
    println!("\nmax piece over all converging cells: {max_converging_piece}");
}
