//! Probe: protocol-cell progress traces — the instrument behind
//! `docs/STALL_TRACE.md` (every number there reproduces from here).
//!
//! Jobs, selected by argument:
//!
//! * `outliers` — trace the three slow protocol matrix cells
//!   (`tree8/lazy(1)/sgl-k3`, `tree8/greedy-avoid/sgl-k3`,
//!   `gnp8/greedy-avoid/sgl-k4`) to a 2.5M cutoff, printing each agent's
//!   state/phase/bag/ticks at exponentially spaced checkpoints. This is
//!   the trace that **refuted** the Phase-3 token-seek hypothesis: the
//!   cells are Phase-1 ESST blowups (final phase pinned by an
//!   adversarially suspended token).
//! * `deep [cutoff]` — `tree8/lazy(1)/sgl-k3` with a large budget,
//!   logging every phase/ESST-phase transition (shows the cell actually
//!   quiescing at ≈ 3.15M traversals).
//! * `windows` — over every converging protocol cell (orders 5, 6, 8),
//!   report the longest stretch of adversary actions during which the
//!   summed progress ticks did not advance (the stall detector's window
//!   must clear this with margin).
//! * `large <family> <n> <k> <adversary>` — run one cell at a rendezvous
//!   order (12/16) to quiescence with no cutoff, reporting cost, the
//!   longest tick silence, and wall time.

// Timing harness: wall-clock here is the product, not a determinism leak.
#![allow(clippy::disallowed_methods)]
use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_protocols::{SglBehavior, SglConfig};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, Runtime};
use std::time::Instant;

const GRAPH_SEED: u64 = 5;
const ADVERSARY_SEED: u64 = 3;
const SGL_LABELS: [u64; 4] = [6, 9, 14, 21];

fn behaviors<'g>(
    g: &'g rv_graph::Graph,
    k: usize,
    uxs: SeededUxs,
) -> Vec<SglBehavior<'g, SeededUxs>> {
    SGL_LABELS[..k]
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                g,
                uxs,
                NodeId(i * g.order() / k),
                Label::new(l).unwrap(),
                l + 1000,
                SglConfig::default(),
            )
        })
        .collect()
}

fn family(name: &str) -> GraphFamily {
    match name {
        "ring" => GraphFamily::Ring,
        "path" => GraphFamily::Path,
        "tree" => GraphFamily::RandomTree,
        "gnp" => GraphFamily::Gnp,
        "lollipop" => GraphFamily::Lollipop,
        other => panic!("unknown family {other}"),
    }
}

fn adversary(name: &str) -> AdversaryKind {
    match name {
        "round-robin" => AdversaryKind::RoundRobin,
        "lazy1" => AdversaryKind::LazySecond,
        "greedy-avoid" => AdversaryKind::GreedyAvoid,
        "eager-meet" => AdversaryKind::EagerMeet,
        other => panic!("unknown adversary {other}"),
    }
}

fn trace_outlier(fname: &str, k: usize, kind: AdversaryKind) {
    let uxs = SeededUxs::quadratic();
    let g = family(fname).generate(8, GRAPH_SEED);
    let mut rt = Runtime::new(
        &g,
        behaviors(&g, k, uxs),
        RunConfig::protocol().with_cutoff(2_500_000),
    );
    let mut adv = kind.build(ADVERSARY_SEED);
    let mut meetings = Vec::new();
    let mut next_report = 1000u64;
    println!("=== {fname}8/{kind}/sgl-k{k} ===");
    let end = loop {
        if let Some(end) = rt.step(adv.as_mut(), &mut meetings) {
            break end;
        }
        if rt.total_traversals() >= next_report {
            next_report *= 4;
            let summary: Vec<String> = (0..rt.agent_count())
                .map(|i| {
                    let p = rt.behavior(i).quiescence_progress();
                    format!(
                        "a{i}[{:?} {:?} bag={} out={} ticks={} esst={:?}]",
                        p.state, p.phase, p.bag_len, p.has_output, p.ticks, p.esst_phase
                    )
                })
                .collect();
            println!(
                "  cost={} actions={} meetings={} {}",
                rt.total_traversals(),
                rt.actions(),
                rt.meetings().len(),
                summary.join(" ")
            );
        }
    };
    let summary: Vec<String> = (0..rt.agent_count())
        .map(|i| {
            let p = rt.behavior(i).quiescence_progress();
            format!(
                "a{i}[{:?} {:?} bag={} out={} ticks={} esst={:?}]",
                p.state, p.phase, p.bag_len, p.has_output, p.ticks, p.esst_phase
            )
        })
        .collect();
    println!(
        "  END {end:?} cost={} actions={} meetings={} {}",
        rt.total_traversals(),
        rt.actions(),
        rt.meetings().len(),
        summary.join(" ")
    );
}

fn silent_windows() {
    let uxs = SeededUxs::quadratic();
    let families = ["ring", "path", "tree", "gnp", "lollipop"];
    let adversaries = [
        AdversaryKind::RoundRobin,
        AdversaryKind::LazySecond,
        AdversaryKind::GreedyAvoid,
        AdversaryKind::EagerMeet,
    ];
    let mut worst = (0u64, String::new());
    for fname in families {
        for n in [5usize, 6, 8] {
            for kind in adversaries {
                for k in [2usize, 3, 4] {
                    let g = family(fname).generate(n, GRAPH_SEED);
                    let mut rt = Runtime::new(
                        &g,
                        behaviors(&g, k, uxs),
                        RunConfig::protocol().with_cutoff(2_500_000),
                    );
                    let mut adv = kind.build(ADVERSARY_SEED);
                    let mut meetings = Vec::new();
                    let mut last_sum = 0u64;
                    let mut action_at_advance = 0u64;
                    let mut longest = (0u64, 0u64); // (length, start)
                    let mut worst_ratio = 0f64;
                    let end = loop {
                        if let Some(end) = rt.step(adv.as_mut(), &mut meetings) {
                            break end;
                        }
                        let sum: u64 = (0..rt.agent_count())
                            .map(|i| rt.behavior(i).quiescence_progress().ticks)
                            .sum();
                        if sum > last_sum {
                            last_sum = sum;
                            let len = rt.actions() - action_at_advance;
                            if len > longest.0 {
                                longest = (len, action_at_advance);
                            }
                            if len >= 100_000 {
                                worst_ratio =
                                    worst_ratio.max(len as f64 / action_at_advance.max(1) as f64);
                            }
                            action_at_advance = rt.actions();
                        }
                    };
                    let len = rt.actions() - action_at_advance;
                    if len > longest.0 {
                        longest = (len, action_at_advance);
                    }
                    if len >= 100_000 {
                        worst_ratio = worst_ratio.max(len as f64 / action_at_advance.max(1) as f64);
                    }
                    let id = format!("{fname}{n}/{kind}/sgl-k{k}");
                    println!(
                        "{id}: end={end:?} cost={} actions={} longest_silent={} from={} ratio={worst_ratio:.2}",
                        rt.total_traversals(),
                        rt.actions(),
                        longest.0,
                        longest.1,
                    );
                    if format!("{end:?}") != "Cutoff" && longest.0 > worst.0 {
                        worst = (longest.0, id);
                    }
                }
            }
        }
    }
    println!(
        "\nlongest silent window over converging cells: {} actions ({})",
        worst.0, worst.1
    );
}

fn large(fname: &str, n: usize, k: usize, kind: AdversaryKind) {
    let uxs = SeededUxs::quadratic();
    let g = family(fname).generate(n, GRAPH_SEED);
    let mut rt = Runtime::new(
        &g,
        behaviors(&g, k, uxs),
        RunConfig::protocol().with_cutoff(u64::MAX),
    );
    let mut adv = kind.build(ADVERSARY_SEED);
    let mut meetings = Vec::new();
    let mut last_sum = 0u64;
    let mut action_at_advance = 0u64;
    let mut longest = (0u64, 0u64);
    let start = Instant::now();
    let end = loop {
        if let Some(end) = rt.step(adv.as_mut(), &mut meetings) {
            break end;
        }
        let sum: u64 = (0..rt.agent_count())
            .map(|i| rt.behavior(i).quiescence_progress().ticks)
            .sum();
        if sum > last_sum {
            last_sum = sum;
            let len = rt.actions() - action_at_advance;
            if len > longest.0 {
                longest = (len, action_at_advance);
            }
            action_at_advance = rt.actions();
        }
    };
    let len = rt.actions() - action_at_advance;
    if len > longest.0 {
        longest = (len, action_at_advance);
    }
    println!(
        "{fname}{n}/{kind}/sgl-k{k}: end={end:?} cost={} actions={} meetings={} \
         longest_silent={} from={} wall={:?}",
        rt.total_traversals(),
        rt.actions(),
        rt.meetings().len(),
        longest.0,
        longest.1,
        start.elapsed()
    );
}

/// Runs one of the outlier cells with a large cutoff, tracing ESST phase
/// transitions (cost at which each new ESST phase was entered).
fn outlier_deep(fname: &str, k: usize, kind: AdversaryKind, cutoff: u64) {
    let uxs = SeededUxs::quadratic();
    let g = family(fname).generate(8, GRAPH_SEED);
    let mut rt = Runtime::new(
        &g,
        behaviors(&g, k, uxs),
        RunConfig::protocol().with_cutoff(cutoff),
    );
    let mut adv = kind.build(ADVERSARY_SEED);
    let mut meetings = Vec::new();
    let mut last: Vec<(Option<rv_protocols::SglPhase>, Option<u64>)> =
        vec![(None, None); rt.agent_count()];
    let start = Instant::now();
    let end = loop {
        if let Some(end) = rt.step(adv.as_mut(), &mut meetings) {
            break end;
        }
        for (i, seen) in last.iter_mut().enumerate() {
            let p = rt.behavior(i).quiescence_progress();
            if (p.phase, p.esst_phase) != *seen {
                println!(
                    "  cost={} a{i}: {:?} esst={:?} -> {:?} esst={:?}",
                    rt.total_traversals(),
                    seen.0,
                    seen.1,
                    p.phase,
                    p.esst_phase
                );
                *seen = (p.phase, p.esst_phase);
            }
        }
    };
    println!(
        "END {end:?} cost={} actions={} wall={:?}",
        rt.total_traversals(),
        rt.actions(),
        start.elapsed()
    );
}

/// Runs one cell with certification disabled under the adaptive stall
/// detector — the ablation measurement: does the conjunctive detector
/// (silence window AND structural mid-edge hold) still classify the cell,
/// or does it burn the budget to `Cutoff`?
fn nocert(fname: &str, n: usize, k: usize, kind: AdversaryKind, cutoff: u64) {
    let uxs = SeededUxs::quadratic();
    let g = family(fname).generate(n, GRAPH_SEED);
    let config = SglConfig {
        suspension: None,
        ..SglConfig::default()
    };
    let behaviors: Vec<_> = SGL_LABELS[..k]
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                &g,
                uxs,
                NodeId(i * g.order() / k),
                Label::new(l).unwrap(),
                l + 1000,
                config,
            )
        })
        .collect();
    let mut rt = Runtime::new(&g, behaviors, RunConfig::protocol().with_cutoff(cutoff));
    let mut adv = kind.build(ADVERSARY_SEED);
    let mut policy = rv_sim::AdaptiveThreshold::default();
    let start = Instant::now();
    let out = rt.run_with_policy(adv.as_mut(), &mut policy);
    let suspect = policy
        .suspension()
        .map(|s| format!("a{} held {}", s.agent, s.held_actions))
        .unwrap_or_else(|| "none".into());
    println!(
        "{fname}{n}/{kind}/sgl-k{k}+nocert: end={:?} cost={} actions={} suspect={suspect} wall={:?}",
        out.end,
        out.total_traversals,
        out.actions,
        start.elapsed()
    );
}

/// Samples each agent's *scheduler* position (at-node / inside-edge,
/// pending move, hold length) at fixed action intervals — locates the
/// token ghost during a pinned phase, i.e. whether the adversary parks it
/// at a node with an unscheduled `Start` or suspends it mid-crossing.
fn places(fname: &str, n: usize, k: usize, kind: AdversaryKind, cutoff: u64) {
    let uxs = SeededUxs::quadratic();
    let g = family(fname).generate(n, GRAPH_SEED);
    let mut rt = Runtime::new(
        &g,
        behaviors(&g, k, uxs),
        RunConfig::protocol().with_cutoff(cutoff),
    );
    let mut adv = kind.build(ADVERSARY_SEED);
    let mut meetings = Vec::new();
    let mut next = 0u64;
    println!("=== {fname}{n}/{kind}/sgl-k{k} places ===");
    let end = loop {
        if let Some(end) = rt.step(adv.as_mut(), &mut meetings) {
            break end;
        }
        if rt.actions() >= next {
            next = (next * 2).max(4096);
            let p = rt.progress();
            let summary: Vec<String> = (0..rt.agent_count())
                .map(|i| format!("a{i}@{:?}", rt.place(i)))
                .collect();
            println!(
                "  actions={} cost={} hold={}@a{} {}",
                rt.actions(),
                rt.total_traversals(),
                p.longest_hold_actions,
                p.longest_hold_agent,
                summary.join(" ")
            );
        }
    };
    println!(
        "END {end:?} cost={} actions={}",
        rt.total_traversals(),
        rt.actions()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("outliers") => {
            trace_outlier("tree", 3, AdversaryKind::LazySecond);
            trace_outlier("tree", 3, AdversaryKind::GreedyAvoid);
            trace_outlier("gnp", 4, AdversaryKind::GreedyAvoid);
        }
        Some("deep") => {
            let cutoff: u64 = args
                .get(2)
                .and_then(|s| s.parse().ok())
                .unwrap_or(20_000_000);
            outlier_deep("tree", 3, AdversaryKind::LazySecond, cutoff);
        }
        Some("windows") => silent_windows(),
        Some("places") => {
            let n: usize = args[3].parse().unwrap();
            let k: usize = args[4].parse().unwrap();
            let cutoff: u64 = args
                .get(6)
                .and_then(|s| s.parse().ok())
                .unwrap_or(2_500_000);
            places(&args[2], n, k, adversary(&args[5]), cutoff);
        }
        Some("nocert") => {
            let n: usize = args[3].parse().unwrap();
            let k: usize = args[4].parse().unwrap();
            let cutoff: u64 = args
                .get(6)
                .and_then(|s| s.parse().ok())
                .unwrap_or(2_500_000);
            nocert(&args[2], n, k, adversary(&args[5]), cutoff);
        }
        Some("large") => {
            let n: usize = args[3].parse().unwrap();
            let k: usize = args[4].parse().unwrap();
            large(&args[2], n, k, adversary(&args[5]));
        }
        _ => panic!("usage: probe_sgl_stall outliers|windows|large <n> <k> <adversary>"),
    }
}
