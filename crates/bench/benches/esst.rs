//! Criterion bench for experiment **F3**: procedure ESST end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rv_explore::esst::{run_esst, StaticNodeToken};
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};

fn bench_esst(c: &mut Criterion) {
    let uxs = SeededUxs::quadratic();
    let mut group = c.benchmark_group("f3_esst");
    group.sample_size(10);
    for (fam, n) in [(GraphFamily::Ring, 6usize), (GraphFamily::RandomTree, 8)] {
        let g = fam.generate(n, 11);
        group.bench_with_input(BenchmarkId::new(fam.to_string(), n), &g, |b, g| {
            b.iter(|| {
                let mut token = StaticNodeToken {
                    node: NodeId(g.order() - 1),
                };
                let out = run_esst(g, uxs, NodeId(0), &mut token, 9 * g.order() as u64 + 3)
                    .expect("terminates");
                assert_eq!(out.edges_covered, g.size());
                std::hint::black_box(out.cost)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_esst);
criterion_main!(benches);
