//! Criterion bench for experiment **F4**: Algorithm SGL end to end
//! (team size, leader election, renaming, gossiping in one run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{generators, NodeId};
use rv_protocols::{SglBehavior, SglConfig};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, Runtime};

fn bench_sgl(c: &mut Criterion) {
    let uxs = SeededUxs::quadratic();
    let mut group = c.benchmark_group("f4_sgl");
    group.sample_size(10);
    for k in [2usize, 3] {
        let g = generators::ring(6);
        group.bench_with_input(BenchmarkId::new("ring6", k), &k, |b, &k| {
            b.iter(|| {
                let agents: Vec<_> = (0..k)
                    .map(|i| {
                        SglBehavior::new(
                            &g,
                            uxs,
                            NodeId(i * 6 / k),
                            Label::new(5 + 3 * i as u64).unwrap(),
                            i as u64,
                            SglConfig::default(),
                        )
                    })
                    .collect();
                let mut rt =
                    Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(40_000_000));
                let mut adv = AdversaryKind::Random.build(2);
                let out = rt.run(adv.as_mut());
                assert_eq!(out.end, RunEnd::AllParked);
                std::hint::black_box(out.total_traversals)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sgl);
criterion_main!(benches);
