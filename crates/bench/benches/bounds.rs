//! Criterion bench for experiment **T2**: exact evaluation of the
//! worst-case bound Π(n, m) of Theorem 3.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rv_core::pi_bound;
use rv_explore::SeededUxs;

fn bench_pi(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_pi_bound");
    group.sample_size(10);
    for (n, m) in [(8u64, 4u64), (32, 8), (64, 16)] {
        group.bench_with_input(
            BenchmarkId::new("pi", format!("n{n}_m{m}")),
            &(n, m),
            |b, &(n, m)| {
                b.iter(|| std::hint::black_box(pi_bound(SeededUxs::default(), n, m)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pi);
criterion_main!(benches);
