//! Criterion bench for experiment **T1**: exact bignum evaluation of the
//! trajectory length recurrences (the analytic half of the reproduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rv_explore::SeededUxs;
use rv_trajectory::Lengths;

fn bench_lengths(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_lengths");
    group.sample_size(20);
    for k in [4u64, 12, 24] {
        group.bench_with_input(BenchmarkId::new("omega", k), &k, |b, &k| {
            b.iter(|| {
                // Fresh evaluator per iteration: measures the full
                // recurrence cascade, not the memo hit.
                let l = Lengths::new(SeededUxs::default());
                std::hint::black_box(l.omega(k))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lengths);
criterion_main!(benches);
