//! Criterion bench for experiment **F1**: end-to-end rendezvous runs
//! (simulator + algorithm + cursor), per graph family and adversary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, Runtime, RvBehavior};

fn bench_rendezvous(c: &mut Criterion) {
    let uxs = SeededUxs::quadratic();
    let mut group = c.benchmark_group("f1_rendezvous");
    group.sample_size(20);
    for fam in [GraphFamily::Ring, GraphFamily::Gnp, GraphFamily::Lollipop] {
        for kind in [AdversaryKind::GreedyAvoid, AdversaryKind::LazySecond] {
            let g = fam.generate(12, 5);
            group.bench_with_input(
                BenchmarkId::new(fam.to_string(), kind.to_string()),
                &g,
                |b, g| {
                    b.iter(|| {
                        let agents = vec![
                            RvBehavior::new(g, uxs, NodeId(0), Label::new(6).unwrap()),
                            RvBehavior::new(g, uxs, NodeId(g.order() / 2), Label::new(9).unwrap()),
                        ];
                        let mut rt = Runtime::new(g, agents, RunConfig::rendezvous());
                        let mut adv = kind.build(3);
                        let out = rt.run(adv.as_mut());
                        assert_eq!(out.end, RunEnd::Meeting);
                        std::hint::black_box(out.total_traversals)
                    });
                },
            );
        }
    }
    group.finish();
}

/// Raw cursor throughput: traversals/second streaming a deep trajectory —
/// the simulator's inner-loop cost.
fn bench_cursor_throughput(c: &mut Criterion) {
    use rv_trajectory::{Spec, TrajectoryCursor};
    let g = GraphFamily::Gnp.generate(16, 9);
    let uxs = SeededUxs::quadratic();
    c.bench_function("cursor_100k_steps_of_B", |b| {
        b.iter(|| {
            let mut cur = TrajectoryCursor::new(&g, uxs, NodeId(0));
            cur.push(Spec::B(8));
            for _ in 0..100_000 {
                std::hint::black_box(cur.next_traversal());
            }
        });
    });
}

criterion_group!(benches, bench_rendezvous, bench_cursor_throughput);
criterion_main!(benches);
