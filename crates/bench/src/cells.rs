//! The declarative cell table behind `scenario_matrix` — **specs as pure
//! values**, separated from the runner that measures them.
//!
//! Every cell of the scenario matrix is a [`CellSpec`]: mode, graph
//! family, order, adversary, team size / algorithm variant / search
//! horizon, stop policy, seeds, and (for the chaos tier) a seeded fault
//! plan. The 454-row table is nothing but `cells()` — data produced by
//! iterating the sub-table axes — so consumers (the matrix runner, the
//! `--check` gate, the content-addressed store, tests) share one source
//! of truth instead of each re-deriving the cartesian product.
//!
//! A spec also knows its **canonical serialisation**
//! ([`CellSpec::canonical`]): a versioned, line-oriented rendering of
//! every knob that influences the measured result — including the run
//! configuration (trials, cutoff) and the fully-derived fault plan, not
//! just the seed that named it. [`CellSpec::content_key`] hashes that
//! rendering with [`rv_store::content_hash`], and the pair
//! `(content_key, rv_store::ENGINE_FINGERPRINT)` addresses the cell's
//! stored result: change *what* a cell asks and its key moves; change
//! *how the engine computes* and the fingerprint moves; change neither
//! and the stored row replays verbatim (see `docs/STORE.md`).
//!
//! Four sub-tables:
//!
//! * **Rendezvous** — family × order (8, 12, 16) × adversary × algorithm
//!   variant (the paper's algorithm plus the three F6 ablations).
//! * **Protocol (SGL)** — family × order (5, 6, 8) × adversary × team
//!   size k ∈ {2, 3, 4}, plus the ring large-order cells (12, 16) and
//!   one certificate-ablation cell (`+nocert`).
//! * **Chaos (seeded faults)** — SGL cells re-run under
//!   [`FaultPlan::seeded`] crash-stop plans: {ring, gnp} × order 6 ×
//!   {round-robin, greedy-avoid} × k = 3 × fault seed ∈ {1, 2, 3}. The
//!   derived plan participates in the cell's content key, so two seeds
//!   are two cells.
//! * **Minimax** — the memoized symmetry-quotiented worst-case searches.

use rv_core::RvVariant;
use rv_graph::GraphFamily;
use rv_sim::adversary::AdversaryKind;
use rv_sim::{FaultPlan, FaultProfile};

/// Graph families swept, with their scenario-id stem.
pub const FAMILIES: [(GraphFamily, &str); 5] = [
    (GraphFamily::Ring, "ring"),
    (GraphFamily::Path, "path"),
    (GraphFamily::RandomTree, "tree"),
    (GraphFamily::Gnp, "gnp"),
    (GraphFamily::Lollipop, "lollipop"),
];

/// Graph orders swept by the rendezvous cells.
pub const SIZES: [usize; 3] = [8, 12, 16];

/// Graph orders swept by the regular protocol (SGL) cells — the range
/// `expt_f4_sgl` sweeps (quiescence cost grows with the ESST order bound
/// cubed).
pub const PROTOCOL_SIZES: [usize; 3] = [5, 6, 8];

/// SGL team sizes swept by the regular protocol cells.
pub const TEAM_SIZES: [usize; 3] = [2, 3, 4];

/// Orders of the large protocol cells (the rendezvous orders, unlocked by
/// the adaptive policy).
pub const LARGE_PROTOCOL_SIZES: [usize; 2] = [12, 16];

/// Team sizes of the large protocol cells.
pub const LARGE_TEAM_SIZES: [usize; 2] = [2, 3];

/// Adversaries swept (a spread from cooperative to strongest-avoiding;
/// seeded strategies use [`ADVERSARY_SEED`]).
pub const ADVERSARIES: [AdversaryKind; 4] = [
    AdversaryKind::RoundRobin,
    AdversaryKind::LazySecond,
    AdversaryKind::GreedyAvoid,
    AdversaryKind::EagerMeet,
];

/// Adversaries of the large protocol cells. `lazy(1)` used to stay out —
/// its adversarially pinned final ESST phase burned tens of millions of
/// traversals — but the suspended-token certificate retires those cells
/// certified-quiescent under a million traversals, so the axis is now
/// the full protocol spread minus none (see `docs/STALL_TRACE.md`).
pub const LARGE_ADVERSARIES: [AdversaryKind; 4] = [
    AdversaryKind::RoundRobin,
    AdversaryKind::LazySecond,
    AdversaryKind::GreedyAvoid,
    AdversaryKind::EagerMeet,
];

/// Families of the chaos (seeded-fault) tier: one sparse canonical family
/// and one seeded irregular one.
pub const CHAOS_FAMILIES: [(GraphFamily, &str); 2] =
    [(GraphFamily::Ring, "ring"), (GraphFamily::Gnp, "gnp")];

/// Graph order of the chaos tier — small enough that a crash-free run
/// quiesces well under the protocol cutoff, so every non-quiescing end is
/// attributable to the injected faults.
pub const CHAOS_ORDER: usize = 6;

/// Adversaries of the chaos tier (one cooperative, one avoiding).
pub const CHAOS_ADVERSARIES: [AdversaryKind; 2] =
    [AdversaryKind::RoundRobin, AdversaryKind::GreedyAvoid];

/// Team size of the chaos tier: k = 3, so one crash-stop fault leaves a
/// two-agent majority alive.
pub const CHAOS_TEAM: usize = 3;

/// Fault seeds of the chaos tier — each names a distinct derived
/// [`FaultPlan`] (and therefore a distinct cell).
pub const CHAOS_FAULT_SEEDS: [u64; 3] = [1, 2, 3];

/// Fixed graph seed (matches the golden suite's instances).
pub const GRAPH_SEED: u64 = 5;
/// Fixed adversary seed for the seeded strategies.
pub const ADVERSARY_SEED: u64 = 3;
/// Rendezvous budget backstop: generous for every converging cell; the
/// divergence detector retires diverging cells ~20× earlier.
pub const CUTOFF: u64 = 100_000;
/// Protocol budget backstop, full mode, regular orders: above every known
/// quiescence cost there, so `Cutoff` rows flag genuine surprises (the
/// known non-quiescers read `Stalled` long before).
pub const PROTOCOL_CUTOFF: u64 = 2_500_000;
/// Protocol budget backstop for the large-order cells. Generous on
/// purpose: ring(16) needed ≈ 17.8M traversals before the suspended-token
/// certificate (every large cell now retires certified-quiescent under
/// a million), and the headroom keeps `Cutoff` rows meaning "genuine
/// surprise" if a certificate regresses.
pub const LARGE_PROTOCOL_CUTOFF: u64 = 50_000_000;
/// Protocol cutoff under `--smoke`: bounds the CI gate's wall-clock (the
/// gate checks schema and coverage; protocol smoke rows all read
/// `end == "Cutoff"` by design and record this cutoff in the row).
pub const PROTOCOL_SMOKE_CUTOFF: u64 = 40_000;
/// Rendezvous agent labels, as in the F1 experiments and the golden suite.
pub const LABELS: (u64, u64) = (6, 9);
/// SGL labels by agent index (protocol cells take the first k).
pub const SGL_LABELS: [u64; 4] = [6, 9, 14, 21];

/// Minimax cells: `(family, stem, order, horizon)` — the memoized
/// symmetry-quotiented worst-case searches (the `perf_baseline` minimax
/// scenarios plus the depth-14 headline). Small instances only: each cell
/// enumerates a full schedule DAG.
pub const MINIMAX_CELLS: [(GraphFamily, &str, usize, usize); 5] = [
    (GraphFamily::Path, "path", 3, 10),
    (GraphFamily::Path, "path", 3, 12),
    (GraphFamily::Ring, "ring", 4, 8),
    (GraphFamily::Ring, "ring", 4, 12),
    (GraphFamily::Ring, "ring", 4, 14),
];

/// Algorithm variants swept: the paper's algorithm plus the three F6
/// ablations (each disables one ingredient §3.1 argues is necessary).
pub fn variants() -> [(&'static str, RvVariant); 4] {
    let paper = RvVariant::default();
    [
        ("paper", paper),
        (
            "single-atoms",
            RvVariant {
                doubled_atoms: false,
                ..paper
            },
        ),
        (
            "unscaled",
            RvVariant {
                scaled_params: false,
                ..paper
            },
        ),
        (
            "raw-label",
            RvVariant {
                modified_label: false,
                ..paper
            },
        ),
    ]
}

/// The fault-plan shape of the chaos tier: exactly one crash-stop fault
/// in the first 2000 actions (well inside every chaos cell's run), no
/// outages, no log losses. Graph-independent on purpose: the profile
/// must not depend on the instance, or the plan would stop being a pure
/// function of `(seed, k)`.
pub fn chaos_fault_profile(k: usize) -> FaultProfile {
    FaultProfile {
        horizon_actions: 2000,
        agents: k,
        edges: 1,
        crashes: 1,
        outages: 0,
        max_outage_actions: 1,
        log_losses: 0,
    }
}

/// What a cell measures (the family × adversary axes are shared).
#[derive(Clone, Copy, Debug)]
pub enum CellKind {
    /// Two agents, stop at the first meeting, divergence detector.
    Rendezvous {
        /// Variant name (the `variant` column).
        vname: &'static str,
        /// Algorithm-variant flags the agents run with.
        variant: RvVariant,
    },
    /// k SGL agents run to quiescence, adaptive stall detector. A
    /// `fault_seed` puts the cell in the chaos tier: the runtime runs
    /// under the [`FaultPlan::seeded`] plan that seed derives.
    Sgl {
        /// Team size.
        k: usize,
        /// Chaos-tier fault seed (`None` = fault-free cell).
        fault_seed: Option<u64>,
        /// Whether the explorer's suspended-token census is armed (the
        /// engine default). `false` only on the ablation cell, which
        /// keeps the certificate-free behavior of a suspension cell
        /// measured in the matrix (scenario id suffix `+nocert`).
        certify: bool,
    },
    /// Memoized worst-case search to an action horizon (no adversary
    /// axis: the search quantifies over all of them).
    Minimax {
        /// Action horizon the search enumerates to.
        depth: usize,
    },
}

/// One declared cell of the scenario matrix — a pure value; running it is
/// the consumer's job.
#[derive(Clone, Copy, Debug)]
pub struct CellSpec {
    /// Graph family of the instance.
    pub family: GraphFamily,
    /// Scenario-id stem of the family.
    pub fname: &'static str,
    /// Graph order requested.
    pub n: usize,
    /// Adversary (unused by minimax cells, which quantify over all;
    /// `RoundRobin` is the placeholder there).
    pub adversary: AdversaryKind,
    /// What the cell measures.
    pub kind: CellKind,
}

impl CellSpec {
    /// The cell's scenario id, `family<n>/adversary/variant` — the
    /// human-readable key of a row (`--only` filters on it; checkpoints
    /// index by it). Chaos cells append `+f<seed>` to the variant; the
    /// certificate ablation cell appends `+nocert`.
    pub fn scenario_id(&self) -> String {
        let (fname, n, adversary) = (self.fname, self.n, self.adversary);
        match self.kind {
            CellKind::Rendezvous { vname, .. } => format!("{fname}{n}/{adversary}/{vname}"),
            CellKind::Sgl {
                k,
                fault_seed,
                certify,
            } => {
                let mut id = format!("{fname}{n}/{adversary}/sgl-k{k}");
                if let Some(seed) = fault_seed {
                    id.push_str(&format!("+f{seed}"));
                }
                if !certify {
                    id.push_str("+nocert");
                }
                id
            }
            CellKind::Minimax { depth } => format!("{fname}{n}/worst-case/memo-d{depth}"),
        }
    }

    /// The `mode` column.
    pub fn mode(&self) -> &'static str {
        match self.kind {
            CellKind::Rendezvous { .. } => "rendezvous",
            CellKind::Sgl { .. } => "protocol",
            CellKind::Minimax { .. } => "minimax",
        }
    }

    /// The `policy` column (the stop policy the consumer must run the
    /// cell under).
    pub fn policy(&self) -> &'static str {
        match self.kind {
            CellKind::Rendezvous { .. } => "divergence",
            CellKind::Sgl { .. } => "adaptive",
            CellKind::Minimax { .. } => "exhaustive",
        }
    }

    /// The `agents` column (2, or the SGL team size).
    pub fn agents(&self) -> usize {
        match self.kind {
            CellKind::Rendezvous { .. } | CellKind::Minimax { .. } => 2,
            CellKind::Sgl { k, .. } => k,
        }
    }

    /// The `adversary` column (minimax cells read `worst-case`: the
    /// search quantifies over every adversary, so the axis value names
    /// the quantifier, not a strategy).
    pub fn adversary_name(&self) -> String {
        match self.kind {
            CellKind::Minimax { .. } => "worst-case".to_string(),
            _ => self.adversary.to_string(),
        }
    }

    /// The `variant` column.
    pub fn variant_name(&self) -> String {
        match self.kind {
            CellKind::Rendezvous { vname, .. } => vname.to_string(),
            CellKind::Sgl { k, .. } => format!("sgl-k{k}"),
            CellKind::Minimax { depth } => format!("memo-d{depth}"),
        }
    }

    /// The `faults` column: `"none"`, or `"seeded:<seed>"` for chaos
    /// cells (the seed names the whole derived plan — see
    /// [`CellSpec::fault_plan`]).
    pub fn fault_label(&self) -> String {
        match self.kind {
            CellKind::Sgl {
                fault_seed: Some(seed),
                ..
            } => format!("seeded:{seed}"),
            _ => "none".to_string(),
        }
    }

    /// Whether the cell's SGL agents arm the suspended-token census
    /// (true everywhere except the `+nocert` ablation cell; vacuously
    /// true off the protocol sub-tables).
    pub fn certify(&self) -> bool {
        !matches!(self.kind, CellKind::Sgl { certify: false, .. })
    }

    /// The fully-derived fault plan of a chaos cell (`None` off the chaos
    /// tier). A pure function of the spec: seed and team size alone.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        match self.kind {
            CellKind::Sgl {
                k,
                fault_seed: Some(seed),
                ..
            } => Some(FaultPlan::seeded(seed, &chaos_fault_profile(k))),
            _ => None,
        }
    }

    /// The traversal budget backstop of the cell (full mode). Minimax
    /// cells have no traversal cutoff; their budget is the action horizon.
    pub fn full_cutoff(&self) -> u64 {
        match self.kind {
            CellKind::Rendezvous { .. } => CUTOFF,
            CellKind::Sgl { .. } if self.n > 8 => LARGE_PROTOCOL_CUTOFF,
            CellKind::Sgl { .. } => PROTOCOL_CUTOFF,
            CellKind::Minimax { depth } => depth as u64,
        }
    }

    /// The cutoff the cell runs under in the given mode (`--smoke` caps
    /// protocol cells; everything else keeps its full budget).
    pub fn cutoff(&self, smoke: bool) -> u64 {
        if smoke && matches!(self.kind, CellKind::Sgl { .. }) {
            PROTOCOL_SMOKE_CUTOFF
        } else {
            self.full_cutoff()
        }
    }

    /// The graph instance the cell runs on. Minimax cells use the raw
    /// generators: `GraphFamily::generate` floors the order at 4, and the
    /// path(3) reference instance sits below it.
    pub fn graph(&self) -> rv_graph::Graph {
        match self.kind {
            CellKind::Minimax { .. } => match self.family {
                GraphFamily::Path => rv_graph::generators::path(self.n),
                _ => rv_graph::generators::ring(self.n),
            },
            _ => self.family.generate(self.n, GRAPH_SEED),
        }
    }

    /// The canonical serialisation of the cell under a run configuration
    /// — the preimage of [`CellSpec::content_key`]. Versioned (`v1`
    /// header), line-oriented, and exhaustive over everything that can
    /// change the measured row short of the engine itself: identity axes,
    /// stop policy, seeds, agent labels, trials, cutoff, variant flags,
    /// and the **derived** fault plan (not just its seed, so a change to
    /// the derivation or profile moves the key honestly).
    pub fn canonical(&self, trials: usize, cutoff: u64) -> String {
        let mut out = String::from("rv-cell-v1\n");
        out.push_str(&format!("scenario={}\n", self.scenario_id()));
        out.push_str(&format!("mode={}\n", self.mode()));
        out.push_str(&format!("policy={}\n", self.policy()));
        out.push_str(&format!("graph_seed={GRAPH_SEED}\n"));
        out.push_str(&format!("adversary_seed={ADVERSARY_SEED}\n"));
        match self.kind {
            CellKind::Rendezvous { variant, .. } => {
                out.push_str(&format!("labels={},{}\n", LABELS.0, LABELS.1));
                out.push_str(&format!(
                    "variant_flags=doubled_atoms:{},scaled_params:{},modified_label:{}\n",
                    variant.doubled_atoms, variant.scaled_params, variant.modified_label
                ));
            }
            CellKind::Sgl { k, certify, .. } => {
                let labels: Vec<String> = SGL_LABELS[..k].iter().map(|l| l.to_string()).collect();
                out.push_str(&format!("labels={}\n", labels.join(",")));
                // The suspension policy is part of what the cell asks:
                // the derived thresholds are spelled out (not just a
                // flag), so retuning the engine default moves the key.
                match if certify {
                    rv_protocols::SglConfig::default().suspension
                } else {
                    None
                } {
                    Some(p) => out.push_str(&format!(
                        "suspension=sightings:{},span:{}\n",
                        p.min_sightings, p.min_span
                    )),
                    None => out.push_str("suspension=none\n"),
                }
            }
            CellKind::Minimax { .. } => {
                out.push_str("labels=1,2\n");
            }
        }
        let faults = match self.fault_plan() {
            Some(plan) => serde_json::to_string(&plan).expect("fault plans serialise"),
            None => "none".to_string(),
        };
        out.push_str(&format!("faults={faults}\n"));
        out.push_str(&format!("trials={trials}\n"));
        out.push_str(&format!("cutoff={cutoff}\n"));
        out
    }

    /// The cell's content key under a run configuration: the
    /// [`rv_store::content_hash`] of [`CellSpec::canonical`]. Together
    /// with [`rv_store::ENGINE_FINGERPRINT`] this addresses the cell's
    /// stored result.
    pub fn content_key(&self, trials: usize, cutoff: u64) -> u64 {
        rv_store::content_hash(self.canonical(trials, cutoff).as_bytes())
    }
}

/// Every declared cell, in emission order: rendezvous and regular
/// protocol cells interleaved per family, then the ring large-order
/// protocol cells, then the chaos tier, then the minimax cells.
pub fn cells() -> Vec<CellSpec> {
    let mut out = Vec::with_capacity(cell_count());
    for (family, fname) in FAMILIES {
        for n in SIZES {
            for adversary in ADVERSARIES {
                for (vname, variant) in variants() {
                    out.push(CellSpec {
                        family,
                        fname,
                        n,
                        adversary,
                        kind: CellKind::Rendezvous { vname, variant },
                    });
                }
            }
        }
        for n in PROTOCOL_SIZES {
            for adversary in ADVERSARIES {
                for k in TEAM_SIZES {
                    out.push(CellSpec {
                        family,
                        fname,
                        n,
                        adversary,
                        kind: CellKind::Sgl {
                            k,
                            fault_seed: None,
                            certify: true,
                        },
                    });
                }
            }
        }
    }
    for n in LARGE_PROTOCOL_SIZES {
        for adversary in LARGE_ADVERSARIES {
            for k in LARGE_TEAM_SIZES {
                out.push(CellSpec {
                    family: GraphFamily::Ring,
                    fname: "ring",
                    n,
                    adversary,
                    kind: CellKind::Sgl {
                        k,
                        fault_seed: None,
                        certify: true,
                    },
                });
            }
        }
    }
    // The certificate ablation cell: one former outlier re-run with the
    // suspended-token census disarmed — the matrix keeps a measured
    // `Stalled` row (and its structural suspension evidence) so the
    // certificate's effect stays visible as a same-table comparison.
    out.push(CellSpec {
        family: GraphFamily::Gnp,
        fname: "gnp",
        n: 8,
        adversary: AdversaryKind::GreedyAvoid,
        kind: CellKind::Sgl {
            k: 4,
            fault_seed: None,
            certify: false,
        },
    });
    for (family, fname) in CHAOS_FAMILIES {
        for adversary in CHAOS_ADVERSARIES {
            for seed in CHAOS_FAULT_SEEDS {
                out.push(CellSpec {
                    family,
                    fname,
                    n: CHAOS_ORDER,
                    adversary,
                    kind: CellKind::Sgl {
                        k: CHAOS_TEAM,
                        fault_seed: Some(seed),
                        certify: true,
                    },
                });
            }
        }
    }
    for (family, fname, n, depth) in MINIMAX_CELLS {
        out.push(CellSpec {
            family,
            fname,
            n,
            adversary: AdversaryKind::RoundRobin,
            kind: CellKind::Minimax { depth },
        });
    }
    out
}

/// Number of cells in the declared matrix (the `+ 1` is the certificate
/// ablation cell).
pub fn cell_count() -> usize {
    let rendezvous = FAMILIES.len() * SIZES.len() * ADVERSARIES.len() * variants().len();
    let protocol = FAMILIES.len() * PROTOCOL_SIZES.len() * ADVERSARIES.len() * TEAM_SIZES.len();
    let large = LARGE_PROTOCOL_SIZES.len() * LARGE_ADVERSARIES.len() * LARGE_TEAM_SIZES.len();
    let chaos = CHAOS_FAMILIES.len() * CHAOS_ADVERSARIES.len() * CHAOS_FAULT_SEEDS.len();
    rendezvous + protocol + large + 1 + chaos + MINIMAX_CELLS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_declared_matrix_has_454_cells_and_unique_scenario_ids() {
        let all = cells();
        assert_eq!(all.len(), cell_count());
        assert_eq!(all.len(), 454, "240 rendezvous + 209 protocol + 5 minimax");
        let mut ids: Vec<String> = all.iter().map(|c| c.scenario_id()).collect();
        let total = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), total, "scenario ids must be unique");
        // The ablation cell is declared exactly once, certificate-free,
        // and distinguishable both by id and by content key.
        let ablations: Vec<&CellSpec> = all.iter().filter(|c| !c.certify()).collect();
        assert_eq!(ablations.len(), 1, "exactly one +nocert ablation cell");
        let ab = ablations[0];
        assert_eq!(ab.scenario_id(), "gnp8/greedy-avoid/sgl-k4+nocert");
        let twin = all
            .iter()
            .find(|c| c.scenario_id() == "gnp8/greedy-avoid/sgl-k4")
            .expect("the certified twin is declared");
        assert_ne!(
            ab.content_key(5, ab.cutoff(false)),
            twin.content_key(5, twin.cutoff(false)),
            "the suspension line must separate the ablation from its twin"
        );
        // The certificate unlocked the large lazy(1) cells: declared now.
        for id in ["ring12/lazy(1)/sgl-k2", "ring16/lazy(1)/sgl-k3"] {
            assert!(
                all.iter().any(|c| c.scenario_id() == id),
                "{id} must be a declared cell"
            );
        }
    }

    #[test]
    fn content_keys_separate_every_cell_and_every_configuration() {
        // Distinct cells must never collide under either run mode — a
        // collision would silently serve one cell's stored row as
        // another's.
        for smoke in [false, true] {
            let mut keys: Vec<u64> = cells()
                .iter()
                .map(|c| c.content_key(if smoke { 1 } else { 5 }, c.cutoff(smoke)))
                .collect();
            let total = keys.len();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), total, "content keys must be unique");
        }
        // And the run configuration is part of the key: smoke rows
        // (1 trial, capped cutoff) must not alias full rows.
        let cell = &cells()[0];
        assert_ne!(
            cell.content_key(1, cell.cutoff(true)),
            cell.content_key(5, cell.cutoff(false)),
            "trials and cutoff participate in the key"
        );
    }

    #[test]
    fn chaos_cells_carry_derived_crash_plans_keyed_by_seed() {
        let chaos: Vec<CellSpec> = cells()
            .into_iter()
            .filter(|c| {
                matches!(
                    c.kind,
                    CellKind::Sgl {
                        fault_seed: Some(_),
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(chaos.len(), 12, "the chaos tier is 2×2×3 cells");
        for cell in &chaos {
            let plan = cell.fault_plan().expect("chaos cells derive a plan");
            assert_eq!(plan.crashes.len(), 1, "exactly one crash-stop fault");
            assert!(plan.outages.is_empty() && plan.log_losses.is_empty());
            assert!(
                plan.crashes[0].at_action <= 2000,
                "the crash lands inside the profile horizon"
            );
            assert!(cell.fault_label().starts_with("seeded:"));
            assert!(cell.scenario_id().contains("+f"));
        }
        // Same axes, different seed → different plan and different key.
        assert_ne!(chaos[0].fault_plan(), chaos[1].fault_plan());
        assert_ne!(
            chaos[0].content_key(5, chaos[0].cutoff(false)),
            chaos[1].content_key(5, chaos[1].cutoff(false))
        );
        // Fault-free cells have no plan and say so in the column.
        let clean = cells()[0];
        assert!(clean.fault_plan().is_none());
        assert_eq!(clean.fault_label(), "none");
    }

    #[test]
    fn canonical_serialisation_is_versioned_and_exhaustive() {
        let cell = &cells()[0];
        let c = cell.canonical(5, cell.cutoff(false));
        assert!(c.starts_with("rv-cell-v1\n"), "the preimage is versioned");
        for field in [
            "scenario=",
            "mode=",
            "policy=",
            "graph_seed=",
            "adversary_seed=",
            "labels=",
            "variant_flags=",
            "faults=",
            "trials=",
            "cutoff=",
        ] {
            assert!(c.contains(field), "canonical form must record {field}");
        }
        // A chaos cell's canonical form embeds the derived plan, not just
        // the seed that named it.
        let chaos = cells()
            .into_iter()
            .find(|c| c.fault_plan().is_some())
            .expect("chaos tier exists");
        assert!(chaos
            .canonical(5, chaos.cutoff(false))
            .contains("\"crashes\":[{\"at_action\":"));
    }
}
