//! **scenario_matrix** — the scenario-diversity bench runner, now
//! incremental end-to-end.
//!
//! Sweeps the declarative cell table of [`rv_bench::cells`] and emits
//! **one JSON row per cell** (JSON-lines, like the `expt_*` binaries).
//! Where `perf_baseline` tracks seven hand-picked hot-path scenarios over
//! time, this runner measures *breadth*: how cost and wall-clock behave
//! across every combination, so PRs can quantify scenario diversity
//! instead of overfitting to the baseline seven. The table itself — four
//! sub-tables sharing the family × adversary axes (rendezvous, protocol,
//! seeded-fault chaos, minimax) — lives in `rv_bench::cells`; this binary
//! is a *consumer*: it runs specs, renders rows, and keeps both fresh.
//!
//! Every cell runs under a **stop policy** (the `policy` column):
//! rendezvous cells under `DivergenceDetector` (piece-number stagnation →
//! `end == "Diverged"`), protocol cells under `AdaptiveThreshold`
//! (progress-tick silence → `end == "Stalled"`), both backstopped by the
//! per-cell traversal budget (`cutoff` column; `end == "Cutoff"` rows
//! stopped at exactly `cutoff`). Chaos-tier cells additionally run under
//! their seeded crash-stop [`rv_sim::FaultPlan`] (the `faults` column;
//! `end == "SurvivorsParked"` / `"AllCrashed"` appear only there).
//! Protocol rows that quiesce fault-free also carry the **post-hoc
//! completeness check** (`complete` column, DESIGN.md §4), and record any
//! **suspended-token certificate** their explorers closed Phase 1 on
//! (`certificate` column; the `+nocert` ablation cell runs with the
//! census disarmed and keeps the certificate-free behavior measured).
//!
//! Usage:
//!
//! ```text
//! scenario_matrix [--smoke] [--trials N] [--out PATH] [--only SUBSTR]
//!                 [--store DIR] [--engine-fp HEX]
//!                 [--checkpoint DIR [--resume]]
//! scenario_matrix --check PATH
//! scenario_matrix --diff A B     (A/B: row files or store directories)
//! ```
//!
//! **Incremental sweeps** (`docs/STORE.md`): `--store DIR` opens the
//! content-addressed result store under `DIR` and makes the sweep
//! incremental — every cell whose key `(content key, engine fingerprint)`
//! is present is served *verbatim* from the store (zero execution), every
//! cold cell is run and appended. Because rows are emitted in the
//! declared [`rv_bench::cells::cells`] order whether served or computed,
//! a fully-warm run writes a byte-identical row file. The engine
//! fingerprint is baked in at build time ([`rv_store::ENGINE_FINGERPRINT`]);
//! `--engine-fp` overrides it (CI uses the override to prove that a
//! fingerprint flip recomputes every cell without rebuilding the engine).
//!
//! **Durable sweeps** (`docs/FAULTS.md`): `--checkpoint DIR` is the same
//! store machinery pointed at a sweep-private directory, plus the legacy
//! observability surface: `DIR/meta.json` (the sweep configuration;
//! `--resume` refuses a mismatch) and `DIR/rows.jsonl` (the finished
//! prefix, rewritten atomically after every computed cell — what the
//! chaos gates poll). `--resume` serves already-stored cells and runs
//! only the missing ones; a SIGKILL at any instant loses at most the
//! cell in flight. `--store` and `--checkpoint` are mutually exclusive.
//!
//! `--smoke` runs 1 trial per cell and caps protocol cells at a smaller
//! cutoff; `--only` restricts the sweep to cells whose scenario id
//! contains the substring. `--check` verifies schema and coverage (CI
//! fails on any malformed or missing row). `--diff A B` compares two row
//! sources cell by cell **schema-aware**: each line is parsed, the
//! wall-clock column (`median_ns_per_run`, the one legitimately
//! nondeterministic field) is dropped *by name*, fields are compared
//! order-insensitively, and any remaining difference exits nonzero. A
//! directory argument is read as a store and materialised in declared
//! order under the invocation's `--smoke`/`--trials`/`--engine-fp`.

// Timing harness: wall-clock here is the product, not a determinism leak.
#![allow(clippy::disallowed_methods)]
use rv_bench::cells::{cells, CellKind, CellSpec, ADVERSARY_SEED, LABELS, SGL_LABELS};
use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::NodeId;
use rv_protocols::{SglBehavior, SglConfig};
use rv_sim::{AdaptiveThreshold, DivergenceDetector, RunConfig, RunEnd, Runtime, RvBehavior};
use rv_store::{Store, StoreKey};
use serde::Serialize;
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One measured cell, serialised as a JSON-lines row.
#[derive(Clone, Debug, Serialize)]
struct Row {
    /// Cell id, `family<n>/adversary/variant` (variant is `sgl-k<k>` for
    /// protocol cells — chaos cells append `+f<seed>` — and `memo-d<depth>`
    /// for minimax cells, whose adversary axis reads `worst-case`).
    scenario: String,
    /// `"rendezvous"` (stop at first meeting), `"protocol"` (run to
    /// quiescence), or `"minimax"` (memoized worst-case search).
    mode: String,
    /// Graph family name.
    family: String,
    /// Graph order requested.
    n: usize,
    /// Adversary name.
    adversary: String,
    /// Algorithm variant name (`sgl-k<k>` for protocol cells).
    variant: String,
    /// Number of agents in the cell (2, or the SGL team size).
    agents: usize,
    /// Stop policy the cell ran under (`divergence`, `adaptive`, or
    /// `exhaustive` for minimax cells; the cutoff backstop is always
    /// armed outside minimax).
    policy: String,
    /// How the run ended (`Meeting`, `AllParked`, `Cutoff`, `Diverged`,
    /// `Stalled`, `SurvivorsParked`, `AllCrashed`, or `Searched` for
    /// minimax cells).
    end: String,
    /// Meeting cost (total traversals at the first forced meeting);
    /// for minimax rows, the worst-case meeting cost over all schedules.
    /// `null` for any other non-`Meeting` end.
    cost: Option<u64>,
    /// Total completed traversals when the run ended — where a `Cutoff`
    /// row stopped (exactly `cutoff`), where a detector row was retired,
    /// or the cost to quiescence for `AllParked` rows. Minimax rows
    /// record the schedules (leaves) the search explored instead.
    traversals: u64,
    /// The traversal budget backstop this cell ran under; for minimax
    /// rows, the action horizon the search enumerates to.
    cutoff: u64,
    /// Adversary actions executed.
    actions: u64,
    /// Post-hoc completeness check for fault-free quiesced protocol rows:
    /// every agent output the complete label/value set and the minimal
    /// agent met every teammate (meeting-log views). `null` for every
    /// other row — including every chaos-tier row, where a crashed agent
    /// makes the postcondition vacuously unreachable.
    complete: Option<bool>,
    /// Fault plan of the cell: `"none"`, or `"seeded:<seed>"` for the
    /// chaos tier (the seed names the whole derived crash-stop plan).
    faults: String,
    /// Suspended-token certificate of a protocol row, when some agent's
    /// ESST closed on one: `"a<i>:phase<p>/s<sightings>/sp<span>"` per
    /// certified agent, comma-joined in agent order. `null` on every
    /// non-protocol row and on protocol rows that ran certificate-free
    /// (never sighted a pinned token long enough, or `+nocert`).
    certificate: Option<String>,
    /// Timed trials.
    trials: usize,
    /// Transposition-table hits of the memoized search; `null` off the
    /// minimax rows. Sequential (one-worker) counts, so the column is
    /// deterministic and survives the `--diff` chaos gate.
    tt_hits: Option<u64>,
    /// Transposition-table entries published by the memoized search;
    /// `null` off the minimax rows.
    tt_entries: Option<u64>,
    /// Median wall time per run, nanoseconds. The one nondeterministic
    /// column: `--diff` drops it by name, and a store-served row replays
    /// the timing measured when the cell was actually computed.
    median_ns_per_run: f64,
}

/// The sweep configuration echoed into a checkpoint's `meta.json`:
/// `--resume` refuses to splice rows measured under different settings
/// into one table. (The content keys would miss anyway — trials and
/// cutoff are part of the key — but a loud refusal beats a silent
/// full recompute that masks a typo.)
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
struct CheckpointMeta {
    smoke: bool,
    trials: usize,
    only: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trials = args
        .iter()
        .position(|a| a == "--trials")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| rv_bench::fail("--trials requires a positive integer"))
        })
        .unwrap_or(if smoke { 1 } else { 5 });
    let only = args.iter().position(|a| a == "--only").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| rv_bench::fail("--only requires a substring argument"))
            .clone()
    });
    let engine_fp = args
        .iter()
        .position(|a| a == "--engine-fp")
        .map(|i| {
            let raw = args
                .get(i + 1)
                .unwrap_or_else(|| rv_bench::fail("--engine-fp requires a u64 argument"));
            parse_fp(raw).unwrap_or_else(|| {
                rv_bench::fail(format!(
                    "--engine-fp: {raw:?} is not a u64 (decimal or 0x-hex)"
                ))
            })
        })
        .unwrap_or(rv_store::ENGINE_FINGERPRINT);

    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| rv_bench::fail("--check requires a path argument"));
        check(path);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--diff") {
        let a = args
            .get(i + 1)
            .unwrap_or_else(|| rv_bench::fail("--diff requires two path arguments"));
        let b = args
            .get(i + 2)
            .unwrap_or_else(|| rv_bench::fail("--diff requires two path arguments"));
        diff(a, b, smoke, trials, only.as_deref(), engine_fp);
        return;
    }

    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| rv_bench::fail("--out requires a path argument"))
                .clone()
        })
        .unwrap_or_else(|| "MATRIX_baseline.jsonl".to_string());
    let store_dir = args.iter().position(|a| a == "--store").map(|i| {
        PathBuf::from(
            args.get(i + 1)
                .unwrap_or_else(|| rv_bench::fail("--store requires a directory argument")),
        )
    });
    let checkpoint = args.iter().position(|a| a == "--checkpoint").map(|i| {
        PathBuf::from(
            args.get(i + 1)
                .unwrap_or_else(|| rv_bench::fail("--checkpoint requires a directory argument")),
        )
    });
    let resume = args.iter().any(|a| a == "--resume");
    if resume && checkpoint.is_none() {
        rv_bench::fail("--resume requires --checkpoint DIR");
    }
    if store_dir.is_some() && checkpoint.is_some() {
        rv_bench::fail(
            "--store and --checkpoint are mutually exclusive (a checkpoint *is* a \
             sweep-private store; point --store at a shared directory instead)",
        );
    }

    let meta = CheckpointMeta {
        smoke,
        trials,
        only: only.clone(),
    };
    if let Some(dir) = &checkpoint {
        if resume {
            refuse_meta_mismatch(dir, &meta);
        }
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            rv_bench::fail(format!(
                "cannot create checkpoint directory {}: {e}",
                dir.display()
            ))
        });
        let meta_json = serde_json::to_string(&meta).expect("meta serialises");
        rv_bench::write_atomic(dir.join("meta.json"), format!("{meta_json}\n"))
            .unwrap_or_else(|e| rv_bench::fail(format!("cannot write checkpoint meta: {e}")));
    }

    // The store: shared (`--store`) or sweep-private (`--checkpoint`).
    // Warm serving is unconditional for a shared store; a checkpoint
    // serves only under `--resume` (a fresh checkpointed run recomputes,
    // exactly as the durable sweeps always did).
    let serve_warm = store_dir.is_some() || resume;
    let mut store = store_dir.as_ref().or(checkpoint.as_ref()).map(|dir| {
        let s = Store::open(dir).unwrap_or_else(|e| {
            rv_bench::fail(format!("cannot open store {}: {e}", dir.display()))
        });
        let report = s.open_report();
        if report.truncated_bytes > 0 {
            eprintln!(
                "note: store {}: dropped {} torn trailing byte(s); the affected cell(s) \
                     will be recomputed",
                dir.display(),
                report.truncated_bytes
            );
        }
        s
    });

    let mut lines = String::new();
    let mut rows = 0usize;
    let mut hits = 0usize;
    let mut executed = 0usize;
    for spec in cells() {
        let scenario = spec.scenario_id();
        if let Some(filter) = &only {
            if !scenario.contains(filter.as_str()) {
                continue;
            }
        }
        let cutoff = spec.cutoff(smoke);
        let key = StoreKey {
            cell: spec.content_key(trials, cutoff),
            engine: engine_fp,
        };
        // A warm cell is served as its stored row *line*, verbatim —
        // re-measuring would only perturb the timing column; everything
        // else is deterministic and must come out identical anyway.
        if serve_warm {
            if let Some(line) = store.as_ref().and_then(|s| s.get(key)) {
                let line = std::str::from_utf8(line).unwrap_or_else(|_| {
                    rv_bench::fail(format!("store row for {scenario} is not UTF-8"))
                });
                lines.push_str(line);
                lines.push('\n');
                rows += 1;
                hits += 1;
                continue;
            }
        }
        let row = run_cell(&spec, trials, cutoff);
        let line = serde_json::to_string(&row).expect("rows serialise");
        lines.push_str(&line);
        lines.push('\n');
        rows += 1;
        executed += 1;
        if let Some(s) = store.as_mut() {
            // Durability before progress: the record is on disk (atomic
            // whole-segment replace) before the sweep moves on, so a
            // SIGKILL between cells loses at most the cell in flight.
            s.append(key, line.as_bytes()).unwrap_or_else(|e| {
                rv_bench::fail(format!("cannot append {scenario} to the store: {e}"))
            });
        }
        if let Some(dir) = &checkpoint {
            // Legacy observability surface: the finished prefix as plain
            // JSON lines, atomically rewritten per cell (the chaos gates
            // poll this file to time their SIGKILL).
            rv_bench::write_atomic(dir.join("rows.jsonl"), &lines).unwrap_or_else(|e| {
                rv_bench::fail(format!("cannot checkpoint rows to {}: {e}", dir.display()))
            });
        }
    }
    rv_bench::write_atomic(&out_path, &lines)
        .unwrap_or_else(|e| rv_bench::fail(format!("cannot write {out_path}: {e}")));
    if store_dir.is_some() {
        println!(
            "wrote {rows} rows ({trials} trials per cell, {hits}/{rows} from store, \
             {executed} executed) to {out_path}"
        );
    } else if resume {
        println!(
            "wrote {rows} rows ({trials} trials per cell, {hits} reused from checkpoint) \
             to {out_path}"
        );
    } else {
        println!("wrote {rows} rows ({trials} trials per cell) to {out_path}");
    }
}

/// Parses an engine fingerprint: decimal, or hex with a `0x` prefix (the
/// store docs print fingerprints in hex).
fn parse_fp(raw: &str) -> Option<u64> {
    match raw.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    }
}

/// `--resume` guard: a checkpoint written under a different configuration
/// is refused, not silently spliced. A missing checkpoint is an empty one
/// (the sweep simply starts over).
fn refuse_meta_mismatch(dir: &Path, meta: &CheckpointMeta) {
    let meta_path = dir.join("meta.json");
    let text = match std::fs::read_to_string(&meta_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return,
        Err(e) => rv_bench::fail(format!("cannot read {}: {e}", meta_path.display())),
    };
    let v = serde_json::from_str(&text).unwrap_or_else(|e| {
        rv_bench::fail(format!("{} is not valid JSON: {e}", meta_path.display()))
    });
    let found = CheckpointMeta {
        smoke: v.get("smoke").and_then(|x| x.as_bool()).unwrap_or_else(|| {
            rv_bench::fail(format!("{} has no smoke flag", meta_path.display()))
        }),
        trials: v.get("trials").and_then(|x| x.as_u64()).unwrap_or_else(|| {
            rv_bench::fail(format!("{} has no trial count", meta_path.display()))
        }) as usize,
        only: v.get("only").filter(|x| !x.is_null()).map(|x| {
            x.as_str()
                .unwrap_or_else(|| {
                    rv_bench::fail(format!(
                        "{} only-filter must be a string",
                        meta_path.display()
                    ))
                })
                .to_string()
        }),
    };
    if &found != meta {
        rv_bench::fail(format!(
            "checkpoint {} was written by a different configuration \
             ({found:?}, this run is {meta:?}); refusing to splice",
            dir.display()
        ));
    }
}

/// Loads one `--diff` source as raw row lines: a file is read as JSON
/// lines; a directory is opened as a store and materialised in declared
/// cell order under this invocation's configuration (`--smoke`,
/// `--trials`, `--only`, `--engine-fp`), failing loudly on any missing
/// cell — a half-populated store must not diff clean.
fn load_rows(
    src: &str,
    smoke: bool,
    trials: usize,
    only: Option<&str>,
    engine_fp: u64,
) -> Vec<String> {
    if !Path::new(src).is_dir() {
        let text = std::fs::read_to_string(src)
            .unwrap_or_else(|e| rv_bench::fail(format!("cannot read {src}: {e}")));
        return text.lines().map(str::to_string).collect();
    }
    let store = Store::open(src)
        .unwrap_or_else(|e| rv_bench::fail(format!("cannot open store {src}: {e}")));
    let mut out = Vec::new();
    for spec in cells() {
        let scenario = spec.scenario_id();
        if let Some(filter) = only {
            if !scenario.contains(filter) {
                continue;
            }
        }
        let cutoff = spec.cutoff(smoke);
        let key = StoreKey {
            cell: spec.content_key(trials, cutoff),
            engine: engine_fp,
        };
        let line = store.get(key).unwrap_or_else(|| {
            rv_bench::fail(format!(
                "store {src} has no row for {scenario} under this configuration \
                 (smoke={smoke}, trials={trials}, engine_fp={engine_fp:#018x})"
            ))
        });
        out.push(
            std::str::from_utf8(line)
                .unwrap_or_else(|_| {
                    rv_bench::fail(format!("store row for {scenario} is not UTF-8"))
                })
                .to_string(),
        );
    }
    out
}

/// The schema-aware comparable form of a row line: parsed, the wall-clock
/// column dropped **by field name**, and the remaining fields sorted by
/// key — so the comparison survives both a trailing-position move of the
/// timing column and any field reordering (the old suffix-strip broke on
/// either).
fn comparable(line: &str, src: &str, lineno: usize) -> Value {
    let v = serde_json::from_str(line)
        .unwrap_or_else(|e| rv_bench::fail(format!("{src}:{} is not valid JSON: {e}", lineno + 1)));
    match v {
        Value::Object(mut fields) => {
            fields.retain(|(k, _)| k != "median_ns_per_run");
            fields.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(fields)
        }
        other => other,
    }
}

/// `--diff A B`: compares two row sources cell by cell, ignoring only the
/// wall-clock column. This is the chaos-recovery *and* store-identity
/// gate: a resumed sweep — or a fully store-served one — must reproduce
/// the reference table exactly, timing aside.
fn diff(a: &str, b: &str, smoke: bool, trials: usize, only: Option<&str>, engine_fp: u64) {
    let la = load_rows(a, smoke, trials, only, engine_fp);
    let lb = load_rows(b, smoke, trials, only, engine_fp);
    let mut differences = 0usize;
    if la.len() != lb.len() {
        eprintln!("{a} has {} rows, {b} has {}", la.len(), lb.len());
        differences += 1;
    }
    for (i, (ra, rb)) in la.iter().zip(lb.iter()).enumerate() {
        if comparable(ra, a, i) != comparable(rb, b, i) {
            eprintln!("row {} differs:\n  {a}: {ra}\n  {b}: {rb}", i + 1);
            differences += 1;
        }
    }
    if differences > 0 {
        rv_bench::fail(format!(
            "{a} and {b} differ in {differences} place(s) beyond timing"
        ));
    }
    println!("{a} and {b}: identical up to timing — {} rows", la.len());
}

/// Outcome of one cell run: the pieces of [`Row`] that depend on the run.
struct CellOutcome {
    end: String,
    cost: Option<u64>,
    traversals: u64,
    actions: u64,
    complete: Option<bool>,
    /// `(tt_hits, tt_entries)` of a minimax cell's memoized search.
    tt: Option<(u64, u64)>,
    /// Rendered suspended-token certificates (protocol cells only).
    certificate: Option<String>,
}

/// Runs one cell `trials` times under its stop policy (and, for chaos
/// cells, its seeded fault plan); reports the outcome of the
/// (deterministic) run and the median wall time.
fn run_cell(spec: &CellSpec, trials: usize, cutoff: u64) -> Row {
    let g = spec.graph();
    let uxs = SeededUxs::quadratic();
    let mut outcome: Option<CellOutcome> = None;
    let mut samples = Vec::with_capacity(trials);
    for trial in 0..trials {
        let mut adv = spec.adversary.build(ADVERSARY_SEED);
        let (elapsed, out) = match spec.kind {
            CellKind::Rendezvous { variant, .. } => {
                let agents = vec![
                    RvBehavior::with_variant(
                        &g,
                        uxs,
                        NodeId(0),
                        Label::new(LABELS.0).unwrap(),
                        variant,
                    ),
                    RvBehavior::with_variant(
                        &g,
                        uxs,
                        NodeId(g.order() / 2),
                        Label::new(LABELS.1).unwrap(),
                        variant,
                    ),
                ];
                let config = RunConfig::rendezvous().with_cutoff(cutoff);
                let mut rt = Runtime::new(&g, agents, config);
                let mut policy = DivergenceDetector::default();
                let start = Instant::now();
                let out = rt.run_with_policy(adv.as_mut(), &mut policy);
                let elapsed = start.elapsed();
                (
                    elapsed,
                    CellOutcome {
                        end: format!("{:?}", out.end),
                        cost: (out.end == RunEnd::Meeting).then_some(out.total_traversals),
                        traversals: out.total_traversals,
                        actions: out.actions,
                        complete: None,
                        tt: None,
                        certificate: None,
                    },
                )
            }
            CellKind::Sgl {
                k,
                fault_seed,
                certify,
            } => {
                let sgl_config = SglConfig {
                    suspension: SglConfig::default().suspension.filter(|_| certify),
                    ..SglConfig::default()
                };
                let behaviors: Vec<_> = SGL_LABELS[..k]
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| {
                        SglBehavior::new(
                            &g,
                            uxs,
                            NodeId(i * g.order() / k),
                            Label::new(l).unwrap(),
                            l + 1000,
                            sgl_config,
                        )
                    })
                    .collect();
                let config = RunConfig::protocol().with_cutoff(cutoff);
                let mut rt = Runtime::new(&g, behaviors, config);
                if let Some(plan) = spec.fault_plan() {
                    rt.set_fault_plan(plan);
                }
                let mut policy = AdaptiveThreshold::default();
                let start = Instant::now();
                let out = rt.run_with_policy(adv.as_mut(), &mut policy);
                let elapsed = start.elapsed();
                // Stalled-cell diagnostic: name the starving agent and
                // the structural suspension evidence the verdict rests
                // on, once per cell (the run is deterministic across
                // trials).
                if trial == 0 && out.end == RunEnd::Stalled {
                    if let Some(report) = policy.starvation() {
                        eprintln!(
                            "note: {}: stalled — agent {} gained no traversals for {} actions \
                             (flat minimum {})",
                            spec.scenario_id(),
                            report.agent,
                            report.silent_actions,
                            report.traversals
                        );
                    }
                    if let Some(report) = policy.suspension() {
                        eprintln!(
                            "note: {}: suspension evidence — agent {} held its committed \
                             crossing for {} actions",
                            spec.scenario_id(),
                            report.agent,
                            report.held_actions
                        );
                    }
                }
                // The completeness postcondition only binds fault-free
                // quiescence: a crashed agent can neither output nor be
                // met, so the chaos tier reports `null` by construction.
                let complete = (out.end == RunEnd::AllParked && fault_seed.is_none())
                    .then(|| sgl_complete(&rt, &SGL_LABELS[..k]));
                let certs: Vec<String> = (0..rt.agent_count())
                    .filter_map(|i| {
                        rt.behavior(i)
                            .certificate()
                            .map(|c| format!("a{i}:phase{}/s{}/sp{}", c.phase, c.sightings, c.span))
                    })
                    .collect();
                (
                    elapsed,
                    CellOutcome {
                        end: format!("{:?}", out.end),
                        cost: None,
                        traversals: out.total_traversals,
                        actions: out.actions,
                        complete,
                        tt: None,
                        certificate: (!certs.is_empty()).then(|| certs.join(",")),
                    },
                )
            }
            CellKind::Minimax { depth } => {
                let autos = spec.family.automorphisms(&g);
                let opts = rv_sim::SearchOptions {
                    // One worker: the search result is worker-count-
                    // independent, but the table statistics are only
                    // deterministic sequentially — and the `--diff`
                    // chaos gate compares every non-timing column.
                    workers: Some(1),
                    memo: true,
                    automorphisms: Some(&autos),
                };
                let start = Instant::now();
                let report = rv_sim::search_worst_case(
                    &g,
                    || {
                        vec![
                            RvBehavior::new(&g, uxs, NodeId(0), Label::new(1).unwrap()),
                            RvBehavior::new(&g, uxs, NodeId(2), Label::new(2).unwrap()),
                        ]
                    },
                    depth,
                    &opts,
                );
                let elapsed = start.elapsed();
                let stats = report.memo.expect("memoized search reports table stats");
                (
                    elapsed,
                    CellOutcome {
                        end: "Searched".to_string(),
                        cost: report.worst.max_meeting_cost,
                        traversals: report.worst.schedules_explored,
                        actions: depth as u64,
                        complete: None,
                        tt: Some((stats.hits, stats.entries)),
                        certificate: None,
                    },
                )
            }
        };
        samples.push(elapsed.as_nanos() as f64);
        outcome = Some(out);
    }
    let out = outcome.expect("trials > 0");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    Row {
        scenario: spec.scenario_id(),
        mode: spec.mode().to_string(),
        family: spec.fname.to_string(),
        n: spec.n,
        adversary: spec.adversary_name(),
        variant: spec.variant_name(),
        agents: spec.agents(),
        policy: spec.policy().to_string(),
        end: out.end,
        cost: out.cost,
        traversals: out.traversals,
        cutoff,
        actions: out.actions,
        complete: out.complete,
        faults: spec.fault_label(),
        certificate: out.certificate,
        trials,
        tt_hits: out.tt.map(|t| t.0),
        tt_entries: out.tt.map(|t| t.1),
        median_ns_per_run: samples[samples.len() / 2],
    }
}

/// The post-hoc completeness check on a quiesced SGL runtime — the
/// shared [`rv_bench::sgl_postcondition_violations`] core (also behind
/// `expt_f4_sgl`'s verdicts) with this matrix's gossip-value convention.
fn sgl_complete(rt: &Runtime<SglBehavior<SeededUxs>>, labels: &[u64]) -> bool {
    rv_bench::sgl_postcondition_violations(rt, labels, |l| l + 1000).is_empty()
}

/// `--check`: the CI gate. Every line must parse as a JSON object with the
/// expected fields and sane values, and the file must cover exactly the
/// declared matrix (no missing, duplicate, or foreign rows).
fn check(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| rv_bench::fail(format!("cannot read matrix file {path}: {e}")));
    let expected: Vec<String> = cells().iter().map(|c| c.scenario_id()).collect();
    let mut seen: Vec<String> = Vec::new();
    let mut protocol_rows = 0usize;
    let mut minimax_rows = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let row = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("{path}:{} is not valid JSON: {e}", lineno + 1));
        let field = |key: &str| {
            row.get(key)
                .unwrap_or_else(|| panic!("{path}:{} is missing field {key}", lineno + 1))
                .clone()
        };
        let scenario = field("scenario")
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} scenario must be a string", lineno + 1))
            .to_string();
        assert!(
            expected.contains(&scenario),
            "{path}:{} row {scenario} is not a declared matrix cell",
            lineno + 1
        );
        assert!(
            !seen.contains(&scenario),
            "{path}:{} duplicate row {scenario}",
            lineno + 1
        );
        let mode = field("mode");
        let mode = mode
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} mode must be a string", lineno + 1));
        assert!(
            ["rendezvous", "protocol", "minimax"].contains(&mode),
            "{path}:{} unknown mode {mode:?}",
            lineno + 1
        );
        if mode == "protocol" {
            protocol_rows += 1;
        }
        if mode == "minimax" {
            minimax_rows += 1;
        }
        let policy = field("policy");
        let policy = policy
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} policy must be a string", lineno + 1));
        assert_eq!(
            policy,
            match mode {
                "protocol" => "adaptive",
                "minimax" => "exhaustive",
                _ => "divergence",
            },
            "{path}:{} wrong policy for mode {mode}",
            lineno + 1
        );
        // The faults column: `"none"`, or a seeded descriptor that must
        // agree with the scenario id's `+f<seed>` suffix — and only
        // protocol cells carry fault plans.
        let faults = field("faults");
        let faults = faults
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} faults must be a string", lineno + 1));
        if let Some(seed) = faults.strip_prefix("seeded:") {
            assert_eq!(
                mode,
                "protocol",
                "{path}:{} only protocol cells run the chaos tier",
                lineno + 1
            );
            assert!(
                scenario.ends_with(&format!("+f{seed}")),
                "{path}:{} faults {faults:?} does not match the scenario id",
                lineno + 1
            );
        } else {
            assert_eq!(
                faults,
                "none",
                "{path}:{} unknown faults descriptor {faults:?}",
                lineno + 1
            );
            assert!(
                !scenario.contains("+f"),
                "{path}:{} a chaos cell must declare its fault seed",
                lineno + 1
            );
        }
        let faulted = faults != "none";
        // The certificate column: a string on protocol rows where some
        // agent's ESST closed on a suspended-token certificate, `null`
        // everywhere else — and structurally impossible on the `+nocert`
        // ablation row, which runs with the census disarmed.
        let certificate = field("certificate");
        assert!(
            certificate.is_null() || certificate.as_str().is_some(),
            "{path}:{} certificate must be a string or null",
            lineno + 1
        );
        assert!(
            mode == "protocol" || certificate.is_null(),
            "{path}:{} only protocol cells can certify a suspended token",
            lineno + 1
        );
        if let Some(cert) = certificate.as_str() {
            assert!(
                cert.split(',').all(|c| {
                    c.starts_with('a')
                        && c.contains(":phase")
                        && c.contains("/s")
                        && c.contains("/sp")
                }),
                "{path}:{} malformed certificate descriptor {cert:?}",
                lineno + 1
            );
        }
        assert!(
            !scenario.ends_with("+nocert") || certificate.is_null(),
            "{path}:{} the ablation row runs certificate-free",
            lineno + 1
        );
        let end = field("end");
        let end = end
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} end must be a string", lineno + 1));
        assert!(
            [
                "Meeting",
                "AllParked",
                "Cutoff",
                "Diverged",
                "Stalled",
                "SurvivorsParked",
                "AllCrashed",
                "Searched"
            ]
            .contains(&end),
            "{path}:{} unknown end {end:?}",
            lineno + 1
        );
        // A minimax cell always finishes its enumeration — and only a
        // minimax cell can report `Searched`.
        assert_eq!(
            mode == "minimax",
            end == "Searched",
            "{path}:{} end Searched rides exactly on minimax rows",
            lineno + 1
        );
        assert!(
            mode != "protocol" || end != "Meeting",
            "{path}:{} protocol cells never stop at a meeting",
            lineno + 1
        );
        // Detector verdicts are mode-specific: piece-number divergence is
        // a rendezvous concept, progress-tick stalls a protocol one — and
        // crash outcomes can only appear where a fault plan was armed.
        assert!(
            mode == "rendezvous" || end != "Diverged",
            "{path}:{} only rendezvous cells can diverge",
            lineno + 1
        );
        assert!(
            mode == "protocol" || end != "Stalled",
            "{path}:{} only protocol cells can stall",
            lineno + 1
        );
        assert!(
            faulted || !["SurvivorsParked", "AllCrashed"].contains(&end),
            "{path}:{} crash ends require an armed fault plan",
            lineno + 1
        );
        let agents = field("agents").as_u64().unwrap_or(0);
        assert!(agents >= 2, "{path}:{} fewer than two agents", lineno + 1);
        // The cutoff column: every row records the budget backstop it ran
        // under and where it actually stopped; `Cutoff` rows stopped
        // exactly there, detector rows strictly before.
        let cutoff = field("cutoff")
            .as_u64()
            .unwrap_or_else(|| panic!("{path}:{} cutoff must be a count", lineno + 1));
        assert!(cutoff > 0, "{path}:{} zero cutoff", lineno + 1);
        let traversals = field("traversals")
            .as_u64()
            .unwrap_or_else(|| panic!("{path}:{} traversals must be a count", lineno + 1));
        // Minimax rows repurpose the column for explored schedules and
        // the cutoff for the action horizon, so the budget relation only
        // binds the run-based modes.
        assert!(
            mode == "minimax" || traversals <= cutoff,
            "{path}:{} ran past its cutoff",
            lineno + 1
        );
        assert!(
            end != "Cutoff" || traversals == cutoff,
            "{path}:{} a Cutoff row must stop exactly at the cutoff",
            lineno + 1
        );
        assert!(
            !["Diverged", "Stalled"].contains(&end) || traversals < cutoff,
            "{path}:{} a detector row must retire strictly under the budget",
            lineno + 1
        );
        let ns = field("median_ns_per_run")
            .as_f64()
            .unwrap_or_else(|| panic!("{path}:{} median_ns_per_run must be numeric", lineno + 1));
        assert!(ns > 0.0, "{path}:{} zero timing for {scenario}", lineno + 1);
        let trials = field("trials").as_u64().unwrap_or(0);
        assert!(trials > 0, "{path}:{} zero trials", lineno + 1);
        let cost = field("cost");
        assert!(
            cost.is_null() || cost.as_u64().is_some(),
            "{path}:{} cost must be a count or null",
            lineno + 1
        );
        assert_eq!(
            cost.is_null(),
            end != "Meeting" && mode != "minimax",
            "{path}:{} cost must be present iff the run met (or the search \
             found a forced worst-case meeting)",
            lineno + 1
        );
        // Table statistics ride exactly on the minimax rows.
        for key in ["tt_hits", "tt_entries"] {
            let v = field(key);
            if mode == "minimax" {
                assert!(
                    v.as_u64().is_some(),
                    "{path}:{} {key} must be a count on minimax rows",
                    lineno + 1
                );
            } else {
                assert!(
                    v.is_null(),
                    "{path}:{} {key} must be null off the minimax rows",
                    lineno + 1
                );
            }
        }
        // The completeness check rides exactly on fault-free quiesced
        // protocol rows — and must pass there (a quiesced-but-incomplete
        // run is a protocol bug, not a budget artifact). Chaos rows are
        // exempt by construction: a crashed agent cannot satisfy it.
        let complete = field("complete");
        if mode == "protocol" && end == "AllParked" && !faulted {
            assert_eq!(
                complete.as_bool(),
                Some(true),
                "{path}:{} quiesced protocol row failed its completeness check",
                lineno + 1
            );
        } else {
            assert!(
                complete.is_null(),
                "{path}:{} complete must be null off the fault-free quiesced \
                 protocol rows",
                lineno + 1
            );
        }
        seen.push(scenario);
    }
    assert_eq!(
        seen.len(),
        expected.len(),
        "{path} covers {} of {} matrix cells",
        seen.len(),
        expected.len()
    );
    println!(
        "{path}: OK — {} rows ({} protocol, {} minimax), all cells covered",
        seen.len(),
        protocol_rows,
        minimax_rows
    );
}
