//! **scenario_matrix** — the scenario-diversity bench runner.
//!
//! Sweeps the cartesian product of a declarative table and emits **one
//! JSON row per cell** (JSON-lines, like the `expt_*` binaries). Where
//! `perf_baseline` tracks six hand-picked hot-path scenarios over time,
//! this runner measures *breadth*: how cost and wall-clock behave across
//! every combination, so future PRs can quantify scenario diversity
//! instead of overfitting to the baseline six.
//!
//! Two sub-tables share the family × adversary axes:
//!
//! * **Rendezvous** cells — graph family × order (8, 12, 16) × adversary ×
//!   algorithm variant (the paper's algorithm plus the three F6
//!   ablations), two `RvBehavior` agents, stop at the first meeting.
//! * **Protocol (SGL)** cells — graph family × order (5, 6, 8) × adversary
//!   × team size k ∈ {2, 3, 4}, `SglBehavior` agents run to quiescence
//!   (meetings are exchanges, not terminals). The order axis is the
//!   SGL-affordable range `expt_f4_sgl` sweeps: quiescence cost grows with
//!   the ESST order bound cubed, so the rendezvous orders would cost
//!   seconds-to-minutes *per cell* (see README "Performance").
//!
//! Every row carries a **cutoff column** (`cutoff`, plus `traversals` at
//! the end of the run): a cell whose `end` is `"Cutoff"` was stopped at
//! exactly `cutoff` traversals — distinguishable at a glance from cells
//! that merely ran slowly, and comparable across modes (the known
//! F6-divergence cells are the rendezvous rows with `end == "Cutoff"`).
//!
//! Usage:
//!
//! ```text
//! scenario_matrix [--smoke] [--trials N] [--out PATH]   # run and write rows
//! scenario_matrix --check PATH                          # validate rows
//! ```
//!
//! `--smoke` runs 1 trial per cell and caps protocol cells at a smaller
//! cutoff (the CI gate is a schema/coverage check, not a measurement);
//! the default is 5 trials with the full protocol cutoff. `--check`
//! verifies every line parses as a JSON object with the expected fields
//! and that the file covers exactly the declared matrix — CI fails on any
//! malformed or missing row.

use rv_core::{Label, RvVariant};
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_protocols::{SglBehavior, SglConfig};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, RunOutcome, Runtime, RvBehavior};
use serde::Serialize;
use std::time::Instant;

/// Graph families swept, with their scenario-id stem.
const FAMILIES: [(GraphFamily, &str); 5] = [
    (GraphFamily::Ring, "ring"),
    (GraphFamily::Path, "path"),
    (GraphFamily::RandomTree, "tree"),
    (GraphFamily::Gnp, "gnp"),
    (GraphFamily::Lollipop, "lollipop"),
];

/// Graph orders swept by the rendezvous cells.
const SIZES: [usize; 3] = [8, 12, 16];

/// Graph orders swept by the protocol (SGL) cells — the affordable range
/// (quiescence cost grows with the ESST order bound cubed; these mirror
/// the `expt_f4_sgl` sweep).
const PROTOCOL_SIZES: [usize; 3] = [5, 6, 8];

/// SGL team sizes swept by the protocol cells.
const TEAM_SIZES: [usize; 3] = [2, 3, 4];

/// Adversaries swept (a spread from cooperative to strongest-avoiding;
/// seeded strategies use [`ADVERSARY_SEED`]).
const ADVERSARIES: [AdversaryKind; 4] = [
    AdversaryKind::RoundRobin,
    AdversaryKind::LazySecond,
    AdversaryKind::GreedyAvoid,
    AdversaryKind::EagerMeet,
];

/// Algorithm variants swept: the paper's algorithm plus the three F6
/// ablations (each disables one ingredient §3.1 argues is necessary).
fn variants() -> [(&'static str, RvVariant); 4] {
    let paper = RvVariant::default();
    [
        ("paper", paper),
        (
            "single-atoms",
            RvVariant {
                doubled_atoms: false,
                ..paper
            },
        ),
        (
            "unscaled",
            RvVariant {
                scaled_params: false,
                ..paper
            },
        ),
        (
            "raw-label",
            RvVariant {
                modified_label: false,
                ..paper
            },
        ),
    ]
}

/// Fixed graph seed (matches the golden suite's instances).
const GRAPH_SEED: u64 = 5;
/// Fixed adversary seed for the seeded strategies.
const ADVERSARY_SEED: u64 = 3;
/// Rendezvous cutoff: generous for every converging cell, small enough
/// that diverging ablation cells return quickly.
const CUTOFF: u64 = 100_000;
/// Protocol cutoff, full mode: above every known quiescence cost on the
/// protocol orders, so `Cutoff` rows flag genuine outliers.
const PROTOCOL_CUTOFF: u64 = 2_500_000;
/// Protocol cutoff under `--smoke`: bounds the CI gate's wall-clock (the
/// gate checks schema and coverage; protocol smoke rows all read
/// `end == "Cutoff"` by design and record this cutoff in the row).
const PROTOCOL_SMOKE_CUTOFF: u64 = 40_000;
/// Rendezvous agent labels, as in the F1 experiments and the golden suite.
const LABELS: (u64, u64) = (6, 9);
/// SGL labels by agent index (protocol cells take the first k).
const SGL_LABELS: [u64; 4] = [6, 9, 14, 21];

/// Number of cells in the declared matrix.
pub fn cell_count() -> usize {
    let rendezvous = FAMILIES.len() * SIZES.len() * ADVERSARIES.len() * variants().len();
    let protocol = FAMILIES.len() * PROTOCOL_SIZES.len() * ADVERSARIES.len() * TEAM_SIZES.len();
    rendezvous + protocol
}

/// One measured cell, serialised as a JSON-lines row.
#[derive(Clone, Debug, Serialize)]
struct Row {
    /// Cell id, `family<n>/adversary/variant` (variant is `sgl-k<k>` for
    /// protocol cells).
    scenario: String,
    /// `"rendezvous"` (stop at first meeting) or `"protocol"` (run to
    /// quiescence).
    mode: String,
    /// Graph family name.
    family: String,
    /// Graph order requested.
    n: usize,
    /// Adversary name.
    adversary: String,
    /// Algorithm variant name (`sgl-k<k>` for protocol cells).
    variant: String,
    /// Number of agents in the cell (2, or the SGL team size).
    agents: usize,
    /// How the run ended (`Meeting`, `AllParked`, or `Cutoff`).
    end: String,
    /// Meeting cost (total traversals at the first forced meeting);
    /// `null` for any non-`Meeting` end (`Cutoff` and `AllParked` alike —
    /// protocol cells quiesce instead of meeting, so theirs is always
    /// `null`; their cost to quiescence is `traversals`).
    cost: Option<u64>,
    /// Total completed traversals when the run ended — the cutoff column's
    /// "traversals at cutoff" for `Cutoff` rows, the cost to quiescence
    /// for `AllParked` rows.
    traversals: u64,
    /// The traversal cutoff this cell ran under.
    cutoff: u64,
    /// Adversary actions executed.
    actions: u64,
    /// Timed trials.
    trials: usize,
    /// Median wall time per run, nanoseconds.
    median_ns_per_run: f64,
}

/// The two cell kinds sharing the family × adversary axes.
#[derive(Clone, Copy)]
enum CellKind {
    Rendezvous {
        vname: &'static str,
        variant: RvVariant,
    },
    Sgl {
        k: usize,
    },
}

/// Every declared cell, in emission order.
fn cells() -> Vec<(GraphFamily, &'static str, usize, AdversaryKind, CellKind)> {
    let mut out = Vec::with_capacity(cell_count());
    for (family, fname) in FAMILIES {
        for n in SIZES {
            for adversary in ADVERSARIES {
                for (vname, variant) in variants() {
                    out.push((
                        family,
                        fname,
                        n,
                        adversary,
                        CellKind::Rendezvous { vname, variant },
                    ));
                }
            }
        }
        for n in PROTOCOL_SIZES {
            for adversary in ADVERSARIES {
                for k in TEAM_SIZES {
                    out.push((family, fname, n, adversary, CellKind::Sgl { k }));
                }
            }
        }
    }
    out
}

/// The scenario id of a cell.
fn scenario_id(fname: &str, n: usize, adversary: AdversaryKind, kind: &CellKind) -> String {
    match kind {
        CellKind::Rendezvous { vname, .. } => format!("{fname}{n}/{adversary}/{vname}"),
        CellKind::Sgl { k } => format!("{fname}{n}/{adversary}/sgl-k{k}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--check requires a path argument"));
        check(path);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let trials = args
        .iter()
        .position(|a| a == "--trials")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("--trials requires a positive integer"))
        })
        .unwrap_or(if smoke { 1 } else { 5 });
    assert!(trials > 0, "--trials must be positive");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("--out requires a path argument"))
                .clone()
        })
        .unwrap_or_else(|| "MATRIX_baseline.jsonl".to_string());
    let protocol_cutoff = if smoke {
        PROTOCOL_SMOKE_CUTOFF
    } else {
        PROTOCOL_CUTOFF
    };

    let mut lines = String::new();
    for (family, fname, n, adversary, kind) in cells() {
        let g = family.generate(n, GRAPH_SEED);
        let row = run_cell(&g, fname, n, adversary, &kind, trials, protocol_cutoff);
        lines.push_str(&serde_json::to_string(&row).expect("rows serialise"));
        lines.push('\n');
    }
    std::fs::write(&out_path, &lines).expect("write matrix JSON-lines");
    println!(
        "wrote {} rows ({} trials per cell) to {out_path}",
        cell_count(),
        trials
    );
}

/// Runs one cell `trials` times; reports the outcome of the (deterministic)
/// run and the median wall time.
fn run_cell(
    g: &rv_graph::Graph,
    family: &str,
    n: usize,
    adversary: AdversaryKind,
    kind: &CellKind,
    trials: usize,
    protocol_cutoff: u64,
) -> Row {
    let uxs = SeededUxs::quadratic();
    let (mode, agents, cutoff) = match kind {
        CellKind::Rendezvous { .. } => ("rendezvous", 2, CUTOFF),
        CellKind::Sgl { k } => ("protocol", *k, protocol_cutoff),
    };
    let mut outcome: Option<RunOutcome> = None;
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut adv = adversary.build(ADVERSARY_SEED);
        let (elapsed, out) = match kind {
            CellKind::Rendezvous { variant, .. } => {
                let make = || {
                    vec![
                        RvBehavior::with_variant(
                            g,
                            uxs,
                            NodeId(0),
                            Label::new(LABELS.0).unwrap(),
                            *variant,
                        ),
                        RvBehavior::with_variant(
                            g,
                            uxs,
                            NodeId(g.order() / 2),
                            Label::new(LABELS.1).unwrap(),
                            *variant,
                        ),
                    ]
                };
                let config = RunConfig::rendezvous().with_cutoff(cutoff);
                let mut rt = Runtime::new(g, make(), config);
                let start = Instant::now();
                let out = rt.run(adv.as_mut());
                (start.elapsed(), out)
            }
            CellKind::Sgl { k } => {
                let behaviors: Vec<_> = SGL_LABELS[..*k]
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| {
                        SglBehavior::new(
                            g,
                            uxs,
                            NodeId(i * g.order() / k),
                            Label::new(l).unwrap(),
                            l + 1000,
                            SglConfig::default(),
                        )
                    })
                    .collect();
                let config = RunConfig::protocol().with_cutoff(cutoff);
                let mut rt = Runtime::new(g, behaviors, config);
                let start = Instant::now();
                let out = rt.run(adv.as_mut());
                (start.elapsed(), out)
            }
        };
        samples.push(elapsed.as_nanos() as f64);
        outcome = Some(out);
    }
    let out = outcome.expect("trials > 0");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    Row {
        scenario: scenario_id(family, n, adversary, kind),
        mode: mode.to_string(),
        family: family.to_string(),
        n,
        adversary: adversary.to_string(),
        variant: match kind {
            CellKind::Rendezvous { vname, .. } => vname.to_string(),
            CellKind::Sgl { k } => format!("sgl-k{k}"),
        },
        agents,
        end: format!("{:?}", out.end),
        cost: (out.end == RunEnd::Meeting).then_some(out.total_traversals),
        traversals: out.total_traversals,
        cutoff,
        actions: out.actions,
        trials,
        median_ns_per_run: samples[samples.len() / 2],
    }
}

/// `--check`: the CI gate. Every line must parse as a JSON object with the
/// expected fields and sane values, and the file must cover exactly the
/// declared matrix (no missing, duplicate, or foreign rows).
fn check(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read matrix file {path}: {e}"));
    let mut expected: Vec<String> = Vec::new();
    for (_, fname, n, adversary, kind) in cells() {
        expected.push(scenario_id(fname, n, adversary, &kind));
    }
    let mut seen: Vec<String> = Vec::new();
    let mut protocol_rows = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let row = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("{path}:{} is not valid JSON: {e}", lineno + 1));
        let field = |key: &str| {
            row.get(key)
                .unwrap_or_else(|| panic!("{path}:{} is missing field {key}", lineno + 1))
                .clone()
        };
        let scenario = field("scenario")
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} scenario must be a string", lineno + 1))
            .to_string();
        assert!(
            expected.contains(&scenario),
            "{path}:{} row {scenario} is not a declared matrix cell",
            lineno + 1
        );
        assert!(
            !seen.contains(&scenario),
            "{path}:{} duplicate row {scenario}",
            lineno + 1
        );
        let mode = field("mode");
        let mode = mode
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} mode must be a string", lineno + 1));
        assert!(
            ["rendezvous", "protocol"].contains(&mode),
            "{path}:{} unknown mode {mode:?}",
            lineno + 1
        );
        if mode == "protocol" {
            protocol_rows += 1;
        }
        let end = field("end");
        let end = end
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} end must be a string", lineno + 1));
        assert!(
            ["Meeting", "AllParked", "Cutoff"].contains(&end),
            "{path}:{} unknown end {end:?}",
            lineno + 1
        );
        assert!(
            mode != "protocol" || end != "Meeting",
            "{path}:{} protocol cells never stop at a meeting",
            lineno + 1
        );
        let agents = field("agents").as_u64().unwrap_or(0);
        assert!(agents >= 2, "{path}:{} fewer than two agents", lineno + 1);
        // The cutoff column: every row records the cutoff it ran under and
        // where it actually stopped; `Cutoff` rows stopped exactly there.
        let cutoff = field("cutoff")
            .as_u64()
            .unwrap_or_else(|| panic!("{path}:{} cutoff must be a count", lineno + 1));
        assert!(cutoff > 0, "{path}:{} zero cutoff", lineno + 1);
        let traversals = field("traversals")
            .as_u64()
            .unwrap_or_else(|| panic!("{path}:{} traversals must be a count", lineno + 1));
        assert!(
            traversals <= cutoff,
            "{path}:{} ran past its cutoff",
            lineno + 1
        );
        assert!(
            end != "Cutoff" || traversals == cutoff,
            "{path}:{} a Cutoff row must stop exactly at the cutoff",
            lineno + 1
        );
        let ns = field("median_ns_per_run")
            .as_f64()
            .unwrap_or_else(|| panic!("{path}:{} median_ns_per_run must be numeric", lineno + 1));
        assert!(ns > 0.0, "{path}:{} zero timing for {scenario}", lineno + 1);
        let trials = field("trials").as_u64().unwrap_or(0);
        assert!(trials > 0, "{path}:{} zero trials", lineno + 1);
        let cost = field("cost");
        assert!(
            cost.is_null() || cost.as_u64().is_some(),
            "{path}:{} cost must be a count or null",
            lineno + 1
        );
        assert_eq!(
            cost.is_null(),
            end != "Meeting",
            "{path}:{} cost must be present iff the run met",
            lineno + 1
        );
        seen.push(scenario);
    }
    assert_eq!(
        seen.len(),
        expected.len(),
        "{path} covers {} of {} matrix cells",
        seen.len(),
        expected.len()
    );
    println!(
        "{path}: OK — {} rows ({} protocol), all cells covered",
        seen.len(),
        protocol_rows
    );
}
