//! **scenario_matrix** — the scenario-diversity bench runner.
//!
//! Sweeps the cartesian product of a declarative table — graph family ×
//! graph size × adversary × algorithm variant (the F6 ablations) — running
//! one rendezvous configuration per cell and emitting **one JSON row per
//! cell** (JSON-lines, like the `expt_*` binaries). Where `perf_baseline`
//! tracks four hand-picked hot-path scenarios over time, this runner
//! measures *breadth*: how cost and wall-clock behave across every
//! family/adversary/variant combination, so future PRs can quantify
//! scenario diversity instead of overfitting to the baseline four.
//!
//! Usage:
//!
//! ```text
//! scenario_matrix [--smoke] [--trials N] [--out PATH]   # run and write rows
//! scenario_matrix --check PATH                          # validate rows
//! ```
//!
//! `--smoke` runs 1 trial per cell (the CI gate); the default is 5.
//! `--check` verifies every line parses as a JSON object with the expected
//! fields and that the file covers exactly the declared matrix — CI fails
//! on any malformed or missing row.

use rv_core::{Label, RvVariant};
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, Runtime, RvBehavior};
use serde::Serialize;
use std::time::Instant;

/// Graph families swept, with their scenario-id stem.
const FAMILIES: [(GraphFamily, &str); 5] = [
    (GraphFamily::Ring, "ring"),
    (GraphFamily::Path, "path"),
    (GraphFamily::RandomTree, "tree"),
    (GraphFamily::Gnp, "gnp"),
    (GraphFamily::Lollipop, "lollipop"),
];

/// Graph orders swept.
const SIZES: [usize; 3] = [8, 12, 16];

/// Adversaries swept (a spread from cooperative to strongest-avoiding;
/// seeded strategies use [`ADVERSARY_SEED`]).
const ADVERSARIES: [AdversaryKind; 4] = [
    AdversaryKind::RoundRobin,
    AdversaryKind::LazySecond,
    AdversaryKind::GreedyAvoid,
    AdversaryKind::EagerMeet,
];

/// Algorithm variants swept: the paper's algorithm plus the three F6
/// ablations (each disables one ingredient §3.1 argues is necessary).
fn variants() -> [(&'static str, RvVariant); 4] {
    let paper = RvVariant::default();
    [
        ("paper", paper),
        (
            "single-atoms",
            RvVariant {
                doubled_atoms: false,
                ..paper
            },
        ),
        (
            "unscaled",
            RvVariant {
                scaled_params: false,
                ..paper
            },
        ),
        (
            "raw-label",
            RvVariant {
                modified_label: false,
                ..paper
            },
        ),
    ]
}

/// Fixed graph seed (matches the golden suite's instances).
const GRAPH_SEED: u64 = 5;
/// Fixed adversary seed for the seeded strategies.
const ADVERSARY_SEED: u64 = 3;
/// Total-traversal cutoff: generous for every converging cell, small
/// enough that diverging ablation cells return quickly.
const CUTOFF: u64 = 100_000;
/// Agent labels, as in the F1 experiments and the golden suite.
const LABELS: (u64, u64) = (6, 9);

/// Number of cells in the declared matrix.
pub fn cell_count() -> usize {
    FAMILIES.len() * SIZES.len() * ADVERSARIES.len() * variants().len()
}

/// One measured cell, serialised as a JSON-lines row.
#[derive(Clone, Debug, Serialize)]
struct Row {
    /// Cell id, `family<n>/adversary/variant`.
    scenario: String,
    /// Graph family name.
    family: String,
    /// Graph order requested.
    n: usize,
    /// Adversary name.
    adversary: String,
    /// Algorithm variant name.
    variant: String,
    /// How the run ended (`Meeting`, `AllParked`, or `Cutoff`).
    end: String,
    /// Meeting cost (total traversals at the first forced meeting);
    /// `null` for any non-`Meeting` end (`Cutoff` and `AllParked` alike).
    cost: Option<u64>,
    /// Adversary actions executed.
    actions: u64,
    /// Timed trials.
    trials: usize,
    /// Median wall time per run, nanoseconds.
    median_ns_per_run: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--check requires a path argument"));
        check(path);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let trials = args
        .iter()
        .position(|a| a == "--trials")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("--trials requires a positive integer"))
        })
        .unwrap_or(if smoke { 1 } else { 5 });
    assert!(trials > 0, "--trials must be positive");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("--out requires a path argument"))
                .clone()
        })
        .unwrap_or_else(|| "MATRIX_baseline.jsonl".to_string());

    let mut lines = String::new();
    for (family, fname) in FAMILIES {
        for n in SIZES {
            let g = family.generate(n, GRAPH_SEED);
            for adversary in ADVERSARIES {
                for (vname, variant) in variants() {
                    let row = run_cell(&g, fname, n, adversary, vname, variant, trials);
                    lines.push_str(&serde_json::to_string(&row).expect("rows serialise"));
                    lines.push('\n');
                }
            }
        }
    }
    std::fs::write(&out_path, &lines).expect("write matrix JSON-lines");
    println!(
        "wrote {} rows ({} trials per cell) to {out_path}",
        cell_count(),
        trials
    );
}

/// Runs one cell `trials` times; reports the outcome of the (deterministic)
/// run and the median wall time.
fn run_cell(
    g: &rv_graph::Graph,
    family: &str,
    n: usize,
    adversary: AdversaryKind,
    vname: &str,
    variant: RvVariant,
    trials: usize,
) -> Row {
    let uxs = SeededUxs::quadratic();
    let make = || {
        vec![
            RvBehavior::with_variant(g, uxs, NodeId(0), Label::new(LABELS.0).unwrap(), variant),
            RvBehavior::with_variant(
                g,
                uxs,
                NodeId(g.order() / 2),
                Label::new(LABELS.1).unwrap(),
                variant,
            ),
        ]
    };
    let config = RunConfig::rendezvous().with_cutoff(CUTOFF);
    let mut outcome = None;
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut rt = Runtime::new(g, make(), config);
        let mut adv = adversary.build(ADVERSARY_SEED);
        let start = Instant::now();
        let out = rt.run(adv.as_mut());
        samples.push(start.elapsed().as_nanos() as f64);
        outcome = Some(out);
    }
    let out = outcome.expect("trials > 0");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    Row {
        scenario: format!("{family}{n}/{adversary}/{vname}"),
        family: family.to_string(),
        n,
        adversary: adversary.to_string(),
        variant: vname.to_string(),
        end: format!("{:?}", out.end),
        cost: (out.end == RunEnd::Meeting).then_some(out.total_traversals),
        actions: out.actions,
        trials,
        median_ns_per_run: samples[samples.len() / 2],
    }
}

/// `--check`: the CI gate. Every line must parse as a JSON object with the
/// expected fields and sane values, and the file must cover exactly the
/// declared matrix (no missing, duplicate, or foreign rows).
fn check(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read matrix file {path}: {e}"));
    let mut expected: Vec<String> = Vec::new();
    for (_, fname) in FAMILIES {
        for n in SIZES {
            for adversary in ADVERSARIES {
                for (vname, _) in variants() {
                    expected.push(format!("{fname}{n}/{adversary}/{vname}"));
                }
            }
        }
    }
    let mut seen: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let row = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("{path}:{} is not valid JSON: {e}", lineno + 1));
        let field = |key: &str| {
            row.get(key)
                .unwrap_or_else(|| panic!("{path}:{} is missing field {key}", lineno + 1))
                .clone()
        };
        let scenario = field("scenario")
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} scenario must be a string", lineno + 1))
            .to_string();
        assert!(
            expected.contains(&scenario),
            "{path}:{} row {scenario} is not a declared matrix cell",
            lineno + 1
        );
        assert!(
            !seen.contains(&scenario),
            "{path}:{} duplicate row {scenario}",
            lineno + 1
        );
        let end = field("end");
        let end = end
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} end must be a string", lineno + 1));
        assert!(
            ["Meeting", "AllParked", "Cutoff"].contains(&end),
            "{path}:{} unknown end {end:?}",
            lineno + 1
        );
        let ns = field("median_ns_per_run")
            .as_f64()
            .unwrap_or_else(|| panic!("{path}:{} median_ns_per_run must be numeric", lineno + 1));
        assert!(ns > 0.0, "{path}:{} zero timing for {scenario}", lineno + 1);
        let trials = field("trials").as_u64().unwrap_or(0);
        assert!(trials > 0, "{path}:{} zero trials", lineno + 1);
        let cost = field("cost");
        assert!(
            cost.is_null() || cost.as_u64().is_some(),
            "{path}:{} cost must be a count or null",
            lineno + 1
        );
        assert_eq!(
            cost.is_null(),
            end != "Meeting",
            "{path}:{} cost must be present iff the run met",
            lineno + 1
        );
        seen.push(scenario);
    }
    assert_eq!(
        seen.len(),
        expected.len(),
        "{path} covers {} of {} matrix cells",
        seen.len(),
        expected.len()
    );
    println!("{path}: OK — {} rows, all cells covered", seen.len());
}
