//! **scenario_matrix** — the scenario-diversity bench runner.
//!
//! Sweeps the cartesian product of a declarative table and emits **one
//! JSON row per cell** (JSON-lines, like the `expt_*` binaries). Where
//! `perf_baseline` tracks seven hand-picked hot-path scenarios over time,
//! this runner measures *breadth*: how cost and wall-clock behave across
//! every combination, so future PRs can quantify scenario diversity
//! instead of overfitting to the baseline seven.
//!
//! Three sub-tables share the family × adversary axes:
//!
//! * **Rendezvous** cells — graph family × order (8, 12, 16) × adversary ×
//!   algorithm variant (the paper's algorithm plus the three F6
//!   ablations), two `RvBehavior` agents, stop at the first meeting.
//! * **Protocol (SGL)** cells — graph family × order (5, 6, 8) × adversary
//!   × team size k ∈ {2, 3, 4}, `SglBehavior` agents run to quiescence
//!   (meetings are exchanges, not terminals).
//! * **Protocol large-order** cells — ring × order (12, 16) ×
//!   {round-robin, greedy-avoid, eager-meet} × k ∈ {2, 3}: the rendezvous
//!   orders, affordable **only** under the adaptive stop policy (a flat
//!   budget must choose between starving them and letting stalled cells
//!   burn it; `lazy(1)` is excluded because its adversarially inflated
//!   final ESST phase sits inside the stall detector's margin — see
//!   `docs/STALL_TRACE.md`).
//!
//! Every cell runs under a **stop policy** (the `policy` column):
//! rendezvous cells under `DivergenceDetector` (piece-number stagnation →
//! `end == "Diverged"`), protocol cells under `AdaptiveThreshold`
//! (progress-tick silence → `end == "Stalled"`), both backstopped by the
//! per-cell traversal budget (`cutoff` column; `end == "Cutoff"` rows
//! stopped at exactly `cutoff`). Detectors only change when a
//! non-converging run stops — converging cells report the same outcome
//! they always did, which the golden suite asserts bit for bit.
//!
//! Protocol rows that quiesce also carry the **post-hoc completeness
//! check** (`complete` column): every agent output the full label/value
//! set *and* the minimal agent met every teammate (checked on the meeting
//! log's per-agent views) — the property the completion-threshold
//! substitution must deliver (DESIGN.md §4).
//!
//! Usage:
//!
//! ```text
//! scenario_matrix [--smoke] [--trials N] [--out PATH] [--only SUBSTR]
//!                 [--checkpoint DIR [--resume]]
//! scenario_matrix --check PATH
//! scenario_matrix --diff A B
//! ```
//!
//! `--smoke` runs 1 trial per cell and caps protocol cells at a smaller
//! cutoff (the CI gate is a schema/coverage check, not a measurement);
//! the default is 5 trials with the full protocol cutoffs. `--only`
//! restricts the sweep to cells whose scenario id contains the substring
//! (the CI detector smoke exercises one Diverged cell this way; such
//! partial files fail `--check`'s coverage gate by design). `--check`
//! verifies every line parses as a JSON object with the expected fields
//! and that the file covers exactly the declared matrix — CI fails on any
//! malformed or missing row.
//!
//! **Durable sweeps** (`docs/FAULTS.md`): `--checkpoint DIR` persists the
//! sweep's progress after **every completed cell** — `DIR/rows.jsonl`
//! (all finished rows, in the declared order) and `DIR/meta.json` (the
//! sweep configuration), each written atomically (temp + rename in the
//! same directory), so a SIGKILL at any instant leaves a complete,
//! parseable checkpoint. `--resume` reloads that checkpoint, refuses a
//! configuration mismatch, reuses the stored row *lines verbatim* for
//! every cell already present, and runs only the missing cells — because
//! rows are emitted in the declared [`cells`] order and cells are
//! deterministic, the resumed table is byte-identical to an
//! uninterrupted run. `--diff A B` compares two row files cell by cell
//! ignoring only the wall-clock column (`median_ns_per_run`), the one
//! legitimately nondeterministic field; any other difference exits
//! nonzero. Stalled protocol cells additionally print the starvation
//! census verdict (which agent's traversal minimum went flat, for how
//! long) to stderr as a diagnostic.

// Timing harness: wall-clock here is the product, not a determinism leak.
#![allow(clippy::disallowed_methods)]
use rv_core::{Label, RvVariant};
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_protocols::{SglBehavior, SglConfig};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{AdaptiveThreshold, DivergenceDetector, RunConfig, RunEnd, Runtime, RvBehavior};
use serde::Serialize;
use std::time::Instant;

/// Graph families swept, with their scenario-id stem.
const FAMILIES: [(GraphFamily, &str); 5] = [
    (GraphFamily::Ring, "ring"),
    (GraphFamily::Path, "path"),
    (GraphFamily::RandomTree, "tree"),
    (GraphFamily::Gnp, "gnp"),
    (GraphFamily::Lollipop, "lollipop"),
];

/// Graph orders swept by the rendezvous cells.
const SIZES: [usize; 3] = [8, 12, 16];

/// Graph orders swept by the regular protocol (SGL) cells — the range
/// `expt_f4_sgl` sweeps (quiescence cost grows with the ESST order bound
/// cubed).
const PROTOCOL_SIZES: [usize; 3] = [5, 6, 8];

/// SGL team sizes swept by the regular protocol cells.
const TEAM_SIZES: [usize; 3] = [2, 3, 4];

/// Orders of the large protocol cells (the rendezvous orders, unlocked by
/// the adaptive policy).
const LARGE_PROTOCOL_SIZES: [usize; 2] = [12, 16];

/// Team sizes of the large protocol cells.
const LARGE_TEAM_SIZES: [usize; 2] = [2, 3];

/// Adversaries swept (a spread from cooperative to strongest-avoiding;
/// seeded strategies use [`ADVERSARY_SEED`]).
const ADVERSARIES: [AdversaryKind; 4] = [
    AdversaryKind::RoundRobin,
    AdversaryKind::LazySecond,
    AdversaryKind::GreedyAvoid,
    AdversaryKind::EagerMeet,
];

/// Adversaries of the large protocol cells (see module docs for why
/// `lazy(1)` stays out).
const LARGE_ADVERSARIES: [AdversaryKind; 3] = [
    AdversaryKind::RoundRobin,
    AdversaryKind::GreedyAvoid,
    AdversaryKind::EagerMeet,
];

/// Algorithm variants swept: the paper's algorithm plus the three F6
/// ablations (each disables one ingredient §3.1 argues is necessary).
fn variants() -> [(&'static str, RvVariant); 4] {
    let paper = RvVariant::default();
    [
        ("paper", paper),
        (
            "single-atoms",
            RvVariant {
                doubled_atoms: false,
                ..paper
            },
        ),
        (
            "unscaled",
            RvVariant {
                scaled_params: false,
                ..paper
            },
        ),
        (
            "raw-label",
            RvVariant {
                modified_label: false,
                ..paper
            },
        ),
    ]
}

/// Fixed graph seed (matches the golden suite's instances).
const GRAPH_SEED: u64 = 5;
/// Fixed adversary seed for the seeded strategies.
const ADVERSARY_SEED: u64 = 3;
/// Rendezvous budget backstop: generous for every converging cell; the
/// divergence detector retires diverging cells ~20× earlier.
const CUTOFF: u64 = 100_000;
/// Protocol budget backstop, full mode, regular orders: above every known
/// quiescence cost there, so `Cutoff` rows flag genuine surprises (the
/// known non-quiescers read `Stalled` long before).
const PROTOCOL_CUTOFF: u64 = 2_500_000;
/// Protocol budget backstop for the large-order cells (ring(16) quiesces
/// at ≈ 17.8M traversals).
const LARGE_PROTOCOL_CUTOFF: u64 = 50_000_000;
/// Protocol cutoff under `--smoke`: bounds the CI gate's wall-clock (the
/// gate checks schema and coverage; protocol smoke rows all read
/// `end == "Cutoff"` by design and record this cutoff in the row).
const PROTOCOL_SMOKE_CUTOFF: u64 = 40_000;
/// Rendezvous agent labels, as in the F1 experiments and the golden suite.
const LABELS: (u64, u64) = (6, 9);
/// SGL labels by agent index (protocol cells take the first k).
const SGL_LABELS: [u64; 4] = [6, 9, 14, 21];
/// Minimax cells: `(family, stem, order, horizon)` — the memoized
/// symmetry-quotiented worst-case searches (the `perf_baseline` minimax
/// scenarios plus the depth-14 headline). Small instances only: each cell
/// enumerates a full schedule DAG.
const MINIMAX_CELLS: [(GraphFamily, &str, usize, usize); 5] = [
    (GraphFamily::Path, "path", 3, 10),
    (GraphFamily::Path, "path", 3, 12),
    (GraphFamily::Ring, "ring", 4, 8),
    (GraphFamily::Ring, "ring", 4, 12),
    (GraphFamily::Ring, "ring", 4, 14),
];

/// Number of cells in the declared matrix.
pub fn cell_count() -> usize {
    let rendezvous = FAMILIES.len() * SIZES.len() * ADVERSARIES.len() * variants().len();
    let protocol = FAMILIES.len() * PROTOCOL_SIZES.len() * ADVERSARIES.len() * TEAM_SIZES.len();
    let large = LARGE_PROTOCOL_SIZES.len() * LARGE_ADVERSARIES.len() * LARGE_TEAM_SIZES.len();
    rendezvous + protocol + large + MINIMAX_CELLS.len()
}

/// One measured cell, serialised as a JSON-lines row.
#[derive(Clone, Debug, Serialize)]
struct Row {
    /// Cell id, `family<n>/adversary/variant` (variant is `sgl-k<k>` for
    /// protocol cells, `memo-d<depth>` for minimax cells, whose adversary
    /// axis reads `worst-case`).
    scenario: String,
    /// `"rendezvous"` (stop at first meeting), `"protocol"` (run to
    /// quiescence), or `"minimax"` (memoized worst-case search).
    mode: String,
    /// Graph family name.
    family: String,
    /// Graph order requested.
    n: usize,
    /// Adversary name.
    adversary: String,
    /// Algorithm variant name (`sgl-k<k>` for protocol cells).
    variant: String,
    /// Number of agents in the cell (2, or the SGL team size).
    agents: usize,
    /// Stop policy the cell ran under (`divergence`, `adaptive`, or
    /// `exhaustive` for minimax cells; the cutoff backstop is always
    /// armed outside minimax).
    policy: String,
    /// How the run ended (`Meeting`, `AllParked`, `Cutoff`, `Diverged`,
    /// `Stalled`, or `Searched` for minimax cells).
    end: String,
    /// Meeting cost (total traversals at the first forced meeting);
    /// for minimax rows, the worst-case meeting cost over all schedules.
    /// `null` for any other non-`Meeting` end.
    cost: Option<u64>,
    /// Total completed traversals when the run ended — where a `Cutoff`
    /// row stopped (exactly `cutoff`), where a detector row was retired,
    /// or the cost to quiescence for `AllParked` rows. Minimax rows
    /// record the schedules (leaves) the search explored instead.
    traversals: u64,
    /// The traversal budget backstop this cell ran under; for minimax
    /// rows, the action horizon the search enumerates to.
    cutoff: u64,
    /// Adversary actions executed.
    actions: u64,
    /// Post-hoc completeness check for quiesced protocol rows: every
    /// agent output the complete label/value set and the minimal agent
    /// met every teammate (meeting-log views). `null` for every other
    /// row.
    complete: Option<bool>,
    /// Timed trials.
    trials: usize,
    /// Transposition-table hits of the memoized search; `null` off the
    /// minimax rows. Sequential (one-worker) counts, so the column is
    /// deterministic and survives the `--diff` chaos gate.
    tt_hits: Option<u64>,
    /// Transposition-table entries published by the memoized search;
    /// `null` off the minimax rows.
    tt_entries: Option<u64>,
    /// Median wall time per run, nanoseconds. Kept the last field: the
    /// `--diff` gate strips the rendered suffix from here on.
    median_ns_per_run: f64,
}

/// The cell kinds sharing the family × adversary axes.
#[derive(Clone, Copy)]
enum CellKind {
    Rendezvous {
        vname: &'static str,
        variant: RvVariant,
    },
    Sgl {
        k: usize,
    },
    /// Memoized worst-case search to an action horizon (no adversary
    /// axis: the search quantifies over all of them).
    Minimax {
        depth: usize,
        family: GraphFamily,
    },
}

/// Every declared cell, in emission order.
fn cells() -> Vec<(GraphFamily, &'static str, usize, AdversaryKind, CellKind)> {
    let mut out = Vec::with_capacity(cell_count());
    for (family, fname) in FAMILIES {
        for n in SIZES {
            for adversary in ADVERSARIES {
                for (vname, variant) in variants() {
                    out.push((
                        family,
                        fname,
                        n,
                        adversary,
                        CellKind::Rendezvous { vname, variant },
                    ));
                }
            }
        }
        for n in PROTOCOL_SIZES {
            for adversary in ADVERSARIES {
                for k in TEAM_SIZES {
                    out.push((family, fname, n, adversary, CellKind::Sgl { k }));
                }
            }
        }
    }
    for n in LARGE_PROTOCOL_SIZES {
        for adversary in LARGE_ADVERSARIES {
            for k in LARGE_TEAM_SIZES {
                out.push((GraphFamily::Ring, "ring", n, adversary, CellKind::Sgl { k }));
            }
        }
    }
    for (family, fname, n, depth) in MINIMAX_CELLS {
        // The adversary slot is unused by minimax cells (the search
        // quantifies over every adversary); RoundRobin is a placeholder.
        out.push((
            family,
            fname,
            n,
            AdversaryKind::RoundRobin,
            CellKind::Minimax { depth, family },
        ));
    }
    out
}

/// The scenario id of a cell.
fn scenario_id(fname: &str, n: usize, adversary: AdversaryKind, kind: &CellKind) -> String {
    match kind {
        CellKind::Rendezvous { vname, .. } => format!("{fname}{n}/{adversary}/{vname}"),
        CellKind::Sgl { k } => format!("{fname}{n}/{adversary}/sgl-k{k}"),
        CellKind::Minimax { depth, .. } => format!("{fname}{n}/worst-case/memo-d{depth}"),
    }
}

/// The traversal budget backstop of a cell (full mode). Minimax cells
/// have no traversal cutoff; their budget is the action horizon.
fn full_cutoff(n: usize, kind: &CellKind) -> u64 {
    match kind {
        CellKind::Rendezvous { .. } => CUTOFF,
        CellKind::Sgl { .. } if n > 8 => LARGE_PROTOCOL_CUTOFF,
        CellKind::Sgl { .. } => PROTOCOL_CUTOFF,
        CellKind::Minimax { depth, .. } => *depth as u64,
    }
}

/// The sweep configuration echoed into a checkpoint's `meta.json`:
/// `--resume` refuses to splice rows measured under different settings
/// into one table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
struct CheckpointMeta {
    smoke: bool,
    trials: usize,
    only: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| rv_bench::fail("--check requires a path argument"));
        check(path);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--diff") {
        let a = args
            .get(i + 1)
            .unwrap_or_else(|| rv_bench::fail("--diff requires two path arguments"));
        let b = args
            .get(i + 2)
            .unwrap_or_else(|| rv_bench::fail("--diff requires two path arguments"));
        diff(a, b);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let trials = args
        .iter()
        .position(|a| a == "--trials")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| rv_bench::fail("--trials requires a positive integer"))
        })
        .unwrap_or(if smoke { 1 } else { 5 });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| rv_bench::fail("--out requires a path argument"))
                .clone()
        })
        .unwrap_or_else(|| "MATRIX_baseline.jsonl".to_string());
    let only = args.iter().position(|a| a == "--only").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| rv_bench::fail("--only requires a substring argument"))
            .clone()
    });
    let checkpoint = args.iter().position(|a| a == "--checkpoint").map(|i| {
        std::path::PathBuf::from(
            args.get(i + 1)
                .unwrap_or_else(|| rv_bench::fail("--checkpoint requires a directory argument")),
        )
    });
    let resume = args.iter().any(|a| a == "--resume");
    if resume && checkpoint.is_none() {
        rv_bench::fail("--resume requires --checkpoint DIR");
    }

    let meta = CheckpointMeta {
        smoke,
        trials,
        only: only.clone(),
    };
    let stored = match (&checkpoint, resume) {
        (Some(dir), true) => load_checkpoint(dir, &meta),
        _ => std::collections::BTreeMap::new(),
    };
    if let Some(dir) = &checkpoint {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            rv_bench::fail(format!(
                "cannot create checkpoint directory {}: {e}",
                dir.display()
            ))
        });
        let meta_json = serde_json::to_string(&meta).expect("meta serialises");
        rv_bench::write_atomic(dir.join("meta.json"), &format!("{meta_json}\n"))
            .unwrap_or_else(|e| rv_bench::fail(format!("cannot write checkpoint meta: {e}")));
    }

    let mut lines = String::new();
    let mut rows = 0usize;
    let mut reused = 0usize;
    for (family, fname, n, adversary, kind) in cells() {
        let scenario = scenario_id(fname, n, adversary, &kind);
        if let Some(filter) = &only {
            if !scenario.contains(filter.as_str()) {
                continue;
            }
        }
        // A checkpointed row is reused as its stored *line*, verbatim —
        // re-measuring would only perturb the timing column; everything
        // else is deterministic and must come out identical anyway.
        if let Some(line) = stored.get(&scenario) {
            lines.push_str(line);
            lines.push('\n');
            rows += 1;
            reused += 1;
            continue;
        }
        let cutoff = if smoke && matches!(kind, CellKind::Sgl { .. }) {
            PROTOCOL_SMOKE_CUTOFF
        } else {
            full_cutoff(n, &kind)
        };
        let g = match &kind {
            // Minimax cells use the raw generators: `generate` floors the
            // order at 4, and the path(3) reference instance sits below it.
            CellKind::Minimax { family, .. } => match family {
                GraphFamily::Path => rv_graph::generators::path(n),
                _ => rv_graph::generators::ring(n),
            },
            _ => family.generate(n, GRAPH_SEED),
        };
        let row = run_cell(&g, fname, n, adversary, &kind, trials, cutoff);
        lines.push_str(&serde_json::to_string(&row).expect("rows serialise"));
        lines.push('\n');
        rows += 1;
        if let Some(dir) = &checkpoint {
            // Every completed cell makes the whole prefix durable: the
            // atomic rewrite means a SIGKILL between cells (or mid-write)
            // loses at most the cell in flight.
            rv_bench::write_atomic(dir.join("rows.jsonl"), &lines).unwrap_or_else(|e| {
                rv_bench::fail(format!("cannot checkpoint rows to {}: {e}", dir.display()))
            });
        }
    }
    rv_bench::write_atomic(&out_path, &lines)
        .unwrap_or_else(|e| rv_bench::fail(format!("cannot write {out_path}: {e}")));
    let resumed = if resume {
        format!(", {reused} reused from checkpoint")
    } else {
        String::new()
    };
    println!("wrote {rows} rows ({trials} trials per cell{resumed}) to {out_path}");
}

/// Loads a `--resume` checkpoint: verifies `meta.json` matches this
/// invocation's configuration, then indexes the stored row lines by
/// scenario id. A missing checkpoint is an empty one (the sweep simply
/// starts over); a *mismatched* one is an error, because splicing rows
/// measured under different settings would corrupt the table silently.
fn load_checkpoint(
    dir: &std::path::Path,
    meta: &CheckpointMeta,
) -> std::collections::BTreeMap<String, String> {
    let meta_path = dir.join("meta.json");
    match std::fs::read_to_string(&meta_path) {
        Ok(text) => {
            let v = serde_json::from_str(&text).unwrap_or_else(|e| {
                rv_bench::fail(format!("{} is not valid JSON: {e}", meta_path.display()))
            });
            let found = CheckpointMeta {
                smoke: v.get("smoke").and_then(|x| x.as_bool()).unwrap_or_else(|| {
                    rv_bench::fail(format!("{} has no smoke flag", meta_path.display()))
                }),
                trials: v.get("trials").and_then(|x| x.as_u64()).unwrap_or_else(|| {
                    rv_bench::fail(format!("{} has no trial count", meta_path.display()))
                }) as usize,
                only: v.get("only").filter(|x| !x.is_null()).map(|x| {
                    x.as_str()
                        .unwrap_or_else(|| {
                            rv_bench::fail(format!(
                                "{} only-filter must be a string",
                                meta_path.display()
                            ))
                        })
                        .to_string()
                }),
            };
            if &found != meta {
                rv_bench::fail(format!(
                    "checkpoint {} was written by a different configuration \
                     ({found:?}, this run is {meta:?}); refusing to splice",
                    dir.display()
                ));
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return std::collections::BTreeMap::new()
        }
        Err(e) => rv_bench::fail(format!("cannot read {}: {e}", meta_path.display())),
    }
    let rows_path = dir.join("rows.jsonl");
    let text = match std::fs::read_to_string(&rows_path) {
        Ok(text) => text,
        // Meta landed but no row completed before the kill: resume runs
        // the whole sweep.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Default::default(),
        Err(e) => rv_bench::fail(format!("cannot read {}: {e}", rows_path.display())),
    };
    let mut stored = std::collections::BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let row = serde_json::from_str(line).unwrap_or_else(|e| {
            rv_bench::fail(format!(
                "{}:{} is not valid JSON: {e}",
                rows_path.display(),
                lineno + 1
            ))
        });
        let scenario = row
            .get("scenario")
            .and_then(|s| s.as_str())
            .unwrap_or_else(|| {
                rv_bench::fail(format!(
                    "{}:{} has no scenario id",
                    rows_path.display(),
                    lineno + 1
                ))
            })
            .to_string();
        if stored.insert(scenario.clone(), line.to_string()).is_some() {
            rv_bench::fail(format!(
                "{} stores duplicate rows for {scenario}",
                rows_path.display()
            ));
        }
    }
    stored
}

/// `--diff A B`: compares two row files cell by cell, ignoring only the
/// wall-clock column (`median_ns_per_run` is the last field of every
/// row, so the comparison strips the rendered suffix). This is the
/// chaos-recovery gate: a resumed sweep must reproduce the reference
/// table exactly, timing aside.
fn diff(a: &str, b: &str) {
    let read = |p: &str| {
        std::fs::read_to_string(p)
            .unwrap_or_else(|e| rv_bench::fail(format!("cannot read {p}: {e}")))
    };
    let strip_timing = |line: &str| -> String {
        match line.rfind(",\"median_ns_per_run\":") {
            Some(i) => line[..i].to_string(),
            None => line.to_string(),
        }
    };
    let ta = read(a);
    let tb = read(b);
    let la: Vec<String> = ta.lines().map(strip_timing).collect();
    let lb: Vec<String> = tb.lines().map(strip_timing).collect();
    let mut differences = 0usize;
    if la.len() != lb.len() {
        eprintln!("{a} has {} rows, {b} has {}", la.len(), lb.len());
        differences += 1;
    }
    for (i, (ra, rb)) in la.iter().zip(lb.iter()).enumerate() {
        if ra != rb {
            eprintln!("row {} differs:\n  {a}: {ra}\n  {b}: {rb}", i + 1);
            differences += 1;
        }
    }
    if differences > 0 {
        rv_bench::fail(format!(
            "{a} and {b} differ in {differences} place(s) beyond timing"
        ));
    }
    println!("{a} and {b}: identical up to timing — {} rows", la.len());
}

/// Outcome of one cell run: the pieces of [`Row`] that depend on the run.
struct CellOutcome {
    end: String,
    cost: Option<u64>,
    traversals: u64,
    actions: u64,
    complete: Option<bool>,
    /// `(tt_hits, tt_entries)` of a minimax cell's memoized search.
    tt: Option<(u64, u64)>,
}

/// Runs one cell `trials` times under its stop policy; reports the
/// outcome of the (deterministic) run and the median wall time.
fn run_cell(
    g: &rv_graph::Graph,
    family: &str,
    n: usize,
    adversary: AdversaryKind,
    kind: &CellKind,
    trials: usize,
    cutoff: u64,
) -> Row {
    let uxs = SeededUxs::quadratic();
    let (mode, agents, policy_name) = match kind {
        CellKind::Rendezvous { .. } => ("rendezvous", 2, "divergence"),
        CellKind::Sgl { k } => ("protocol", *k, "adaptive"),
        CellKind::Minimax { .. } => ("minimax", 2, "exhaustive"),
    };
    let mut outcome: Option<CellOutcome> = None;
    let mut samples = Vec::with_capacity(trials);
    for trial in 0..trials {
        let mut adv = adversary.build(ADVERSARY_SEED);
        let (elapsed, out) = match kind {
            CellKind::Rendezvous { variant, .. } => {
                let agents = vec![
                    RvBehavior::with_variant(
                        g,
                        uxs,
                        NodeId(0),
                        Label::new(LABELS.0).unwrap(),
                        *variant,
                    ),
                    RvBehavior::with_variant(
                        g,
                        uxs,
                        NodeId(g.order() / 2),
                        Label::new(LABELS.1).unwrap(),
                        *variant,
                    ),
                ];
                let config = RunConfig::rendezvous().with_cutoff(cutoff);
                let mut rt = Runtime::new(g, agents, config);
                let mut policy = DivergenceDetector::default();
                let start = Instant::now();
                let out = rt.run_with_policy(adv.as_mut(), &mut policy);
                let elapsed = start.elapsed();
                (
                    elapsed,
                    CellOutcome {
                        end: format!("{:?}", out.end),
                        cost: (out.end == RunEnd::Meeting).then_some(out.total_traversals),
                        traversals: out.total_traversals,
                        actions: out.actions,
                        complete: None,
                        tt: None,
                    },
                )
            }
            CellKind::Sgl { k } => {
                let behaviors: Vec<_> = SGL_LABELS[..*k]
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| {
                        SglBehavior::new(
                            g,
                            uxs,
                            NodeId(i * g.order() / k),
                            Label::new(l).unwrap(),
                            l + 1000,
                            SglConfig::default(),
                        )
                    })
                    .collect();
                let config = RunConfig::protocol().with_cutoff(cutoff);
                let mut rt = Runtime::new(g, behaviors, config);
                let mut policy = AdaptiveThreshold::default();
                let start = Instant::now();
                let out = rt.run_with_policy(adv.as_mut(), &mut policy);
                let elapsed = start.elapsed();
                // Stalled-cell diagnostic: name the starving agent, once
                // per cell (the run is deterministic across trials).
                if trial == 0 && out.end == RunEnd::Stalled {
                    if let Some(report) = policy.starvation() {
                        eprintln!(
                            "note: {}: stalled — agent {} gained no traversals for {} actions \
                             (flat minimum {})",
                            scenario_id(family, n, adversary, kind),
                            report.agent,
                            report.silent_actions,
                            report.traversals
                        );
                    }
                }
                let complete =
                    (out.end == RunEnd::AllParked).then(|| sgl_complete(&rt, &SGL_LABELS[..*k]));
                (
                    elapsed,
                    CellOutcome {
                        end: format!("{:?}", out.end),
                        cost: None,
                        traversals: out.total_traversals,
                        actions: out.actions,
                        complete,
                        tt: None,
                    },
                )
            }
            CellKind::Minimax { depth, family } => {
                let autos = family.automorphisms(g);
                let opts = rv_sim::SearchOptions {
                    // One worker: the search result is worker-count-
                    // independent, but the table statistics are only
                    // deterministic sequentially — and the `--diff`
                    // chaos gate compares every non-timing column.
                    workers: Some(1),
                    memo: true,
                    automorphisms: Some(&autos),
                };
                let start = Instant::now();
                let report = rv_sim::search_worst_case(
                    g,
                    || {
                        vec![
                            RvBehavior::new(g, uxs, NodeId(0), Label::new(1).unwrap()),
                            RvBehavior::new(g, uxs, NodeId(2), Label::new(2).unwrap()),
                        ]
                    },
                    *depth,
                    &opts,
                );
                let elapsed = start.elapsed();
                let stats = report.memo.expect("memoized search reports table stats");
                (
                    elapsed,
                    CellOutcome {
                        end: "Searched".to_string(),
                        cost: report.worst.max_meeting_cost,
                        traversals: report.worst.schedules_explored,
                        actions: *depth as u64,
                        complete: None,
                        tt: Some((stats.hits, stats.entries)),
                    },
                )
            }
        };
        samples.push(elapsed.as_nanos() as f64);
        outcome = Some(out);
    }
    let out = outcome.expect("trials > 0");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    Row {
        scenario: scenario_id(family, n, adversary, kind),
        mode: mode.to_string(),
        family: family.to_string(),
        n,
        adversary: match kind {
            // The search quantifies over every adversary; the axis value
            // names the quantifier, not a strategy.
            CellKind::Minimax { .. } => "worst-case".to_string(),
            _ => adversary.to_string(),
        },
        variant: match kind {
            CellKind::Rendezvous { vname, .. } => vname.to_string(),
            CellKind::Sgl { k } => format!("sgl-k{k}"),
            CellKind::Minimax { depth, .. } => format!("memo-d{depth}"),
        },
        agents,
        policy: policy_name.to_string(),
        end: out.end,
        cost: out.cost,
        traversals: out.traversals,
        cutoff,
        actions: out.actions,
        complete: out.complete,
        trials,
        tt_hits: out.tt.map(|t| t.0),
        tt_entries: out.tt.map(|t| t.1),
        median_ns_per_run: samples[samples.len() / 2],
    }
}

/// The post-hoc completeness check on a quiesced SGL runtime — the
/// shared [`rv_bench::sgl_postcondition_violations`] core (also behind
/// `expt_f4_sgl`'s verdicts) with this matrix's gossip-value convention.
fn sgl_complete(rt: &Runtime<SglBehavior<SeededUxs>>, labels: &[u64]) -> bool {
    rv_bench::sgl_postcondition_violations(rt, labels, |l| l + 1000).is_empty()
}

/// `--check`: the CI gate. Every line must parse as a JSON object with the
/// expected fields and sane values, and the file must cover exactly the
/// declared matrix (no missing, duplicate, or foreign rows).
fn check(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| rv_bench::fail(format!("cannot read matrix file {path}: {e}")));
    let mut expected: Vec<String> = Vec::new();
    for (_, fname, n, adversary, kind) in cells() {
        expected.push(scenario_id(fname, n, adversary, &kind));
    }
    let mut seen: Vec<String> = Vec::new();
    let mut protocol_rows = 0usize;
    let mut minimax_rows = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let row = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("{path}:{} is not valid JSON: {e}", lineno + 1));
        let field = |key: &str| {
            row.get(key)
                .unwrap_or_else(|| panic!("{path}:{} is missing field {key}", lineno + 1))
                .clone()
        };
        let scenario = field("scenario")
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} scenario must be a string", lineno + 1))
            .to_string();
        assert!(
            expected.contains(&scenario),
            "{path}:{} row {scenario} is not a declared matrix cell",
            lineno + 1
        );
        assert!(
            !seen.contains(&scenario),
            "{path}:{} duplicate row {scenario}",
            lineno + 1
        );
        let mode = field("mode");
        let mode = mode
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} mode must be a string", lineno + 1));
        assert!(
            ["rendezvous", "protocol", "minimax"].contains(&mode),
            "{path}:{} unknown mode {mode:?}",
            lineno + 1
        );
        if mode == "protocol" {
            protocol_rows += 1;
        }
        if mode == "minimax" {
            minimax_rows += 1;
        }
        let policy = field("policy");
        let policy = policy
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} policy must be a string", lineno + 1));
        assert_eq!(
            policy,
            match mode {
                "protocol" => "adaptive",
                "minimax" => "exhaustive",
                _ => "divergence",
            },
            "{path}:{} wrong policy for mode {mode}",
            lineno + 1
        );
        let end = field("end");
        let end = end
            .as_str()
            .unwrap_or_else(|| panic!("{path}:{} end must be a string", lineno + 1));
        assert!(
            [
                "Meeting",
                "AllParked",
                "Cutoff",
                "Diverged",
                "Stalled",
                "Searched"
            ]
            .contains(&end),
            "{path}:{} unknown end {end:?}",
            lineno + 1
        );
        // A minimax cell always finishes its enumeration — and only a
        // minimax cell can report `Searched`.
        assert_eq!(
            mode == "minimax",
            end == "Searched",
            "{path}:{} end Searched rides exactly on minimax rows",
            lineno + 1
        );
        assert!(
            mode != "protocol" || end != "Meeting",
            "{path}:{} protocol cells never stop at a meeting",
            lineno + 1
        );
        // Detector verdicts are mode-specific: piece-number divergence is
        // a rendezvous concept, progress-tick stalls a protocol one.
        assert!(
            mode == "rendezvous" || end != "Diverged",
            "{path}:{} only rendezvous cells can diverge",
            lineno + 1
        );
        assert!(
            mode == "protocol" || end != "Stalled",
            "{path}:{} only protocol cells can stall",
            lineno + 1
        );
        let agents = field("agents").as_u64().unwrap_or(0);
        assert!(agents >= 2, "{path}:{} fewer than two agents", lineno + 1);
        // The cutoff column: every row records the budget backstop it ran
        // under and where it actually stopped; `Cutoff` rows stopped
        // exactly there, detector rows strictly before.
        let cutoff = field("cutoff")
            .as_u64()
            .unwrap_or_else(|| panic!("{path}:{} cutoff must be a count", lineno + 1));
        assert!(cutoff > 0, "{path}:{} zero cutoff", lineno + 1);
        let traversals = field("traversals")
            .as_u64()
            .unwrap_or_else(|| panic!("{path}:{} traversals must be a count", lineno + 1));
        // Minimax rows repurpose the column for explored schedules and
        // the cutoff for the action horizon, so the budget relation only
        // binds the run-based modes.
        assert!(
            mode == "minimax" || traversals <= cutoff,
            "{path}:{} ran past its cutoff",
            lineno + 1
        );
        assert!(
            end != "Cutoff" || traversals == cutoff,
            "{path}:{} a Cutoff row must stop exactly at the cutoff",
            lineno + 1
        );
        assert!(
            !["Diverged", "Stalled"].contains(&end) || traversals < cutoff,
            "{path}:{} a detector row must retire strictly under the budget",
            lineno + 1
        );
        let ns = field("median_ns_per_run")
            .as_f64()
            .unwrap_or_else(|| panic!("{path}:{} median_ns_per_run must be numeric", lineno + 1));
        assert!(ns > 0.0, "{path}:{} zero timing for {scenario}", lineno + 1);
        let trials = field("trials").as_u64().unwrap_or(0);
        assert!(trials > 0, "{path}:{} zero trials", lineno + 1);
        let cost = field("cost");
        assert!(
            cost.is_null() || cost.as_u64().is_some(),
            "{path}:{} cost must be a count or null",
            lineno + 1
        );
        assert_eq!(
            cost.is_null(),
            end != "Meeting" && mode != "minimax",
            "{path}:{} cost must be present iff the run met (or the search \
             found a forced worst-case meeting)",
            lineno + 1
        );
        // Table statistics ride exactly on the minimax rows.
        for key in ["tt_hits", "tt_entries"] {
            let v = field(key);
            if mode == "minimax" {
                assert!(
                    v.as_u64().is_some(),
                    "{path}:{} {key} must be a count on minimax rows",
                    lineno + 1
                );
            } else {
                assert!(
                    v.is_null(),
                    "{path}:{} {key} must be null off the minimax rows",
                    lineno + 1
                );
            }
        }
        // The completeness check rides exactly on quiesced protocol rows
        // — and must pass there (a quiesced-but-incomplete run is a
        // protocol bug, not a budget artifact).
        let complete = field("complete");
        if mode == "protocol" && end == "AllParked" {
            assert_eq!(
                complete.as_bool(),
                Some(true),
                "{path}:{} quiesced protocol row failed its completeness check",
                lineno + 1
            );
        } else {
            assert!(
                complete.is_null(),
                "{path}:{} complete must be null off the quiesced protocol rows",
                lineno + 1
            );
        }
        seen.push(scenario);
    }
    assert_eq!(
        seen.len(),
        expected.len(),
        "{path} covers {} of {} matrix cells",
        seen.len(),
        expected.len()
    );
    println!(
        "{path}: OK — {} rows ({} protocol, {} minimax), all cells covered",
        seen.len(),
        protocol_rows,
        minimax_rows
    );
}
