//! **Experiment T1** — the length recurrences of Theorem 3.1's proof.
//!
//! Regenerates, for k = 1..24, the exact lengths of every trajectory
//! combinator (`|X|, |Q|, |Y|, |Z|, |A|, |B|, |K|, |Ω|`) and the paper's
//! starred upper bounds, under the default provider `P(k) = 4k³`. Values
//! are printed as `log₁₀` (they exceed any machine word almost
//! immediately — the very reason the implementation is lazy and the bound
//! arithmetic uses bignums).
//!
//! `--figures` additionally prints the structural expansions of `Q`, `Y′`,
//! `Z` and `A′` — the textual counterparts of the paper's Figures 1–4.
//!
//! Paper claim reproduced: each quantity is polynomial in `k` (fixed
//! slope in log-log, reported as an empirical degree), with the hierarchy
//! `X < Q < Y < Z < A < B < K < Ω`.

use rv_bench::print_table;
use rv_explore::SeededUxs;
use rv_trajectory::{describe, Lengths, Spec};

fn main() {
    let figures = std::env::args().any(|a| a == "--figures");
    let uxs = SeededUxs::default();
    let exact = Lengths::new(uxs);
    let star = rv_core::StarredLengths::new(uxs);

    let ks: Vec<u64> = (1..=24).collect();
    let mut rows = Vec::new();
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = ["X", "Q", "Y", "Z", "A", "B", "K", "Ω"]
        .iter()
        .map(|name| (*name, Vec::new()))
        .collect();
    for &k in &ks {
        let vals = [
            exact.x(k),
            exact.q(k),
            exact.y(k),
            exact.z(k),
            exact.a(k),
            exact.b(k),
            exact.k(k),
            exact.omega(k),
        ];
        let mut row = vec![k.to_string()];
        for (i, v) in vals.iter().enumerate() {
            row.push(format!("{:.2}", v.log10()));
            series[i].1.push((k as f64, v.log10()));
        }
        rows.push(row);
    }
    print_table(
        "T1 — exact trajectory lengths, log10(edge traversals), P(k)=4k³",
        &["k", "X", "Q", "Y", "Z", "A", "B", "K", "Ω"],
        &rows,
    );

    // Empirical polynomial degree of each series: slope of log|T| vs log k
    // over the upper half of the range (asymptotic regime).
    let mut deg_rows = Vec::new();
    for (name, pts) in &series {
        // Degrees of the largest members overflow f64; fit on log10
        // directly: the slope of log10|T| vs log10(k) is the degree.
        let fit: Vec<(f64, f64)> = pts
            .iter()
            .skip(pts.len() / 2)
            .map(|&(k, l10)| (k, l10))
            .collect();
        let degree = slope_log10(&fit);
        deg_rows.push(vec![name.to_string(), format!("{degree:.2}")]);
    }
    print_table(
        "T1 — empirical polynomial degree of each combinator (fit on k=12..24)",
        &["trajectory", "degree"],
        &deg_rows,
    );

    // Starred bounds dominate the exact lengths (with the tightened Y*/A*;
    // see rv_core::StarredLengths for the recorded erratum).
    let mut dominated = true;
    for &k in &ks {
        dominated &= star.x(k) >= exact.x(k)
            && star.y(k) >= exact.y(k)
            && star.a(k) >= exact.a(k)
            && star.b(k) >= exact.b(k)
            && star.k(k) >= exact.k(k)
            && star.omega(k) >= exact.omega(k);
    }
    println!(
        "\nstarred bounds dominate exact lengths for all k ≤ 24: {}",
        if dominated { "yes" } else { "NO — BUG" }
    );

    if figures {
        println!("\n## Figures 1–4 (structural expansions)\n");
        for (fig, spec) in [
            ("Figure 1", Spec::Q(4)),
            ("Figure 2", Spec::Y(3)),
            ("Figure 3", Spec::Z(4)),
            ("Figure 4", Spec::A(3)),
        ] {
            println!("{fig}:\n{}", describe(spec, 1));
        }
    }
}

/// Slope of `log10(y)` against `log10(k)` where y is given as log10 —
/// i.e. the polynomial degree even when y overflows f64.
fn slope_log10(pts: &[(f64, f64)]) -> f64 {
    let xs: Vec<(f64, f64)> = pts.iter().map(|&(k, l10)| (k.log10(), l10)).collect();
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().map(|p| p.0).sum();
    let sy: f64 = xs.iter().map(|p| p.1).sum();
    let sxx: f64 = xs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = xs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}
