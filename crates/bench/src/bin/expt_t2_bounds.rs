//! **Experiment T2** — the headline claim: the worst-case rendezvous bound
//! `Π(n, m)` (Theorem 3.1) is polynomial in the graph order `n` and in the
//! length `m` of the smaller label, while the previous best guarantee
//! (the naive/known-`n` family of algorithms, cf. [17, 18]) is exponential
//! in `n`'s exploration cost and in the label **value** — i.e. doubly
//! exponential in the label length.
//!
//! All values computed exactly with bignums and reported as log₁₀.
//!
//! Shape to reproduce: Π rows grow polynomially down both axes (stable
//! log-log slope); the naive column doubles its digit count every time the
//! label length increases by one bit — and Π wins from the first non-toy
//! label onward.

use rv_bench::print_table;
use rv_core::{naive_bound_log10, pi_bound};
use rv_explore::SeededUxs;

fn main() {
    let uxs = SeededUxs::default();

    // Π(n, m) over a grid of n and m.
    let ns = [2u64, 4, 8, 16, 32, 64];
    let ms = [1u64, 2, 4, 8, 16, 32];
    let mut rows = Vec::new();
    for &n in &ns {
        let mut row = vec![n.to_string()];
        for &m in &ms {
            row.push(format!("{:.1}", pi_bound(uxs, n, m).log10()));
        }
        rows.push(row);
    }
    print_table(
        "T2a — log10 Π(n, m): polynomial in both axes",
        &["n \\ m", "1", "2", "4", "8", "16", "32"],
        &rows,
    );

    // Empirical degrees: slope of log Π along each axis.
    let d_n = degree(&ns.map(|n| (n as f64, pi_bound(uxs, n, 8).log10())));
    let d_m = degree(&ms.map(|m| (m as f64, pi_bound(uxs, 16, m).log10())));
    println!("\nempirical degree of Π in n (m=8): {d_n:.2}");
    println!("empirical degree of Π in m (n=16): {d_m:.2}");

    // Naive baseline: exponential in the label value L = 2^j − 1 (length j).
    let mut rows = Vec::new();
    for j in [1u64, 2, 4, 8, 16, 32] {
        let label_value = (1u64 << j) - 1; // largest label of length j
                                           // The naive bound has Θ(L) digits: evaluate its log10 analytically.
        let nv_log10 = naive_bound_log10(uxs, 16, label_value);
        let pi = pi_bound(uxs, 16, j);
        rows.push(vec![
            j.to_string(),
            label_value.to_string(),
            format!("{nv_log10:.3e}"),
            format!("{:.1}", pi.log10()),
            if pi.log10() < nv_log10 {
                "RV-asynch-poly".into()
            } else {
                "naive".into()
            },
        ]);
    }
    print_table(
        "T2b — n=16: guaranteed cost, naive (exp. in L) vs Π (poly in |L|)",
        &["|L| bits", "L", "log10 naive", "log10 Π", "winner"],
        &rows,
    );

    // Crossover: the naive bound is smaller only for the first few label
    // values; find the exact crossover at several n.
    let mut rows = Vec::new();
    for &n in &[4u64, 8, 16, 32] {
        // Π depends only on the label's bit length: cache the 13 values.
        let pi_log10: Vec<f64> = (0u64..=13)
            .map(|b| pi_bound(uxs, n, b.max(1)).log10())
            .collect();
        let mut cross = None;
        for label in 1u64..=4096 {
            let bits = 64 - label.leading_zeros() as u64;
            if naive_bound_log10(uxs, n, label) > pi_log10[bits as usize] {
                cross = Some(label);
                break;
            }
        }
        rows.push(vec![
            n.to_string(),
            cross
                .map(|c| c.to_string())
                .unwrap_or_else(|| ">4096".into()),
        ]);
    }
    print_table(
        "T2c — smallest label value where Π's guarantee beats the naive bound",
        &["n", "crossover label"],
        &rows,
    );
}

fn degree(pts: &[(f64, f64)]) -> f64 {
    let xs: Vec<(f64, f64)> = pts.iter().map(|&(x, l10)| (x.log10(), l10)).collect();
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().map(|p| p.0).sum();
    let sy: f64 = xs.iter().map(|p| p.1).sum();
    let sxx: f64 = xs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = xs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}
