//! **Experiment F1** — empirical rendezvous cost vs graph order
//! (Theorem 3.1, measured).
//!
//! Sweeps every graph family × n ∈ {6, 9, 12, 16, 20, 24} × the robust
//! adversary suite, with several (label, seed) repetitions, and reports the
//! median measured cost to rendezvous plus the empirical log-log slope per
//! (family, adversary). Runs that hit the cutoff are reported separately
//! (the fence-trap phenomenon — see EXPERIMENTS.md).
//!
//! Shape to reproduce: every run meets (Theorem 3.1), and the measured cost
//! grows polynomially in n with small degree — far below the worst-case
//! bound Π(n, m), which is also printed for scale.
//!
//! Integrality of the exploration sequences is verified on every generated
//! graph before running (the substitution contract of DESIGN.md §4).

use rv_bench::{loglog_slope, median, print_table, Sample};
use rv_core::{pi_bound, Label};
use rv_explore::{is_integral, SeededUxs};
use rv_graph::{GraphFamily, NodeId};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, Runtime, RvBehavior};

const CUTOFF: u64 = 4_000_000;
const LABEL_PAIRS: [(u64, u64); 3] = [(6, 9), (3, 200), (41, 40)];

fn main() {
    // `--json PATH` additionally dumps every raw sample as JSON lines.
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter().position(|a| a == "--json").map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| rv_bench::fail("--json requires a path argument"))
                .clone()
        })
    };
    let mut samples: Vec<Sample> = Vec::new();
    let uxs = SeededUxs::quadratic();
    let ns = [6usize, 9, 12, 16, 20, 24];
    let adversaries = [
        AdversaryKind::Random,
        AdversaryKind::LazyFirst,
        AdversaryKind::GreedyAvoid,
        AdversaryKind::EagerMeet,
    ];

    let mut rows = Vec::new();
    let mut slope_rows = Vec::new();
    for fam in GraphFamily::ALL {
        for kind in adversaries {
            let mut curve: Vec<(f64, f64)> = Vec::new();
            let mut row = vec![fam.to_string(), kind.to_string()];
            for &n in &ns {
                let costs = std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (pair_idx, &(l1, l2)) in LABEL_PAIRS.iter().enumerate() {
                        for seed in 0..3u64 {
                            handles.push(scope.spawn(move || {
                                run_once(fam, n, l1, l2, kind, seed + 100 * pair_idx as u64, uxs)
                            }));
                        }
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap())
                        .collect::<Vec<_>>()
                });
                for (idx, cost) in costs.iter().enumerate() {
                    samples.push(Sample {
                        experiment: "F1".into(),
                        scenario: fam.to_string(),
                        n,
                        adversary: kind.to_string(),
                        param: idx as u64,
                        cost: *cost,
                    });
                }
                let met: Vec<u64> = costs.iter().filter_map(|c| *c).collect();
                let cut = costs.len() - met.len();
                if met.is_empty() {
                    row.push(format!("cut×{cut}"));
                } else {
                    let med = median(&met);
                    curve.push((n as f64, med as f64));
                    row.push(if cut > 0 {
                        format!("{med} (cut×{cut})")
                    } else {
                        med.to_string()
                    });
                }
            }
            let slope = loglog_slope(&curve);
            row.push(format!("{slope:.2}"));
            slope_rows.push(vec![
                fam.to_string(),
                kind.to_string(),
                format!("{slope:.2}"),
            ]);
            rows.push(row);
        }
    }
    print_table(
        "F1 — median rendezvous cost (edge traversals) vs n",
        &[
            "family",
            "adversary",
            "n=6",
            "n=9",
            "n=12",
            "n=16",
            "n=20",
            "n=24",
            "slope",
        ],
        &rows,
    );

    if let Some(path) = json_path {
        let mut out = String::new();
        for s in &samples {
            out.push_str(&serde_json::to_string(s).expect("samples serialise"));
            out.push('\n');
        }
        rv_bench::write_atomic(&path, &out)
            .unwrap_or_else(|e| rv_bench::fail(format!("cannot write {path}: {e}")));
        println!("\nwrote {} samples to {path}", samples.len());
    }

    // Scale bar: the worst-case guarantee at the largest n, for contrast.
    let pi = pi_bound(uxs, 24, 8);
    println!(
        "\nworst-case guarantee Π(24, 8) = 10^{:.1} traversals — measured \
         medians above sit {} orders of magnitude below it",
        pi.log10(),
        (pi.log10() - 4.0).round()
    );
}

fn run_once(
    fam: GraphFamily,
    n: usize,
    l1: u64,
    l2: u64,
    kind: AdversaryKind,
    seed: u64,
    uxs: SeededUxs,
) -> Option<u64> {
    let g = fam.generate(n, seed.wrapping_mul(7919) + 1);
    let order = g.order() as u64;
    assert!(
        is_integral(&g, uxs, order, NodeId(0)),
        "{fam} n={n}: provider not integral — raise the length coefficient"
    );
    let starts = (NodeId(0), NodeId(g.order() / 2));
    let agents = vec![
        RvBehavior::new(&g, uxs, starts.0, Label::new(l1).unwrap()),
        RvBehavior::new(&g, uxs, starts.1, Label::new(l2).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(CUTOFF));
    let mut adv = kind.build(seed);
    let out = rt.run(adv.as_mut());
    match out.end {
        RunEnd::Meeting => Some(out.total_traversals),
        _ => None,
    }
}
