//! **Experiment F2** — cost as a function of the agents' labels.
//!
//! The paper's headline improvement is in the *label axis*: the previous
//! guarantee was exponential in the label value (doubly exponential in its
//! length), the new one polynomial in the length of the smaller label.
//! Two measurements:
//!
//! * **F2a (trap conditions, measured exponential).** On `hypercube(2)`
//!   with starts (0, 2) under exact-lockstep scheduling, the naive
//!   algorithm's agents never meet incidentally (their deterministic walks
//!   stay crossing-free — found by `examples/probe_trap.rs`), so the
//!   meeting happens only after the smaller agent finishes all
//!   `(2P(n)+1)^L` repetitions and parks — the measured cost curve is
//!   exponential in `L`, reproducing the lower-bound behaviour.
//! * **F2b (typical conditions).** Under the random adversary both
//!   algorithms meet almost immediately regardless of labels — the
//!   improvement is about guarantees, not typical runs; crossed with the
//!   analytic bounds of T2 this completes the picture.
//!
//! A small provider (`P(k) = 2k²`, verified integral) keeps the
//! exponential curve measurable for L = 1..3.

use rv_bench::print_table;
use rv_core::Label;
use rv_explore::{is_integral, ExplorationProvider, SeededUxs};
use rv_graph::{generators, NodeId};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{NaiveBehavior, RunConfig, RunEnd, Runtime, RvBehavior};

fn main() {
    let uxs = SeededUxs::new(0x5EED_CAFE, 2).with_power(2);
    // hypercube(2) with starts (0, 2): under exact lockstep the two naive
    // agents' walks never force a meeting (found by sweep — see
    // examples/probe_trap.rs), so the cost is the smaller agent's entire
    // exponential schedule plus the larger agent's final search.
    let g = generators::hypercube(2);
    let n = g.order() as u64;
    assert!(
        is_integral(&g, uxs, n, NodeId(0)),
        "P(4)=32 must cover hypercube(2)"
    );
    let p_n = uxs.len(n);

    // F2a: naive under exact lockstep — cost forced to the full schedule of
    // the smaller agent: (2P+1)^Lmin repetitions of X(n) (2P steps each).
    let mut rows = Vec::new();
    for l in 1u64..=3 {
        let agents = vec![
            NaiveBehavior::new(&g, uxs, NodeId(0), Label::new(l).unwrap()),
            NaiveBehavior::new(&g, uxs, NodeId(2), Label::new(l + 1).unwrap()),
        ];
        let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(400_000_000));
        let mut adv = AdversaryKind::RoundRobin.build(0);
        let out = rt.run(adv.as_mut());
        // Both agents walk ≈ the smaller schedule before the meeting.
        let predicted = 2 * (2 * p_n + 1).pow(l as u32) * (2 * p_n);
        rows.push(vec![
            l.to_string(),
            format!("{:?}", out.end),
            out.total_traversals.to_string(),
            predicted.to_string(),
        ]);
    }
    print_table(
        "F2a — naive algorithm, hypercube(2), lockstep: measured cost is exponential in L",
        &[
            "L (smaller)",
            "end",
            "measured cost",
            "predicted 2·(2P+1)^L·2P",
        ],
        &rows,
    );

    // RV-asynch-poly in the same trap: it neither meets quickly nor parks —
    // it grinds fences; report the cutoff to document the contrast.
    let agents = vec![
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(2).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(2), Label::new(3).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(2_000_000));
    let mut adv = AdversaryKind::RoundRobin.build(0);
    let out = rt.run(adv.as_mut());
    println!(
        "\nRV-asynch-poly in the same lockstep trap: {:?} after {} traversals \
         (grinding Ω fences — its guarantee Π is astronomical but label-independent)",
        out.end, out.total_traversals
    );

    // F2b: typical conditions — random adversary, labels spanning 2^1..2^48.
    let uxs_q = SeededUxs::quadratic();
    let mut rows = Vec::new();
    for j in [1u64, 6, 12, 24, 48] {
        let l_small = (1u64 << j) - 1;
        let mut rv_costs = Vec::new();
        let mut nv_costs = Vec::new();
        for seed in 0..5u64 {
            let agents = vec![
                RvBehavior::new(&g, uxs_q, NodeId(0), Label::new(l_small).unwrap()),
                RvBehavior::new(&g, uxs_q, NodeId(2), Label::new(l_small + 1).unwrap()),
            ];
            let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(4_000_000));
            let mut adv = AdversaryKind::Random.build(seed);
            let out = rt.run(adv.as_mut());
            if out.end == RunEnd::Meeting {
                rv_costs.push(out.total_traversals);
            }
            // Naive only exists for labels small enough to enumerate; skip
            // huge labels (its schedule length overflows any horizon).
            if j <= 12 {
                let agents = vec![
                    NaiveBehavior::new(&g, uxs_q, NodeId(0), Label::new(l_small).unwrap()),
                    NaiveBehavior::new(&g, uxs_q, NodeId(2), Label::new(l_small + 1).unwrap()),
                ];
                let mut rt =
                    Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(4_000_000));
                let mut adv = AdversaryKind::Random.build(seed);
                let out = rt.run(adv.as_mut());
                if out.end == RunEnd::Meeting {
                    nv_costs.push(out.total_traversals);
                }
            }
        }
        rows.push(vec![
            format!("2^{j}-1"),
            format!("{:?}", rv_costs),
            if rv_costs.len() == 5 {
                "5/5".into()
            } else {
                format!("{}/5", rv_costs.len())
            },
            if j <= 12 {
                format!("{:?}", nv_costs)
            } else {
                "n/a (schedule too long)".into()
            },
        ]);
    }
    print_table(
        "F2b — random adversary, hypercube(2): measured costs are label-independent",
        &["smaller label", "RV-poly costs", "met", "naive costs"],
        &rows,
    );
}
