//! **Experiment F6** — ablation of the design choices §3.1 argues for.
//!
//! The algorithm has three load-bearing ingredients:
//!
//! 1. the **prefix-free label transform** `M(x)` — guarantees a bit
//!    position where the two agents differ *within both bit strings*;
//! 2. **doubled atoms** (each segment plays its trajectory twice);
//! 3. **scaled parameters** (`B(2k)`/`A(4k)` instead of `B(k)`/`A(k)`) —
//!    both needed for the synchronisation lemmas' containment arguments.
//!
//! Each variant is run on instances engineered to stress the removed
//! ingredient: label pairs where one raw binary string is a prefix of the
//! other (for 1) and symmetric rings under the meeting-postponing
//! adversary (for 2 and 3). The paper's variant must meet everywhere;
//! ablations may still often meet incidentally — the measurement is the
//! meeting *rate* and cost inflation, plus any cutoff.

use rv_bench::print_table;
use rv_core::{Label, RvVariant};
use rv_explore::SeededUxs;
use rv_graph::{generators, Graph, NodeId};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, Runtime, RvBehavior};

const CUTOFF: u64 = 1_500_000;

fn main() {
    let uxs = SeededUxs::quadratic();
    let variants: [(&str, RvVariant); 4] = [
        ("paper", RvVariant::default()),
        (
            "raw-label-bits",
            RvVariant {
                modified_label: false,
                ..RvVariant::default()
            },
        ),
        (
            "single-atoms",
            RvVariant {
                doubled_atoms: false,
                ..RvVariant::default()
            },
        ),
        (
            "unscaled-params",
            RvVariant {
                scaled_params: false,
                ..RvVariant::default()
            },
        ),
    ];
    // Prefix pairs stress the label transform: raw binary of the first is
    // a prefix of the second's.
    let prefix_pairs = [(2u64, 5u64), (1, 3), (3, 7), (5, 11)];
    // Generic pairs for the structural ablations.
    let generic_pairs = [(6u64, 9u64), (12, 35), (80, 81)];

    let graphs: Vec<(&str, Graph)> = vec![
        ("ring(8)", generators::ring(8)),
        ("ring(12)", generators::ring(12)),
        ("tree(9)", generators::random_tree(9, 3)),
    ];

    let mut rows = Vec::new();
    for (vname, variant) in variants {
        for (pairs_name, pairs) in [
            ("prefix-pairs", &prefix_pairs[..]),
            ("generic-pairs", &generic_pairs[..]),
        ] {
            let mut met = 0usize;
            let mut total = 0usize;
            let mut costs: Vec<u64> = Vec::new();
            for (_, g) in &graphs {
                for &(l1, l2) in pairs {
                    for seed in 0..3u64 {
                        total += 1;
                        let agents = vec![
                            RvBehavior::with_variant(
                                g,
                                uxs,
                                NodeId(0),
                                Label::new(l1).unwrap(),
                                variant,
                            ),
                            RvBehavior::with_variant(
                                g,
                                uxs,
                                NodeId(g.order() / 2),
                                Label::new(l2).unwrap(),
                                variant,
                            ),
                        ];
                        let mut rt =
                            Runtime::new(g, agents, RunConfig::rendezvous().with_cutoff(CUTOFF));
                        let mut adv = AdversaryKind::GreedyAvoid.build(seed);
                        let out = rt.run(adv.as_mut());
                        if out.end == RunEnd::Meeting {
                            met += 1;
                            costs.push(out.total_traversals);
                        }
                    }
                }
            }
            costs.sort_unstable();
            let med = costs.get(costs.len() / 2).copied();
            rows.push(vec![
                vname.to_string(),
                pairs_name.to_string(),
                format!("{met}/{total}"),
                med.map(|c| c.to_string()).unwrap_or_else(|| "—".into()),
            ]);
        }
    }
    print_table(
        "F6 — ablations under the greedy-avoid adversary",
        &["variant", "instances", "met", "median cost"],
        &rows,
    );
    println!(
        "\nreading: the paper variant must meet on every instance; ablated \
         variants\nretain incidental meetings but lose the guarantee — \
         any shortfall in 'met'\nor cost inflation quantifies what the \
         ingredient buys."
    );
}
