//! **Experiment F5** — adversary strength (the model section, §1,
//! quantified).
//!
//! The paper's adversary fully controls agent speed; this experiment maps
//! how much that power costs in practice: rendezvous cost distributions
//! per adversary strategy on a fixed instance set, plus an *empirical
//! worst case* — the maximum over many seeded random/greedy schedules
//! (exhaustive minimax over schedules is infeasible: the branching factor
//! is the number of legal actions per step and the horizon is unbounded).
//!
//! Shape to reproduce: eager ≤ round-robin/random ≪ greedy-avoid ≤
//! empirical max, and even the empirical max stays polynomially small —
//! except under the exact-lockstep fence trap, reported last.

use rv_bench::{geomean, print_table};
use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_sim::adversary::{AdversaryKind, GreedyAvoid, RandomAdversary};
use rv_sim::{RunConfig, RunEnd, Runtime, RvBehavior};

const CUTOFF: u64 = 2_000_000;

fn main() {
    let uxs = SeededUxs::quadratic();
    let instances: Vec<(GraphFamily, usize, u64, u64)> = vec![
        (GraphFamily::Ring, 8, 6, 9),
        (GraphFamily::Path, 8, 6, 9),
        (GraphFamily::RandomTree, 10, 3, 12),
        (GraphFamily::Gnp, 10, 21, 22),
        (GraphFamily::Complete, 6, 1, 2),
    ];

    let mut rows = Vec::new();
    for kind in AdversaryKind::ALL {
        let mut costs = Vec::new();
        let mut cutoffs = 0;
        for &(fam, n, l1, l2) in &instances {
            for seed in 0..4u64 {
                match run(fam, n, l1, l2, &mut *kind.build(seed), seed, uxs) {
                    // +1: meetings forced before any completed traversal
                    // have cost 0, which a geometric mean cannot absorb.
                    Some(c) => costs.push(c as f64 + 1.0),
                    None => cutoffs += 1,
                }
            }
        }
        let gm = if costs.is_empty() {
            f64::NAN
        } else {
            geomean(&costs)
        };
        let max = costs.iter().cloned().fold(0f64, f64::max);
        rows.push(vec![
            kind.to_string(),
            format!("{gm:.1}"),
            format!("{max:.0}"),
            cutoffs.to_string(),
        ]);
    }
    print_table(
        "F5a — cost per adversary over 5 instances × 4 seeds",
        &["adversary", "geomean(cost+1)", "max cost+1", "cutoffs"],
        &rows,
    );

    // Empirical worst case: max over 200 seeded random + 200 greedy-avoid
    // schedules on one instance.
    let mut worst_random = 0u64;
    let mut worst_greedy = 0u64;
    for seed in 0..200u64 {
        if let Some(c) = run(
            GraphFamily::Ring,
            8,
            6,
            9,
            &mut RandomAdversary::new(seed),
            seed,
            uxs,
        ) {
            worst_random = worst_random.max(c);
        }
        if let Some(c) = run(
            GraphFamily::Ring,
            8,
            6,
            9,
            &mut GreedyAvoid::new(seed),
            seed,
            uxs,
        ) {
            worst_greedy = worst_greedy.max(c);
        }
    }
    println!(
        "\nF5b — empirical worst case on ring(8), labels (6,9), 200 seeds each:\n\
         random schedules: max {worst_random} traversals\n\
         greedy-avoid    : max {worst_greedy} traversals\n\
         (compare Π(8,3) = 10^{:.1} — the guarantee's headroom)",
        rv_core::pi_bound(uxs, 8, 3).log10()
    );

    // F5c: the TRUE worst case on a tiny instance by exhaustive search
    // over all schedules of ≤ 12 actions (rv_sim::minimax).
    let g = rv_graph::generators::path(3);
    let res = rv_sim::minimax::exhaustive_worst_case(
        &g,
        || {
            vec![
                RvBehavior::new(&g, uxs, NodeId(0), Label::new(1).unwrap()),
                RvBehavior::new(&g, uxs, NodeId(2), Label::new(2).unwrap()),
            ]
        },
        12,
    );
    println!(
        "\nF5c — exhaustive minimax on path(3), RV agents, horizon 12 actions:\n\
         schedules explored: {}, worst forced-meeting cost: {:?}, \
         avoidance possible within horizon: {}",
        res.schedules_explored, res.max_meeting_cost, res.some_schedule_avoids
    );
}

fn run(
    fam: GraphFamily,
    n: usize,
    l1: u64,
    l2: u64,
    adv: &mut dyn rv_sim::adversary::Adversary,
    seed: u64,
    uxs: SeededUxs,
) -> Option<u64> {
    let g = fam.generate(n, seed * 131 + 7);
    let agents = vec![
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(l1).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(g.order() / 2), Label::new(l2).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(CUTOFF));
    let out = rt.run(adv);
    (out.end == RunEnd::Meeting).then_some(out.total_traversals)
}
