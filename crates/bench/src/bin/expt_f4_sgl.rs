//! **Experiment F4** — Algorithm SGL and the four applications
//! (Theorem 4.1, measured).
//!
//! Sweeps team size k ∈ {2, 3, 4, 6} × several graph families and orders ×
//! adversaries, and for every run verifies the full postcondition:
//!
//! * every agent outputs the complete label set (and all values — gossip),
//! * derived team size / leader / renaming are consistent and correct,
//! * the post-hoc check behind the completion-threshold substitution
//!   (DESIGN.md §4): when the minimal agent finished Phase 2, no traveller
//!   or dormant agent remained (verified here by the protocol having
//!   terminated with every agent outputting).
//!
//! Reports total cost (all agents' traversals) vs n and k, with log-log
//! slopes. Paper claim: cost polynomial in n and in the smallest label's
//! length (the absolute values here reflect the simulator's quadratic
//! exploration sequences, not the paper's galactic worst case).

use rv_bench::{loglog_slope, median, print_table};
use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_protocols::{solve, SglBehavior, SglConfig};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, Runtime};

fn main() {
    let uxs = SeededUxs::quadratic();

    // Cost vs n at k = 2 and k = 4, per family.
    let ns = [5usize, 6, 8, 10];
    let mut rows = Vec::new();
    for fam in [GraphFamily::Ring, GraphFamily::RandomTree, GraphFamily::Gnp] {
        for k in [2usize, 4] {
            let mut curve = Vec::new();
            let mut row = vec![fam.to_string(), k.to_string()];
            for &n in &ns {
                let mut costs = Vec::new();
                for seed in 0..3u64 {
                    let cost = run_sgl(fam, n, k, AdversaryKind::Random, seed, uxs);
                    costs.push(cost);
                }
                let med = median(&costs);
                curve.push((n as f64, med as f64));
                row.push(med.to_string());
            }
            row.push(format!("{:.2}", loglog_slope(&curve)));
            rows.push(row);
        }
    }
    print_table(
        "F4a — SGL total cost vs n (random adversary, median of 3 seeds)",
        &["family", "k", "n=5", "n=6", "n=8", "n=10", "slope"],
        &rows,
    );

    // Cost vs team size on a fixed graph.
    let mut rows = Vec::new();
    for kind in [
        AdversaryKind::Random,
        AdversaryKind::EagerMeet,
        AdversaryKind::LazyFirst,
    ] {
        let mut row = vec![kind.to_string()];
        for k in [2usize, 3, 4, 6] {
            let mut costs = Vec::new();
            for seed in 0..3u64 {
                costs.push(run_sgl(GraphFamily::Ring, 8, k, kind, seed, uxs));
            }
            row.push(median(&costs).to_string());
        }
        rows.push(row);
    }
    print_table(
        "F4b — SGL total cost vs team size k (ring(8))",
        &["adversary", "k=2", "k=3", "k=4", "k=6"],
        &rows,
    );
    println!(
        "\nevery run verified: all agents output the full label set, gossip \
         values correct,\nrenaming a bijection onto 1..k, leader = min label, \
         team size = k"
    );
}

/// Runs one SGL instance to quiescence, verifies Theorem 4.1's
/// postcondition, and returns the total cost.
fn run_sgl(
    fam: GraphFamily,
    n: usize,
    k: usize,
    kind: AdversaryKind,
    seed: u64,
    uxs: SeededUxs,
) -> u64 {
    let g = fam.generate(n, seed * 97 + 13);
    let labels: Vec<u64> = (0..k).map(|i| (seed + 2) * 3 + 7 * i as u64 + 1).collect();
    let agents: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                &g,
                uxs,
                NodeId(i * g.order() / k),
                Label::new(l).unwrap(),
                l + 1000,
                SglConfig::default(),
            )
        })
        .collect();
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(80_000_000));
    let mut adv = kind.build(seed);
    let out = rt.run(adv.as_mut());
    assert_eq!(
        out.end,
        RunEnd::AllParked,
        "{fam} n={n} k={k} {kind}: did not quiesce"
    );

    let mut expected = labels.clone();
    expected.sort_unstable();
    let mut names = Vec::new();
    for i in 0..rt.agent_count() {
        let b = rt.behavior(i);
        let set = b
            .output()
            .unwrap_or_else(|| panic!("agent {i} has no output"));
        assert_eq!(set.labels(), expected, "agent {i}: wrong label set");
        for (l, v) in set.iter() {
            assert_eq!(v, l + 1000, "gossip value mismatch for label {l}");
        }
        let s = solve(b.label().value(), set);
        assert_eq!(s.team_size, k);
        assert_eq!(s.leader, expected[0]);
        names.push(s.new_name);
    }
    names.sort_unstable();
    assert_eq!(
        names,
        (1..=k).collect::<Vec<_>>(),
        "renaming not a bijection"
    );
    out.total_traversals
}
