//! **Experiment F4** — Algorithm SGL and the four applications
//! (Theorem 4.1, measured).
//!
//! Sweeps team size k ∈ {2, 3, 4, 6} × several graph families and orders ×
//! adversaries, and for every run that quiesces verifies the full
//! postcondition:
//!
//! * every agent outputs the complete label set (and all values — gossip),
//! * derived team size / leader / renaming are consistent and correct,
//! * the post-hoc check behind the completion-threshold substitution
//!   (DESIGN.md §4): when the minimal agent finished Phase 2, no traveller
//!   or dormant agent remained (verified here by the protocol having
//!   terminated with every agent outputting).
//!
//! Runs that hit the traversal cutoff are **reported distinctly** (a
//! `cutoff` entry in the table instead of a cost) rather than treated as
//! failures — a cutoff says "slow under this budget", not "the protocol is
//! stuck". The experiment exits nonzero only on *genuine* non-quiescence:
//! a run that parked every agent without delivering the postcondition
//! (wrong or missing outputs, inconsistent renaming).
//!
//! Reports total cost (all agents' traversals) vs n and k, with log-log
//! slopes. Paper claim: cost polynomial in n and in the smallest label's
//! length (the absolute values here reflect the simulator's quadratic
//! exploration sequences, not the paper's galactic worst case).

use rv_bench::{loglog_slope, median, print_table};
use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_protocols::{solve, SglBehavior, SglConfig};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, Runtime};

/// Traversal budget per run.
const CUTOFF: u64 = 80_000_000;

/// One SGL run's reportable result.
enum SglRun {
    /// Quiesced with the postcondition verified; carries the total cost.
    Quiesced(u64),
    /// Hit the traversal cutoff — slow under this budget, not failed.
    Cutoff,
}

fn main() {
    let uxs = SeededUxs::quadratic();
    let mut failures: Vec<String> = Vec::new();
    let mut cutoffs = 0usize;

    // Cost vs n at k = 2 and k = 4, per family.
    let ns = [5usize, 6, 8, 10];
    let mut rows = Vec::new();
    for fam in [GraphFamily::Ring, GraphFamily::RandomTree, GraphFamily::Gnp] {
        for k in [2usize, 4] {
            let mut curve = Vec::new();
            let mut censored = false;
            let mut row = vec![fam.to_string(), k.to_string()];
            for &n in &ns {
                let mut costs = Vec::new();
                let mut cut = 0usize;
                for seed in 0..3u64 {
                    match run_sgl(fam, n, k, AdversaryKind::Random, seed, uxs, &mut failures) {
                        SglRun::Quiesced(cost) => costs.push(cost),
                        SglRun::Cutoff => cut += 1,
                    }
                }
                cutoffs += cut;
                if costs.is_empty() {
                    censored = true;
                    row.push(format!("cutoff(>{CUTOFF})"));
                } else {
                    let med = median(&costs);
                    if cut == 0 {
                        // Only uncensored points enter the slope fit: a
                        // median over the surviving (cheap) seeds would
                        // bias the slope low — exactly the direction that
                        // hides super-polynomial growth.
                        curve.push((n as f64, med as f64));
                    } else {
                        censored = true;
                    }
                    row.push(if cut > 0 {
                        format!("{med}*") // asterisk: some seeds hit cutoff
                    } else {
                        med.to_string()
                    });
                }
            }
            row.push(if curve.len() < 2 {
                "n/a".to_string()
            } else if censored {
                // The fit skipped censored points; flag it.
                format!("{:.2}*", loglog_slope(&curve))
            } else {
                format!("{:.2}", loglog_slope(&curve))
            });
            rows.push(row);
        }
    }
    print_table(
        "F4a — SGL total cost vs n (random adversary, median of 3 seeds)",
        &["family", "k", "n=5", "n=6", "n=8", "n=10", "slope"],
        &rows,
    );

    // Cost vs team size on a fixed graph.
    let mut rows = Vec::new();
    for kind in [
        AdversaryKind::Random,
        AdversaryKind::EagerMeet,
        AdversaryKind::LazyFirst,
    ] {
        let mut row = vec![kind.to_string()];
        for k in [2usize, 3, 4, 6] {
            let mut costs = Vec::new();
            let mut cut = 0usize;
            for seed in 0..3u64 {
                match run_sgl(GraphFamily::Ring, 8, k, kind, seed, uxs, &mut failures) {
                    SglRun::Quiesced(cost) => costs.push(cost),
                    SglRun::Cutoff => cut += 1,
                }
            }
            cutoffs += cut;
            row.push(if costs.is_empty() {
                format!("cutoff(>{CUTOFF})")
            } else if cut > 0 {
                format!("{}*", median(&costs))
            } else {
                median(&costs).to_string()
            });
        }
        rows.push(row);
    }
    print_table(
        "F4b — SGL total cost vs team size k (ring(8))",
        &["adversary", "k=2", "k=3", "k=4", "k=6"],
        &rows,
    );
    if cutoffs > 0 {
        println!(
            "\n{cutoffs} run(s) hit the {CUTOFF}-traversal cutoff (reported as \
             `cutoff`/`*` above) — slow under this budget, not non-quiescent"
        );
    }
    if failures.is_empty() {
        println!(
            "\nevery quiesced run verified: all agents output the full label set, \
             gossip values correct,\nrenaming a bijection onto 1..k, leader = min \
             label, team size = k"
        );
    } else {
        eprintln!("\nGENUINE NON-QUIESCENCE — postcondition violations:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

/// Runs one SGL instance until quiescence or cutoff. Quiesced runs have
/// Theorem 4.1's postcondition verified; any violation is recorded in
/// `failures` (genuine non-quiescence: the protocol parked without
/// delivering). Cutoff runs are reported as [`SglRun::Cutoff`].
fn run_sgl(
    fam: GraphFamily,
    n: usize,
    k: usize,
    kind: AdversaryKind,
    seed: u64,
    uxs: SeededUxs,
    failures: &mut Vec<String>,
) -> SglRun {
    let g = fam.generate(n, seed * 97 + 13);
    let labels: Vec<u64> = (0..k).map(|i| (seed + 2) * 3 + 7 * i as u64 + 1).collect();
    let agents: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                &g,
                uxs,
                NodeId(i * g.order() / k),
                Label::new(l).unwrap(),
                l + 1000,
                SglConfig::default(),
            )
        })
        .collect();
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(CUTOFF));
    let mut adv = kind.build(seed);
    let out = rt.run(adv.as_mut());
    let instance = format!("{fam} n={n} k={k} {kind} seed={seed}");
    match out.end {
        RunEnd::Cutoff => return SglRun::Cutoff,
        RunEnd::AllParked => {}
        RunEnd::Meeting => unreachable!("protocol runs do not stop at meetings"),
        RunEnd::Diverged | RunEnd::Stalled => {
            unreachable!("plain run() never ends with a detector verdict")
        }
        RunEnd::AllCrashed | RunEnd::SurvivorsParked => {
            unreachable!("no fault plan is installed in this experiment")
        }
    }

    // Quiesced: verify the postcondition; violations are genuine
    // failures. The core (complete outputs, gossip values, minimal agent
    // met every teammate via the meeting-log views) is the shared
    // [`rv_bench::sgl_postcondition_violations`] — the same check behind
    // the scenario matrix's `complete` column — and the `solve`-derived
    // application consistency checks layer on top.
    let mut fail = |msg: String| failures.push(format!("{instance}: {msg}"));
    for msg in rv_bench::sgl_postcondition_violations(&rt, &labels, |l| l + 1000) {
        fail(msg);
    }
    let mut expected = labels.clone();
    expected.sort_unstable();
    let mut names = Vec::new();
    for i in 0..rt.agent_count() {
        let b = rt.behavior(i);
        let Some(set) = b.output() else { continue };
        let s = solve(b.label().value(), set);
        if s.team_size != k {
            fail(format!("agent {i} derived team size {}", s.team_size));
        }
        if s.leader != expected[0] {
            fail(format!("agent {i} elected leader {}", s.leader));
        }
        names.push(s.new_name);
    }
    names.sort_unstable();
    if names != (1..=k).collect::<Vec<_>>() {
        fail(format!("renaming not a bijection onto 1..{k}: {names:?}"));
    }
    SglRun::Quiesced(out.total_traversals)
}
