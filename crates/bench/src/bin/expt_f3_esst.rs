//! **Experiment F3** — procedure ESST (Theorem 2.1, measured).
//!
//! For every graph family and a range of orders, runs ESST against each
//! token-adversary strategy and verifies/reports:
//!
//! * termination (never later than phase `9n + 3`),
//! * full edge coverage at termination (Theorem 2.1's postcondition),
//! * cost growth vs `n` (polynomial; empirical log-log slope),
//! * termination phase vs `n` (the basis of the `E(n)` substitution used by
//!   Algorithm SGL — always in `(n, 9n+3]`).

use rv_bench::{loglog_slope, median, print_table};
use rv_explore::esst::{
    run_esst, EvasiveEdgeToken, OscillatingToken, StaticNodeToken, TokenOracle,
};
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};

fn main() {
    let uxs = SeededUxs::quadratic();
    let ns = [4usize, 6, 8, 10, 12];
    let mut rows = Vec::new();
    let mut slope_rows = Vec::new();
    for fam in GraphFamily::ALL {
        for token in ["static", "evasive", "oscillating"] {
            let mut curve = Vec::new();
            let mut row = vec![fam.to_string(), token.to_string()];
            for &n in &ns {
                let mut costs = Vec::new();
                let mut phases = Vec::new();
                for seed in 0..3u64 {
                    let g = fam.generate(n, seed * 31 + 5);
                    let token_node = NodeId(g.order() - 1);
                    let token_edge = {
                        let port = rv_graph::PortId(0);
                        g.edge_at(token_node, port)
                    };
                    let mut orc: Box<dyn TokenOracle> = match token {
                        "static" => Box::new(StaticNodeToken { node: token_node }),
                        "evasive" => Box::new(EvasiveEdgeToken { edge: token_edge }),
                        _ => Box::new(OscillatingToken::new(token_edge)),
                    };
                    let out = run_esst(&g, uxs, NodeId(0), orc.as_mut(), 9 * g.order() as u64 + 3)
                        .expect("Theorem 2.1: ESST terminates by phase 9n+3");
                    assert_eq!(
                        out.edges_covered,
                        g.size(),
                        "{fam} n={n}: not all edges covered"
                    );
                    assert!(out.final_phase > g.order() as u64, "phase must exceed n");
                    costs.push(out.cost);
                    phases.push(out.final_phase);
                }
                let med = median(&costs);
                curve.push((n as f64, med as f64));
                row.push(format!("{med} (t={})", median(&phases)));
            }
            let slope = loglog_slope(&curve);
            row.push(format!("{slope:.2}"));
            slope_rows.push(vec![
                fam.to_string(),
                token.to_string(),
                format!("{slope:.2}"),
            ]);
            rows.push(row);
        }
    }
    print_table(
        "F3 — ESST median cost (and termination phase t) vs n; all runs cover all edges",
        &[
            "family", "token", "n=4", "n=6", "n=8", "n=10", "n=12", "slope",
        ],
        &rows,
    );

    let slopes: Vec<f64> = slope_rows
        .iter()
        .filter_map(|r| r[2].parse::<f64>().ok())
        .collect();
    let max_slope = slopes.iter().cloned().fold(f64::NAN, f64::max);
    println!(
        "\nmax cost slope over all (family, token): {max_slope:.2} — polynomial, as\n\
         Theorem 2.1 requires (the paper proves O(poly); degree depends on P)"
    );
}
