//! **perf_baseline** — the committed performance trajectory of the
//! simulator hot path.
//!
//! Times fifteen fixed scenarios that together cover every layer the
//! experiments exercise — end-to-end rendezvous runs under two adversaries,
//! raw trajectory-cursor streaming, the memoized symmetry-quotiented
//! minimax search (shallow reference depths, the depth-14 headline the
//! plain enumeration cannot reach, and a worker-count scaling sweep at
//! 1/2/4/8), a protocol-mode SGL run with search-style snapshot
//! checkpoints, the detector-on divergent matrix slice (the 18
//! rendezvous cells the divergence detector retires early), the
//! certified large-order SGL quiescence headline (`sgl_quiesce/ring16`),
//! and the ABBA-interleaved stalled-slice pair that prices the adaptive
//! stall detector's per-step cadence on a fixed 2M-traversal prefix —
//! with warmup and repeated trials,
//! and writes the median ns/op per scenario as JSON (default
//! `BENCH_baseline.json`, the repo-root perf baseline future PRs are
//! compared against).
//!
//! Usage:
//!
//! ```text
//! perf_baseline [--quick] [--out PATH]   # measure and write JSON
//! perf_baseline --check PATH             # validate an existing JSON file
//! ```
//!
//! `--quick` runs fewer trials (CI smoke); `--check` verifies that the file
//! parses and covers all expected scenarios (used by CI after `--quick`).

// Timing harness: wall-clock here is the product, not a determinism leak.
#![allow(clippy::disallowed_methods)]
use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{search_worst_case, RunConfig, RunEnd, Runtime, RvBehavior, SearchOptions};
use rv_trajectory::{Spec, TrajectoryCursor};
use serde::Serialize;
use std::time::Instant;

/// The scenarios a baseline file must cover, in reporting order.
pub const SCENARIOS: [&str; 15] = [
    "f1_rendezvous/ring12/greedy-avoid",
    "f1_rendezvous/ring12/lazy-second",
    "cursor_stream/gnp16/B8",
    "minimax/path3/depth10",
    "minimax/ring4/depth8",
    "minimax/ring4/depth14",
    "minimax_scaling/w1",
    "minimax_scaling/w2",
    "minimax_scaling/w4",
    "minimax_scaling/w8",
    "sgl/ring8/k3",
    "matrix_slice/diverge18",
    "sgl_quiesce/ring16",
    "sgl_stalled_slice/policy-off",
    "sgl_stalled_slice/policy-on",
];

/// One measured scenario, serialised into the baseline JSON.
#[derive(Clone, Debug, Serialize)]
struct Record {
    /// Scenario id (see [`SCENARIOS`]).
    scenario: String,
    /// Median over trials of per-operation wall time, nanoseconds.
    /// Fractional so high-throughput scenarios (tens of ns per op) keep
    /// sub-nanosecond resolution instead of quantizing to whole ns.
    median_ns_per_op: f64,
    /// Timed trials taken (after one warmup trial).
    trials: usize,
    /// Operations timed per trial.
    ops_per_trial: u64,
    /// What one operation is.
    unit: String,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| rv_bench::fail("--check requires a path argument"));
        check(path);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| rv_bench::fail("--out requires a path argument"))
                .clone()
        })
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let trials = if quick { 3 } else { 15 };

    let mut records = vec![
        rendezvous_scenario(AdversaryKind::GreedyAvoid, SCENARIOS[0], trials),
        rendezvous_scenario(AdversaryKind::LazySecond, SCENARIOS[1], trials),
        cursor_scenario(trials),
        minimax_scenario(trials),
        minimax_ring_scenario(trials),
        minimax_deep_scenario(trials),
    ];
    records.extend(minimax_scaling_scenarios(trials));
    records.push(sgl_protocol_scenario(trials));
    records.push(matrix_slice_scenario(trials));
    records.push(sgl_quiesce_scenario(trials));
    records.extend(sgl_stalled_slice_scenarios(trials));

    let json = serde_json::to_string(&records).expect("records serialise");
    rv_bench::write_atomic(&out_path, format!("{json}\n"))
        .unwrap_or_else(|e| rv_bench::fail(format!("cannot write {out_path}: {e}")));
    println!("\nwrote {} scenarios to {out_path}", records.len());
}

/// Times `reps` calls of `op` per trial — where one call of `op` performs
/// `ops_per_rep` logical operations — and reports the median per-operation
/// nanoseconds (fractional) over `trials` timed trials, after one untimed
/// warmup trial.
fn measure(
    scenario: &str,
    unit: &str,
    trials: usize,
    reps: u64,
    ops_per_rep: u64,
    mut op: impl FnMut(),
) -> Record {
    for _ in 0..reps {
        op(); // warmup
    }
    let ops_per_trial = reps * ops_per_rep;
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let start = Instant::now();
        for _ in 0..reps {
            op();
        }
        samples.push(start.elapsed().as_nanos() as f64 / ops_per_trial.max(1) as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let med = samples[samples.len() / 2];
    println!("{scenario}: median {med:.2} ns/{unit} ({trials} trials x {ops_per_trial} ops)");
    Record {
        scenario: scenario.to_string(),
        median_ns_per_op: med,
        trials,
        ops_per_trial,
        unit: unit.to_string(),
    }
}

/// End-to-end F1 rendezvous on ring(12), labels (6, 9) — mirrors the
/// `rendezvous` criterion bench so numbers line up across harnesses.
fn rendezvous_scenario(kind: AdversaryKind, scenario: &str, trials: usize) -> Record {
    let uxs = SeededUxs::quadratic();
    let g = GraphFamily::Ring.generate(12, 5);
    measure(scenario, "run", trials, 20, 1, || {
        let agents = vec![
            RvBehavior::new(&g, uxs, NodeId(0), Label::new(6).unwrap()),
            RvBehavior::new(&g, uxs, NodeId(g.order() / 2), Label::new(9).unwrap()),
        ];
        let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous());
        let mut adv = kind.build(3);
        let out = rt.run(adv.as_mut());
        assert_eq!(out.end, RunEnd::Meeting, "{scenario} must rendezvous");
        std::hint::black_box(out.total_traversals);
    })
}

/// Raw cursor streaming throughput: ns per traversal over a deep `B(8)`
/// trajectory on a Gnp graph — the simulator's inner-loop cost.
fn cursor_scenario(trials: usize) -> Record {
    const STEPS: u64 = 100_000;
    let uxs = SeededUxs::quadratic();
    let g = GraphFamily::Gnp.generate(16, 9);
    measure(SCENARIOS[2], "traversal", trials, 1, STEPS, || {
        let mut cur = TrajectoryCursor::new(&g, uxs, NodeId(0));
        cur.push(Spec::B(8));
        for _ in 0..STEPS {
            std::hint::black_box(cur.next_traversal());
        }
    })
}

/// The two-agent behavior set every minimax scenario searches over:
/// labels (1, 2) starting at opposite ends of the graph.
fn minimax_agents<'g>(g: &'g rv_graph::Graph, uxs: SeededUxs) -> Vec<RvBehavior<'g, SeededUxs>> {
    vec![
        RvBehavior::new(g, uxs, NodeId(0), Label::new(1).unwrap()),
        RvBehavior::new(g, uxs, NodeId(2), Label::new(2).unwrap()),
    ]
}

/// Memoized worst-case search (the F5c calibration reference) on path(3)
/// with real RV agents, horizon 10 actions, quotienting fingerprints by
/// the path's reflection group. The golden leaf count (724, see
/// `crates/sim/tests/memo_equivalence.rs`) is asserted so the baseline
/// can never silently time a semantically different search.
fn minimax_scenario(trials: usize) -> Record {
    let uxs = SeededUxs::quadratic();
    let g = rv_graph::generators::path(3);
    let autos = GraphFamily::Path.automorphisms(&g);
    let opts = SearchOptions {
        automorphisms: Some(&autos),
        ..SearchOptions::default()
    };
    measure(SCENARIOS[3], "search", trials, 1, 1, || {
        let report = search_worst_case(&g, || minimax_agents(&g, uxs), 10, &opts);
        assert_eq!(report.worst.schedules_explored, 724, "golden leaf count");
        std::hint::black_box(report.worst.schedules_explored);
    })
}

/// Memoized worst-case search on ring(4), horizon 8 — a wider schedule
/// tree than `path3` (both agents stay mobile on a cycle), so the search's
/// depth-≥2 frontier split carries real work on every branch, quotiented
/// by the ring's full dihedral group. Golden leaf count 196.
fn minimax_ring_scenario(trials: usize) -> Record {
    let uxs = SeededUxs::quadratic();
    let g = rv_graph::generators::ring(4);
    let autos = GraphFamily::Ring.automorphisms(&g);
    let opts = SearchOptions {
        automorphisms: Some(&autos),
        ..SearchOptions::default()
    };
    measure(SCENARIOS[4], "search", trials, 1, 1, || {
        let report = search_worst_case(&g, || minimax_agents(&g, uxs), 8, &opts);
        assert_eq!(report.worst.schedules_explored, 196, "golden leaf count");
        std::hint::black_box(report.worst.schedules_explored);
    })
}

/// Memoized search on ring(4) to horizon 14 — the depth plain enumeration
/// does not reach in interactive time (the unmemoized tree is hundreds of
/// times the depth-8 one; the transposition table collapses it to
/// milliseconds). Tracks the headline *capability* the table buys, not
/// just the speedup on trees the old search could already finish.
fn minimax_deep_scenario(trials: usize) -> Record {
    let uxs = SeededUxs::quadratic();
    let g = rv_graph::generators::ring(4);
    let autos = GraphFamily::Ring.automorphisms(&g);
    let opts = SearchOptions {
        automorphisms: Some(&autos),
        ..SearchOptions::default()
    };
    measure(SCENARIOS[5], "search", trials, 1, 1, || {
        let report = search_worst_case(&g, || minimax_agents(&g, uxs), 14, &opts);
        assert!(report.worst.schedules_explored > 0);
        std::hint::black_box(report.worst.schedules_explored);
    })
}

/// The multi-core scaling sweep: the same memoized ring(4)/depth-12
/// search at fixed worker counts 1, 2, 4 and 8, each reported as its own
/// scenario so the baseline records an actual scaling curve instead of
/// one auto-sized number. On a single-core host the curve is flat to
/// slightly worse — oversubscribed workers add steal and shard-lock
/// traffic without adding cores — and the baseline records that honestly;
/// the bit-identity contract (golden leaf count 2836 at every width) is
/// asserted inside the timed body.
fn minimax_scaling_scenarios(trials: usize) -> Vec<Record> {
    let uxs = SeededUxs::quadratic();
    let g = rv_graph::generators::ring(4);
    let autos = GraphFamily::Ring.automorphisms(&g);
    [1usize, 2, 4, 8]
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let opts = SearchOptions {
                workers: Some(w),
                automorphisms: Some(&autos),
                ..SearchOptions::default()
            };
            measure(SCENARIOS[6 + i], "search", trials, 1, 1, || {
                let report = search_worst_case(&g, || minimax_agents(&g, uxs), 12, &opts);
                assert_eq!(report.worst.schedules_explored, 2836, "golden leaf count");
                std::hint::black_box(report.worst.schedules_explored);
            })
        })
        .collect()
}

/// Protocol-mode SGL gossip on ring(8) with k = 3 agents under the fair
/// scheduler, checkpointing with [`Runtime::snapshot`] every 32 adversary
/// actions — the cadence a search over protocol schedules would use. The
/// run is a fixed-work prefix (cut off at 40k total traversals, well
/// before quiescence at ~1.3M) so the scenario times a deterministic
/// amount of protocol progress: the meeting log grows with gossip for the
/// whole prefix (meetings are exchanges, not terminals), so this scenario
/// prices both the per-run outcome handoff and repeated mid-run snapshots
/// of an ever-longer log.
fn sgl_protocol_scenario(trials: usize) -> Record {
    use rv_protocols::{SglBehavior, SglConfig};
    const SGL_CUTOFF: u64 = 40_000;
    let uxs = SeededUxs::quadratic();
    let g = GraphFamily::Ring.generate(8, 5);
    let labels: [u64; 3] = [6, 9, 14];
    measure(SCENARIOS[10], "run", trials, 5, 1, || {
        let agents: Vec<_> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                SglBehavior::new(
                    &g,
                    uxs,
                    NodeId(i * g.order() / labels.len()),
                    Label::new(l).unwrap(),
                    l + 1000,
                    SglConfig::default(),
                )
            })
            .collect();
        let mut rt = Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(SGL_CUTOFF));
        let mut adv = AdversaryKind::RoundRobin.build(3);
        let mut meetings = Vec::new();
        // `Runtime::step` is `run()`'s own loop body, driven manually so a
        // snapshot checkpoint can fire every 32 actions.
        while rt.step(adv.as_mut(), &mut meetings).is_none() {
            if rt.actions().is_multiple_of(32) {
                std::hint::black_box(rt.snapshot().actions());
            }
        }
        assert_eq!(rt.total_traversals(), SGL_CUTOFF, "fixed-work prefix");
        std::hint::black_box(rt.actions());
    })
}

/// The detector-on divergent matrix slice: the 18 rendezvous matrix
/// cells (all `unscaled`-ablation) whose piece number stagnates while
/// cost grows, each run to retirement under `DivergenceDetector`. Before
/// the stop-policy layer each of these burned the full 100k-traversal
/// matrix budget; the detector retires each at ≈ 5.1k, so this scenario
/// prices exactly what the matrix saves — plus the detector's own
/// progress-record overhead on the run loop.
fn matrix_slice_scenario(trials: usize) -> Record {
    use rv_core::RvVariant;
    use rv_sim::DivergenceDetector;
    // The 18 F6-divergence cells of the scenario matrix (family, order,
    // adversary), graph seed 5, labels (6, 9), adversary seed 3.
    let slice: [(GraphFamily, usize, AdversaryKind); 18] = [
        (GraphFamily::Ring, 8, AdversaryKind::LazySecond),
        (GraphFamily::Ring, 12, AdversaryKind::LazySecond),
        (GraphFamily::Ring, 12, AdversaryKind::GreedyAvoid),
        (GraphFamily::Ring, 16, AdversaryKind::RoundRobin),
        (GraphFamily::Ring, 16, AdversaryKind::LazySecond),
        (GraphFamily::Ring, 16, AdversaryKind::GreedyAvoid),
        (GraphFamily::Ring, 16, AdversaryKind::EagerMeet),
        (GraphFamily::Path, 8, AdversaryKind::LazySecond),
        (GraphFamily::Path, 12, AdversaryKind::LazySecond),
        (GraphFamily::Path, 12, AdversaryKind::GreedyAvoid),
        (GraphFamily::Path, 16, AdversaryKind::RoundRobin),
        (GraphFamily::Path, 16, AdversaryKind::LazySecond),
        (GraphFamily::Path, 16, AdversaryKind::GreedyAvoid),
        (GraphFamily::Path, 16, AdversaryKind::EagerMeet),
        (GraphFamily::RandomTree, 16, AdversaryKind::RoundRobin),
        (GraphFamily::RandomTree, 16, AdversaryKind::LazySecond),
        (GraphFamily::RandomTree, 16, AdversaryKind::GreedyAvoid),
        (GraphFamily::RandomTree, 16, AdversaryKind::EagerMeet),
    ];
    let unscaled = RvVariant {
        scaled_params: false,
        ..RvVariant::default()
    };
    let uxs = SeededUxs::quadratic();
    let graphs: Vec<_> = slice
        .iter()
        .map(|&(fam, n, _)| fam.generate(n, 5))
        .collect();
    measure(SCENARIOS[11], "run", trials, 2, 18, || {
        for (i, &(_, _, kind)) in slice.iter().enumerate() {
            let g = &graphs[i];
            let agents = vec![
                RvBehavior::with_variant(g, uxs, NodeId(0), Label::new(6).unwrap(), unscaled),
                RvBehavior::with_variant(
                    g,
                    uxs,
                    NodeId(g.order() / 2),
                    Label::new(9).unwrap(),
                    unscaled,
                ),
            ];
            let mut rt = Runtime::new(g, agents, RunConfig::rendezvous().with_cutoff(100_000));
            let mut adv = kind.build(3);
            let mut policy = DivergenceDetector::default();
            let out = rt.run_with_policy(adv.as_mut(), &mut policy);
            assert_eq!(out.end, RunEnd::Diverged, "slice cells must diverge");
            std::hint::black_box(out.total_traversals);
        }
    })
}

/// The certified large-order SGL quiescence headline: ring(16), k = 2,
/// `lazy(1)` — the adversary that pins the token ghost at a node forever.
/// Before the suspended-token certificate this cell needed ≈ 19.6M
/// traversals to quiesce naturally; the explorer's ESST now certifies the
/// pinned token and closes Phase 1 early, retiring the whole run at the
/// pinned cost below (a > 30× cut). The exact quiescence cost is asserted
/// in the timed body so the baseline can never silently time a
/// semantically different run.
fn sgl_quiesce_scenario(trials: usize) -> Record {
    use rv_protocols::{SglBehavior, SglConfig};
    use rv_sim::AdaptiveThreshold;
    const QUIESCE_COST: u64 = 645_705;
    let uxs = SeededUxs::quadratic();
    let g = GraphFamily::Ring.generate(16, 5);
    let labels: [u64; 2] = [6, 9];
    measure(SCENARIOS[12], "run", trials, 1, 1, || {
        let agents: Vec<_> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                SglBehavior::new(
                    &g,
                    uxs,
                    NodeId(i * g.order() / labels.len()),
                    Label::new(l).unwrap(),
                    l + 1000,
                    SglConfig::default(),
                )
            })
            .collect();
        let mut rt = Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(50_000_000));
        let mut adv = AdversaryKind::LazySecond.build(3);
        let mut policy = AdaptiveThreshold::default();
        let out = rt.run_with_policy(adv.as_mut(), &mut policy);
        assert_eq!(out.end, RunEnd::AllParked, "ring16/lazy(1) must quiesce");
        assert_eq!(
            out.total_traversals, QUIESCE_COST,
            "certified quiescence cost"
        );
        std::hint::black_box(out.actions);
    })
}

/// The stalled-slice pair: the same fixed 2M-traversal SGL prefix
/// (ring(16), k = 2, round-robin, suspension census disarmed so the run
/// cannot retire early) timed with the adaptive stall detector off and
/// on. The two scenarios differ only in the per-step `StopPolicy` work,
/// so their ratio prices the detector's cadence on a multi-million-
/// traversal run. Trials are **ABBA-interleaved** (off-on on even trials,
/// on-off on odd ones) so slow drift — thermal, frequency, cache — lands
/// symmetrically on both medians instead of biasing whichever ran last.
fn sgl_stalled_slice_scenarios(trials: usize) -> Vec<Record> {
    use rv_protocols::{SglBehavior, SglConfig};
    use rv_sim::AdaptiveThreshold;
    const PREFIX: u64 = 2_000_000;
    let uxs = SeededUxs::quadratic();
    let g = GraphFamily::Ring.generate(16, 5);
    let labels: [u64; 2] = [6, 9];
    let config = SglConfig {
        suspension: None,
        ..SglConfig::default()
    };
    let run = |with_policy: bool| {
        let agents: Vec<_> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                SglBehavior::new(
                    &g,
                    uxs,
                    NodeId(i * g.order() / labels.len()),
                    Label::new(l).unwrap(),
                    l + 1000,
                    config,
                )
            })
            .collect();
        let mut rt = Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(PREFIX));
        let mut adv = AdversaryKind::RoundRobin.build(3);
        let start = Instant::now();
        let out = if with_policy {
            let mut policy = AdaptiveThreshold::default();
            rt.run_with_policy(adv.as_mut(), &mut policy)
        } else {
            rt.run(adv.as_mut())
        };
        let elapsed = start.elapsed();
        assert_eq!(out.end, RunEnd::Cutoff, "the prefix must be fixed work");
        assert_eq!(out.total_traversals, PREFIX, "fixed-work prefix");
        std::hint::black_box(out.actions);
        elapsed.as_nanos() as f64
    };
    // Warmup both variants once, then interleave.
    run(false);
    run(true);
    let mut off = Vec::with_capacity(trials);
    let mut on = Vec::with_capacity(trials);
    for t in 0..trials {
        if t % 2 == 0 {
            off.push(run(false));
            on.push(run(true));
        } else {
            on.push(run(true));
            off.push(run(false));
        }
    }
    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        v[v.len() / 2]
    };
    let (m_off, m_on) = (median(off), median(on));
    println!(
        "{}: median {m_off:.2} ns/run ({trials} trials x 1 ops)",
        SCENARIOS[13]
    );
    println!(
        "{}: median {m_on:.2} ns/run ({trials} trials x 1 ops)",
        SCENARIOS[14]
    );
    vec![
        Record {
            scenario: SCENARIOS[13].to_string(),
            median_ns_per_op: m_off,
            trials,
            ops_per_trial: 1,
            unit: "run".to_string(),
        },
        Record {
            scenario: SCENARIOS[14].to_string(),
            median_ns_per_op: m_on,
            trials,
            ops_per_trial: 1,
            unit: "run".to_string(),
        },
    ]
}

/// `--check`: the CI smoke gate. Asserts the file parses as JSON and has a
/// positive `median_ns_per_op` for every expected scenario. Not a timing
/// gate — numbers are machine-dependent; coverage and well-formedness are
/// not.
fn check(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| rv_bench::fail(format!("cannot read baseline file {path}: {e}")));
    let doc = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("baseline file {path} is not valid JSON: {e}"));
    let records = doc
        .as_array()
        .unwrap_or_else(|| panic!("baseline file {path} must be a JSON array"));
    for scenario in SCENARIOS {
        let rec = records
            .iter()
            .find(|r| r.get("scenario").and_then(|s| s.as_str()) == Some(scenario))
            .unwrap_or_else(|| panic!("baseline file {path} is missing scenario {scenario}"));
        let ns = rec
            .get("median_ns_per_op")
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("scenario {scenario} has no numeric median_ns_per_op"));
        assert!(ns > 0.0, "scenario {scenario} has zero timing");
    }
    println!("{path}: OK — {} scenarios covered", SCENARIOS.len());
}
