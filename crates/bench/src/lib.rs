#![forbid(unsafe_code)]
//! Shared infrastructure for the experiment binaries (`src/bin/expt_*`)
//! that regenerate every table and figure of the paper — see DESIGN.md §3
//! for the experiment index and EXPERIMENTS.md for recorded results.

use serde::Serialize;

pub mod cells;

// Atomic file replacement now lives in `rv_store` (the store's segment
// writes share it); re-exported so the experiment binaries keep their
// `rv_bench::write_atomic` spelling — and so the `api-atomic-output-write`
// lint has one blessed path to point at.
pub use rv_store::write_atomic;

/// One measured data point of an experiment, serialisable to JSON lines.
#[derive(Clone, Debug, Serialize)]
pub struct Sample {
    /// Experiment id (e.g. "F1").
    pub experiment: String,
    /// Graph family or scenario name.
    pub scenario: String,
    /// Graph order.
    pub n: usize,
    /// Adversary name (empty when not applicable).
    pub adversary: String,
    /// Free-form parameter column (label value, team size, …).
    pub param: u64,
    /// Measured cost (total edge traversals), `None` if the run was cut off.
    pub cost: Option<u64>,
}

/// Violations of Algorithm SGL's quiescence postcondition core, shared
/// by the scenario matrix's `complete` column and `expt_f4_sgl` so the
/// two cannot drift: every agent output exactly the full label set with
/// the right gossip values (`value_of(label)`), and the minimal agent
/// met every teammate — read off the meeting log's per-agent views, no
/// `to_vec()` of a potentially million-exchange log. Returns one message
/// per violation (empty = postcondition holds). Callers layer their own
/// extras on top (expt F4 adds the `solve`-derived team-size / leader /
/// renaming consistency checks).
pub fn sgl_postcondition_violations<P: rv_explore::ExplorationProvider + Clone>(
    rt: &rv_sim::Runtime<rv_protocols::SglBehavior<P>>,
    labels: &[u64],
    value_of: impl Fn(u64) -> u64,
) -> Vec<String> {
    let mut out = Vec::new();
    let mut expected: Vec<u64> = labels.to_vec();
    expected.sort_unstable();
    for i in 0..rt.agent_count() {
        let Some(set) = rt.behavior(i).output() else {
            out.push(format!("agent {i} parked without an output"));
            continue;
        };
        if set.labels() != expected {
            out.push(format!(
                "agent {i} output the wrong label set {:?}",
                set.labels()
            ));
        }
        for (l, v) in set.iter() {
            if v != value_of(l) {
                out.push(format!("gossip value mismatch for label {l}"));
            }
        }
    }
    // The completion-threshold substitution's soundness condition
    // (DESIGN.md §4): the minimal agent heard from everyone — directly
    // suffices, because its collection sweep visits every ghost.
    let min_idx = (0..rt.agent_count())
        .min_by_key(|&i| rt.behavior(i).label().value())
        .expect("at least two agents");
    let log = rt.meetings();
    for j in 0..rt.agent_count() {
        if j != min_idx && !log.pair_met(min_idx, j) {
            out.push(format!("the minimal agent never met agent {j}"));
        }
    }
    out
}

/// Prints a diagnostic to stderr and exits with a nonzero status — the
/// experiment binaries' failure path for I/O and usage errors (a clean
/// one-line message, not an `expect` backtrace).
pub fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2)
}

/// Renders a markdown-style table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical
/// polynomial degree of a cost curve. Ignores non-positive values.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Median of a non-empty slice (clones and sorts).
pub fn median(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty(), "median of empty slice");
    let mut v = xs.to_vec();
    v.sort_unstable();
    v[v.len() / 2]
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loglog_slope_recovers_power_laws() {
        let quad: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((loglog_slope(&quad) - 2.0).abs() < 1e-9);
        let cubic: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, (i * i * i) as f64)).collect();
        assert!((loglog_slope(&cubic) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_slope_detects_exponentials_as_superlinear_growth() {
        let exp: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, (2f64).powi(i))).collect();
        assert!(loglog_slope(&exp) > 4.0);
    }

    #[test]
    fn median_and_geomean() {
        assert_eq!(median(&[5, 1, 9]), 5);
        assert_eq!(median(&[4]), 4);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn samples_serialise_to_json_lines() {
        // The `--json` path of the experiment binaries depends on this
        // derive producing one self-contained JSON object per sample.
        let s = Sample {
            experiment: "F1".into(),
            scenario: "ring".into(),
            n: 12,
            adversary: "greedy-avoid".into(),
            param: 3,
            cost: Some(41),
        };
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            r#"{"experiment":"F1","scenario":"ring","n":12,"adversary":"greedy-avoid","param":3,"cost":41}"#
        );
        let cut = Sample { cost: None, ..s };
        assert!(serde_json::to_string(&cut)
            .unwrap()
            .ends_with(r#""cost":null}"#));
    }

    #[test]
    fn table_rendering_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "xx".into()], vec!["22".into(), "y".into()]],
        );
    }
}
