//! A down-counting repetition counter with a native-`u64` fast path.

use crate::Big;

/// A repetition counter that stays in native `u64` arithmetic until the
/// count exceeds `2^64 - 1`, and only then spills to [`Big`].
///
/// The trajectory combinators `B`, `K` and `Ω` repeat their bodies
/// astronomically many times, so the streaming cursor decrements a counter
/// on every body replay — millions of times per simulated run. Almost all
/// counters encountered in practice fit a machine word; this type keeps
/// those decrements branch-predictable single-word operations while still
/// being exact past `2^64` (where [`Big`] takes over).
///
/// The representation is canonical: the [`Big`] variant is used **iff** the
/// value does not fit `u64`, so derived equality agrees with numeric
/// equality. Decrementing a spilled counter demotes it back to the inline
/// variant as soon as the value fits.
///
/// # Examples
///
/// ```
/// use rv_arith::{Big, RepCount};
///
/// let mut c = RepCount::from(2u64);
/// assert!(c.try_decrement());
/// assert!(c.try_decrement());
/// assert!(!c.try_decrement()); // exhausted
///
/// // Values past 2^64 spill to Big and demote on the way back down.
/// let mut big = RepCount::from(&Big::from(u64::MAX as u128 + 1));
/// assert!(big.try_decrement());
/// assert_eq!(big, RepCount::from(u64::MAX));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum RepCount {
    /// Any value `< 2^64`, stored inline.
    Small(u64),
    /// A value `>= 2^64` (canonical invariant).
    Spilled(Big),
}

impl RepCount {
    /// The exhausted counter.
    pub const fn zero() -> Self {
        RepCount::Small(0)
    }

    /// `true` once the counter reaches zero.
    pub fn is_zero(&self) -> bool {
        matches!(self, RepCount::Small(0))
    }

    /// Decrements by one; returns `false` (leaving the counter untouched)
    /// if it is already exhausted.
    pub fn try_decrement(&mut self) -> bool {
        match self {
            RepCount::Small(0) => false,
            RepCount::Small(v) => {
                *v -= 1;
                true
            }
            RepCount::Spilled(b) => {
                let next = b
                    .checked_sub(&Big::one())
                    .expect("spilled counters are >= 2^64 > 0");
                *self = RepCount::from(&next);
                true
            }
        }
    }

    /// The remaining count as a [`Big`] (exact at any magnitude).
    pub fn to_big(&self) -> Big {
        match self {
            RepCount::Small(v) => Big::from(*v),
            RepCount::Spilled(b) => b.clone(),
        }
    }
}

impl From<u64> for RepCount {
    fn from(v: u64) -> Self {
        RepCount::Small(v)
    }
}

impl From<&Big> for RepCount {
    /// Selects the canonical representation for the value of `b`.
    fn from(b: &Big) -> Self {
        match b.to_u128() {
            Some(v) if v <= u64::MAX as u128 => RepCount::Small(v as u64),
            _ => RepCount::Spilled(b.clone()),
        }
    }
}

impl From<Big> for RepCount {
    fn from(b: Big) -> Self {
        RepCount::from(&b)
    }
}

impl std::fmt::Debug for RepCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Value, not representation — mirrors `Big`'s Debug.
        match self {
            RepCount::Small(v) => write!(f, "RepCount({v})"),
            RepCount::Spilled(b) => write!(f, "RepCount({b})"),
        }
    }
}

impl std::fmt::Display for RepCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepCount::Small(v) => write!(f, "{v}"),
            RepCount::Spilled(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_counts_down_to_zero() {
        let mut c = RepCount::from(3u64);
        let mut n = 0;
        while c.try_decrement() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(c.is_zero());
        assert!(!c.try_decrement(), "exhausted counters stay exhausted");
    }

    #[test]
    fn from_big_is_canonical() {
        assert_eq!(
            RepCount::from(&Big::from(7u64)),
            RepCount::Small(7),
            "values below 2^64 stay inline"
        );
        let boundary = Big::from(u64::MAX as u128 + 1);
        assert!(matches!(RepCount::from(&boundary), RepCount::Spilled(_)));
        let huge = Big::from(2u64).pow(200);
        assert!(matches!(RepCount::from(&huge), RepCount::Spilled(_)));
    }

    #[test]
    fn spilled_demotes_at_the_boundary() {
        let mut c = RepCount::from(&Big::from(u64::MAX as u128 + 2));
        assert!(c.try_decrement());
        assert!(matches!(c, RepCount::Spilled(_)), "still >= 2^64");
        assert!(c.try_decrement());
        assert_eq!(c, RepCount::Small(u64::MAX), "demoted once it fits");
    }

    #[test]
    fn to_big_round_trips() {
        for v in [Big::from(0u64), Big::from(41u64), Big::from(2u64).pow(130)] {
            assert_eq!(RepCount::from(&v).to_big(), v);
        }
    }

    #[test]
    fn counting_matches_big_subtraction() {
        // Decrementing k times equals subtracting k, across the spill
        // boundary.
        let start = Big::from(u64::MAX as u128 + 3);
        let mut c = RepCount::from(&start);
        for i in 1..=5u64 {
            assert!(c.try_decrement());
            assert_eq!(c.to_big(), &start - &Big::from(i));
        }
    }

    #[test]
    fn debug_and_display_show_the_value() {
        assert_eq!(format!("{:?}", RepCount::from(9u64)), "RepCount(9)");
        assert_eq!(RepCount::from(9u64).to_string(), "9");
        let big = RepCount::from(&Big::from(10u64).pow(25));
        assert_eq!(big.to_string(), format!("1{}", "0".repeat(25)));
    }
}
