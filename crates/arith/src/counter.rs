//! A down-counting repetition counter with a native-`u64` fast path.

use crate::Big;

/// A repetition counter that stays in native `u64` arithmetic until the
/// count exceeds `2^64 - 1`, and only then spills to [`Big`].
///
/// The trajectory combinators `B`, `K` and `Ω` repeat their bodies
/// astronomically many times, so the streaming cursor decrements a counter
/// on every body replay — millions of times per simulated run. Almost all
/// counters encountered in practice fit a machine word; this type keeps
/// those decrements branch-predictable single-word operations while still
/// being exact past `2^64` (where [`Big`] takes over).
///
/// The representation is canonical — spilled **iff** the value does not
/// fit `u64` — and the internals are private, so the invariant cannot be
/// constructed around from outside the crate: every value flows through
/// the canonicalising constructors ([`RepCount::from`]), which is what
/// makes derived equality agree with numeric equality and keeps
/// [`RepCount::try_decrement`]'s non-zero-when-spilled expectation
/// unreachable. (The enum used to be public; a hand-built
/// `Spilled(small)` broke equality and could panic `try_decrement`.)
/// Decrementing a spilled counter demotes it back to the inline
/// representation as soon as the value fits; [`RepCount::is_spilled`]
/// observes the representation without exposing it.
///
/// # Examples
///
/// ```
/// use rv_arith::{Big, RepCount};
///
/// let mut c = RepCount::from(2u64);
/// assert!(c.try_decrement());
/// assert!(c.try_decrement());
/// assert!(!c.try_decrement()); // exhausted
///
/// // Values past 2^64 spill to Big and demote on the way back down.
/// let mut big = RepCount::from(&Big::from(u64::MAX as u128 + 1));
/// assert!(big.is_spilled());
/// assert!(big.try_decrement());
/// assert_eq!(big, RepCount::from(u64::MAX));
/// assert!(!big.is_spilled());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RepCount(Repr);

/// The private representation. `Spilled` holds a value `>= 2^64`
/// (canonical invariant, enforced by the constructors).
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Any value `< 2^64`, stored inline.
    Small(u64),
    /// A value `>= 2^64`.
    Spilled(Big),
}

impl RepCount {
    /// The exhausted counter.
    pub const fn zero() -> Self {
        RepCount(Repr::Small(0))
    }

    /// `true` once the counter reaches zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.0, Repr::Small(0))
    }

    /// `true` while the value exceeds `u64::MAX` (the heap-backed
    /// representation). Canonical: `is_spilled()` iff the value does not
    /// fit a machine word.
    pub fn is_spilled(&self) -> bool {
        matches!(self.0, Repr::Spilled(_))
    }

    /// Decrements by one; returns `false` (leaving the counter untouched)
    /// if it is already exhausted.
    pub fn try_decrement(&mut self) -> bool {
        match &mut self.0 {
            Repr::Small(0) => false,
            Repr::Small(v) => {
                *v -= 1;
                true
            }
            Repr::Spilled(b) => {
                let next = b
                    .checked_sub(&Big::one())
                    .expect("spilled counters are >= 2^64 > 0");
                *self = RepCount::from(&next);
                true
            }
        }
    }

    /// The remaining count as a [`Big`] (exact at any magnitude).
    pub fn to_big(&self) -> Big {
        match &self.0 {
            Repr::Small(v) => Big::from(*v),
            Repr::Spilled(b) => b.clone(),
        }
    }
}

impl From<u64> for RepCount {
    fn from(v: u64) -> Self {
        RepCount(Repr::Small(v))
    }
}

impl From<&Big> for RepCount {
    /// Selects the canonical representation for the value of `b`.
    fn from(b: &Big) -> Self {
        match b.to_u128() {
            Some(v) if v <= u64::MAX as u128 => RepCount(Repr::Small(v as u64)),
            _ => RepCount(Repr::Spilled(b.clone())),
        }
    }
}

impl From<Big> for RepCount {
    fn from(b: Big) -> Self {
        RepCount::from(&b)
    }
}

impl std::fmt::Debug for RepCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Value, not representation — mirrors `Big`'s Debug.
        match &self.0 {
            Repr::Small(v) => write!(f, "RepCount({v})"),
            Repr::Spilled(b) => write!(f, "RepCount({b})"),
        }
    }
}

impl std::fmt::Display for RepCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Repr::Small(v) => write!(f, "{v}"),
            Repr::Spilled(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_counts_down_to_zero() {
        let mut c = RepCount::from(3u64);
        let mut n = 0;
        while c.try_decrement() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(c.is_zero());
        assert!(!c.try_decrement(), "exhausted counters stay exhausted");
    }

    #[test]
    fn from_big_is_canonical() {
        assert_eq!(
            RepCount::from(&Big::from(7u64)),
            RepCount::from(7u64),
            "values below 2^64 stay inline"
        );
        assert!(!RepCount::from(&Big::from(7u64)).is_spilled());
        let boundary = Big::from(u64::MAX as u128 + 1);
        assert!(RepCount::from(&boundary).is_spilled());
        let huge = Big::from(2u64).pow(200);
        assert!(RepCount::from(&huge).is_spilled());
        assert!(
            !RepCount::from(u64::MAX).is_spilled(),
            "u64::MAX is the largest inline value"
        );
    }

    #[test]
    fn spilled_demotes_at_the_boundary() {
        let mut c = RepCount::from(&Big::from(u64::MAX as u128 + 2));
        assert!(c.try_decrement());
        assert!(c.is_spilled(), "still >= 2^64");
        assert!(c.try_decrement());
        assert_eq!(c, RepCount::from(u64::MAX), "demoted once it fits");
        assert!(!c.is_spilled());
    }

    #[test]
    fn to_big_round_trips() {
        for v in [Big::from(0u64), Big::from(41u64), Big::from(2u64).pow(130)] {
            assert_eq!(RepCount::from(&v).to_big(), v);
        }
    }

    #[test]
    fn equality_is_numeric_because_representation_is_canonical() {
        // The struct wrapper leaves no way to build a non-canonical
        // Spilled(small), so representation equality IS numeric equality:
        // equal values constructed via u64 and via Big always compare
        // equal, across the spill boundary in both directions.
        for v in [0u64, 1, 41, u64::MAX] {
            assert_eq!(RepCount::from(v), RepCount::from(&Big::from(v)));
        }
        let mut down = RepCount::from(&Big::from(u64::MAX as u128 + 1));
        assert!(down.try_decrement());
        assert_eq!(down, RepCount::from(u64::MAX));
    }

    #[test]
    fn counting_matches_big_subtraction() {
        // Decrementing k times equals subtracting k, across the spill
        // boundary.
        let start = Big::from(u64::MAX as u128 + 3);
        let mut c = RepCount::from(&start);
        for i in 1..=5u64 {
            assert!(c.try_decrement());
            assert_eq!(c.to_big(), &start - &Big::from(i));
        }
    }

    #[test]
    fn debug_and_display_show_the_value() {
        assert_eq!(format!("{:?}", RepCount::from(9u64)), "RepCount(9)");
        assert_eq!(RepCount::from(9u64).to_string(), "9");
        let big = RepCount::from(&Big::from(10u64).pow(25));
        assert_eq!(big.to_string(), format!("1{}", "0".repeat(25)));
    }
}
