//! Decimal formatting and parsing for [`Big`].

use crate::Big;
use std::fmt;
use std::str::FromStr;

impl fmt::Display for Big {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel off 19 decimal digits at a time (largest power of 10 in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks
            .pop()
            .expect("non-zero Big yields at least one decimal chunk")
            .to_string();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

/// Error parsing a decimal string into a [`Big`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigError {
    offending: char,
}

impl fmt::Display for ParseBigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid digit {:?} in Big literal", self.offending)
    }
}

impl std::error::Error for ParseBigError {}

impl FromStr for Big {
    type Err = ParseBigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigError { offending: ' ' });
        }
        let mut acc = Big::zero();
        let ten = Big::from(10u64);
        for ch in s.chars() {
            let d = ch.to_digit(10).ok_or(ParseBigError { offending: ch })?;
            acc = &acc * &ten + Big::from(d as u64);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_zero_and_small() {
        assert_eq!(Big::zero().to_string(), "0");
        assert_eq!(Big::from(42u64).to_string(), "42");
    }

    #[test]
    fn display_pads_inner_chunks_with_zeros() {
        // 10^19 must print as 1 followed by nineteen zeros, not "1" ++ "0".
        let v = Big::from(10u64).pow(19);
        assert_eq!(v.to_string(), format!("1{}", "0".repeat(19)));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for s in [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            let v: Big = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_non_digits() {
        assert!("12a3".parse::<Big>().is_err());
        assert!("".parse::<Big>().is_err());
    }

    #[test]
    fn display_supports_width_formatting() {
        assert_eq!(format!("{:>6}", Big::from(42u64)), "    42");
    }
}
