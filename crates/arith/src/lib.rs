#![forbid(unsafe_code)]
//! Minimal arbitrary-precision unsigned integer arithmetic.
//!
//! The cost analysis of *How to Meet Asynchronously at Polynomial Cost*
//! (Dieudonné, Pelc, Villain; PODC 2013) defines length recurrences
//! (`X*, Q*, Y*, Z*, A*, B*, K*, Ω*` — Theorem 3.1) whose values overflow
//! `u128` already for modest parameters. This crate provides exactly the
//! operations needed to evaluate those recurrences and the worst-case bound
//! `Π(n, m)` precisely: addition, subtraction, multiplication, small powers,
//! comparison, division by a small divisor, and decimal formatting.
//!
//! It is deliberately tiny and dependency-free; it is *not* a general-purpose
//! bignum (no negative numbers, no full division, no bit operations beyond
//! what the recurrences need).
//!
//! # Examples
//!
//! ```
//! use rv_arith::Big;
//!
//! let a = Big::from(10u64).pow(30);
//! let b = &a * &a;
//! assert_eq!(b.to_string(), format!("1{}", "0".repeat(60)));
//! assert!(b > a);
//! ```

mod big;
mod counter;
mod fmt;

pub use big::Big;
pub use counter::RepCount;
pub use fmt::ParseBigError;
