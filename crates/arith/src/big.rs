//! Core representation and arithmetic for [`Big`].

use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Mul, MulAssign, Sub, SubAssign};

/// An arbitrary-precision unsigned integer.
///
/// Values below `2^128` are stored inline (no heap allocation — the length
/// recurrences this crate serves are evaluated millions of times inside the
/// simulator's replay loops, and almost all intermediate values fit);
/// larger values spill to little-endian `u64` limbs. The representation is
/// canonical: a value is heap-allocated **iff** it needs three or more
/// limbs, so derived equality and hashing agree with numeric equality.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Big {
    repr: Repr,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Repr {
    /// Any value `< 2^128`, stored inline.
    Small(u128),
    /// A value `>= 2^128`: little-endian limbs, at least three of them,
    /// no trailing zero limbs.
    Heap(Vec<u64>),
}

impl Big {
    /// The value `0`.
    pub const fn zero() -> Self {
        Big {
            repr: Repr::Small(0),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Big {
            repr: Repr::Small(1),
        }
    }

    /// Returns `true` if this value is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => 128 - v.leading_zeros() as usize,
            Repr::Heap(limbs) => {
                let top = *limbs.last().expect("heap repr is never empty");
                64 * (limbs.len() - 1) + (64 - top.leading_zeros() as usize)
            }
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match &self.repr {
            Repr::Small(v) => Some(*v),
            Repr::Heap(_) => None,
        }
    }

    /// Converts to `f64`, saturating to `f64::INFINITY` on overflow.
    ///
    /// Useful for plotting/log-scale output where exactness is not needed.
    pub fn to_f64(&self) -> f64 {
        match &self.repr {
            Repr::Small(v) => *v as f64,
            Repr::Heap(limbs) => {
                let mut acc = 0.0f64;
                for &limb in limbs.iter().rev() {
                    acc = acc * 1.8446744073709552e19 + limb as f64;
                    if acc.is_infinite() {
                        return f64::INFINITY;
                    }
                }
                acc
            }
        }
    }

    /// Base-10 logarithm as `f64` (`-inf` for zero); accurate to ~1e-9,
    /// enough for "how many digits" style reporting far beyond `f64` range.
    pub fn log10(&self) -> f64 {
        match &self.repr {
            Repr::Small(0) => f64::NEG_INFINITY,
            Repr::Small(v) => (*v as f64).log10(),
            Repr::Heap(limbs) => {
                // Use the top two limbs for the mantissa and count the rest.
                let n = limbs.len();
                let top = (limbs[n - 1] as f64) * 1.8446744073709552e19 + limbs[n - 2] as f64;
                top.log10() + 64.0 * (n - 2) as f64 * std::f64::consts::LOG10_2
            }
        }
    }

    /// `self ^ exp` by binary exponentiation.
    ///
    /// # Panics
    ///
    /// Panics on `0^0` (mathematically ambiguous; callers in this workspace
    /// never need it).
    pub fn pow(&self, exp: u64) -> Big {
        assert!(
            !(self.is_zero() && exp == 0),
            "Big::pow: 0^0 is not defined"
        );
        let mut base = self.clone();
        let mut exp = exp;
        let mut acc = Big::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Subtraction returning `None` if `other > self`.
    pub fn checked_sub(&self, other: &Big) -> Option<Big> {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return a.checked_sub(*b).map(Big::from);
        }
        if self < other {
            return None;
        }
        let mut a_buf = [0u64; 2];
        let mut b_buf = [0u64; 2];
        let a = self.limbs(&mut a_buf);
        let b = other.limbs(&mut b_buf);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &limb) in a.iter().enumerate() {
            let rhs = b.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 | b2) as u64;
        }
        debug_assert_eq!(borrow, 0);
        Some(Big::from_limbs(out))
    }

    /// Divides by a small divisor, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    pub fn div_rem_u64(&self, divisor: u64) -> (Big, u64) {
        assert_ne!(divisor, 0, "Big::div_rem_u64: division by zero");
        match &self.repr {
            Repr::Small(v) => (Big::from(v / divisor as u128), (v % divisor as u128) as u64),
            Repr::Heap(limbs) => {
                let mut quot = vec![0u64; limbs.len()];
                let mut rem = 0u128;
                for i in (0..limbs.len()).rev() {
                    let cur = rem << 64 | limbs[i] as u128;
                    quot[i] = (cur / divisor as u128) as u64;
                    rem = cur % divisor as u128;
                }
                (Big::from_limbs(quot), rem as u64)
            }
        }
    }

    /// The little-endian limb view, materialising an inline value into the
    /// caller's stack buffer.
    fn limbs<'a>(&'a self, buf: &'a mut [u64; 2]) -> &'a [u64] {
        match &self.repr {
            Repr::Small(v) => {
                buf[0] = *v as u64;
                buf[1] = (*v >> 64) as u64;
                let n = 2 - (*v >> 64 == 0) as usize - (*v == 0) as usize;
                &buf[..n]
            }
            Repr::Heap(limbs) => limbs,
        }
    }

    /// Builds from little-endian limbs, trimming trailing zeros and
    /// selecting the canonical representation.
    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Big {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => Big::zero(),
            1 => Big::from(limbs[0] as u128),
            2 => Big::from((limbs[1] as u128) << 64 | limbs[0] as u128),
            _ => Big {
                repr: Repr::Heap(limbs),
            },
        }
    }
}

impl Default for Big {
    fn default() -> Self {
        Big::zero()
    }
}

impl std::fmt::Debug for Big {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Debug output in terms of the value, not the representation.
        write!(f, "Big({self})")
    }
}

impl From<u64> for Big {
    fn from(v: u64) -> Self {
        Big {
            repr: Repr::Small(v as u128),
        }
    }
}

impl From<u128> for Big {
    fn from(v: u128) -> Self {
        Big {
            repr: Repr::Small(v),
        }
    }
}

impl From<usize> for Big {
    fn from(v: usize) -> Self {
        Big::from(v as u64)
    }
}

impl From<u32> for Big {
    fn from(v: u32) -> Self {
        Big::from(v as u64)
    }
}

impl Ord for Big {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // Heap values are >= 2^128 by the canonical invariant.
            (Repr::Small(_), Repr::Heap(_)) => Ordering::Less,
            (Repr::Heap(_), Repr::Small(_)) => Ordering::Greater,
            (Repr::Heap(a), Repr::Heap(b)) => match a.len().cmp(&b.len()) {
                Ordering::Equal => a.iter().rev().cmp(b.iter().rev()),
                ord => ord,
            },
        }
    }
}

impl PartialOrd for Big {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &Big {
    type Output = Big;
    fn add(self, rhs: &Big) -> Big {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            let (sum, overflow) = a.overflowing_add(*b);
            if !overflow {
                return Big::from(sum);
            }
            return Big {
                repr: Repr::Heap(vec![sum as u64, (sum >> 64) as u64, 1]),
            };
        }
        let mut a_buf = [0u64; 2];
        let mut b_buf = [0u64; 2];
        let (long, short) = if self.bit_len() >= rhs.bit_len() {
            (self.limbs(&mut a_buf), rhs.limbs(&mut b_buf))
        } else {
            (rhs.limbs(&mut a_buf), self.limbs(&mut b_buf))
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 | c2) as u64;
        }
        if carry > 0 {
            out.push(carry);
        }
        Big::from_limbs(out)
    }
}

impl Mul for &Big {
    type Output = Big;
    fn mul(self, rhs: &Big) -> Big {
        if self.is_zero() || rhs.is_zero() {
            return Big::zero();
        }
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            // Safe exactly when the product fits 128 bits.
            if self.bit_len() + rhs.bit_len() <= 128 {
                return Big::from(a * b);
            }
        }
        let mut a_buf = [0u64; 2];
        let mut b_buf = [0u64; 2];
        let a = self.limbs(&mut a_buf);
        let b = rhs.limbs(&mut b_buf);
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + x as u128 * y as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Big::from_limbs(out)
    }
}

impl Sub for &Big {
    type Output = Big;
    /// # Panics
    ///
    /// Panics on underflow; use [`Big::checked_sub`] to handle that case.
    fn sub(self, rhs: &Big) -> Big {
        self.checked_sub(rhs)
            .expect("Big subtraction underflow; use checked_sub")
    }
}

macro_rules! forward_owned {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for Big {
            type Output = Big;
            fn $method(self, rhs: Big) -> Big {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Big> for Big {
            type Output = Big;
            fn $method(self, rhs: &Big) -> Big {
                (&self).$method(rhs)
            }
        }
        impl $trait<Big> for &Big {
            type Output = Big;
            fn $method(self, rhs: Big) -> Big {
                self.$method(&rhs)
            }
        }
        impl $assign_trait<&Big> for Big {
            fn $assign_method(&mut self, rhs: &Big) {
                *self = (&*self).$method(rhs);
            }
        }
        impl $assign_trait<Big> for Big {
            fn $assign_method(&mut self, rhs: Big) {
                *self = (&*self).$method(&rhs);
            }
        }
    };
}

forward_owned!(Add, add, AddAssign, add_assign);
forward_owned!(Mul, mul, MulAssign, mul_assign);
forward_owned!(Sub, sub, SubAssign, sub_assign);

impl Mul<u64> for &Big {
    type Output = Big;
    fn mul(self, rhs: u64) -> Big {
        self * &Big::from(rhs)
    }
}

impl Add<u64> for &Big {
    type Output = Big;
    fn add(self, rhs: u64) -> Big {
        self + &Big::from(rhs)
    }
}

impl Mul<u64> for Big {
    type Output = Big;
    fn mul(self, rhs: u64) -> Big {
        &self * rhs
    }
}

impl Add<u64> for Big {
    type Output = Big;
    fn add(self, rhs: u64) -> Big {
        &self + rhs
    }
}

impl std::iter::Sum for Big {
    fn sum<I: Iterator<Item = Big>>(iter: I) -> Big {
        iter.fold(Big::zero(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_canonical_empty() {
        assert!(Big::zero().is_zero());
        assert_eq!(Big::from(0u64), Big::zero());
        assert_eq!(Big::zero().bit_len(), 0);
        assert_eq!(Big::default(), Big::zero());
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = Big::from(u64::MAX);
        let b = Big::from(1u64);
        assert_eq!((&a + &b).to_u128(), Some(u64::MAX as u128 + 1));
    }

    #[test]
    fn add_with_carry_across_u128() {
        let a = Big::from(u128::MAX);
        let sum = &a + &Big::one();
        assert_eq!(sum.to_u128(), None);
        assert_eq!(sum.bit_len(), 129);
        assert_eq!(sum.checked_sub(&Big::one()), Some(a));
    }

    #[test]
    fn mul_across_limb_boundary() {
        let a = Big::from(u64::MAX);
        let prod = &a * &a;
        assert_eq!(prod.to_u128(), Some(u64::MAX as u128 * u64::MAX as u128));
    }

    #[test]
    fn mul_across_u128_boundary_round_trips() {
        // (2^127)·2 = 2^128 must spill to the heap representation and
        // divide back down to the inline one.
        let a = Big::from(1u128 << 127);
        let prod = &a * 2u64;
        assert_eq!(prod.to_u128(), None);
        assert_eq!(prod.bit_len(), 129);
        let (half, rem) = prod.div_rem_u64(2);
        assert_eq!(rem, 0);
        assert_eq!(half, a);
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(Big::from(2u64).pow(10), Big::from(1024u64));
        assert_eq!(Big::from(7u64).pow(0), Big::one());
        assert_eq!(Big::zero().pow(5), Big::zero());
    }

    #[test]
    #[should_panic(expected = "0^0")]
    fn pow_zero_zero_panics() {
        let _ = Big::zero().pow(0);
    }

    #[test]
    fn pow_exceeds_u128() {
        let p = Big::from(2u64).pow(200);
        assert_eq!(p.to_u128(), None);
        assert_eq!(p.bit_len(), 201);
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        assert_eq!(Big::from(3u64).checked_sub(&Big::from(4u64)), None);
        assert_eq!(
            Big::from(4u64).checked_sub(&Big::from(3u64)),
            Some(Big::one())
        );
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = Big::from(1u128 << 64);
        let b = Big::one();
        assert_eq!((&a - &b).to_u128(), Some((1u128 << 64) - 1));
    }

    #[test]
    fn sub_borrows_across_heap_boundary() {
        let a = Big::from(2u64).pow(192);
        let b = Big::from(2u64).pow(130);
        let d = &a - &b;
        assert_eq!(&d + &b, a);
        assert!(Big::from(2u64).pow(200).checked_sub(&Big::one()).unwrap() > a);
    }

    #[test]
    fn ordering_by_length_then_lexicographic() {
        let small = Big::from(u64::MAX);
        let big = Big::from(1u128 << 64);
        assert!(small < big);
        assert!(Big::from(5u64) > Big::from(4u64));
        assert_eq!(Big::from(5u64).cmp(&Big::from(5u64)), Ordering::Equal);
        // Across the representation boundary.
        let huge = Big::from(2u64).pow(300);
        assert!(Big::from(u128::MAX) < huge);
        assert!(huge > Big::from(u128::MAX));
        assert!(Big::from(2u64).pow(300) < Big::from(2u64).pow(301));
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = Big::from(1000u64).div_rem_u64(7);
        assert_eq!(q, Big::from(142u64));
        assert_eq!(r, 6);
    }

    #[test]
    fn div_rem_multi_limb() {
        let v = Big::from(2u64).pow(130);
        let (q, r) = v.div_rem_u64(3);
        // 2^130 mod 3 == (−1)^130 == 1
        assert_eq!(r, 1);
        assert_eq!(&q * 3u64 + 1u64, v);
    }

    #[test]
    fn to_f64_and_log10_agree_for_moderate_values() {
        let v = Big::from(123456789u64);
        assert_eq!(v.to_f64(), 123456789.0);
        assert!((v.log10() - 8.091514977).abs() < 1e-6);
    }

    #[test]
    fn log10_huge_value() {
        let v = Big::from(10u64).pow(500);
        assert!((v.log10() - 500.0).abs() < 1e-6);
        assert_eq!(v.to_f64(), f64::INFINITY);
    }

    #[test]
    fn sum_iterator() {
        let total: Big = (1u64..=100).map(Big::from).sum();
        assert_eq!(total, Big::from(5050u64));
    }

    #[test]
    fn debug_shows_the_value() {
        assert_eq!(format!("{:?}", Big::from(42u64)), "Big(42)");
    }
}
