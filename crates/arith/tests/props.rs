//! Property tests: `Big` arithmetic must agree with `u128` wherever
//! `u128` can represent the result.

use proptest::prelude::*;
use rv_arith::Big;

proptest! {
    #[test]
    fn add_agrees_with_u128(a in any::<u64>(), b in any::<u64>()) {
        let big = Big::from(a) + Big::from(b);
        prop_assert_eq!(big.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_agrees_with_u128(a in any::<u64>(), b in any::<u64>()) {
        let big = Big::from(a) * Big::from(b);
        prop_assert_eq!(big.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn sub_agrees_with_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let big = Big::from(hi) - Big::from(lo);
        prop_assert_eq!(big.to_u128(), Some(hi - lo));
    }

    #[test]
    fn checked_sub_none_iff_underflow(a in any::<u128>(), b in any::<u128>()) {
        let res = Big::from(a).checked_sub(&Big::from(b));
        prop_assert_eq!(res.is_none(), a < b);
    }

    #[test]
    fn ordering_agrees_with_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(Big::from(a).cmp(&Big::from(b)), a.cmp(&b));
    }

    #[test]
    fn pow_agrees_with_u128(base in 0u64..=6, exp in 0u64..=40) {
        prop_assume!(!(base == 0 && exp == 0));
        if let Some(expect) = (base as u128).checked_pow(exp as u32) {
            prop_assert_eq!(Big::from(base).pow(exp).to_u128(), Some(expect));
        }
    }

    #[test]
    fn div_rem_reconstructs(a in any::<u128>(), d in 1u64..) {
        let (q, r) = Big::from(a).div_rem_u64(d);
        prop_assert!(r < d);
        prop_assert_eq!(q * Big::from(d) + Big::from(r), Big::from(a));
    }

    #[test]
    fn display_parse_round_trip(a in any::<u128>()) {
        let v = Big::from(a);
        let back: Big = v.to_string().parse().unwrap();
        prop_assert_eq!(v.to_string(), a.to_string());
        prop_assert_eq!(back, v);
    }

    #[test]
    fn bit_len_agrees_with_u128(a in 1u128..) {
        prop_assert_eq!(Big::from(a).bit_len() as u32, 128 - a.leading_zeros());
    }

    #[test]
    fn mul_is_commutative_and_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (Big::from(a), Big::from(b), Big::from(c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn distributivity(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (Big::from(a), Big::from(b), Big::from(c));
        prop_assert_eq!(&a * &(&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn log10_matches_digit_count(a in 1u128..) {
        let v = Big::from(a);
        let digits = v.to_string().len() as f64;
        let l = v.log10();
        prop_assert!(l < digits && l >= digits - 1.0 - 1e-9);
    }
}
