#![forbid(unsafe_code)]
//! Anonymous port-numbered networks.
//!
//! This crate implements the network model of *How to Meet Asynchronously at
//! Polynomial Cost* (§1, "The model"): a finite simple undirected connected
//! graph whose nodes carry **no identifiers**, but where the edges incident
//! to a node `v` of degree `d` are locally labeled with distinct **port
//! numbers** `0..d`. Port numbering is local: an edge `{u, v}` has two
//! unrelated port numbers, one at `u` and one at `v`.
//!
//! Agents navigating such a network can only observe, at each node, the
//! degree of the node and the port by which they entered; this crate exposes
//! exactly that interface ([`Graph::degree`], [`Graph::traverse`]) plus
//! whole-graph accessors used by the simulator and test harnesses (which, of
//! course, *do* see node identities).
//!
//! # Examples
//!
//! ```
//! use rv_graph::{generators, Graph, NodeId, PortId};
//!
//! let g: Graph = generators::ring(6);
//! assert_eq!(g.order(), 6);
//! assert_eq!(g.size(), 6);
//! // Walking out of node 0 through port 0 lands somewhere with an entry port.
//! let arrival = g.traverse(NodeId(0), PortId(0));
//! assert_eq!(g.degree(arrival.node), 2);
//! ```

mod automorphism;
mod builder;
mod edgeset;
pub mod generators;
mod graph;
mod names;
pub mod properties;
mod validate;

pub use automorphism::{Automorphisms, MAX_GROUP};
pub use builder::{BuildError, GraphBuilder};
pub use edgeset::EdgeSet;
pub use graph::{Arrival, EdgeId, Graph, NodeId, PortId};
pub use names::GraphFamily;
pub use validate::{validate, ValidationError};
