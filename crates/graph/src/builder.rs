//! Incremental construction of valid port-numbered graphs.

use crate::{Graph, NodeId, PortId};
use std::fmt;

/// Error produced while building a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// An edge `{u, u}` was requested; the model forbids self-loops.
    SelfLoop(NodeId),
    /// The edge `{u, v}` was added twice; the model forbids multi-edges.
    DuplicateEdge(NodeId, NodeId),
    /// An endpoint refers to a node index `>= node_count`.
    NodeOutOfRange(NodeId),
    /// The final graph is not connected.
    Disconnected,
    /// The final graph has fewer than two nodes (rendezvous needs at least
    /// two distinct starting nodes).
    TooSmall,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::SelfLoop(v) => write!(f, "self-loop at node {}", v.0),
            BuildError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge {{{}, {}}}", u.0, v.0)
            }
            BuildError::NodeOutOfRange(v) => write!(f, "node {} out of range", v.0),
            BuildError::Disconnected => write!(f, "graph is not connected"),
            BuildError::TooSmall => write!(f, "graph must have at least 2 nodes"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Graph`].
///
/// Ports are assigned at each endpoint in the order edges are added (the
/// first edge touching `v` gets port `0` at `v`, and so on). Use
/// [`GraphBuilder::shuffle_ports`] to re-randomize the local numbering —
/// the algorithms must work for *every* port numbering, so tests exercise
/// random ones.
///
/// # Examples
///
/// ```
/// use rv_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1).unwrap();
/// b.edge(1, 2).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.order(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    adj: Vec<Vec<(NodeId, PortId)>>,
}

impl GraphBuilder {
    /// Starts a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds the undirected edge `{u, v}`, assigning the next free port at
    /// each endpoint.
    pub fn edge(&mut self, u: usize, v: usize) -> Result<(), BuildError> {
        let n = self.adj.len();
        if u >= n {
            return Err(BuildError::NodeOutOfRange(NodeId(u)));
        }
        if v >= n {
            return Err(BuildError::NodeOutOfRange(NodeId(v)));
        }
        if u == v {
            return Err(BuildError::SelfLoop(NodeId(u)));
        }
        if self.adj[u].iter().any(|&(w, _)| w == NodeId(v)) {
            return Err(BuildError::DuplicateEdge(NodeId(u), NodeId(v)));
        }
        let pu = PortId(self.adj[u].len());
        let pv = PortId(self.adj[v].len());
        self.adj[u].push((NodeId(v), pv));
        self.adj[v].push((NodeId(u), pu));
        Ok(())
    }

    /// Returns `true` if the edge `{u, v}` is already present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj
            .get(u)
            .map(|nbrs| nbrs.iter().any(|&(w, _)| w == NodeId(v)))
            .unwrap_or(false)
    }

    /// Randomly permutes the port numbers at every node, keeping the edge
    /// set intact, using the caller-supplied permutation source.
    ///
    /// `perm_for(degree)` must return a permutation of `0..degree`; this
    /// indirection keeps `rand` out of the public API surface.
    pub fn shuffle_ports(&mut self, mut perm_for: impl FnMut(usize) -> Vec<usize>) {
        let n = self.adj.len();
        // new_port[v][old_port] = new port at v
        let mut new_port: Vec<Vec<usize>> = Vec::with_capacity(n);
        for v in 0..n {
            let d = self.adj[v].len();
            let perm = perm_for(d);
            assert_eq!(
                perm.len(),
                d,
                "perm_for must return a permutation of 0..degree"
            );
            let mut seen = vec![false; d];
            for &p in &perm {
                assert!(
                    p < d && !seen[p],
                    "perm_for must return a permutation of 0..degree"
                );
                seen[p] = true;
            }
            new_port.push(perm);
        }
        let mut new_adj: Vec<Vec<(NodeId, PortId)>> = (0..n)
            .map(|v| vec![(NodeId(0), PortId(0)); self.adj[v].len()])
            .collect();
        for v in 0..n {
            for (old_p, &(u, q)) in self.adj[v].iter().enumerate() {
                let np = new_port[v][old_p];
                let nq = new_port[u.0][q.0];
                new_adj[v][np] = (u, PortId(nq));
            }
        }
        self.adj = new_adj;
    }

    /// Finalizes the graph, checking connectivity and minimum order.
    pub fn build(self) -> Result<Graph, BuildError> {
        if self.adj.len() < 2 {
            return Err(BuildError::TooSmall);
        }
        // Connectivity check by BFS.
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(u, _) in &self.adj[v] {
                if !seen[u.0] {
                    seen[u.0] = true;
                    count += 1;
                    stack.push(u.0);
                }
            }
        }
        if count != self.adj.len() {
            return Err(BuildError::Disconnected);
        }
        Ok(Graph::from_adj(self.adj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.edge(0, 0), Err(BuildError::SelfLoop(NodeId(0))));
    }

    #[test]
    fn rejects_duplicate_edge_in_either_order() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 1).unwrap();
        assert_eq!(
            b.edge(1, 0),
            Err(BuildError::DuplicateEdge(NodeId(1), NodeId(0)))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.edge(0, 5), Err(BuildError::NodeOutOfRange(NodeId(5))));
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1).unwrap();
        b.edge(2, 3).unwrap();
        assert_eq!(b.build().unwrap_err(), BuildError::Disconnected);
    }

    #[test]
    fn rejects_too_small() {
        assert_eq!(
            GraphBuilder::new(1).build().unwrap_err(),
            BuildError::TooSmall
        );
        assert_eq!(
            GraphBuilder::new(0).build().unwrap_err(),
            BuildError::TooSmall
        );
    }

    #[test]
    fn ports_assigned_in_insertion_order() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1).unwrap();
        b.edge(0, 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.succ(NodeId(0), PortId(0)), NodeId(1));
        assert_eq!(g.succ(NodeId(0), PortId(1)), NodeId(2));
    }

    #[test]
    fn shuffle_ports_preserves_edge_set_and_consistency() {
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            b.edge(u, v).unwrap();
        }
        // Reverse every port ordering.
        b.shuffle_ports(|d| (0..d).rev().collect());
        let g = b.build().unwrap();
        crate::validate(&g).unwrap();
        assert_eq!(g.size(), 5);
        assert!(g.port_towards(NodeId(0), NodeId(2)).is_some());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn shuffle_ports_rejects_non_permutation() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1).unwrap();
        b.edge(0, 2).unwrap();
        b.shuffle_ports(|d| vec![0; d]);
    }

    #[test]
    fn has_edge_sees_both_orders() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1).unwrap();
        assert!(b.has_edge(0, 1));
        assert!(b.has_edge(1, 0));
        assert!(!b.has_edge(0, 2));
        assert!(!b.has_edge(7, 0));
    }
}
