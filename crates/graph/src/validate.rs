//! Structural validation of port-numbered graphs.
//!
//! The simulator and all algorithm crates assume the invariants checked
//! here; tests call [`validate`] on every constructed graph.

use crate::{Graph, NodeId, PortId};
use std::fmt;

/// A violation of the port-numbered-graph invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// `adj[v][p]` points at a node out of range.
    DanglingNeighbor { node: NodeId, port: PortId },
    /// The back-pointer of `adj[v][p]` does not return to `(v, p)`.
    InconsistentPorts { node: NodeId, port: PortId },
    /// Self-loop at a node.
    SelfLoop(NodeId),
    /// Two ports at `node` lead to the same neighbor (multi-edge).
    MultiEdge { node: NodeId, neighbor: NodeId },
    /// The graph is not connected.
    Disconnected,
    /// Fewer than 2 nodes.
    TooSmall,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DanglingNeighbor { node, port } => {
                write!(f, "port {} at node {} points out of range", port.0, node.0)
            }
            ValidationError::InconsistentPorts { node, port } => write!(
                f,
                "port {} at node {} has a non-involutive back-pointer",
                port.0, node.0
            ),
            ValidationError::SelfLoop(v) => write!(f, "self-loop at node {}", v.0),
            ValidationError::MultiEdge { node, neighbor } => {
                write!(f, "multi-edge between {} and {}", node.0, neighbor.0)
            }
            ValidationError::Disconnected => write!(f, "graph is not connected"),
            ValidationError::TooSmall => write!(f, "graph has fewer than 2 nodes"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks every structural invariant of the model: simplicity, port
/// involution (`traverse(traverse(v, p)) == (v, p)`), and connectivity.
pub fn validate(g: &Graph) -> Result<(), ValidationError> {
    let n = g.order();
    if n < 2 {
        return Err(ValidationError::TooSmall);
    }
    for v in g.nodes() {
        let mut seen_neighbors = std::collections::BTreeSet::new();
        for p in 0..g.degree(v) {
            let port = PortId(p);
            let arr = {
                // Manual bounds checks to produce a diagnostic instead of a panic.
                let (u, q) = match g_adj(g, v, port) {
                    Some(x) => x,
                    None => return Err(ValidationError::DanglingNeighbor { node: v, port }),
                };
                if u.0 >= n {
                    return Err(ValidationError::DanglingNeighbor { node: v, port });
                }
                (u, q)
            };
            let (u, q) = arr;
            if u == v {
                return Err(ValidationError::SelfLoop(v));
            }
            if !seen_neighbors.insert(u) {
                return Err(ValidationError::MultiEdge {
                    node: v,
                    neighbor: u,
                });
            }
            match g_adj(g, u, q) {
                Some((w, r)) if w == v && r == port => {}
                _ => return Err(ValidationError::InconsistentPorts { node: v, port }),
            }
        }
    }
    // Connectivity.
    let dist = g.bfs_distances(NodeId(0));
    if dist.contains(&usize::MAX) {
        return Err(ValidationError::Disconnected);
    }
    Ok(())
}

fn g_adj(g: &Graph, v: NodeId, p: PortId) -> Option<(NodeId, PortId)> {
    if p.0 < g.degree(v) {
        let arr = g.traverse(v, p);
        Some((arr.node, arr.entry_port))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn generated_graphs_validate() {
        validate(&generators::ring(5)).unwrap();
        validate(&generators::complete(4)).unwrap();
        validate(&generators::gnp_connected(20, 0.2, 11)).unwrap();
    }

    #[test]
    fn error_display_is_informative() {
        let e = ValidationError::MultiEdge {
            node: NodeId(1),
            neighbor: NodeId(2),
        };
        assert!(e.to_string().contains("multi-edge"));
        let e = ValidationError::InconsistentPorts {
            node: NodeId(3),
            port: PortId(0),
        };
        assert!(e.to_string().contains("non-involutive"));
    }
}
