//! Core graph representation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node.
///
/// Node identities exist only at the simulator level; the agents of the
/// paper never observe them (the network is anonymous).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A local port number at some node; ports at a node of degree `d` are
/// exactly `0..d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub usize);

/// Canonical identity of an undirected edge `{u, v}` with `u <= v`.
///
/// Because the graph is simple, the unordered node pair identifies the edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
}

impl EdgeId {
    /// Builds the canonical edge identity for endpoints in either order.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        if u <= v {
            EdgeId { a: u, b: v }
        } else {
            EdgeId { a: v, b: u }
        }
    }

    /// The endpoint different from `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this edge.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("node {n:?} is not an endpoint of edge {self:?}");
        }
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}-{}}}", self.a.0, self.b.0)
    }
}

/// Result of traversing an edge: where the agent arrives and through which
/// port it entered — exactly the information the paper grants an agent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Arrival {
    /// Node the agent arrives at.
    pub node: NodeId,
    /// Port at `node` through which the agent entered.
    pub entry_port: PortId,
}

/// A finite simple undirected connected graph with local port numbers.
///
/// Construct via [`crate::GraphBuilder`] or [`crate::generators`]; both
/// guarantee the structural invariants (simplicity, port consistency,
/// connectivity).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `adj[v][p]` = (neighbor reached from `v` via port `p`,
    /// port at the neighbor leading back to `v`).
    pub(crate) adj: Vec<Vec<(NodeId, PortId)>>,
}

impl Graph {
    /// Number of nodes (the paper calls this the *size* of the graph; we use
    /// the standard graph-theoretic *order* to keep [`Graph::size`] for edge
    /// count — conversions in the algorithm crates use `order`).
    pub fn order(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn size(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.0].len()
    }

    /// The neighbor of `v` linked by the edge with port `p` at `v` — the
    /// paper's `succ(v, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn succ(&self, v: NodeId, p: PortId) -> NodeId {
        self.adj[v.0][p.0].0
    }

    /// Traverses the edge with port `p` at `v`, returning the arrival node
    /// and entry port.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn traverse(&self, v: NodeId, p: PortId) -> Arrival {
        let (node, entry_port) = self.adj[v.0][p.0];
        Arrival { node, entry_port }
    }

    /// The canonical edge crossed when leaving `v` via port `p`.
    pub fn edge_at(&self, v: NodeId, p: PortId) -> EdgeId {
        EdgeId::new(v, self.succ(v, p))
    }

    /// Port at `v` whose edge leads to `u`, if `u` is adjacent to `v`.
    pub fn port_towards(&self, v: NodeId, u: NodeId) -> Option<PortId> {
        self.adj[v.0].iter().position(|&(n, _)| n == u).map(PortId)
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId)
    }

    /// Iterator over all canonical edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.adj.iter().enumerate().flat_map(|(v, nbrs)| {
            nbrs.iter()
                .filter(move |(n, _)| n.0 > v)
                .map(move |&(n, _)| EdgeId::new(NodeId(v), n))
        })
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Breadth-first distances from `start` (in edges); `usize::MAX` never
    /// appears because the graph is connected.
    pub fn bfs_distances(&self, start: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.order()];
        let mut queue = std::collections::VecDeque::new();
        dist[start.0] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &(u, _) in &self.adj[v.0] {
                if dist[u.0] == usize::MAX {
                    dist[u.0] = dist[v.0] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Graph diameter (longest shortest path).
    pub fn diameter(&self) -> usize {
        self.nodes()
            .map(|v| self.bfs_distances(v).into_iter().max().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Internal constructor used by the builder after validation.
    pub(crate) fn from_adj(adj: Vec<Vec<(NodeId, PortId)>>) -> Self {
        Graph { adj }
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph: {} nodes, {} edges", self.order(), self.size())?;
        for v in self.nodes() {
            write!(f, "  {}:", v.0)?;
            for (p, &(u, q)) in self.adj[v.0].iter().enumerate() {
                write!(f, " [{}]->{}:{}", p, u.0, q.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn edge_id_is_canonical() {
        let e1 = EdgeId::new(NodeId(3), NodeId(1));
        let e2 = EdgeId::new(NodeId(1), NodeId(3));
        assert_eq!(e1, e2);
        assert_eq!(e1.a, NodeId(1));
        assert_eq!(e1.other(NodeId(1)), NodeId(3));
        assert_eq!(e1.other(NodeId(3)), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        EdgeId::new(NodeId(0), NodeId(1)).other(NodeId(2));
    }

    #[test]
    fn ring_traverse_round_trip() {
        let g = generators::ring(5);
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let arr = g.traverse(v, PortId(p));
                // Going back through the entry port returns to v.
                let back = g.traverse(arr.node, arr.entry_port);
                assert_eq!(back.node, v);
                assert_eq!(back.entry_port, PortId(p));
            }
        }
    }

    #[test]
    fn order_size_degree_on_complete_graph() {
        let g = generators::complete(6);
        assert_eq!(g.order(), 6);
        assert_eq!(g.size(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn port_towards_finds_neighbors_only() {
        let g = generators::path(4);
        assert!(g.port_towards(NodeId(0), NodeId(1)).is_some());
        assert_eq!(g.port_towards(NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn bfs_and_diameter_on_path() {
        let g = generators::path(5);
        let d = g.bfs_distances(NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = generators::complete(5);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 10);
        let mut dedup = edges.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn display_contains_adjacency() {
        let g = generators::ring(3);
        let s = g.to_string();
        assert!(s.contains("3 nodes, 3 edges"));
    }
}
