//! Core graph representation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node.
///
/// Node identities exist only at the simulator level; the agents of the
/// paper never observe them (the network is anonymous).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A local port number at some node; ports at a node of degree `d` are
/// exactly `0..d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub usize);

/// Canonical identity of an undirected edge `{u, v}` with `u <= v`.
///
/// Because the graph is simple, the unordered node pair identifies the edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
}

impl EdgeId {
    /// Builds the canonical edge identity for endpoints in either order.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        if u <= v {
            EdgeId { a: u, b: v }
        } else {
            EdgeId { a: v, b: u }
        }
    }

    /// The endpoint different from `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this edge.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("node {n:?} is not an endpoint of edge {self:?}");
        }
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}-{}}}", self.a.0, self.b.0)
    }
}

/// Result of traversing an edge: where the agent arrives and through which
/// port it entered — exactly the information the paper grants an agent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Arrival {
    /// Node the agent arrives at.
    pub node: NodeId,
    /// Port at `node` through which the agent entered.
    pub entry_port: PortId,
}

/// A finite simple undirected connected graph with local port numbers.
///
/// Construct via [`crate::GraphBuilder`] or [`crate::generators`]; both
/// guarantee the structural invariants (simplicity, port consistency,
/// connectivity).
///
/// # Representation
///
/// The adjacency is stored in CSR (compressed sparse row) form: one flat
/// `(neighbor, back-port)` array with per-node offsets, so [`Graph::traverse`]
/// — the simulator's single hottest operation — is one bounds check and one
/// flat array read. In addition, every undirected edge is assigned a **dense
/// edge index** in `0..size()` at construction ([`Graph::edge_index_at`]),
/// which the simulator and coverage trackers use to replace hash maps keyed
/// by [`EdgeId`] with plain arrays.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// Flat adjacency: the entries of node `v` occupy
    /// `flat[offsets[v]..offsets[v + 1]]`, ordered by port; each entry is
    /// (neighbor reached via that port, port at the neighbor leading back).
    flat: Vec<(NodeId, PortId)>,
    /// Per-node slice starts into `flat`; `offsets.len() == order + 1`.
    offsets: Vec<usize>,
    /// Dense edge index of the edge behind each `flat` slot (both directed
    /// slots of an undirected edge carry the same index).
    edge_index: Vec<usize>,
    /// Canonical [`EdgeId`] per dense edge index. Index order equals the
    /// iteration order of [`Graph::edges`]: ascending smaller endpoint,
    /// then port order at that endpoint.
    edge_list: Vec<EdgeId>,
}

impl Graph {
    /// Number of nodes (the paper calls this the *size* of the graph; we use
    /// the standard graph-theoretic *order* to keep [`Graph::size`] for edge
    /// count — conversions in the algorithm crates use `order`).
    pub fn order(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges (cached at construction; O(1)).
    pub fn size(&self) -> usize {
        self.edge_list.len()
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.0 + 1] - self.offsets[v.0]
    }

    /// The CSR slot of `(v, p)`, bounds-checked against `v`'s degree (a
    /// raw `offsets[v] + p` could silently land in the next node's slice).
    #[inline]
    fn slot(&self, v: NodeId, p: PortId) -> usize {
        let start = self.offsets[v.0];
        let end = self.offsets[v.0 + 1];
        // Compare before adding: `start + p.0` could wrap for a huge port
        // in release builds and land inside another node's slice.
        assert!(
            p.0 < end - start,
            "port {} out of range at node {}",
            p.0,
            v.0
        );
        start + p.0
    }

    /// The adjacency entries of `v`, ordered by port: `(neighbor, port at
    /// the neighbor leading back to v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, PortId)] {
        &self.flat[self.offsets[v.0]..self.offsets[v.0 + 1]]
    }

    /// The neighbor of `v` linked by the edge with port `p` at `v` — the
    /// paper's `succ(v, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn succ(&self, v: NodeId, p: PortId) -> NodeId {
        self.flat[self.slot(v, p)].0
    }

    /// Traverses the edge with port `p` at `v`, returning the arrival node
    /// and entry port.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn traverse(&self, v: NodeId, p: PortId) -> Arrival {
        let (node, entry_port) = self.flat[self.slot(v, p)];
        Arrival { node, entry_port }
    }

    /// The canonical edge crossed when leaving `v` via port `p`.
    pub fn edge_at(&self, v: NodeId, p: PortId) -> EdgeId {
        self.edge_list[self.edge_index_at(v, p)]
    }

    /// Dense index in `0..size()` of the edge behind port `p` at `v`. Both
    /// endpoints of an undirected edge map to the same index, and
    /// `edge_index_at` enumerates [`Graph::edges`] order — so the index can
    /// key plain arrays and bitsets (see [`crate::EdgeSet`]) where an
    /// `EdgeId`-keyed hash map would otherwise be needed.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn edge_index_at(&self, v: NodeId, p: PortId) -> usize {
        self.edge_index[self.slot(v, p)]
    }

    /// The canonical [`EdgeId`] of dense edge index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= size()`.
    pub fn edge_id(&self, index: usize) -> EdgeId {
        self.edge_list[index]
    }

    /// Port at `v` whose edge leads to `u`, if `u` is adjacent to `v`.
    pub fn port_towards(&self, v: NodeId, u: NodeId) -> Option<PortId> {
        self.neighbors(v)
            .iter()
            .position(|&(n, _)| n == u)
            .map(PortId)
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.order()).map(NodeId)
    }

    /// Iterator over all canonical edges, in dense-index order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edge_list.iter().copied()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.order())
            .map(|v| self.offsets[v + 1] - self.offsets[v])
            .max()
            .unwrap_or(0)
    }

    /// Breadth-first distances from `start` (in edges); `usize::MAX` never
    /// appears because the graph is connected.
    pub fn bfs_distances(&self, start: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.order()];
        let mut queue = std::collections::VecDeque::new();
        dist[start.0] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &(u, _) in self.neighbors(v) {
                if dist[u.0] == usize::MAX {
                    dist[u.0] = dist[v.0] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Graph diameter (longest shortest path).
    pub fn diameter(&self) -> usize {
        self.nodes()
            .map(|v| self.bfs_distances(v).into_iter().max().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Internal constructor used by the builder after validation: flattens
    /// the nested adjacency into CSR form and assigns dense edge indices.
    pub(crate) fn from_adj(adj: Vec<Vec<(NodeId, PortId)>>) -> Self {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for nbrs in &adj {
            offsets.push(offsets[offsets.len() - 1] + nbrs.len());
        }
        let mut flat = Vec::with_capacity(offsets[n]);
        for nbrs in &adj {
            flat.extend_from_slice(nbrs);
        }
        let mut edge_index = vec![usize::MAX; flat.len()];
        let mut edge_list = Vec::with_capacity(flat.len() / 2);
        for (v, nbrs) in adj.iter().enumerate() {
            for (p, &(u, q)) in nbrs.iter().enumerate() {
                if u.0 > v {
                    let idx = edge_list.len();
                    edge_list.push(EdgeId::new(NodeId(v), u));
                    edge_index[offsets[v] + p] = idx;
                    edge_index[offsets[u.0] + q.0] = idx;
                }
            }
        }
        debug_assert!(
            edge_index.iter().all(|&i| i != usize::MAX),
            "every port slot must belong to exactly one undirected edge"
        );
        Graph {
            flat,
            offsets,
            edge_index,
            edge_list,
        }
    }
}

/// Serialises in the pre-CSR wire shape `{"adj": [[[u, q], …], …]}` so the
/// representation change is invisible to anything consuming the JSON.
impl Serialize for Graph {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"adj\":[");
        for (i, v) in self.nodes().enumerate() {
            if i > 0 {
                out.push(',');
            }
            self.neighbors(v).serialize_json(out);
        }
        out.push_str("]}");
    }
}

impl Deserialize for Graph {}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph: {} nodes, {} edges", self.order(), self.size())?;
        for v in self.nodes() {
            write!(f, "  {}:", v.0)?;
            for (p, &(u, q)) in self.neighbors(v).iter().enumerate() {
                write!(f, " [{}]->{}:{}", p, u.0, q.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn edge_id_is_canonical() {
        let e1 = EdgeId::new(NodeId(3), NodeId(1));
        let e2 = EdgeId::new(NodeId(1), NodeId(3));
        assert_eq!(e1, e2);
        assert_eq!(e1.a, NodeId(1));
        assert_eq!(e1.other(NodeId(1)), NodeId(3));
        assert_eq!(e1.other(NodeId(3)), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        EdgeId::new(NodeId(0), NodeId(1)).other(NodeId(2));
    }

    #[test]
    fn ring_traverse_round_trip() {
        let g = generators::ring(5);
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let arr = g.traverse(v, PortId(p));
                // Going back through the entry port returns to v.
                let back = g.traverse(arr.node, arr.entry_port);
                assert_eq!(back.node, v);
                assert_eq!(back.entry_port, PortId(p));
            }
        }
    }

    #[test]
    fn order_size_degree_on_complete_graph() {
        let g = generators::complete(6);
        assert_eq!(g.order(), 6);
        assert_eq!(g.size(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn port_towards_finds_neighbors_only() {
        let g = generators::path(4);
        assert!(g.port_towards(NodeId(0), NodeId(1)).is_some());
        assert_eq!(g.port_towards(NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn bfs_and_diameter_on_path() {
        let g = generators::path(5);
        let d = g.bfs_distances(NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = generators::complete(5);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 10);
        let mut dedup = edges.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn display_contains_adjacency() {
        let g = generators::ring(3);
        let s = g.to_string();
        assert!(s.contains("3 nodes, 3 edges"));
    }

    #[test]
    fn edge_indices_are_dense_and_shared_by_both_endpoints() {
        for g in [
            generators::ring(7),
            generators::complete(6),
            generators::gnp_connected(12, 0.4, 3),
            generators::lollipop(5, 4),
        ] {
            let mut seen = vec![false; g.size()];
            for v in g.nodes() {
                for p in 0..g.degree(v) {
                    let idx = g.edge_index_at(v, PortId(p));
                    assert!(idx < g.size(), "index {idx} out of 0..{}", g.size());
                    seen[idx] = true;
                    // Both directed slots of the edge share the index.
                    let arr = g.traverse(v, PortId(p));
                    assert_eq!(idx, g.edge_index_at(arr.node, arr.entry_port));
                    // The index resolves back to the canonical EdgeId.
                    assert_eq!(g.edge_id(idx), EdgeId::new(v, arr.node));
                    assert_eq!(g.edge_at(v, PortId(p)), EdgeId::new(v, arr.node));
                }
            }
            assert!(seen.iter().all(|&s| s), "every dense index must be used");
        }
    }

    #[test]
    fn edge_index_order_matches_edges_iterator() {
        let g = generators::gnp_connected(10, 0.5, 8);
        let listed: Vec<_> = g.edges().collect();
        for (idx, e) in listed.iter().enumerate() {
            assert_eq!(g.edge_id(idx), *e);
            let p = g.port_towards(e.a, e.b).expect("endpoints are adjacent");
            assert_eq!(g.edge_index_at(e.a, p), idx);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn traverse_rejects_out_of_range_port() {
        let g = generators::ring(4);
        g.traverse(NodeId(0), PortId(2));
    }

    #[test]
    fn serde_shape_is_the_nested_adjacency() {
        let g = generators::path(3);
        let json = serde_json::to_string(&g).unwrap();
        // path(3): 0 -[0]- 1 -[1]- 2 with back-ports 0/0 and 1/0.
        assert_eq!(json, r#"{"adj":[[[1,0]],[[0,0],[2,0]],[[1,1]]]}"#);
        // And the emitted document is well-formed JSON.
        let doc = serde_json::from_str(&json).unwrap();
        assert_eq!(
            doc.get("adj").and_then(|v| v.as_array()).map(<[_]>::len),
            Some(3)
        );
    }
}
