//! Graph automorphism groups for symmetry-pruned search.
//!
//! A minimax search over adversarial schedules can quotient its state space
//! by the graph's automorphism group: two runtime states that are images of
//! each other under a node relabeling that preserves adjacency have
//! isomorphic futures, so one memoized subtree value serves both (see
//! `docs/MINIMAX.md` in the workspace root for the full argument).
//!
//! [`Automorphisms`] is a *verified, closed* set of node permutations:
//!
//! * every candidate is checked against the actual [`Graph`] (adjacency
//!   preservation), so a wrong guess about a generator's labeling degrades
//!   to a smaller group, never to a wrong one;
//! * the verified set is closed under composition (a finite set of
//!   permutations closed under composition is a group), which the
//!   canonical-fingerprint construction requires for invariance;
//! * the identity is always a member, so the trivial descriptor is always
//!   safe.
//!
//! Candidates are derived per [`GraphFamily`]: the dihedral group for rings
//! (rotations + reflections), path reversal, axis flips for grids (plus the
//! transpose when square), XOR translations for hypercubes, a dihedral
//! subgroup for complete graphs (the full symmetric group would dwarf
//! [`MAX_GROUP`]), and the identity fallback for the random families
//! (gnp / random tree / lollipop). Direct `generators::torus` users get
//! [`Automorphisms::torus`] (translations + flips).

use crate::{Graph, GraphFamily, NodeId};
use std::collections::BTreeSet;

/// Largest group the closure will materialize. Beyond this the descriptor
/// falls back to the identity: the canonical fingerprint pays O(|group|)
/// per probe, so a huge group is a pessimization for search even where it
/// is mathematically available (e.g. the symmetric group of a clique).
pub const MAX_GROUP: usize = 512;

/// A verified group of node permutations of one concrete graph.
///
/// Always non-empty; element 0 is the identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Automorphisms {
    /// Each permutation maps `NodeId(v)` to `NodeId(perm[v] as usize)`.
    perms: Vec<Vec<u32>>,
}

impl Automorphisms {
    /// The trivial group on `order` nodes.
    pub fn identity(order: usize) -> Self {
        Automorphisms {
            perms: vec![identity_perm(order)],
        }
    }

    /// The declared group of a family member: family-derived candidates,
    /// verified against `g` and closed under composition. Falls back
    /// toward (at worst) the identity if candidates fail verification or
    /// the closure exceeds [`MAX_GROUP`].
    pub fn for_family(family: GraphFamily, g: &Graph) -> Self {
        Self::from_candidates(g, family_candidates(family, g))
    }

    /// The symmetry group of a `generators::torus(w, h)` graph:
    /// wrap-around translations in both axes plus the axis flips (and the
    /// transpose when `w == h`), verified and closed like every other
    /// descriptor.
    pub fn torus(g: &Graph, w: usize, h: usize) -> Self {
        let mut cands = Vec::new();
        if w * h == g.order() {
            for dy in 0..h {
                for dx in 0..w {
                    cands.push(grid_map(w, h, |x, y| ((x + dx) % w, (y + dy) % h)));
                }
            }
            cands.push(grid_map(w, h, |x, y| (w - 1 - x, y)));
            cands.push(grid_map(w, h, |x, y| (x, h - 1 - y)));
            if w == h {
                cands.push(grid_map(w, h, |x, y| (y, x)));
            }
        }
        Self::from_candidates(g, cands)
    }

    /// Builds a group from arbitrary candidate permutations: drops every
    /// candidate that is not an automorphism of `g`, adds the identity,
    /// and closes the survivors under composition. Returns the identity
    /// group if the closure would exceed [`MAX_GROUP`].
    pub fn from_candidates(g: &Graph, candidates: Vec<Vec<u32>>) -> Self {
        let order = g.order();
        let id = identity_perm(order);
        let mut set: BTreeSet<Vec<u32>> = BTreeSet::new();
        set.insert(id.clone());
        let mut frontier: Vec<Vec<u32>> = Vec::new();
        for cand in candidates {
            if is_automorphism(g, &cand) && set.insert(cand.clone()) {
                frontier.push(cand);
            }
        }
        // Closure worklist: when `p` is popped, it is composed (both ways)
        // with everything discovered so far; any pair missed here meets
        // again when its later member is popped, so the result is closed.
        while let Some(p) = frontier.pop() {
            let members: Vec<Vec<u32>> = set.iter().cloned().collect();
            for q in &members {
                for comp in [compose(&p, q), compose(q, &p)] {
                    if set.insert(comp.clone()) {
                        if set.len() > MAX_GROUP {
                            return Self::identity(order);
                        }
                        frontier.push(comp);
                    }
                }
            }
        }
        let mut perms: Vec<Vec<u32>> = Vec::with_capacity(set.len());
        perms.push(id.clone());
        perms.extend(set.into_iter().filter(|p| p != &id));
        Automorphisms { perms }
    }

    /// Number of group elements (always ≥ 1).
    pub fn len(&self) -> usize {
        self.perms.len()
    }

    /// True only for the trivial group.
    pub fn is_trivial(&self) -> bool {
        self.perms.len() == 1
    }

    /// Never true — the identity is always a member. Present to satisfy
    /// the `len`/`is_empty` API convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `k`-th permutation as a lookup table (`table[v]` is the image
    /// of node `v`). Element 0 is the identity.
    pub fn perm(&self, k: usize) -> &[u32] {
        &self.perms[k]
    }

    /// All permutations, identity first.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.perms.iter().map(Vec::as_slice)
    }

    /// Applies the `k`-th permutation to a node.
    pub fn map(&self, k: usize, v: NodeId) -> NodeId {
        NodeId(self.perms[k][v.0] as usize)
    }
}

impl GraphFamily {
    /// The family's declared automorphism group on a generated member:
    /// dihedral for [`GraphFamily::Ring`], reversal for
    /// [`GraphFamily::Path`], axis flips for [`GraphFamily::Grid`], XOR
    /// translations for [`GraphFamily::Hypercube`], a dihedral subgroup
    /// for [`GraphFamily::Complete`], and the identity for the random
    /// families. Every element is verified against `g`, so passing a graph
    /// that was not generated by `self` degrades to a smaller (correct)
    /// group rather than a wrong one.
    pub fn automorphisms(self, g: &Graph) -> Automorphisms {
        Automorphisms::for_family(self, g)
    }
}

fn identity_perm(order: usize) -> Vec<u32> {
    (0..order).map(|v| v as u32).collect()
}

/// `p ∘ q`: applies `q` first, then `p`.
fn compose(p: &[u32], q: &[u32]) -> Vec<u32> {
    q.iter().map(|&v| p[v as usize]).collect()
}

/// True iff `p` is a permutation of the node set that preserves adjacency
/// (degrees match and every neighbor maps to a neighbor — sufficient on a
/// finite simple graph).
fn is_automorphism(g: &Graph, p: &[u32]) -> bool {
    let n = g.order();
    if p.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &img in p {
        let img = img as usize;
        if img >= n || seen[img] {
            return false;
        }
        seen[img] = true;
    }
    for v in 0..n {
        let sv = NodeId(p[v] as usize);
        if g.degree(NodeId(v)) != g.degree(sv) {
            return false;
        }
        for &(u, _) in g.neighbors(NodeId(v)) {
            let su = NodeId(p[u.0] as usize);
            if g.port_towards(sv, su).is_none() {
                return false;
            }
        }
    }
    true
}

/// A permutation of a row-major `w × h` node grid from a coordinate map.
fn grid_map(w: usize, h: usize, f: impl Fn(usize, usize) -> (usize, usize)) -> Vec<u32> {
    let mut p = vec![0u32; w * h];
    for y in 0..h {
        for x in 0..w {
            let (nx, ny) = f(x, y);
            p[y * w + x] = (ny * w + nx) as u32;
        }
    }
    p
}

/// Family-derived candidate permutations (verification filters them, so a
/// candidate only has to be *plausible* for the generator's labeling).
fn family_candidates(family: GraphFamily, g: &Graph) -> Vec<Vec<u32>> {
    let n = g.order();
    match family {
        // `generators::ring` labels the cycle 0 → 1 → … → n-1 → 0, so the
        // full dihedral group acts by arithmetic on labels. The same
        // candidates serve Complete (any permutation is an automorphism of
        // a clique; the dihedral subgroup keeps the group under MAX_GROUP).
        GraphFamily::Ring | GraphFamily::Complete => {
            let mut cands = Vec::with_capacity(2 * n);
            for k in 0..n {
                cands.push((0..n).map(|v| ((v + k) % n) as u32).collect());
                cands.push((0..n).map(|v| ((n + k - v) % n) as u32).collect());
            }
            cands
        }
        GraphFamily::Path => vec![(0..n).map(|v| (n - 1 - v) as u32).collect()],
        // The generator's grid is row-major, but only the actual (w, h)
        // split is known to `generate`; flips under every factorization
        // are offered and the wrong ones simply fail verification.
        GraphFamily::Grid => {
            let mut cands = Vec::new();
            for w in 1..=n {
                if !n.is_multiple_of(w) {
                    continue;
                }
                let h = n / w;
                cands.push(grid_map(w, h, |x, y| (w - 1 - x, y)));
                cands.push(grid_map(w, h, |x, y| (x, h - 1 - y)));
                cands.push(grid_map(w, h, |x, y| (w - 1 - x, h - 1 - y)));
                if w == h {
                    cands.push(grid_map(w, h, |x, y| (y, x)));
                }
            }
            cands
        }
        // Node labels are coordinate vectors; XOR by any mask translates
        // the cube onto itself.
        GraphFamily::Hypercube => {
            if n.is_power_of_two() && n <= MAX_GROUP {
                (0..n)
                    .map(|m| (0..n).map(|v| (v ^ m) as u32).collect())
                    .collect()
            } else {
                Vec::new()
            }
        }
        GraphFamily::RandomTree | GraphFamily::Gnp | GraphFamily::Lollipop => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn assert_closed(g: &Graph, a: &Automorphisms) {
        let set: BTreeSet<&[u32]> = a.iter().collect();
        for p in a.iter() {
            assert!(is_automorphism(g, p), "member is not an automorphism");
            for q in a.iter() {
                let c = compose(p, q);
                assert!(set.contains(c.as_slice()), "group is not closed");
            }
        }
    }

    #[test]
    fn ring_group_is_dihedral() {
        let g = generators::ring(6);
        let a = GraphFamily::Ring.automorphisms(&g);
        assert_eq!(a.len(), 12);
        assert_closed(&g, &a);
        assert_eq!(a.map(0, NodeId(3)), NodeId(3), "element 0 is the identity");
    }

    #[test]
    fn path_group_is_reversal() {
        let g = generators::path(5);
        let a = GraphFamily::Path.automorphisms(&g);
        assert_eq!(a.len(), 2);
        assert_eq!(a.map(1, NodeId(0)), NodeId(4));
        assert_closed(&g, &a);
    }

    #[test]
    fn grid_group_is_klein_four() {
        // GraphFamily::Grid.generate(12, _) builds a row-major 3 × 4 grid;
        // only flips under the true factorization survive verification.
        let g = GraphFamily::Grid.generate(12, 0);
        let a = GraphFamily::Grid.automorphisms(&g);
        assert_eq!(a.len(), 4);
        assert_closed(&g, &a);
    }

    #[test]
    fn square_grid_gains_the_transpose() {
        let g = GraphFamily::Grid.generate(9, 0);
        let a = GraphFamily::Grid.automorphisms(&g);
        assert_eq!(
            a.len(),
            8,
            "flips × transpose = the square's dihedral group"
        );
        assert_closed(&g, &a);
    }

    #[test]
    fn hypercube_group_contains_all_translations() {
        let g = generators::hypercube(3);
        let a = GraphFamily::Hypercube.automorphisms(&g);
        assert_eq!(a.len(), 8);
        assert_closed(&g, &a);
    }

    #[test]
    fn torus_group_contains_all_translations() {
        let g = generators::torus(3, 3);
        let a = Automorphisms::torus(&g, 3, 3);
        assert!(a.len() >= 9, "9 translations at minimum, got {}", a.len());
        assert_closed(&g, &a);
    }

    #[test]
    fn random_families_fall_back_to_identity() {
        for fam in [
            GraphFamily::RandomTree,
            GraphFamily::Gnp,
            GraphFamily::Lollipop,
        ] {
            let g = fam.generate(8, 7);
            let a = fam.automorphisms(&g);
            assert!(a.is_trivial(), "{fam} should declare only the identity");
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn invalid_candidates_are_dropped() {
        let g = generators::path(4);
        // Swapping an endpoint with an interior node changes degrees.
        let a = Automorphisms::from_candidates(&g, vec![vec![1, 0, 2, 3]]);
        assert!(a.is_trivial());
    }

    #[test]
    fn oversized_closures_fall_back_to_identity() {
        // Adjacent transpositions of a clique generate the full symmetric
        // group — 8! far exceeds MAX_GROUP, so the descriptor must refuse.
        let g = generators::complete(8);
        let cands: Vec<Vec<u32>> = (0..7)
            .map(|i| {
                let mut p = identity_perm(8);
                p.swap(i, i + 1);
                p
            })
            .collect();
        let a = Automorphisms::from_candidates(&g, cands);
        assert!(a.is_trivial());
    }

    #[test]
    fn wrong_family_degrades_to_a_correct_subgroup() {
        // Ring candidates verified against a path: rotations fail, the
        // identity (k = 0 reflection composes oddly) — whatever survives
        // must still be a genuine automorphism group of the *path*.
        let g = generators::path(6);
        let a = GraphFamily::Ring.automorphisms(&g);
        assert_closed(&g, &a);
        assert!(a.len() <= 2);
    }
}
