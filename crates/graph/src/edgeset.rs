//! Dense bitset over a graph's edges.

use crate::Graph;

/// A set of edges of one [`Graph`], keyed by the dense edge index
/// ([`Graph::edge_index_at`]).
///
/// Replaces `HashSet<EdgeId>` in edge-coverage tracking (ESST runs,
/// integrality checks): membership is one shift/mask on a flat word array,
/// insertion keeps a running count so [`EdgeSet::len`] is O(1), and
/// [`EdgeSet::clear`] reuses the allocation across runs.
///
/// # Examples
///
/// ```
/// use rv_graph::{generators, EdgeSet, NodeId, PortId};
///
/// let g = generators::ring(5);
/// let mut covered = EdgeSet::new(&g);
/// covered.insert(g.edge_index_at(NodeId(0), PortId(0)));
/// assert_eq!(covered.len(), 1);
/// assert!(!covered.is_full());
/// ```
#[derive(Clone, Debug)]
pub struct EdgeSet {
    bits: Vec<u64>,
    len: usize,
    capacity: usize,
}

impl EdgeSet {
    /// An empty set sized for `g`'s edges.
    pub fn new(g: &Graph) -> Self {
        Self::with_capacity(g.size())
    }

    /// An empty set over dense indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        EdgeSet {
            bits: vec![0; capacity.div_ceil(64)],
            len: 0,
            capacity,
        }
    }

    /// Inserts the edge with dense index `index`; returns `true` if it was
    /// not already present (mirroring `HashSet::insert`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the capacity.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "edge index {index} out of range");
        let (word, mask) = (index / 64, 1u64 << (index % 64));
        let fresh = self.bits[word] & mask == 0;
        self.bits[word] |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Membership test.
    pub fn contains(&self, index: usize) -> bool {
        index < self.capacity && self.bits[index / 64] & (1 << (index % 64)) != 0
    }

    /// Number of edges in the set (O(1)).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no edge is in the set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if every edge of the graph is covered.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Empties the set, keeping the allocation.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, NodeId, PortId};

    #[test]
    fn insert_contains_len() {
        let g = generators::complete(6); // 15 edges
        let mut s = EdgeSet::new(&g);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3), "second insert reports already-present");
        assert!(s.insert(14));
        assert!(s.contains(3) && s.contains(14) && !s.contains(0));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty() && !s.contains(3));
    }

    #[test]
    fn covering_every_port_slot_fills_the_set() {
        let g = generators::gnp_connected(9, 0.5, 4);
        let mut s = EdgeSet::new(&g);
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                s.insert(g.edge_index_at(v, PortId(p)));
            }
        }
        assert!(s.is_full());
        assert_eq!(s.len(), g.size());
        let _ = NodeId(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_rejects_out_of_range() {
        let g = generators::ring(4);
        EdgeSet::new(&g).insert(4);
    }

    #[test]
    fn contains_is_false_out_of_range() {
        let g = generators::ring(4);
        assert!(!EdgeSet::new(&g).contains(99));
    }
}
