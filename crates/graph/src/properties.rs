//! Structural graph properties used by the experiments and their analysis.
//!
//! The fence-trap analysis (EXPERIMENTS.md) hinges on bipartite parity and
//! on how symmetric a graph's port numbering is; the exploration bounds
//! depend on degree statistics. This module computes those properties.

use crate::{Graph, NodeId, PortId};

/// Degree statistics of a graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Sum of degrees (twice the edge count).
    pub sum: usize,
}

/// Computes degree statistics.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let degs: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    DegreeStats {
        min: degs.iter().copied().min().unwrap_or(0),
        max: degs.iter().copied().max().unwrap_or(0),
        sum: degs.iter().sum(),
    }
}

/// Returns the bipartition classes `(even, odd)` if `g` is bipartite,
/// `None` otherwise.
///
/// Two lockstep agents starting in different classes of a bipartite graph
/// can never stand at the same node simultaneously — one ingredient of the
/// fence trap.
pub fn bipartition(g: &Graph) -> Option<(Vec<NodeId>, Vec<NodeId>)> {
    let mut color = vec![u8::MAX; g.order()];
    let mut queue = std::collections::VecDeque::new();
    color[0] = 0;
    queue.push_back(NodeId(0));
    while let Some(v) = queue.pop_front() {
        for p in 0..g.degree(v) {
            let u = g.succ(v, PortId(p));
            if color[u.0] == u8::MAX {
                color[u.0] = 1 - color[v.0];
                queue.push_back(u);
            } else if color[u.0] == color[v.0] {
                return None;
            }
        }
    }
    let even = g.nodes().filter(|v| color[v.0] == 0).collect();
    let odd = g.nodes().filter(|v| color[v.0] == 1).collect();
    Some((even, odd))
}

/// Length of a shortest cycle (girth); `None` for forests.
pub fn girth(g: &Graph) -> Option<usize> {
    let mut best: Option<usize> = None;
    for root in g.nodes() {
        // BFS from root; the first non-tree edge closes a shortest cycle
        // through root of length dist(u) + dist(v) + 1.
        let mut dist = vec![usize::MAX; g.order()];
        let mut parent = vec![usize::MAX; g.order()];
        let mut queue = std::collections::VecDeque::new();
        dist[root.0] = 0;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for p in 0..g.degree(v) {
                let u = g.succ(v, PortId(p));
                if dist[u.0] == usize::MAX {
                    dist[u.0] = dist[v.0] + 1;
                    parent[u.0] = v.0;
                    queue.push_back(u);
                } else if parent[v.0] != u.0 && parent[u.0] != v.0 {
                    let cycle = dist[u.0] + dist[v.0] + 1;
                    best = Some(best.map_or(cycle, |b| b.min(cycle)));
                }
            }
        }
    }
    best
}

/// Checks whether the mapping `sigma` (a permutation of the nodes) is a
/// **port-preserving automorphism**: `succ(σv, p) = σ(succ(v, p))` for
/// every node and port. Lockstep walks from `v` and `σv` under such an
/// automorphism are translates of each other and can only meet where σ has
/// short orbits — the strong form of the fence trap.
pub fn is_port_automorphism(g: &Graph, sigma: &[usize]) -> bool {
    if sigma.len() != g.order() {
        return false;
    }
    let mut seen = vec![false; g.order()];
    for &s in sigma {
        if s >= g.order() || seen[s] {
            return false;
        }
        seen[s] = true;
    }
    for v in g.nodes() {
        let sv = NodeId(sigma[v.0]);
        if g.degree(v) != g.degree(sv) {
            return false;
        }
        for p in 0..g.degree(v) {
            let u = g.succ(v, PortId(p));
            if g.succ(sv, PortId(p)) != NodeId(sigma[u.0]) {
                return false;
            }
        }
    }
    true
}

/// Average shortest-path distance over all ordered pairs.
pub fn mean_distance(g: &Graph) -> f64 {
    let n = g.order();
    let mut total = 0usize;
    for v in g.nodes() {
        total += g.bfs_distances(v).iter().sum::<usize>();
    }
    total as f64 / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_stats_on_star() {
        let s = degree_stats(&generators::star(6));
        assert_eq!(
            s,
            DegreeStats {
                min: 1,
                max: 5,
                sum: 10
            }
        );
    }

    #[test]
    fn even_rings_are_bipartite_odd_are_not() {
        assert!(bipartition(&generators::ring(6)).is_some());
        assert!(bipartition(&generators::ring(7)).is_none());
        let (even, odd) = bipartition(&generators::ring(6)).unwrap();
        assert_eq!(even.len(), 3);
        assert_eq!(odd.len(), 3);
    }

    #[test]
    fn hypercubes_and_trees_are_bipartite() {
        assert!(bipartition(&generators::hypercube(4)).is_some());
        assert!(bipartition(&generators::random_tree(10, 3)).is_some());
        assert!(bipartition(&generators::complete(4)).is_none());
    }

    #[test]
    fn girth_values() {
        assert_eq!(girth(&generators::ring(7)), Some(7));
        assert_eq!(girth(&generators::complete(5)), Some(3));
        assert_eq!(girth(&generators::random_tree(8, 1)), None);
        assert_eq!(girth(&generators::hypercube(3)), Some(4));
    }

    #[test]
    fn identity_is_always_a_port_automorphism() {
        let g = generators::gnp_connected(8, 0.4, 5);
        let id: Vec<usize> = (0..8).collect();
        assert!(is_port_automorphism(&g, &id));
    }

    #[test]
    fn rotation_is_not_a_port_automorphism_of_our_ring() {
        // Node 0 of the generated ring has flipped ports relative to the
        // others (insertion order), so rotation fails port preservation —
        // the very asymmetry that breaks lockstep traps on rings.
        let g = generators::ring(5);
        let rot: Vec<usize> = (0..5).map(|v| (v + 1) % 5).collect();
        assert!(!is_port_automorphism(&g, &rot));
    }

    #[test]
    fn non_permutations_are_rejected() {
        let g = generators::ring(4);
        assert!(!is_port_automorphism(&g, &[0, 0, 1, 2]));
        assert!(!is_port_automorphism(&g, &[0, 1, 2]));
        assert!(!is_port_automorphism(&g, &[0, 1, 2, 9]));
    }

    #[test]
    fn mean_distance_on_complete_graph_is_one() {
        assert!((mean_distance(&generators::complete(6)) - 1.0).abs() < 1e-12);
        assert!(mean_distance(&generators::path(5)) > 1.9);
    }
}
