//! Named graph families for the experiment harness.

use crate::{generators, Graph};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The graph families swept by the evaluation (DESIGN.md §3, experiment F1).
///
/// Each family maps a target order `n` to a concrete graph of order *close
/// to* `n` (exactly `n` wherever the family allows it); [`GraphFamily::generate`]
/// documents the rounding rule per family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphFamily {
    /// Cycle.
    Ring,
    /// Simple path — worst diameter.
    Path,
    /// Complete graph — maximum density.
    Complete,
    /// Square-ish grid.
    Grid,
    /// Hypercube of dimension `floor(log2 n)`.
    Hypercube,
    /// Uniformly random tree.
    RandomTree,
    /// Connected Erdős–Rényi with edge probability `2 ln n / n`.
    Gnp,
    /// Lollipop (clique + tail) — classical exploration adversary.
    Lollipop,
}

impl GraphFamily {
    /// All families, in the order reported by the experiments.
    pub const ALL: [GraphFamily; 8] = [
        GraphFamily::Ring,
        GraphFamily::Path,
        GraphFamily::Complete,
        GraphFamily::Grid,
        GraphFamily::Hypercube,
        GraphFamily::RandomTree,
        GraphFamily::Gnp,
        GraphFamily::Lollipop,
    ];

    /// Generates a member of the family with order close to `n`
    /// (Grid rounds to the nearest `w × h` rectangle, Hypercube to the
    /// nearest power of two; others are exact). Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (the smallest order supported by every family).
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        assert!(n >= 4, "families are defined for n >= 4");
        match self {
            GraphFamily::Ring => generators::ring(n),
            GraphFamily::Path => generators::path(n),
            GraphFamily::Complete => generators::complete(n),
            GraphFamily::Grid => {
                let w = (n as f64).sqrt().round() as usize;
                let w = w.max(2);
                let h = n.div_ceil(w);
                generators::grid(w, h.max(2))
            }
            GraphFamily::Hypercube => {
                let d = (usize::BITS - 1 - n.leading_zeros()) as usize;
                generators::hypercube(d.max(2))
            }
            GraphFamily::RandomTree => generators::random_tree(n, seed),
            GraphFamily::Gnp => {
                let p = (2.0 * (n as f64).ln() / n as f64).min(1.0);
                generators::gnp_connected(n, p, seed)
            }
            GraphFamily::Lollipop => {
                let clique = (n / 2).max(3);
                let tail = n.saturating_sub(clique).max(1);
                generators::lollipop(clique, tail)
            }
        }
    }
}

impl fmt::Display for GraphFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GraphFamily::Ring => "ring",
            GraphFamily::Path => "path",
            GraphFamily::Complete => "complete",
            GraphFamily::Grid => "grid",
            GraphFamily::Hypercube => "hypercube",
            GraphFamily::RandomTree => "random-tree",
            GraphFamily::Gnp => "gnp",
            GraphFamily::Lollipop => "lollipop",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn every_family_generates_valid_graphs_at_various_sizes() {
        for fam in GraphFamily::ALL {
            for n in [4, 8, 13, 21] {
                let g = fam.generate(n, 17);
                validate(&g).unwrap_or_else(|e| panic!("{fam} n={n}: {e}"));
            }
        }
    }

    #[test]
    fn exact_families_hit_exact_order() {
        for fam in [
            GraphFamily::Ring,
            GraphFamily::Path,
            GraphFamily::Complete,
            GraphFamily::RandomTree,
            GraphFamily::Gnp,
        ] {
            assert_eq!(fam.generate(13, 5).order(), 13, "{fam}");
        }
    }

    #[test]
    fn hypercube_rounds_to_power_of_two() {
        let g = GraphFamily::Hypercube.generate(13, 0);
        assert_eq!(g.order(), 8);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(GraphFamily::Ring.to_string(), "ring");
        assert_eq!(GraphFamily::Gnp.to_string(), "gnp");
    }
}
