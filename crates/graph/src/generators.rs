//! Generators for the graph families used throughout the evaluation.
//!
//! Every generator returns a valid connected port-numbered [`Graph`]. The
//! seeded generators are deterministic in their seed so experiments are
//! reproducible.

use crate::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A cycle on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.edge(v, (v + 1) % n)
            .expect("generator edges are in-bounds and duplicate-free");
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// A simple path on `n >= 2` nodes.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 2, "path needs at least 2 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 0..n - 1 {
        b.edge(v, v + 1)
            .expect("generator edges are in-bounds and duplicate-free");
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// The complete graph on `n >= 2` nodes.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 2, "complete graph needs at least 2 nodes");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in u + 1..n {
            b.edge(u, v)
                .expect("generator edges are in-bounds and duplicate-free");
        }
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// A star: one hub adjacent to `n - 1` leaves.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least 2 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.edge(0, v)
            .expect("generator edges are in-bounds and duplicate-free");
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// A `w × h` grid (open boundaries).
///
/// # Panics
///
/// Panics if `w * h < 2` or either dimension is zero.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(
        w >= 1 && h >= 1 && w * h >= 2,
        "grid needs at least 2 nodes"
    );
    let id = |x: usize, y: usize| y * w + x;
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.edge(id(x, y), id(x + 1, y))
                    .expect("generator edges are in-bounds and duplicate-free");
            }
            if y + 1 < h {
                b.edge(id(x, y), id(x, y + 1))
                    .expect("generator edges are in-bounds and duplicate-free");
            }
        }
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// A `w × h` torus (wrap-around grid); requires `w, h >= 3` so the graph
/// stays simple.
///
/// # Panics
///
/// Panics if `w < 3` or `h < 3`.
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus needs both dimensions >= 3");
    let id = |x: usize, y: usize| y * w + x;
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            b.edge(id(x, y), id((x + 1) % w, y))
                .expect("generator edges are in-bounds and duplicate-free");
            b.edge(id(x, y), id(x, (y + 1) % h))
                .expect("generator edges are in-bounds and duplicate-free");
        }
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// The `d`-dimensional hypercube (`2^d` nodes), `d >= 1`.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: usize) -> Graph {
    assert!(
        (1..=20).contains(&d),
        "hypercube dimension must be in 1..=20"
    );
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.edge(v, u)
                    .expect("generator edges are in-bounds and duplicate-free");
            }
        }
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// A complete binary tree with `n >= 2` nodes (heap-shaped).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn binary_tree(n: usize) -> Graph {
    assert!(n >= 2, "binary tree needs at least 2 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.edge(v, (v - 1) / 2)
            .expect("generator edges are in-bounds and duplicate-free");
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// The lollipop graph: a clique of `clique` nodes with a path of `tail`
/// extra nodes hanging off it. A classical hard case for exploration.
///
/// # Panics
///
/// Panics if `clique < 3` or `tail == 0`.
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    assert!(clique >= 3, "lollipop clique must have >= 3 nodes");
    assert!(tail >= 1, "lollipop tail must have >= 1 node");
    let n = clique + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..clique {
        for v in u + 1..clique {
            b.edge(u, v)
                .expect("generator edges are in-bounds and duplicate-free");
        }
    }
    for t in 0..tail {
        let prev = if t == 0 { clique - 1 } else { clique + t - 1 };
        b.edge(prev, clique + t)
            .expect("generator edges are in-bounds and duplicate-free");
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// A uniformly random labelled tree on `n >= 2` nodes (random attachment),
/// deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n >= 2, "tree needs at least 2 nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        b.edge(v, parent)
            .expect("generator edges are in-bounds and duplicate-free");
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// A connected Erdős–Rényi graph: starts from a random tree (guaranteeing
/// connectivity) and adds each remaining pair independently with
/// probability `p`. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 2` or `p` is not in `[0, 1]`.
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n >= 2, "graph needs at least 2 nodes");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Random spanning tree via random parent attachment over a shuffled
    // order, so the tree shape is not biased toward low indices.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b.edge(order[i], order[j])
            .expect("generator edges are in-bounds and duplicate-free");
    }
    for u in 0..n {
        for v in u + 1..n {
            if !b.has_edge(u, v) && rng.gen_bool(p) {
                b.edge(u, v)
                    .expect("generator edges are in-bounds and duplicate-free");
            }
        }
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Total order is `spine * (1 + legs)`.
///
/// # Panics
///
/// Panics if `spine < 2`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 2, "caterpillar spine needs at least 2 nodes");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for s in 0..spine - 1 {
        b.edge(s, s + 1)
            .expect("generator edges are in-bounds and duplicate-free");
    }
    for s in 0..spine {
        for l in 0..legs {
            b.edge(s, spine + s * legs + l)
                .expect("generator edges are in-bounds and duplicate-free");
        }
    }
    b.build()
        .expect("generator graphs are connected and well-formed by construction")
}

/// Applies a random port renumbering (deterministic in `seed`) to `g`,
/// preserving its edge set. The algorithms must be correct for every local
/// port numbering; experiments use this to avoid accidentally relying on the
/// generators' insertion order.
pub fn with_shuffled_ports(g: &Graph, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(g.order());
    for e in g.edges() {
        b.edge(e.a.0, e.b.0)
            .expect("generator edges are in-bounds and duplicate-free");
    }
    b.shuffle_ports(|d| {
        let mut perm: Vec<usize> = (0..d).collect();
        perm.shuffle(&mut rng);
        perm
    });
    b.build().expect("port shuffle preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn all_generators_produce_valid_graphs() {
        let graphs: Vec<(&str, Graph)> = vec![
            ("ring", ring(7)),
            ("path", path(6)),
            ("complete", complete(5)),
            ("star", star(8)),
            ("grid", grid(3, 4)),
            ("torus", torus(3, 4)),
            ("hypercube", hypercube(4)),
            ("binary_tree", binary_tree(11)),
            ("lollipop", lollipop(4, 3)),
            ("random_tree", random_tree(12, 42)),
            ("gnp", gnp_connected(12, 0.3, 42)),
            ("caterpillar", caterpillar(4, 2)),
        ];
        for (name, g) in graphs {
            validate(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn ring_is_2_regular() {
        let g = ring(9);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(g.size(), 9);
    }

    #[test]
    fn path_has_two_leaves() {
        let g = path(7);
        let leaves = g.nodes().filter(|&v| g.degree(v) == 1).count();
        assert_eq!(leaves, 2);
        assert_eq!(g.size(), 6);
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(4, 3);
        assert_eq!(g.size(), 3 * 3 + 4 * 2); // h*(w-1) + w*(h-1)
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.size(), 2 * 20);
    }

    #[test]
    fn hypercube_is_d_regular() {
        let g = hypercube(4);
        assert_eq!(g.order(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn trees_have_n_minus_1_edges() {
        for (n, seed) in [(2, 0), (5, 1), (17, 2), (33, 3)] {
            let g = random_tree(n, seed);
            assert_eq!(g.size(), n - 1);
        }
        assert_eq!(binary_tree(10).size(), 9);
        assert_eq!(caterpillar(3, 2).size(), 8);
    }

    #[test]
    fn random_generators_are_seed_deterministic() {
        assert_eq!(random_tree(20, 7), random_tree(20, 7));
        assert_eq!(gnp_connected(15, 0.4, 9), gnp_connected(15, 0.4, 9));
        assert_ne!(random_tree(20, 7), random_tree(20, 8));
    }

    #[test]
    fn gnp_extremes() {
        // p = 0 gives a tree; p = 1 gives the complete graph.
        assert_eq!(gnp_connected(10, 0.0, 3).size(), 9);
        assert_eq!(gnp_connected(10, 1.0, 3).size(), 45);
    }

    #[test]
    fn lollipop_structure() {
        let g = lollipop(4, 3);
        assert_eq!(g.order(), 7);
        assert_eq!(g.size(), 6 + 3);
        // Tail end is a leaf.
        assert_eq!(g.degree(crate::NodeId(6)), 1);
    }

    #[test]
    fn shuffled_ports_keeps_edges() {
        let g = gnp_connected(12, 0.3, 5);
        let s = with_shuffled_ports(&g, 99);
        validate(&s).unwrap();
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = s.edges().collect();
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small_panics() {
        ring(2);
    }
}
