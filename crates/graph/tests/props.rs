//! Property tests for graph generators and structural invariants.

use proptest::prelude::*;
use rv_graph::{generators, validate, GraphFamily, NodeId, PortId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_trees_are_valid_and_acyclic(n in 2usize..40, seed in any::<u64>()) {
        let g = generators::random_tree(n, seed);
        validate(&g).unwrap();
        prop_assert_eq!(g.size(), n - 1);
    }

    #[test]
    fn gnp_is_valid_and_connected(n in 2usize..30, p in 0.0f64..1.0, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, p, seed);
        validate(&g).unwrap();
        // A connected graph has at least n-1 edges.
        prop_assert!(g.size() >= n - 1);
    }

    #[test]
    fn traverse_is_an_involution(n in 2usize..30, p in 0.0f64..1.0, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, p, seed);
        for v in g.nodes() {
            for port in 0..g.degree(v) {
                let arr = g.traverse(v, PortId(port));
                let back = g.traverse(arr.node, arr.entry_port);
                prop_assert_eq!(back.node, v);
                prop_assert_eq!(back.entry_port, PortId(port));
            }
        }
    }

    #[test]
    fn degree_sum_is_twice_edge_count(n in 2usize..30, p in 0.0f64..1.0, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, p, seed);
        let degsum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.size());
    }

    #[test]
    fn port_shuffle_preserves_structure(n in 3usize..25, seed in any::<u64>(), shuf in any::<u64>()) {
        let g = generators::gnp_connected(n, 0.3, seed);
        let s = generators::with_shuffled_ports(&g, shuf);
        validate(&s).unwrap();
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = s.edges().collect();
        e1.sort();
        e2.sort();
        prop_assert_eq!(e1, e2);
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), s.degree(v));
        }
    }

    #[test]
    fn families_generate_valid_graphs(fam_idx in 0usize..8, n in 4usize..30, seed in any::<u64>()) {
        let fam = GraphFamily::ALL[fam_idx];
        let g = fam.generate(n, seed);
        validate(&g).unwrap();
        prop_assert!(g.order() >= 2);
    }

    #[test]
    fn bfs_distances_satisfy_triangle_steps(n in 2usize..25, seed in any::<u64>()) {
        let g = generators::random_tree(n, seed);
        let d = g.bfs_distances(NodeId(0));
        // Adjacent nodes differ by at most 1 in BFS distance.
        for v in g.nodes() {
            for port in 0..g.degree(v) {
                let u = g.succ(v, PortId(port));
                prop_assert!(d[v.0].abs_diff(d[u.0]) <= 1);
            }
        }
    }
}
