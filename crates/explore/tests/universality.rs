//! Universality and integrality guarantees for the UXS substitution
//! (DESIGN.md §4): the default provider must behave, on every graph this
//! workspace ever runs, exactly like the universal exploration sequences
//! whose existence the paper imports from Reingold's theorem.

use proptest::prelude::*;
use rv_explore::{is_integral, verify_universal, SeededUxs};
use rv_graph::{generators, GraphFamily, NodeId};

/// Exhaustive check: for k = 4 the default sequence explores *every*
/// port-numbered graph of order ≤ 4 from *every* start node.
#[test]
fn default_uxs_is_universal_up_to_order_4() {
    let report = verify_universal(SeededUxs::default(), 4, 4);
    assert!(
        report.is_universal(),
        "default UXS failed on {} of {} applications",
        report.failures.len(),
        report.checked,
    );
    // 1 graph on 2 nodes, 14 port graphs on 3 nodes, and all on 4 nodes.
    assert!(
        report.checked > 1000,
        "enumeration shrank: {}",
        report.checked
    );
}

/// The quadratic provider must also be universal at small orders (it is the
/// provider the cost-sensitive experiments use).
#[test]
fn quadratic_uxs_is_universal_up_to_order_4() {
    let report = verify_universal(SeededUxs::quadratic(), 4, 4);
    assert!(
        report.is_universal(),
        "quadratic UXS failed on {} of {} applications",
        report.failures.len(),
        report.checked,
    );
}

/// Empirical integrality on every experiment family at a range of sizes,
/// from several start nodes, under shuffled port numberings.
#[test]
fn default_uxs_integral_on_all_experiment_families() {
    for fam in GraphFamily::ALL {
        for n in [4usize, 9, 16] {
            let g = fam.generate(n, 1234);
            let g = generators::with_shuffled_ports(&g, 5678);
            let k = g.order() as u64;
            for start in [0, g.order() / 2, g.order() - 1] {
                assert!(
                    is_integral(&g, SeededUxs::default(), k, NodeId(start)),
                    "{fam} n={n} start={start}: R({k}, ·) not integral"
                );
            }
        }
    }
}

#[test]
fn quadratic_uxs_integral_on_experiment_families_small() {
    for fam in GraphFamily::ALL {
        for n in [4usize, 8, 12] {
            let g = fam.generate(n, 99);
            let k = g.order() as u64;
            assert!(
                is_integral(&g, SeededUxs::quadratic(), k, NodeId(0)),
                "{fam} n={n}: quadratic R({k}, ·) not integral"
            );
        }
    }
}

/// Integrality is monotone in practice: if R(k, v) covers the graph, a
/// larger parameter must cover it too (longer sequence, same mechanism).
#[test]
fn integrality_holds_for_k_larger_than_order() {
    let g = generators::ring(7);
    for k in 7..12 {
        assert!(is_integral(&g, SeededUxs::default(), k, NodeId(3)), "k={k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random connected graphs with random port shuffles: R(n, ·) integral
    /// from a random start node.
    #[test]
    fn integral_on_random_graphs(
        n in 4usize..20,
        p in 0.1f64..0.9,
        seed in any::<u64>(),
        start_sel in any::<u64>(),
    ) {
        let g = generators::gnp_connected(n, p, seed);
        let g = generators::with_shuffled_ports(&g, seed ^ 0xABCD);
        let start = NodeId((start_sel % n as u64) as usize);
        prop_assert!(is_integral(&g, SeededUxs::default(), n as u64, start));
    }

    /// Trees are the sparse extreme; check them separately.
    #[test]
    fn integral_on_random_trees(n in 4usize..24, seed in any::<u64>()) {
        let g = generators::random_tree(n, seed);
        prop_assert!(is_integral(&g, SeededUxs::default(), n as u64, NodeId(0)));
    }
}
