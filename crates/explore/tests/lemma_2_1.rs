//! Lemma 2.1 of the paper: if the application of `R(2m, v)` in a graph is
//! *clean* (every visited node has degree ≤ m − 1), then it visits at
//! least `m` distinct nodes.
//!
//! The lemma is what lets ESST conclude, from a clean trunc with few
//! distinct token codes, that the whole graph has been explored. Here we
//! check it directly on generated and random graphs, for the actual
//! provider the implementation uses (the lemma must hold for any universal
//! sequence; our sequences are universal at these scales — see
//! `tests/universality.rs`).

use proptest::prelude::*;
use rv_explore::{r_trajectory, SeededUxs};
use rv_graph::{generators, GraphFamily, NodeId};

/// Checks the lemma's statement for one application.
fn check_lemma(g: &rv_graph::Graph, m: u64, start: NodeId) -> Result<(), String> {
    let t = r_trajectory(g, SeededUxs::default(), 2 * m, start);
    let clean = t.nodes.iter().all(|&v| (g.degree(v) as u64) < m);
    if clean {
        let distinct = t.distinct_nodes().len() as u64;
        if distinct < m {
            return Err(format!(
                "clean R(2·{m}) visited only {distinct} distinct nodes"
            ));
        }
    }
    Ok(())
}

#[test]
fn lemma_2_1_on_rings_and_paths() {
    // Rings/paths have max degree 2, so R(2m) is clean for every m ≥ 3;
    // the lemma then forces ≥ m distinct nodes whenever the graph has them.
    for n in [8usize, 12, 20] {
        for m in 3u64..=6 {
            check_lemma(&generators::ring(n), m, NodeId(0)).unwrap();
            check_lemma(&generators::path(n), m, NodeId(n / 2)).unwrap();
        }
    }
}

#[test]
fn lemma_2_1_on_every_family() {
    for fam in GraphFamily::ALL {
        let g = fam.generate(16, 9);
        for m in 3u64..=8 {
            for start in [0usize, g.order() - 1] {
                check_lemma(&g, m, NodeId(start)).unwrap_or_else(|e| panic!("{fam}: {e}"));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lemma_2_1_on_random_graphs(
        n in 6usize..24,
        p in 0.1f64..0.6,
        seed in any::<u64>(),
        m in 3u64..8,
        start_sel in any::<u64>(),
    ) {
        prop_assume!(m <= n as u64); // the lemma's hypothesis: m ≤ n
        let g = generators::gnp_connected(n, p, seed);
        let start = NodeId((start_sel % n as u64) as usize);
        prop_assert!(check_lemma(&g, m, start).is_ok());
    }

    /// Trees stress the small-degree regime where cleanness is common.
    #[test]
    fn lemma_2_1_on_random_trees(n in 6usize..30, seed in any::<u64>(), m in 3u64..8) {
        prop_assume!(m <= n as u64); // the lemma's hypothesis: m ≤ n
        let g = generators::random_tree(n, seed);
        prop_assert!(check_lemma(&g, m, NodeId(0)).is_ok());
    }
}
