//! Procedure ESST — exploration with a semi-stationary token (paper §2).
//!
//! A single agent explores a graph of **unknown** size, aided by a unique
//! token that is confined to one *extended edge* `u − v` (the edge plus its
//! endpoints) but may move arbitrarily within it, adversarially. The
//! procedure proceeds in phases `i = 3, 6, 9, …`; in phase `i` the agent
//!
//! 1. applies `R(2i, v)` from its current node — the **trunc** — and aborts
//!    the phase if the trunc is not *clean* (some visited node has degree
//!    `> i − 1`) or if the token was never seen along it;
//! 2. otherwise backtracks to the start of the trunc and, at every trunc
//!    node `u_j`, applies `R(i, u_j)`, interrupting it at the first token
//!    sighting and recording the **code** (the port sequence from `u_j` to
//!    the token); it aborts the phase if some `R(i, u_j)` never sees the
//!    token, or as soon as `i/3` distinct codes have been recorded;
//! 3. if every trunc node produced a sighting with fewer than `i/3` distinct
//!    codes, the procedure **stops** — Theorem 2.1 shows all edges have then
//!    been traversed and the total cost is polynomial in the (unknown) size.
//!
//! The implementation is a resumable state machine ([`EsstMachine`]) so the
//! multi-agent simulator can interleave it with other agents (Algorithm SGL
//! uses a parked agent as the token); [`run_esst`] drives it standalone
//! against a [`TokenOracle`].
//!
//! One deliberate, documented deviation: when a sighting pushes the distinct
//! code count to `i/3`, the paper lets the agent finish its current edge
//! traversal before aborting; this implementation aborts at the nearest
//! endpoint, which differs by at most one edge traversal and affects no
//! claim of Theorem 2.1.
//!
//! A second, performance-motivated extension: the **suspended-token
//! certificate** (`docs/STALL_TRACE.md`). When the driver can attest that
//! a sighting is of a token pinned at one position — a ghost holding at
//! most one committed final crossing, sighted where the streak's previous
//! sighting left it, whether parked at a node or suspended strictly
//! inside an edge — the machine runs a per-phase census of consecutive
//! attested sightings and closes the phase early — [`Drive::Done`] plus a
//! [`SuspendedTokenCert`] — once the streak outlasts any schedule under
//! which the token's remaining crossing ever completes and produces a
//! sighting elsewhere ([`SuspensionPolicy`]). Without attestation (every
//! standalone oracle by default) the census never accumulates and the
//! machine is bit-identical to the uncertified one.

use crate::provider::{ExplorationProvider, RWalker};
use rv_graph::{EdgeId, EdgeSet, Graph, NodeId, PortId};
use std::collections::BTreeSet;

/// A recorded code: the sequence of exit ports walked from a trunc node to
/// the token, plus whether the token was met inside the final edge.
// `Ord` keys the dedup set below (a BTreeSet, for deterministic iteration).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code {
    /// Exit ports from the trunc node up to (and including, when
    /// `inside_edge`) the edge where the token was met.
    pub ports: Vec<PortId>,
    /// `true` if the token was met strictly inside the last edge.
    pub inside_edge: bool,
}

/// Adversarial token behaviour for standalone ESST runs.
///
/// The token is confined to one extended edge; the oracle answers the only
/// two questions the continuous model can force:
///
/// * is the token **at node `v`** while the agent is there?
/// * is a crossing **forced inside `edge`** while the agent traverses it?
///
/// Implementations may answer adaptively (the token moves while the agent
/// is elsewhere) but must stay within one extended edge to model the
/// "semi-stationary" guarantee.
pub trait TokenOracle {
    /// Token present at `v` when the agent arrives/stands there?
    fn observe_node(&mut self, v: NodeId) -> bool;
    /// Token met inside `edge` when the agent traverses it starting
    /// from `from`?
    fn observe_traversal(&mut self, edge: EdgeId, from: NodeId) -> bool;
    /// Whether the driver can *attest* that an inside-edge sighting is of
    /// a **suspended** token: one that holds at most a single committed
    /// final crossing and can never produce new sightings after
    /// completing it (Algorithm SGL's token is a parked-forever ghost, so
    /// its driver attests; free-moving oracles must not). The standalone
    /// harness only ever attests inside-edge sightings — it cannot check
    /// position stability, so node sightings stay unattested — while
    /// richer drivers (the SGL behavior) attest any sighting of a ghost
    /// pinned at one position. Only attested sightings feed the
    /// suspended-token census; the default `false` keeps the certificate
    /// machinery provably inert.
    fn attests_suspension(&self) -> bool {
        false
    }
}

/// A token parked at a fixed node of its extended edge.
#[derive(Clone, Copy, Debug)]
pub struct StaticNodeToken {
    /// The node the token rests at.
    pub node: NodeId,
}

impl TokenOracle for StaticNodeToken {
    fn observe_node(&mut self, v: NodeId) -> bool {
        v == self.node
    }
    fn observe_traversal(&mut self, _edge: EdgeId, _from: NodeId) -> bool {
        false
    }
}

/// A token hiding strictly inside its edge: it is only ever seen when the
/// agent traverses that edge in full (evasive worst case for node checks).
#[derive(Clone, Copy, Debug)]
pub struct EvasiveEdgeToken {
    /// The edge the token hides in.
    pub edge: EdgeId,
}

impl TokenOracle for EvasiveEdgeToken {
    fn observe_node(&mut self, _v: NodeId) -> bool {
        false
    }
    fn observe_traversal(&mut self, edge: EdgeId, _from: NodeId) -> bool {
        edge == self.edge
    }
}

/// A token that cycles its position (endpoint `a` → inside → endpoint `b`)
/// every time the agent could observe it, maximising code diversity — the
/// strategy that stresses the `i/3`-codes abort rule.
#[derive(Clone, Copy, Debug)]
pub struct OscillatingToken {
    /// The extended edge the token lives on.
    pub edge: EdgeId,
    state: u8,
}

impl OscillatingToken {
    /// Creates the oscillating strategy on `edge`.
    pub fn new(edge: EdgeId) -> Self {
        OscillatingToken { edge, state: 0 }
    }
}

impl TokenOracle for OscillatingToken {
    fn observe_node(&mut self, v: NodeId) -> bool {
        if v != self.edge.a && v != self.edge.b {
            return false;
        }
        let here = match self.state {
            0 => v == self.edge.a,
            2 => v == self.edge.b,
            _ => false,
        };
        self.state = (self.state + 1) % 3;
        here
    }
    fn observe_traversal(&mut self, edge: EdgeId, _from: NodeId) -> bool {
        if edge != self.edge {
            return false;
        }
        let inside = self.state == 1;
        self.state = (self.state + 1) % 3;
        inside
    }
}

/// What the machine asks its driver to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Drive {
    /// Traverse the edge behind this port. If `interruptible`, a token met
    /// inside the edge interrupts the move (driver calls
    /// [`EsstMachine::interrupted_inside`]); otherwise the move always
    /// completes (driver calls [`EsstMachine::arrived`]).
    Traverse {
        /// Exit port at the current node.
        port: PortId,
        /// Whether an inside-edge sighting interrupts the move.
        interruptible: bool,
    },
    /// The procedure has terminated at the current node.
    Done,
}

/// Driver's report of a completed traversal.
#[derive(Clone, Copy, Debug)]
pub struct ArrivalReport {
    /// Port by which the agent entered the new node.
    pub entry: PortId,
    /// Degree of the new node.
    pub degree: usize,
    /// Token was met strictly inside the traversed edge (only meaningful
    /// for non-interruptible moves; interruptible ones are interrupted
    /// instead of completed).
    pub token_inside: bool,
    /// Token present at the arrival node.
    pub token_at_node: bool,
    /// Driver-attested evidence that this sighting is of a *suspended*
    /// token: one pinned at the same position (node or edge interior) as
    /// the previous sighting and holding at most one committed crossing
    /// (see [`TokenOracle::attests_suspension`]). Ignored unless
    /// `token_inside` or `token_at_node` is set.
    pub token_suspended: bool,
}

/// Policy knobs of the suspended-token census (see
/// [`EsstMachine::certificate`]).
///
/// The census counts *consecutive* attested sightings within one phase,
/// with no intervening unattested sighting, and certifies once the
/// streak is both long (`min_sightings`) and wide (`min_span` edge
/// traversals between its first and latest sighting). It fires on any
/// token that has stopped for good — one the adversary pinned
/// mid-protocol *or* one that simply parked at its final position (a
/// parked ghost is a permanent suspension too, so retiring the phase
/// early against it is equally sound and a free speedup). `min_span` is
/// the load-bearing bound twice over: a run that finishes under the
/// floors is bit-identical to a census-free run (in particular, a
/// sub-`min_span` smoke cutoff can never certify), and a phase that
/// *has* walked 60k traversals is deep enough that closing it keeps the
/// derived order bound adequate for the later seek/collect walks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuspensionPolicy {
    /// Minimum consecutive attested inside-edge sightings.
    pub min_sightings: u64,
    /// Minimum edge traversals between the streak's first sighting and
    /// the certifying one.
    pub min_span: u64,
}

impl Default for SuspensionPolicy {
    /// Calibrated against `docs/STALL_TRACE.md`: the pinned phases of the
    /// outlier cells accumulate thousands of same-position sightings over
    /// hundreds of thousands of traversals, so the floors sit far under
    /// their natural quiescence yet far over the 40k smoke cutoff and
    /// over the whole lifetime of the smallest golden cells, which stay
    /// bit-identical to a census-free run.
    fn default() -> Self {
        SuspensionPolicy {
            min_sightings: 48,
            min_span: 60_000,
        }
    }
}

/// A suspended-token certificate: the evidence on which a phase was closed
/// early (see [`EsstMachine::certificate`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuspendedTokenCert {
    /// Phase that was closed by the certificate.
    pub phase: u64,
    /// Consecutive attested sightings in the census streak.
    pub sightings: u64,
    /// Edge traversals spanned by the streak.
    pub span: u64,
}

/// One completed traversal in the trunc log.
#[derive(Clone, Copy, Debug)]
struct Step {
    exit: PortId,
    entry: PortId,
}

#[derive(Clone, Debug)]
enum State<P> {
    /// Walking the trunc `R(2i, ·)` forward.
    TruncForward { walker: RWalker<P> },
    /// Backtracking the trunc to its first node; `pos` steps remain.
    TruncBack { pos: usize },
    /// Executing `R(i, u_j)` where `j` indexes trunc nodes (`0..=r`).
    Inner {
        j: usize,
        walker: RWalker<P>,
        exits: Vec<PortId>,
        entries: Vec<PortId>,
    },
    /// Backtracking from a sighting to `u_j`; `remaining` entries to replay.
    InnerBack {
        j: usize,
        entries: Vec<PortId>,
        remaining: usize,
    },
    /// Walking the trunc edge from trunc node `j` to `j + 1`.
    GotoNext { j: usize },
    /// Terminated.
    Done,
}

/// Resumable ESST state machine.
///
/// Drive it by repeatedly calling [`EsstMachine::current_request`] and
/// answering with [`EsstMachine::arrived`] or
/// [`EsstMachine::interrupted_inside`]. See [`run_esst`] for the canonical
/// driver loop.
#[derive(Clone, Debug)]
pub struct EsstMachine<P> {
    provider: P,
    /// Current phase number `i` (3, 6, 9, …).
    phase: u64,
    state: State<P>,
    /// The move already handed to the driver and not yet resolved.
    pending: Option<Drive>,
    cost: u64,
    cur_degree: usize,
    cur_entry: Option<PortId>,
    token_here: bool,
    /// Distinct codes recorded in the current phase.
    codes: BTreeSet<Code>,
    /// Trunc traversal log of the current phase.
    trunc_log: Vec<Step>,
    /// Degree of each trunc node (`trunc_degrees[0]` = phase start node).
    trunc_degrees: Vec<usize>,
    /// Token seen anywhere along the trunc (including the start node)?
    trunc_token_seen: bool,
    /// Entry ports of every completed traversal over the whole run
    /// (node-level walk; lets SGL backtrack the ESST trajectory).
    walk_entries: Vec<PortId>,
    phases_aborted: u64,
    /// Suspended-token census policy (`None` disables certification).
    suspension: Option<SuspensionPolicy>,
    /// Consecutive attested inside-edge sightings; reset by phase
    /// boundaries and by any at-node or unattested sighting.
    streak_sightings: u64,
    /// `cost` at the streak's first sighting.
    streak_start_cost: u64,
    /// The certificate, once a census streak closed a phase.
    certificate: Option<SuspendedTokenCert>,
}

impl<P: ExplorationProvider + Clone> EsstMachine<P> {
    /// Starts the procedure at a node of degree `start_degree`;
    /// `token_at_start` reports whether the token is at that node.
    ///
    /// # Panics
    ///
    /// Panics if `start_degree == 0`.
    pub fn new(provider: P, start_degree: usize, token_at_start: bool) -> Self {
        assert!(start_degree > 0, "ESST at an isolated node");
        let mut m = EsstMachine {
            provider,
            phase: 3,
            state: State::Done,
            pending: None,
            cost: 0,
            cur_degree: start_degree,
            cur_entry: None,
            token_here: token_at_start,
            codes: BTreeSet::new(),
            trunc_log: Vec::new(),
            trunc_degrees: Vec::new(),
            trunc_token_seen: false,
            walk_entries: Vec::new(),
            phases_aborted: 0,
            suspension: Some(SuspensionPolicy::default()),
            streak_sightings: 0,
            streak_start_cost: 0,
            certificate: None,
        };
        m.start_phase(3);
        m
    }

    /// Overrides the suspended-token census policy (`None` disables the
    /// certificate entirely — the machine then behaves exactly as it did
    /// before the census existed).
    pub fn with_suspension_policy(mut self, policy: Option<SuspensionPolicy>) -> Self {
        self.suspension = policy;
        self
    }

    /// The suspended-token certificate, if one closed a phase: the machine
    /// reached [`Drive::Done`] because the census proved the token agent
    /// has held a single committed crossing for longer than any schedule
    /// that ever re-parks it at a node could sustain. `None` on natural
    /// termination.
    pub fn certificate(&self) -> Option<SuspendedTokenCert> {
        self.certificate
    }

    /// Total edge traversals so far (interrupted in-and-back moves count 2).
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Current phase number.
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// Number of aborted phases so far.
    pub fn phases_aborted(&self) -> u64 {
        self.phases_aborted
    }

    /// Whether the procedure has terminated.
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// Entry ports of all completed traversals (the node-level walk);
    /// replaying this sequence reversed walks the agent back to its start.
    pub fn walk_entries(&self) -> &[PortId] {
        &self.walk_entries
    }

    /// Consumes the machine and takes ownership of the walk entries —
    /// for callers that are done driving and need the walk (backtracking,
    /// outcome reports) without copying a potentially huge log.
    pub fn into_walk_entries(self) -> Vec<PortId> {
        self.walk_entries
    }

    fn start_phase(&mut self, i: u64) {
        self.phase = i;
        self.pending = None;
        self.codes.clear();
        self.trunc_log.clear();
        self.trunc_degrees.clear();
        self.trunc_degrees.push(self.cur_degree);
        self.trunc_token_seen = self.token_here;
        self.streak_sightings = 0; // the census never spans phases
        self.cur_entry = None; // fresh R application
        self.state = State::TruncForward {
            walker: RWalker::new(self.provider.clone(), 2 * i),
        };
    }

    /// Feeds one token observation to the suspended-token census: an
    /// attested sighting extends the streak, an unattested one breaks it.
    /// The machine does not second-guess the attestation — the driver
    /// vouches that the sighted token is pinned (it holds at most one
    /// committed crossing and was sighted at the same position as the
    /// streak's previous sighting, strictly inside an edge or parked at a
    /// node); a sighting the driver cannot vouch for may belong to a
    /// token that still moves and changes codes, so it restarts the
    /// census.
    fn observe_for_census(&mut self, suspended: bool) {
        if !suspended {
            self.streak_sightings = 0;
        } else {
            if self.streak_sightings == 0 {
                self.streak_start_cost = self.cost;
            }
            self.streak_sightings += 1;
        }
    }

    /// Closes the phase on a suspended-token certificate when the census
    /// qualifies. The sub-state does not matter: the certificate's
    /// warrant is the census itself — every sighting in an unbroken,
    /// span-qualified streak saw the token strictly inside an edge, and a
    /// token that never re-enters a node can never be met at one, so the
    /// rest of the phase (trunc tail, inner walks, codes) could only have
    /// chased it in vain. Closing during the trunc matters in practice:
    /// large-order final phases spend most of their length there, and a
    /// certificate gated on the inner walks would sit on a proven
    /// suspension for millions of traversals.
    fn maybe_certify(&mut self) {
        let Some(policy) = self.suspension else {
            return;
        };
        if self.certificate.is_some() || matches!(self.state, State::Done) {
            return;
        }
        let span = self.cost - self.streak_start_cost;
        if self.streak_sightings >= policy.min_sightings && span >= policy.min_span {
            self.certificate = Some(SuspendedTokenCert {
                phase: self.phase,
                sightings: self.streak_sightings,
                span,
            });
            self.state = State::Done;
        }
    }

    fn abort_phase(&mut self) {
        self.phases_aborted += 1;
        let next = self.phase + 3;
        self.start_phase(next);
    }

    /// The next action the driver must perform. Idempotent until resolved
    /// by [`EsstMachine::arrived`] or [`EsstMachine::interrupted_inside`].
    pub fn current_request(&mut self) -> Drive {
        if let Some(d) = self.pending {
            return d;
        }
        let drive = match &mut self.state {
            State::Done => return Drive::Done,
            State::TruncForward { walker } => {
                let port = walker
                    .next_exit(self.cur_entry, self.cur_degree)
                    .expect("trunc completion is handled at arrival");
                Drive::Traverse {
                    port,
                    interruptible: false,
                }
            }
            State::TruncBack { pos } => Drive::Traverse {
                port: self.trunc_log[*pos - 1].entry,
                interruptible: false,
            },
            State::Inner { walker, .. } => {
                let port = walker
                    .next_exit(self.cur_entry, self.cur_degree)
                    .expect("inner completion is handled at arrival");
                Drive::Traverse {
                    port,
                    interruptible: true,
                }
            }
            State::InnerBack {
                entries, remaining, ..
            } => Drive::Traverse {
                port: entries[*remaining - 1],
                interruptible: false,
            },
            State::GotoNext { j } => Drive::Traverse {
                port: self.trunc_log[*j].exit,
                interruptible: false,
            },
        };
        self.pending = Some(drive);
        drive
    }

    /// Reports that the pending traversal completed.
    ///
    /// # Panics
    ///
    /// Panics if there is no pending traversal.
    pub fn arrived(&mut self, report: ArrivalReport) {
        let pending = self
            .pending
            .take()
            .expect("arrived() without a pending move");
        let port = match pending {
            Drive::Traverse { port, .. } => port,
            Drive::Done => unreachable!("Done is never pending"),
        };
        self.cost += 1;
        self.walk_entries.push(report.entry);
        self.cur_degree = report.degree;
        self.cur_entry = Some(report.entry);
        self.token_here = report.token_at_node;
        if report.token_at_node || report.token_inside {
            self.observe_for_census(report.token_suspended);
        }

        let state = std::mem::replace(&mut self.state, State::Done);
        match state {
            State::TruncForward { walker } => {
                self.trunc_log.push(Step {
                    exit: port,
                    entry: report.entry,
                });
                self.trunc_degrees.push(report.degree);
                if report.token_inside || report.token_at_node {
                    self.trunc_token_seen = true;
                }
                if walker.is_done() {
                    let i = self.phase;
                    let clean = self.trunc_degrees.iter().all(|&d| (d as u64) < i);
                    if !clean || !self.trunc_token_seen {
                        self.abort_phase();
                    } else {
                        let r = self.trunc_log.len();
                        self.state = State::TruncBack { pos: r };
                    }
                } else {
                    self.state = State::TruncForward { walker };
                }
            }
            State::TruncBack { pos } => {
                if pos == 1 {
                    self.start_inner(0);
                } else {
                    self.state = State::TruncBack { pos: pos - 1 };
                }
            }
            State::Inner {
                j,
                walker,
                mut exits,
                mut entries,
            } => {
                exits.push(port);
                entries.push(report.entry);
                if report.token_inside {
                    // Edge-granular driver (the multi-agent simulator):
                    // the crossing happened inside the completed edge; code
                    // ends with this edge's port, and the backtrack replays
                    // the full edge.
                    let code = Code {
                        ports: exits,
                        inside_edge: true,
                    };
                    let remaining = entries.len();
                    self.state = State::InnerBack {
                        j,
                        entries,
                        remaining,
                    };
                    self.record_code_and_maybe_abort(code);
                } else if report.token_at_node {
                    let code = Code {
                        ports: exits,
                        inside_edge: false,
                    };
                    let remaining = entries.len();
                    self.state = State::InnerBack {
                        j,
                        entries,
                        remaining,
                    };
                    self.record_code_and_maybe_abort(code);
                } else if walker.is_done() {
                    // R(i, u_j) ended without a sighting → abort the phase.
                    self.abort_phase();
                } else {
                    self.state = State::Inner {
                        j,
                        walker,
                        exits,
                        entries,
                    };
                }
            }
            State::InnerBack {
                j,
                entries,
                remaining,
            } => {
                if remaining == 1 {
                    self.after_inner_done(j);
                } else {
                    self.state = State::InnerBack {
                        j,
                        entries,
                        remaining: remaining - 1,
                    };
                }
            }
            State::GotoNext { j } => {
                self.start_inner(j + 1);
            }
            State::Done => unreachable!("arrived() on a finished machine"),
        }
        self.maybe_certify();
    }

    /// Reports that the pending interruptible traversal was cut short by a
    /// token sighting inside the edge; the agent is back at the node it
    /// left. `suspended` is the driver's attestation for the sighting (see
    /// [`TokenOracle::attests_suspension`]).
    ///
    /// # Panics
    ///
    /// Panics if the pending move was not an interruptible traversal.
    pub fn interrupted_inside(&mut self, suspended: bool) {
        let pending = self
            .pending
            .take()
            .expect("interrupted without a pending move");
        let port = match pending {
            Drive::Traverse {
                port,
                interruptible: true,
            } => port,
            other => panic!("interrupted_inside() on non-interruptible move {other:?}"),
        };
        self.cost += 2; // into the edge and back
        self.observe_for_census(suspended);
        let state = std::mem::replace(&mut self.state, State::Done);
        match state {
            State::Inner {
                j,
                mut exits,
                entries,
                ..
            } => {
                exits.push(port);
                let code = Code {
                    ports: exits,
                    inside_edge: true,
                };
                let remaining = entries.len();
                self.state = State::InnerBack {
                    j,
                    entries,
                    remaining,
                };
                self.record_code_and_maybe_abort(code);
                self.resolve_trivial_inner_back();
            }
            _ => unreachable!("interruptible moves only occur in Inner state"),
        }
        self.maybe_certify();
    }

    /// Standing at trunc node `j`: start `R(phase, u_j)` (or record an
    /// empty code immediately if the token is right here).
    fn start_inner(&mut self, j: usize) {
        if self.token_here {
            let code = Code {
                ports: Vec::new(),
                inside_edge: false,
            };
            self.state = State::InnerBack {
                j,
                entries: Vec::new(),
                remaining: 0,
            };
            self.record_code_and_maybe_abort(code);
            self.resolve_trivial_inner_back();
        } else {
            self.cur_entry = None; // fresh R application at u_j
            self.state = State::Inner {
                j,
                walker: RWalker::new(self.provider.clone(), self.phase),
                exits: Vec::new(),
                entries: Vec::new(),
            };
        }
    }

    /// If an `InnerBack` has nothing to replay, finish the node now.
    fn resolve_trivial_inner_back(&mut self) {
        if let State::InnerBack {
            remaining: 0, j, ..
        } = self.state
        {
            self.after_inner_done(j);
        }
    }

    /// Called when the agent stands at `u_j` again after a sighting.
    fn after_inner_done(&mut self, j: usize) {
        if j == self.trunc_log.len() {
            // The last trunc node is processed: the phase completes — stop.
            self.state = State::Done;
        } else {
            self.state = State::GotoNext { j };
        }
    }

    fn record_code_and_maybe_abort(&mut self, code: Code) {
        self.codes.insert(code);
        if self.codes.len() as u64 >= self.phase / 3 {
            self.abort_phase();
        }
    }
}

/// Outcome of a standalone ESST run.
#[derive(Clone, Debug)]
pub struct EsstOutcome {
    /// Total edge traversals.
    pub cost: u64,
    /// Node where the procedure stopped.
    pub final_node: NodeId,
    /// Phase in which the procedure terminated.
    pub final_phase: u64,
    /// Phases aborted before termination.
    pub phases_aborted: u64,
    /// Distinct edges traversed over the whole run.
    pub edges_covered: usize,
    /// The suspended-token certificate, if one closed the final phase.
    pub certificate: Option<SuspendedTokenCert>,
    /// Entry ports of all completed traversals (for backtracking).
    pub walk_entries: Vec<PortId>,
}

/// Runs procedure ESST to completion in `g` from `start` against `oracle`.
///
/// `max_phase` caps the phase number as a safety net (Theorem 2.1 guarantees
/// termination by phase `9n + 3` for an honest token); exceeding the cap
/// returns `None`.
pub fn run_esst<P, O>(
    g: &Graph,
    provider: P,
    start: NodeId,
    oracle: &mut O,
    max_phase: u64,
) -> Option<EsstOutcome>
where
    P: ExplorationProvider + Clone,
    O: TokenOracle + ?Sized,
{
    let token_at_start = oracle.observe_node(start);
    let mut m = EsstMachine::new(provider, g.degree(start), token_at_start);
    let mut cur = start;
    let mut covered = EdgeSet::new(g);
    loop {
        if m.phase() > max_phase {
            return None;
        }
        match m.current_request() {
            Drive::Done => break,
            Drive::Traverse {
                port,
                interruptible,
            } => {
                let index = g.edge_index_at(cur, port);
                let inside = oracle.observe_traversal(g.edge_id(index), cur);
                let suspended = inside && oracle.attests_suspension();
                if interruptible && inside {
                    covered.insert(index);
                    m.interrupted_inside(suspended);
                } else {
                    let arr = g.traverse(cur, port);
                    cur = arr.node;
                    covered.insert(index);
                    let at_node = oracle.observe_node(cur);
                    m.arrived(ArrivalReport {
                        entry: arr.entry_port,
                        degree: g.degree(cur),
                        token_inside: inside,
                        token_at_node: at_node,
                        token_suspended: suspended,
                    });
                }
            }
        }
    }
    Some(EsstOutcome {
        cost: m.cost(),
        final_node: cur,
        final_phase: m.phase(),
        phases_aborted: m.phases_aborted(),
        edges_covered: covered.len(),
        certificate: m.certificate(),
        walk_entries: m.into_walk_entries(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededUxs;
    use rv_graph::generators;

    /// Quadratic-length provider keeps ESST test runtimes reasonable; tests
    /// that rely on integrality verify it explicitly.
    fn fast_uxs() -> SeededUxs {
        SeededUxs::new(0xE557, 8).with_power(2)
    }

    #[test]
    fn esst_terminates_and_covers_ring_with_static_token() {
        let g = generators::ring(5);
        let mut oracle = StaticNodeToken { node: NodeId(2) };
        let out = run_esst(&g, fast_uxs(), NodeId(0), &mut oracle, 9 * 5 + 3)
            .expect("must terminate by phase 9n+3");
        assert_eq!(
            out.edges_covered,
            g.size(),
            "Theorem 2.1: all edges traversed"
        );
        assert!(out.cost > 0);
    }

    #[test]
    fn esst_handles_evasive_edge_token() {
        let g = generators::ring(4);
        let edge = EdgeId::new(NodeId(1), NodeId(2));
        let mut oracle = EvasiveEdgeToken { edge };
        let out =
            run_esst(&g, fast_uxs(), NodeId(0), &mut oracle, 9 * 4 + 3).expect("must terminate");
        assert_eq!(out.edges_covered, g.size());
        assert!(
            out.certificate.is_none(),
            "an unattested evasive token must never certify"
        );
    }

    /// An evasive edge token whose driver attests suspension — the
    /// standalone model of SGL's parked-forever ghost caught mid-crossing.
    struct SuspendedEdgeToken {
        edge: EdgeId,
    }
    impl TokenOracle for SuspendedEdgeToken {
        fn observe_node(&mut self, _v: NodeId) -> bool {
            false
        }
        fn observe_traversal(&mut self, edge: EdgeId, _f: NodeId) -> bool {
            edge == self.edge
        }
        fn attests_suspension(&self) -> bool {
            true
        }
    }

    /// Drives a machine with an explicit suspension policy against an
    /// oracle — `run_esst`'s loop, with the policy injectable.
    fn drive_with_policy<O: TokenOracle>(
        g: &Graph,
        start: NodeId,
        oracle: &mut O,
        policy: Option<SuspensionPolicy>,
        max_phase: u64,
    ) -> Option<(EsstMachine<SeededUxs>, NodeId)> {
        let token_at_start = oracle.observe_node(start);
        let mut m = EsstMachine::new(fast_uxs(), g.degree(start), token_at_start)
            .with_suspension_policy(policy);
        let mut cur = start;
        loop {
            if m.phase() > max_phase {
                return None;
            }
            match m.current_request() {
                Drive::Done => return Some((m, cur)),
                Drive::Traverse {
                    port,
                    interruptible,
                } => {
                    let index = g.edge_index_at(cur, port);
                    let inside = oracle.observe_traversal(g.edge_id(index), cur);
                    let suspended = inside && oracle.attests_suspension();
                    if interruptible && inside {
                        m.interrupted_inside(suspended);
                    } else {
                        let arr = g.traverse(cur, port);
                        cur = arr.node;
                        let at_node = oracle.observe_node(cur);
                        m.arrived(ArrivalReport {
                            entry: arr.entry_port,
                            degree: g.degree(cur),
                            token_inside: inside,
                            token_at_node: at_node,
                            token_suspended: suspended,
                        });
                    }
                }
            }
        }
    }

    #[test]
    fn attested_suspension_certifies_and_backtracks_to_start() {
        // A permanently-suspended attested token pins every phase the way
        // the stall-trace outliers do; a small census policy must close a
        // phase with a certificate, and the recorded walk must still
        // replay back to the start node from wherever the early stop
        // landed.
        let g = generators::ring(6);
        let edge = EdgeId::new(NodeId(2), NodeId(3));
        let mut oracle = SuspendedEdgeToken { edge };
        let policy = SuspensionPolicy {
            min_sightings: 3,
            min_span: 8,
        };
        let (m, cur) = drive_with_policy(&g, NodeId(0), &mut oracle, Some(policy), 9 * 6 + 3)
            .expect("the certificate must terminate the run");
        let cert = m.certificate().expect("a certificate closed the phase");
        assert!(m.is_done());
        assert!(cert.sightings >= 3 && cert.span >= 8);
        assert_eq!(cert.phase, m.phase());
        let mut back = cur;
        for &entry in m.walk_entries().iter().rev() {
            back = g.traverse(back, entry).node;
        }
        assert_eq!(back, NodeId(0), "certified stop still backtracks home");
    }

    #[test]
    fn suspension_census_resets_on_at_node_sightings() {
        // An oscillating token keeps re-parking at its endpoints; even
        // with attestation forced on and a tiny policy, the at-node
        // sightings break every streak — the certificate must not fire.
        struct AttestingOscillator(OscillatingToken);
        impl TokenOracle for AttestingOscillator {
            fn observe_node(&mut self, v: NodeId) -> bool {
                self.0.observe_node(v)
            }
            fn observe_traversal(&mut self, e: EdgeId, f: NodeId) -> bool {
                self.0.observe_traversal(e, f)
            }
            fn attests_suspension(&self) -> bool {
                true
            }
        }
        let g = generators::path(4);
        let edge = EdgeId::new(NodeId(1), NodeId(2));
        let mut oracle = AttestingOscillator(OscillatingToken::new(edge));
        let policy = SuspensionPolicy {
            min_sightings: 3,
            min_span: 8,
        };
        let (m, _) = drive_with_policy(&g, NodeId(0), &mut oracle, Some(policy), 9 * 4 + 3)
            .expect("must terminate naturally");
        assert!(
            m.certificate().is_none(),
            "a token that re-parks at nodes must never be certified suspended"
        );
    }

    #[test]
    fn census_is_free_when_it_never_fires() {
        // The same instance driven three ways — census disabled, census
        // armed at a policy this instance can never satisfy, and armed at
        // the default policy against an oracle that does not attest —
        // must produce bit-identical runs with no certificate: the
        // machinery is observable only at the moment it fires.
        let g = generators::ring(4);
        let edge = EdgeId::new(NodeId(1), NodeId(2));
        let cap = 9 * 4 + 3;
        let unreachable = SuspensionPolicy {
            min_sightings: u64::MAX,
            min_span: u64::MAX,
        };
        let disabled =
            drive_with_policy(&g, NodeId(0), &mut SuspendedEdgeToken { edge }, None, cap)
                .expect("must terminate");
        let armed_wide = drive_with_policy(
            &g,
            NodeId(0),
            &mut SuspendedEdgeToken { edge },
            Some(unreachable),
            cap,
        )
        .expect("must terminate");
        let unattested = drive_with_policy(
            &g,
            NodeId(0),
            &mut EvasiveEdgeToken { edge },
            Some(SuspensionPolicy::default()),
            cap,
        )
        .expect("must terminate");
        for (m, _) in [&disabled, &armed_wide, &unattested] {
            assert!(m.certificate().is_none());
            assert_eq!(m.cost(), disabled.0.cost());
            assert_eq!(m.phase(), disabled.0.phase());
            assert_eq!(m.walk_entries(), disabled.0.walk_entries());
        }
        assert_eq!(disabled.1, armed_wide.1);
        assert_eq!(disabled.1, unattested.1);
    }

    #[test]
    fn esst_handles_oscillating_token() {
        let g = generators::path(4);
        let edge = EdgeId::new(NodeId(1), NodeId(2));
        let mut oracle = OscillatingToken::new(edge);
        let out =
            run_esst(&g, fast_uxs(), NodeId(0), &mut oracle, 9 * 4 + 3).expect("must terminate");
        assert_eq!(out.edges_covered, g.size());
    }

    #[test]
    fn esst_with_no_token_never_terminates_within_cap() {
        // Exploration without any token is impossible (paper §2); the
        // machine must keep aborting phases.
        struct NoToken;
        impl TokenOracle for NoToken {
            fn observe_node(&mut self, _v: NodeId) -> bool {
                false
            }
            fn observe_traversal(&mut self, _e: EdgeId, _f: NodeId) -> bool {
                false
            }
        }
        let g = generators::ring(4);
        let out = run_esst(&g, fast_uxs(), NodeId(0), &mut NoToken, 15);
        assert!(out.is_none());
    }

    #[test]
    fn walk_entries_backtrack_to_start() {
        let g = generators::gnp_connected(5, 0.5, 7);
        let mut oracle = StaticNodeToken { node: NodeId(3) };
        let out = run_esst(&g, fast_uxs(), NodeId(1), &mut oracle, 9 * 5 + 3).unwrap();
        // Replaying the recorded entry ports in reverse returns to start.
        let mut cur = out.final_node;
        for &entry in out.walk_entries.iter().rev() {
            cur = g.traverse(cur, entry).node;
        }
        assert_eq!(cur, NodeId(1));
    }

    #[test]
    fn cost_grows_with_termination_phase() {
        // Larger graphs need later phases; cost must be monotone-ish in n.
        let mut prev_cost = 0;
        for n in [4usize, 6, 8] {
            let g = generators::ring(n);
            let mut oracle = StaticNodeToken { node: NodeId(1) };
            let out = run_esst(&g, fast_uxs(), NodeId(0), &mut oracle, 9 * n as u64 + 3)
                .expect("must terminate");
            assert_eq!(out.edges_covered, g.size());
            assert!(out.cost >= prev_cost / 4, "cost collapsed unexpectedly");
            prev_cost = out.cost;
        }
    }
}
