//! The [`ExplorationProvider`] abstraction and agent-side walker.

use rv_graph::PortId;

/// Source of universal exploration sequences.
///
/// For each parameter `k`, a provider defines a deterministic sequence of
/// increments `x_0, …, x_{P(k)-1}` (the paper's `x_1 … x_{P(k)}`, 0-based
/// here) and its length `P(k)`. The rendezvous algorithm only relies on:
///
/// * **determinism** — every agent, knowing only `k`, derives the same
///   sequence (so the provider must be a pure function of `k` and `i`);
/// * **integrality for `k ≥ n`** — applied in any graph of order ≤ `k` the
///   induced walk traverses every edge (checked by
///   [`crate::is_integral`] / [`crate::verify_universal`]).
///
/// `P` must be non-decreasing in `k` (the cost analysis of Theorem 3.1
/// assumes this).
pub trait ExplorationProvider {
    /// Length `P(k)` of the exploration sequence for parameter `k`
    /// (number of edge traversals of `R(k, ·)`).
    fn len(&self, k: u64) -> u64;

    /// The `i`-th increment, `0 ≤ i < len(k)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `i >= len(k)`.
    fn increment(&self, k: u64, i: u64) -> u64;
}

impl<T: ExplorationProvider + ?Sized> ExplorationProvider for &T {
    fn len(&self, k: u64) -> u64 {
        (**self).len(k)
    }
    fn increment(&self, k: u64, i: u64) -> u64 {
        (**self).increment(k, i)
    }
}

/// Agent-side stepper through `R(k, ·)`.
///
/// This is the only interface an *agent* has to the exploration sequence:
/// fed the local observation (entry port and degree of the current node) it
/// yields the exit port for the next step — the agent never sees node
/// identities. The first step of `R(k, v)` treats the (non-existent) entry
/// port at the start node as `0`, matching the usual UXS convention.
#[derive(Clone, Debug)]
pub struct RWalker<P> {
    provider: P,
    k: u64,
    step: u64,
}

impl<P: ExplorationProvider> RWalker<P> {
    /// Starts a fresh walk of `R(k, ·)`.
    pub fn new(provider: P, k: u64) -> Self {
        RWalker {
            provider,
            k,
            step: 0,
        }
    }

    /// Steps already taken.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Total steps in this walk (`P(k)`).
    pub fn total_steps(&self) -> u64 {
        self.provider.len(self.k)
    }

    /// Whether the walk is complete.
    pub fn is_done(&self) -> bool {
        self.step >= self.provider.len(self.k)
    }

    /// Computes the next exit port from the entry port (`None` at the start
    /// node) and the degree of the current node, and advances the walk.
    ///
    /// Returns `None` when the walk is complete.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0` (the model has no isolated nodes).
    pub fn next_exit(&mut self, entry: Option<PortId>, degree: usize) -> Option<PortId> {
        assert!(degree > 0, "RWalker: node of degree 0");
        if self.is_done() {
            return None;
        }
        let x = self.provider.increment(self.k, self.step);
        self.step += 1;
        let p = entry.map(|p| p.0 as u64).unwrap_or(0);
        Some(PortId(((p + x) % degree as u64) as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededUxs;

    #[test]
    fn walker_counts_steps_and_terminates() {
        let uxs = SeededUxs::default();
        let mut w = RWalker::new(&uxs, 3);
        let total = w.total_steps();
        assert!(total > 0);
        let mut n = 0;
        while w.next_exit(Some(PortId(0)), 2).is_some() {
            n += 1;
        }
        assert_eq!(n, total);
        assert!(w.is_done());
        assert_eq!(w.next_exit(Some(PortId(0)), 2), None);
    }

    #[test]
    fn exit_port_is_entry_plus_increment_mod_degree() {
        let uxs = SeededUxs::default();
        let mut w = RWalker::new(&uxs, 4);
        let x0 = uxs.increment(4, 0);
        let exit = w.next_exit(None, 3).unwrap();
        assert_eq!(exit.0 as u64, x0 % 3);
        let x1 = uxs.increment(4, 1);
        let exit = w.next_exit(Some(PortId(2)), 3).unwrap();
        assert_eq!(exit.0 as u64, (2 + x1) % 3);
    }

    #[test]
    #[should_panic(expected = "degree 0")]
    fn walker_rejects_degree_zero() {
        let uxs = SeededUxs::default();
        RWalker::new(&uxs, 2).next_exit(None, 0);
    }
}
