#![forbid(unsafe_code)]
//! Graph-exploration substrate for the rendezvous algorithm.
//!
//! The paper (§2, Preliminaries) builds everything on two procedures:
//!
//! 1. **`R(k, v)`** — the trajectory obtained by applying a *universal
//!    exploration sequence* (UXS) from node `v` with parameter `k`: a fixed
//!    deterministic sequence of increments `x_1, x_2, …, x_{P(k)}` such that
//!    the walk "enter by port `p`, leave by port `(p + x_i) mod d`" traverses
//!    all edges of *any* graph of order ≤ `k`, from *any* start node, within
//!    a polynomial number `P(k)` of steps. The paper cites Reingold's
//!    log-space construction for the existence of such sequences; this crate
//!    replaces that construction (galactic constants, irrelevant to the
//!    rendezvous logic) by seeded deterministic sequences with the exact same
//!    interface, plus machinery to *verify* universality — see
//!    [`SeededUxs`], [`verify_universal`] and DESIGN.md §4.
//!
//! 2. **Procedure ESST** — exploration with a semi-stationary token: a
//!    single agent explores a graph of unknown size with the help of a
//!    unique token confined to one *extended edge* (an edge plus its two
//!    endpoints) but otherwise moving adversarially. See [`esst`].
//!
//! # Examples
//!
//! ```
//! use rv_explore::{SeededUxs, ExplorationProvider, r_trajectory, is_integral};
//! use rv_graph::{generators, NodeId};
//!
//! let uxs = SeededUxs::default();
//! let g = generators::ring(5);
//! // With parameter k >= order, R(k, v) covers every edge.
//! assert!(is_integral(&g, &uxs, 5, NodeId(0)));
//! let traj = r_trajectory(&g, &uxs, 5, NodeId(0));
//! assert_eq!(traj.nodes.len() as u64, uxs.len(5) + 1);
//! ```

pub mod esst;
mod integrality;
mod provider;
pub mod search;
mod trajectory_r;
mod uxs;

pub use integrality::{enumerate_port_graphs, is_integral, verify_universal, UniversalityReport};
pub use provider::{ExplorationProvider, RWalker};
pub use trajectory_r::{r_trajectory, ConcreteTrajectory};
pub use uxs::{SeededUxs, TableUxs};
