//! Simulator-side construction of concrete `R(k, v)` trajectories.

use crate::provider::{ExplorationProvider, RWalker};
use rv_graph::{Graph, NodeId, PortId};

/// A concrete trajectory in a known graph: the sequence of visited nodes
/// together with the exit and entry ports of every traversal.
///
/// `nodes.len() == exit_ports.len() + 1 == entry_ports.len() + 1`; traversal
/// `i` leaves `nodes[i]` via `exit_ports[i]` and enters `nodes[i+1]` via
/// `entry_ports[i]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcreteTrajectory {
    /// Visited nodes, starting with the start node.
    pub nodes: Vec<NodeId>,
    /// Port used to leave `nodes[i]`.
    pub exit_ports: Vec<PortId>,
    /// Port by which `nodes[i + 1]` was entered.
    pub entry_ports: Vec<PortId>,
}

impl ConcreteTrajectory {
    /// Number of edge traversals.
    pub fn len(&self) -> usize {
        self.exit_ports.len()
    }

    /// `true` if the trajectory performs no traversal.
    pub fn is_empty(&self) -> bool {
        self.exit_ports.is_empty()
    }

    /// The set of distinct nodes visited.
    pub fn distinct_nodes(&self) -> std::collections::BTreeSet<NodeId> {
        self.nodes.iter().copied().collect()
    }

    /// The reverse trajectory `T̄` (paper notation): visits the same nodes
    /// backwards, leaving through what were entry ports.
    pub fn reversed(&self) -> ConcreteTrajectory {
        let mut nodes: Vec<_> = self.nodes.clone();
        nodes.reverse();
        let mut exit_ports: Vec<_> = self.entry_ports.clone();
        exit_ports.reverse();
        let mut entry_ports: Vec<_> = self.exit_ports.clone();
        entry_ports.reverse();
        ConcreteTrajectory {
            nodes,
            exit_ports,
            entry_ports,
        }
    }

    /// Checks this is a valid walk in `g` (each step follows an actual edge
    /// with consistent ports).
    pub fn is_valid_in(&self, g: &Graph) -> bool {
        if self.nodes.len() != self.exit_ports.len() + 1
            || self.entry_ports.len() != self.exit_ports.len()
        {
            return false;
        }
        for i in 0..self.exit_ports.len() {
            let v = self.nodes[i];
            if self.exit_ports[i].0 >= g.degree(v) {
                return false;
            }
            let arr = g.traverse(v, self.exit_ports[i]);
            if arr.node != self.nodes[i + 1] || arr.entry_port != self.entry_ports[i] {
                return false;
            }
        }
        true
    }
}

/// Computes the paper's `R(k, v)` in graph `g`: the trajectory of the
/// provider's exploration sequence for parameter `k` applied at `v`.
///
/// # Panics
///
/// Panics if `v` is out of range for `g`.
pub fn r_trajectory<P: ExplorationProvider>(
    g: &Graph,
    provider: P,
    k: u64,
    v: NodeId,
) -> ConcreteTrajectory {
    assert!(v.0 < g.order(), "start node out of range");
    let mut walker = RWalker::new(provider, k);
    let mut nodes = vec![v];
    let mut exit_ports = Vec::new();
    let mut entry_ports = Vec::new();
    let mut cur = v;
    let mut entry: Option<PortId> = None;
    while let Some(exit) = walker.next_exit(entry, g.degree(cur)) {
        let arr = g.traverse(cur, exit);
        exit_ports.push(exit);
        entry_ports.push(arr.entry_port);
        nodes.push(arr.node);
        cur = arr.node;
        entry = Some(arr.entry_port);
    }
    ConcreteTrajectory {
        nodes,
        exit_ports,
        entry_ports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededUxs;
    use rv_graph::generators;

    #[test]
    fn r_trajectory_is_valid_walk() {
        let g = generators::gnp_connected(10, 0.3, 3);
        let t = r_trajectory(&g, SeededUxs::default(), 10, NodeId(2));
        assert!(t.is_valid_in(&g));
        assert_eq!(t.len() as u64, SeededUxs::default().len(10));
    }

    #[test]
    fn reversal_is_involutive_and_valid() {
        let g = generators::ring(6);
        let t = r_trajectory(&g, SeededUxs::default(), 6, NodeId(0));
        let r = t.reversed();
        assert!(r.is_valid_in(&g));
        assert_eq!(r.reversed(), t);
        assert_eq!(r.nodes.first(), t.nodes.last());
        assert_eq!(r.nodes.last(), t.nodes.first());
    }

    #[test]
    fn validity_detects_corruption() {
        let g = generators::ring(5);
        let mut t = r_trajectory(&g, SeededUxs::default(), 5, NodeId(0));
        let n = t.nodes.len();
        t.nodes[n / 2] = NodeId((t.nodes[n / 2].0 + 2) % 5);
        assert!(!t.is_valid_in(&g));
    }

    #[test]
    fn empty_trajectory_handles() {
        let t = ConcreteTrajectory {
            nodes: vec![NodeId(0)],
            exit_ports: vec![],
            entry_ports: vec![],
        };
        assert!(t.is_empty());
        assert_eq!(t.reversed(), t);
    }
}
