//! Concrete exploration-sequence providers.
//!
//! **Substitution note (DESIGN.md §4).** The paper invokes Reingold's
//! log-space universal exploration sequences only as an existence result
//! with polynomial length `P(k)`. Reproducing Reingold's zig-zag-product
//! construction would add enormous constants while changing nothing about
//! the rendezvous logic, which treats `R(k, v)` as a black box that is
//! (a) deterministic and common to all agents and (b) integral for `k ≥ n`.
//! [`SeededUxs`] preserves both properties: it derives increments from a
//! fixed splitmix64 hash of `(seed, k, i)` — a published constant table in
//! spirit — with length `P(k) = coeff · k³`. Aleliunas et al. (1979) show a
//! random sequence of length `O(n³ log n)` is universal with high
//! probability; [`crate::verify_universal`] verifies universality
//! exhaustively for small `k`, and every experiment in this workspace checks
//! integrality on its actual graph before trusting a run.

use crate::provider::ExplorationProvider;

/// Deterministic pseudorandom exploration sequences with
/// `P(k) = coeff · k^power` (min 1).
///
/// The default (`seed = 0x5EED_CAFE`, `coeff = 4`, `power = 3`) matches the
/// `O(n³ log n)` Aleliunas bound up to the log factor; it passes exhaustive
/// universality verification for all port-numbered graphs of order ≤ 4 and
/// empirical integrality checks on every family/size used by the
/// experiments (see `tests/universality.rs`). Cost-sensitive experiments
/// use [`SeededUxs::with_power`]`(2)` after verifying integrality on their
/// concrete graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeededUxs {
    seed: u64,
    coeff: u64,
    power: u32,
}

impl SeededUxs {
    /// Creates a provider with the given hash seed and length coefficient
    /// (`P(k) = coeff · k³`).
    ///
    /// # Panics
    ///
    /// Panics if `coeff == 0`.
    pub fn new(seed: u64, coeff: u64) -> Self {
        assert!(coeff > 0, "SeededUxs: coeff must be positive");
        SeededUxs {
            seed,
            coeff,
            power: 3,
        }
    }

    /// Replaces the polynomial degree of the length function
    /// (`P(k) = coeff · k^power`).
    ///
    /// # Panics
    ///
    /// Panics if `power == 0`.
    pub fn with_power(self, power: u32) -> Self {
        assert!(power > 0, "SeededUxs: power must be positive");
        SeededUxs { power, ..self }
    }

    /// The seed of this provider.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for SeededUxs {
    fn default() -> Self {
        SeededUxs::new(0x5EED_CAFE, 4)
    }
}

impl SeededUxs {
    /// A quadratic-length provider (`P(k) = 8·k²`) for cost-sensitive
    /// experiments; always verify integrality on the target graph
    /// ([`crate::is_integral`]) before trusting runs that use it.
    pub fn quadratic() -> Self {
        SeededUxs::new(0x5EED_CAFE, 8).with_power(2)
    }
}

/// splitmix64 finalizer — a well-mixed pure function of the input.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ExplorationProvider for SeededUxs {
    fn len(&self, k: u64) -> u64 {
        let mut pow = 1u64;
        for _ in 0..self.power {
            pow = pow.saturating_mul(k);
        }
        self.coeff.saturating_mul(pow).max(1)
    }

    fn increment(&self, k: u64, i: u64) -> u64 {
        assert!(
            i < self.len(k),
            "increment index {i} out of range for k={k}"
        );
        // Mix seed, k and i so sequences for different k are independent.
        splitmix64(self.seed ^ splitmix64(k) ^ i.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

/// Exploration sequences backed by explicit per-`k` tables.
///
/// Mirrors how a *published* UXS table (e.g. one produced offline by an
/// expensive construction) would ship with an implementation. Lengths are
/// the table lengths; `k` larger than the table falls back to the last
/// entry's table.
///
/// Tables are immutable once built and shared behind an
/// [`Arc`](std::sync::Arc), so clones
/// are O(1) — providers are cloned into every cursor, walker, and behavior
/// fork, and the simulator's snapshot/restore machinery forks behaviors
/// once per explored schedule-tree node.
#[derive(Clone, Debug, Default)]
pub struct TableUxs {
    /// `tables[j]` is the sequence for `k = j + 1`.
    tables: std::sync::Arc<Vec<Vec<u64>>>,
}

impl TableUxs {
    /// Builds from explicit tables; `tables[j]` serves parameter `k = j+1`.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or contains an empty table.
    pub fn new(tables: Vec<Vec<u64>>) -> Self {
        assert!(!tables.is_empty(), "TableUxs: need at least one table");
        assert!(
            tables.iter().all(|t| !t.is_empty()),
            "TableUxs: tables must be non-empty"
        );
        TableUxs {
            tables: std::sync::Arc::new(tables),
        }
    }

    fn table(&self, k: u64) -> &[u64] {
        let idx = (k.max(1) as usize - 1).min(self.tables.len() - 1);
        &self.tables[idx]
    }
}

impl ExplorationProvider for TableUxs {
    fn len(&self, k: u64) -> u64 {
        self.table(k).len() as u64
    }

    fn increment(&self, k: u64, i: u64) -> u64 {
        self.table(k)[i as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_len_is_cubic_and_monotone() {
        let u = SeededUxs::new(1, 4);
        assert_eq!(u.len(1), 4);
        assert_eq!(u.len(2), 32);
        assert_eq!(u.len(10), 4000);
        for k in 1..50 {
            assert!(u.len(k) <= u.len(k + 1));
        }
    }

    #[test]
    fn seeded_is_deterministic_and_seed_sensitive() {
        let a = SeededUxs::new(7, 4);
        let b = SeededUxs::new(7, 4);
        let c = SeededUxs::new(8, 4);
        assert_eq!(a.increment(5, 17), b.increment(5, 17));
        assert_ne!(a.increment(5, 17), c.increment(5, 17));
    }

    #[test]
    fn sequences_differ_across_k() {
        let u = SeededUxs::default();
        // Same index, different parameter: sequences should not coincide.
        let same = (0..20).all(|i| u.increment(3, i) == u.increment(4, i));
        assert!(!same);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn seeded_increment_bounds_checked() {
        let u = SeededUxs::new(1, 1);
        u.increment(1, 1);
    }

    #[test]
    fn table_uxs_lookup_and_fallback() {
        let t = TableUxs::new(vec![vec![1, 2], vec![3, 4, 5]]);
        assert_eq!(t.len(1), 2);
        assert_eq!(t.len(2), 3);
        assert_eq!(t.len(99), 3); // falls back to last table
        assert_eq!(t.increment(2, 1), 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn table_uxs_rejects_empty_table() {
        TableUxs::new(vec![vec![]]);
    }
}
