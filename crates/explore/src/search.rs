//! Offline search for verified universal exploration sequences.
//!
//! The honest version of "a published UXS table": search seed space for a
//! [`SeededUxs`] whose sequence for parameter `k` is *exhaustively
//! verified* universal up to a given order, then freeze it as an explicit
//! [`TableUxs`]. This is how a real deployment of the paper's algorithm
//! would manufacture its exploration tables without Reingold's
//! construction.

use crate::integrality::verify_universal;
use crate::provider::ExplorationProvider;
use crate::uxs::{SeededUxs, TableUxs};

/// Searches `tries` seeds for a provider whose sequences are universal for
/// all port-numbered graphs of order ≤ `max_n`, for every parameter
/// `k ≤ max_k`. Returns the first verified seed.
///
/// # Panics
///
/// Panics if `max_n > 5` (exhaustive verification explodes beyond that).
pub fn find_universal_seed(coeff: u64, max_k: u64, max_n: usize, tries: u64) -> Option<u64> {
    assert!(
        max_n <= 5,
        "exhaustive verification is feasible only for order <= 5"
    );
    (0..tries).find(|&seed| {
        let uxs = SeededUxs::new(seed, coeff);
        (2..=max_k).all(|k| verify_universal(uxs, k, max_n.min(k as usize)).is_universal())
    })
}

/// Freezes the sequences of `provider` for parameters `1..=max_k` into an
/// explicit table provider (e.g. after verification), so the tables can be
/// inspected, stored or shipped.
pub fn freeze_tables<P: ExplorationProvider>(provider: &P, max_k: u64) -> TableUxs {
    let tables: Vec<Vec<u64>> = (1..=max_k)
        .map(|k| {
            (0..provider.len(k))
                .map(|i| provider.increment(k, i))
                .collect()
        })
        .collect();
    TableUxs::new(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrality::is_integral;
    use rv_graph::{generators, NodeId};

    #[test]
    fn the_default_seed_is_among_verified_ones() {
        // Seed search over a small space succeeds and produces a provider
        // that is genuinely universal at order <= 3.
        let seed = find_universal_seed(4, 3, 3, 50).expect("some seed verifies");
        let uxs = SeededUxs::new(seed, 4);
        assert!(verify_universal(uxs, 3, 3).is_universal());
    }

    #[test]
    fn frozen_tables_reproduce_the_seeded_sequences_exactly() {
        let uxs = SeededUxs::new(99, 2);
        let table = freeze_tables(&uxs, 4);
        for k in 1..=4u64 {
            assert_eq!(table.len(k), uxs.len(k));
            for i in 0..uxs.len(k) {
                assert_eq!(table.increment(k, i), uxs.increment(k, i), "k={k} i={i}");
            }
        }
    }

    #[test]
    fn frozen_tables_explore_like_the_original() {
        let uxs = SeededUxs::quadratic();
        let table = freeze_tables(&uxs, 6);
        let g = generators::ring(6);
        assert!(is_integral(&g, &table, 6, NodeId(0)));
    }
}
