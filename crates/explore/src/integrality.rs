//! Integrality checking and exhaustive universality verification.
//!
//! The paper calls a trajectory *integral* if its route covers all edges of
//! the graph. All synchronisation lemmas of §3 rely on `R(k, v)` being
//! integral whenever `k ≥ n`; since we substitute Reingold's construction
//! with seeded sequences (see [`crate::SeededUxs`]), this module provides
//! the verification machinery that keeps the substitution honest:
//!
//! * [`is_integral`] — checks one `(graph, k, start)` application;
//! * [`verify_universal`] — exhaustively enumerates *every* connected
//!   port-numbered graph up to a given order and checks integrality from
//!   every start node, i.e. literal universality of the sequence for that
//!   parameter.

use crate::provider::ExplorationProvider;
use crate::trajectory_r::r_trajectory;
use rv_graph::{EdgeSet, Graph, GraphBuilder, NodeId};

/// Returns `true` if `R(k, start)` traverses every edge of `g`.
pub fn is_integral<P: ExplorationProvider>(g: &Graph, provider: P, k: u64, start: NodeId) -> bool {
    let t = r_trajectory(g, provider, k, start);
    let mut covered = EdgeSet::new(g);
    for i in 0..t.len() {
        covered.insert(g.edge_index_at(t.nodes[i], t.exit_ports[i]));
    }
    covered.is_full()
}

/// Outcome of an exhaustive universality check.
#[derive(Clone, Debug, Default)]
pub struct UniversalityReport {
    /// Number of `(graph, start node)` applications checked.
    pub checked: usize,
    /// Failing applications as `(graph, start)` pairs (empty = universal).
    pub failures: Vec<(Graph, NodeId)>,
}

impl UniversalityReport {
    /// `true` if every application was integral.
    pub fn is_universal(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Exhaustively verifies that the provider's sequence for parameter `k` is
/// universal for **all** connected port-numbered graphs of order `2..=max_n`
/// from **every** start node.
///
/// Cost grows super-exponentially in `max_n`; intended for `max_n ≤ 4`
/// (a few thousand port graphs) in tests.
pub fn verify_universal<P: ExplorationProvider + Copy>(
    provider: P,
    k: u64,
    max_n: usize,
) -> UniversalityReport {
    let mut report = UniversalityReport::default();
    for n in 2..=max_n {
        for g in enumerate_port_graphs(n) {
            for start in g.nodes() {
                report.checked += 1;
                if !is_integral(&g, provider, k, start) {
                    report.failures.push((g.clone(), start));
                }
            }
        }
    }
    report
}

/// Enumerates every connected simple graph on exactly `n` labeled nodes,
/// under **every** local port numbering. This is the full space of networks
/// of order `n` in the paper's model.
///
/// # Panics
///
/// Panics if `n < 2` or `n > 5` (the count explodes beyond that).
pub fn enumerate_port_graphs(n: usize) -> Vec<Graph> {
    assert!(
        (2..=5).contains(&n),
        "enumeration is feasible for 2 <= n <= 5"
    );
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    let mut out = Vec::new();
    for mask in 0u32..(1 << pairs.len()) {
        let edges: Vec<(usize, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        if edges.len() < n - 1 {
            continue;
        }
        // Build base graph; skip disconnected ones.
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.edge(u, v).expect("pair enumeration yields simple edges");
        }
        let base = match b.build() {
            Ok(g) => g,
            Err(_) => continue,
        };
        // Enumerate all port numberings: product over nodes of permutations
        // of 0..deg(v).
        let degs: Vec<usize> = base.nodes().map(|v| base.degree(v)).collect();
        let perms_per_node: Vec<Vec<Vec<usize>>> = degs.iter().map(|&d| permutations(d)).collect();
        let mut indices = vec![0usize; n];
        loop {
            let mut b = GraphBuilder::new(n);
            for &(u, v) in &edges {
                b.edge(u, v).expect("simple edges");
            }
            // Apply the selected permutation at each node.
            {
                let mut node = 0;
                b.shuffle_ports(|_d| {
                    let p = perms_per_node[node][indices[node]].clone();
                    node += 1;
                    p
                });
            }
            out.push(b.build().expect("valid by construction"));
            // Advance the mixed-radix counter.
            let mut carry = true;
            for i in 0..n {
                if !carry {
                    break;
                }
                indices[i] += 1;
                if indices[i] == perms_per_node[i].len() {
                    indices[i] = 0;
                } else {
                    carry = false;
                }
            }
            if carry {
                break;
            }
        }
    }
    out
}

/// All permutations of `0..d` (d! of them; `d ≤ 4` in practice here).
fn permutations(d: usize) -> Vec<Vec<usize>> {
    if d == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..d).collect();
    heap_permute(&mut items, d, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeededUxs, TableUxs};
    use rv_graph::generators;

    #[test]
    fn integral_on_ring_with_large_enough_k() {
        let g = generators::ring(6);
        assert!(is_integral(&g, SeededUxs::default(), 6, NodeId(0)));
    }

    #[test]
    fn short_sequence_is_not_integral_on_large_graph() {
        // One step cannot cover a 12-node ring's 12 edges.
        let t = TableUxs::new(vec![vec![1]]);
        let g = generators::ring(12);
        assert!(!is_integral(&g, &t, 1, NodeId(0)));
    }

    #[test]
    fn enumeration_count_n2() {
        // On 2 nodes: the single connected graph has one edge, each endpoint
        // degree 1, one port numbering.
        let gs = enumerate_port_graphs(2);
        assert_eq!(gs.len(), 1);
    }

    #[test]
    fn enumeration_count_n3() {
        // Connected labeled graphs on 3 nodes: 3 paths + 1 triangle.
        // Port numberings: path has center degree 2 (2! = 2), triangle has
        // all degrees 2 (2!^3 = 8). Total 3*2 + 8 = 14.
        let gs = enumerate_port_graphs(3);
        assert_eq!(gs.len(), 14);
        for g in &gs {
            rv_graph::validate(g).unwrap();
        }
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(0).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
    }

    #[test]
    fn default_uxs_universal_for_order_up_to_3() {
        let report = verify_universal(SeededUxs::default(), 3, 3);
        assert!(report.is_universal(), "failures: {}", report.failures.len());
        assert_eq!(report.checked, 2 + 14 * 3);
    }
}
