//! Store-layer contract tests: torn-final-record recovery, cold index
//! rebuild ≡ live index, duplicate-key last-writer-wins, foreign-file
//! refusal, and the engine fingerprint pinned against an independent
//! recomputation of the build-script digest.

use rv_store::{content_hash, Store, StoreKey, ENGINE_FINGERPRINT, ENGINE_FINGERPRINT_FILES};
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rv_store_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(cell: u64, engine: u64) -> StoreKey {
    StoreKey { cell, engine }
}

#[test]
fn round_trips_values_by_key() {
    let dir = tmp_dir("roundtrip");
    let mut store = Store::open(&dir).expect("open fresh store");
    assert!(store.is_empty());
    store.append(key(1, 10), b"alpha").expect("append");
    store.append(key(2, 10), b"beta").expect("append");
    store.append(key(1, 11), b"gamma").expect("append");
    assert_eq!(store.len(), 3);
    assert_eq!(store.get(key(1, 10)), Some(&b"alpha"[..]));
    assert_eq!(store.get(key(2, 10)), Some(&b"beta"[..]));
    assert_eq!(store.get(key(1, 11)), Some(&b"gamma"[..]));
    assert_eq!(
        store.get(key(1, 12)),
        None,
        "a different engine fingerprint must miss"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_index_rebuild_equals_the_live_index() {
    let dir = tmp_dir("rebuild");
    let mut live = Store::open(&dir).expect("open fresh store");
    for i in 0..50u64 {
        live.append(key(i % 17, i % 3), format!("value-{i}").as_bytes())
            .expect("append");
    }
    let live_view: Vec<(StoreKey, Vec<u8>)> = live.iter().map(|(k, v)| (k, v.to_vec())).collect();

    let cold = Store::open(&dir).expect("reopen scans the segment");
    assert_eq!(cold.open_report().truncated_bytes, 0);
    assert_eq!(cold.open_report().records, 50, "every record scanned");
    let cold_view: Vec<(StoreKey, Vec<u8>)> = cold.iter().map(|(k, v)| (k, v.to_vec())).collect();
    assert_eq!(
        live_view, cold_view,
        "an index rebuilt from a cold scan must equal the live index"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_key_appends_resolve_last_writer_wins() {
    let dir = tmp_dir("lww");
    let mut store = Store::open(&dir).expect("open fresh store");
    store.append(key(7, 1), b"first").expect("append");
    store.append(key(7, 1), b"second").expect("append");
    store.append(key(7, 1), b"third").expect("append");
    assert_eq!(store.len(), 1);
    assert_eq!(store.get(key(7, 1)), Some(&b"third"[..]));

    // The same resolution must hold after a cold rebuild: the scan sees
    // all three records in append order and keeps the last.
    let cold = Store::open(&dir).expect("reopen");
    assert_eq!(cold.open_report().records, 3);
    assert_eq!(cold.len(), 1);
    assert_eq!(cold.get(key(7, 1)), Some(&b"third"[..]));
    std::fs::remove_dir_all(&dir).ok();
}

/// Truncating the segment anywhere inside the final record — one byte
/// short, mid-payload, or mid-header — must recover every earlier record
/// and drop only the torn tail; the file self-heals so a reopen is clean.
#[test]
fn torn_final_record_truncates_and_continues() {
    for cut in [1usize, 5, 20] {
        let dir = tmp_dir(&format!("torn{cut}"));
        let mut store = Store::open(&dir).expect("open fresh store");
        store.append(key(1, 1), b"one").expect("append");
        store.append(key(2, 1), b"two").expect("append");
        store.append(key(3, 1), b"three").expect("append");
        let seg = store.segment_path().to_path_buf();
        let bytes = std::fs::read(&seg).expect("segment readable");
        std::fs::write(&seg, &bytes[..bytes.len() - cut]).expect("truncate tail");

        let recovered = Store::open(&dir).expect("open tolerates a torn tail");
        assert_eq!(recovered.open_report().records, 2);
        assert!(
            recovered.open_report().truncated_bytes > 0,
            "the torn tail must be reported"
        );
        assert_eq!(recovered.get(key(1, 1)), Some(&b"one"[..]));
        assert_eq!(recovered.get(key(2, 1)), Some(&b"two"[..]));
        assert_eq!(recovered.get(key(3, 1)), None, "the torn cell is gone");

        // Truncate-and-continue: the next append lands after the valid
        // prefix, and a further reopen sees a clean segment.
        let mut recovered = recovered;
        recovered
            .append(key(3, 1), b"three-again")
            .expect("append after recovery");
        let clean = Store::open(&dir).expect("reopen after heal");
        assert_eq!(clean.open_report().truncated_bytes, 0, "open self-heals");
        assert_eq!(clean.len(), 3);
        assert_eq!(clean.get(key(3, 1)), Some(&b"three-again"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A flipped byte mid-record fails that record's checksum; the scan keeps
/// the prefix before it (append-only writers only ever tear the tail, so
/// everything after a bad record is unreachable and dropped).
#[test]
fn checksum_mismatch_ends_the_valid_prefix() {
    let dir = tmp_dir("checksum");
    let mut store = Store::open(&dir).expect("open fresh store");
    store.append(key(1, 1), b"aaaa").expect("append");
    store.append(key(2, 1), b"bbbb").expect("append");
    let seg = store.segment_path().to_path_buf();
    let mut bytes = std::fs::read(&seg).expect("segment readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF; // corrupt the final record's payload
    std::fs::write(&seg, &bytes).expect("write corrupted segment");

    let recovered = Store::open(&dir).expect("open tolerates corruption");
    assert_eq!(recovered.open_report().records, 1);
    assert_eq!(recovered.get(key(1, 1)), Some(&b"aaaa"[..]));
    assert_eq!(recovered.get(key(2, 1)), None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_segment_files_are_refused_not_misread() {
    let dir = tmp_dir("foreign");
    std::fs::create_dir_all(&dir).expect("dir");
    std::fs::write(dir.join("segment.log"), b"{\"not\":\"a segment\"}").expect("write");
    assert!(
        Store::open(&dir).is_err(),
        "a file without the segment magic must be refused"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Recomputes the build script's digest independently (same walk, same
/// FNV-1a + SplitMix64 construction, via the public `content_hash`) and
/// pins the embedded constant to it: if `build.rs` and `content_hash`
/// ever drift apart, stored populations would be orphaned silently.
#[test]
fn engine_fingerprint_matches_an_independent_recomputation() {
    let crates_dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates/store has a parent")
        .to_path_buf();
    let mut files: Vec<PathBuf> = Vec::new();
    for name in [
        "arith",
        "core",
        "explore",
        "graph",
        "protocols",
        "sim",
        "trajectory",
    ] {
        collect(&crates_dir.join(name).join("src"), &mut files);
    }
    files.sort();
    assert_eq!(
        files.len(),
        ENGINE_FINGERPRINT_FILES,
        "the digest must cover exactly the engine sources"
    );
    let mut buffer = Vec::new();
    for file in &files {
        let rel: Vec<String> = file
            .strip_prefix(&crates_dir)
            .expect("under crates/")
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        buffer.extend_from_slice(rel.join("/").as_bytes());
        buffer.push(0);
        buffer.extend_from_slice(&std::fs::read(file).expect("engine source readable"));
        buffer.push(0);
    }
    assert_eq!(
        content_hash(&buffer),
        ENGINE_FINGERPRINT,
        "build.rs digest construction drifted from rv_store::content_hash"
    );
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("engine src dir readable") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
