//! Engine-fingerprint generator (std-only, no build dependencies).
//!
//! Hashes the **behavior-relevant source** of the engine crates — every
//! `.rs` file under `crates/{arith,core,explore,graph,protocols,sim,
//! trajectory}/src` — into one 64-bit digest and embeds it as
//! `rv_store::ENGINE_FINGERPRINT`. Stored cell results are keyed
//! `(cell_key, engine_fingerprint)`, so any semantic change to the engine
//! invalidates every stored row *honestly*, while edits confined to the
//! bench harness, tests, docs, or CI invalidate nothing (their sources are
//! deliberately outside the digest).
//!
//! The digest is a pure function of the sorted relative paths and byte
//! contents of the hashed files (FNV-1a accumulation, SplitMix64
//! finalisation — the same construction as `rv_store::content_hash`), so
//! two checkouts of the same engine sources agree on it across machines.
//! `cargo:rerun-if-changed` is emitted for every hashed file *and* each
//! `src` directory, so adding, editing, or deleting an engine source file
//! regenerates the constant on the next build.

use std::io::Write;
use std::path::{Path, PathBuf};

/// The crates whose library sources define simulation behavior. The bench
/// crate and this store crate are intentionally absent: a sweep-harness or
/// storage-layer edit must not invalidate stored results.
const ENGINE_CRATES: &[&str] = &[
    "arith",
    "core",
    "explore",
    "graph",
    "protocols",
    "sim",
    "trajectory",
];

fn main() {
    let manifest =
        std::env::var("CARGO_MANIFEST_DIR").expect("cargo always sets CARGO_MANIFEST_DIR");
    let crates_dir = Path::new(&manifest)
        .parent()
        .expect("crates/store has a parent directory")
        .to_path_buf();

    let mut files: Vec<PathBuf> = Vec::new();
    for name in ENGINE_CRATES {
        let src = crates_dir.join(name).join("src");
        println!("cargo:rerun-if-changed={}", src.display());
        collect_rs_files(&src, &mut files);
    }
    files.sort();

    let mut hash = Fnv::new();
    for file in &files {
        println!("cargo:rerun-if-changed={}", file.display());
        // Hash the path relative to crates/ so the digest is
        // checkout-location independent.
        let rel = file
            .strip_prefix(&crates_dir)
            .expect("hashed files live under crates/");
        let rel: Vec<String> = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        hash.update(rel.join("/").as_bytes());
        hash.update(&[0]);
        let contents =
            std::fs::read(file).unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        hash.update(&contents);
        hash.update(&[0]);
    }
    let fp = hash.finish();

    let out_dir = std::env::var("OUT_DIR").expect("cargo always sets OUT_DIR");
    let out_path = Path::new(&out_dir).join("engine_fp.rs");
    let mut out = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("create {}: {e}", out_path.display()));
    writeln!(
        out,
        "/// Digest of the engine crates' sources at build time — see `build.rs`.\n\
         /// Every stored cell result is keyed by this alongside its content key,\n\
         /// so a semantic engine change invalidates the whole stored population.\n\
         pub const ENGINE_FINGERPRINT: u64 = {fp:#018x};\n\
         /// Number of engine source files the fingerprint digests.\n\
         pub const ENGINE_FINGERPRINT_FILES: usize = {};",
        files.len()
    )
    .unwrap_or_else(|e| panic!("write {}: {e}", out_path.display()));
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries =
        std::fs::read_dir(dir).unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()));
    for entry in entries {
        let path = entry
            .unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()))
            .path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// FNV-1a accumulator with a SplitMix64 finalizer — duplicated from
/// `src/lib.rs` because a build script cannot depend on the crate it
/// builds; the `engine_fingerprint_matches_an_independent_recomputation`
/// test pins the two implementations together.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
