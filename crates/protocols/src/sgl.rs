//! The SGL agent behavior (paper §4, Algorithm SGL).

use crate::bag::Bag;
use rv_core::{Label, RvAlgorithm};
use rv_explore::esst::{ArrivalReport, Drive, EsstMachine, SuspendedTokenCert, SuspensionPolicy};
use rv_explore::{ExplorationProvider, RWalker};
use rv_graph::{Graph, NodeId, PortId};
use rv_sim::{Behavior, MeetingPlace};
use rv_trajectory::TrajectoryCursor;

/// The three protocol states (paper §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateKind {
    /// Executing RV-asynch-poly, looking for a first decisive meeting.
    Traveller,
    /// Running the three explorer phases.
    Explorer,
    /// Parked forever as a semi-stationary token.
    Ghost,
}

/// What an SGL agent reveals at a meeting.
#[derive(Clone, Debug)]
pub struct SglInfo {
    /// The agent's label.
    pub label: u64,
    /// Its current state.
    pub state: StateKind,
    /// Its current bag.
    pub bag: Bag,
    /// The complete label set, if the agent knows it.
    pub final_set: Option<Bag>,
    /// Whether the agent has already produced its output.
    pub has_output: bool,
}

/// Tunables of the SGL behavior.
#[derive(Clone, Copy, Debug)]
pub struct SglConfig {
    /// Phase-2 completion threshold as a function of the order bound
    /// `E(n)` and the label bit-length `|L|`: the explorer finishes Phase 2
    /// after `coeff · E(n)³ · |L|` RV-asynch-poly traversals.
    ///
    /// **Substitution note.** The paper uses `Π(E(n), |L|)` here, which is
    /// astronomically large (see `rv_core::pi_bound`); any threshold large
    /// enough that every other agent has been met by then preserves
    /// correctness, and the experiments verify that property post-hoc on
    /// every run.
    pub completion_coeff: u64,
    /// Suspended-token census policy handed to the explorer's ESST
    /// machine (`None` disables certification; see
    /// [`SglBehavior::certificate`]). The attestation the census needs —
    /// that a token sighting is of a ghost pinned at one position with at
    /// most one committed final crossing left — is structural here:
    /// ghosts never commit new moves (paper §4), so a meeting with a
    /// [`StateKind::Ghost`] peer at the *same place as the previous
    /// token sighting* (parked at a node the schedule never lets cross,
    /// or suspended strictly inside an edge) is exactly a sighting of a
    /// suspended token; any position change breaks the streak.
    pub suspension: Option<SuspensionPolicy>,
}

impl Default for SglConfig {
    fn default() -> Self {
        SglConfig {
            completion_coeff: 2,
            suspension: Some(SuspensionPolicy::default()),
        }
    }
}

impl SglConfig {
    /// The Phase-2 completion threshold for order bound `e` and label
    /// bit-length `bits`.
    pub fn completion_threshold(&self, e: u64, bits: u64) -> u64 {
        self.completion_coeff
            .saturating_mul(e)
            .saturating_mul(e)
            .saturating_mul(e)
            .saturating_mul(bits)
    }
}

/// The explorer phase an agent is in, as revealed by
/// [`SglBehavior::quiescence_progress`] — the public mirror of the private
/// phase machinery, for progress observers (stop policies, traces).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SglPhase {
    /// Phase 1: procedure ESST with the token.
    Esst,
    /// Phase 2a: backtracking the ESST trajectory.
    Backtrack,
    /// Phase 2b: resumed RV-asynch-poly until threshold or smaller label.
    ResumeRv,
    /// Phase 3 (non-minimal): seeking the token via `R(E(n), ·)`.
    SeekToken,
    /// Phase 3 (minimal): forward collection sweep.
    CollectFwd,
    /// Phase 3 (minimal): backward announcement sweep.
    AnnounceBack,
}

/// How far an SGL agent has progressed toward quiescence — the protocol's
/// contribution to the simulator's progress-aware stop-policy layer (see
/// `rv_sim::Progress`). All counters are monotone over a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SglProgress {
    /// Current protocol state.
    pub state: StateKind,
    /// Current explorer phase, if the agent is mid-phase.
    pub phase: Option<SglPhase>,
    /// Labels gathered so far.
    pub bag_len: usize,
    /// Whether the complete label set has reached this agent.
    pub has_final_set: bool,
    /// Whether the agent has produced its output.
    pub has_output: bool,
    /// RV-asynch-poly traversals consumed (traveller + Phase 2).
    pub rv_traversals: u64,
    /// The ESST machine's current phase while Phase 1 runs (monotone
    /// within the phase; `None` outside it). A Phase-1 blowup shows as
    /// this climbing while cost explodes — see the stall-trace note.
    pub esst_phase: Option<u64>,
    /// Whether a suspended-token certificate has closed this agent's
    /// Phase 1 (monotone: set at most once, never cleared).
    pub certified: bool,
    /// Monotone progress ticks: every committed move in a bounded phase
    /// (backtrack, Phase-2 RV, collection and announcement sweeps,
    /// traveller RV), every ESST *phase* advance, and every information
    /// gain (new label, final set, state transition, output).
    /// Deliberately **silent** during Phase-3 token-seek moves and within
    /// a single ESST phase — both can be prolonged without bound by an
    /// adversary suspending the token inside an edge, and a stalled run
    /// is exactly one whose summed ticks stop advancing (see the
    /// stall-trace note in `docs/`).
    pub ticks: u64,
}

/// Explorer sub-state.
// The Esst variant dominates the enum's size, but Phase is held once per
// agent (not per node or per step), so boxing would cost more in indirection
// than it saves in memory.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
enum Phase<P> {
    /// Phase 1: procedure ESST with the token.
    Esst {
        machine: EsstMachine<P>,
        fresh: bool,
    },
    /// Phase 2a: backtracking the ESST trajectory (entries to replay).
    Backtrack { remaining: Vec<PortId> },
    /// Phase 2b: resumed RV-asynch-poly until threshold or smaller label.
    ResumeRv { threshold: u64 },
    /// Phase 3 (non-minimal): seeking the token via `R(E(n), ·)`.
    SeekToken { walker: RWalker<P> },
    /// Phase 3 (minimal agent): forward collection sweep `R(E(n), ·)`,
    /// logging entry ports for the backward announcement sweep.
    CollectFwd {
        walker: RWalker<P>,
        log: Vec<PortId>,
    },
    /// Phase 3 (minimal agent): backward announcement sweep.
    AnnounceBack { log: Vec<PortId> },
}

/// One SGL agent. Drive it with [`rv_sim::Runtime`] under
/// [`rv_sim::RunConfig::protocol`].
///
/// `Clone` implements the [`Behavior::fork`] contract: the clone carries
/// the full protocol state — bag, phase machinery (including a mid-flight
/// ESST machine), RV cursor, and token-sighting flags — and continues
/// bit-identically to the original.
#[derive(Clone)]
pub struct SglBehavior<'g, P> {
    g: &'g Graph,
    provider: P,
    config: SglConfig,
    label: Label,
    bag: Bag,
    final_set: Option<Bag>,
    output: Option<Bag>,
    state: StateKind,
    phase: Option<Phase<P>>,
    /// Self-tracked position (always consistent: the behavior knows every
    /// move it committed, and moves are deterministic).
    cur: NodeId,
    cur_entry: Option<PortId>,
    start: NodeId,
    /// RV-asynch-poly machinery, persistent across traveller + Phase 2.
    cursor: TrajectoryCursor<'g, P>,
    algorithm: RvAlgorithm,
    rv_traversals: u64,
    /// Upper bound on the order, once known (ESST termination phase).
    e_bound: Option<u64>,
    /// Label of this explorer's token, if any.
    token_label: Option<u64>,
    /// Token sighting flags for the pending/most recent arrival.
    met_token_at_node: bool,
    met_token_inside: bool,
    /// The sighting was of a ghost pinned at the same place as the
    /// previous token sighting (structurally suspended: a ghost holds at
    /// most one committed crossing, so a position-stable ghost is one the
    /// schedule is refusing to let finish — or has parked forever).
    met_token_suspended: bool,
    /// Where the token was last sighted — the position-stability anchor
    /// of the suspension attestation above.
    token_place: Option<MeetingPlace>,
    /// The suspended-token certificate, if one closed Phase 1.
    esst_certificate: Option<SuspendedTokenCert>,
    /// Token's `has_output` as of the latest meeting with it.
    token_had_output: bool,
    /// Set when a traveller decides to become an explorer; ESST is
    /// initialised at the next `next_port` (i.e. at the node where the
    /// committed edge ends).
    needs_esst_init: bool,
    /// Monotone progress counter (see [`SglProgress::ticks`]). Never read
    /// by the protocol itself — pure instrumentation for stop policies.
    progress_ticks: u64,
}

impl<'g, P: ExplorationProvider + Clone> SglBehavior<'g, P> {
    /// Places an SGL agent with `label` and gossip `value` at `start`.
    pub fn new(
        g: &'g Graph,
        provider: P,
        start: NodeId,
        label: Label,
        value: u64,
        config: SglConfig,
    ) -> Self {
        SglBehavior {
            g,
            provider: provider.clone(),
            config,
            label,
            bag: Bag::singleton(label.value(), value),
            final_set: None,
            output: None,
            state: StateKind::Traveller,
            phase: None,
            cur: start,
            cur_entry: None,
            start,
            cursor: TrajectoryCursor::new(g, provider, start),
            algorithm: RvAlgorithm::new(label),
            rv_traversals: 0,
            e_bound: None,
            token_label: None,
            met_token_at_node: false,
            met_token_inside: false,
            met_token_suspended: false,
            token_place: None,
            esst_certificate: None,
            token_had_output: false,
            needs_esst_init: false,
            progress_ticks: 0,
        }
    }

    /// The agent's label.
    pub fn label(&self) -> Label {
        self.label
    }

    /// Current protocol state.
    pub fn state(&self) -> StateKind {
        self.state
    }

    /// The produced output (the complete label/value set), once available.
    pub fn output(&self) -> Option<&Bag> {
        self.output.as_ref()
    }

    /// The agent's current bag.
    pub fn bag(&self) -> &Bag {
        &self.bag
    }

    /// The order bound `E(n)` this agent derived, if it became an explorer.
    pub fn order_bound(&self) -> Option<u64> {
        self.e_bound
    }

    /// The suspended-token certificate, if one closed this agent's
    /// Phase 1: the ESST census proved the token ghost has held its single
    /// committed final crossing for longer than any schedule that ever
    /// re-parks it at a node could sustain, so the phase was closed early
    /// instead of chasing the token (see `docs/STALL_TRACE.md`). `None`
    /// when Phase 1 terminated naturally (or never ran).
    pub fn certificate(&self) -> Option<SuspendedTokenCert> {
        self.esst_certificate
    }

    /// How far this agent has progressed toward quiescence (all counters
    /// monotone) — see [`SglProgress`]. This is what protocol-mode stop
    /// policies watch: a run whose agents' summed [`SglProgress::ticks`]
    /// stop advancing has stalled (typically a Phase-3 token seek pinned
    /// open by a meeting-postponing adversary).
    pub fn quiescence_progress(&self) -> SglProgress {
        SglProgress {
            state: self.state,
            phase: self.phase.as_ref().map(|p| match p {
                Phase::Esst { .. } => SglPhase::Esst,
                Phase::Backtrack { .. } => SglPhase::Backtrack,
                Phase::ResumeRv { .. } => SglPhase::ResumeRv,
                Phase::SeekToken { .. } => SglPhase::SeekToken,
                Phase::CollectFwd { .. } => SglPhase::CollectFwd,
                Phase::AnnounceBack { .. } => SglPhase::AnnounceBack,
            }),
            bag_len: self.bag.len(),
            has_final_set: self.final_set.is_some(),
            has_output: self.output.is_some(),
            rv_traversals: self.rv_traversals,
            esst_phase: match &self.phase {
                Some(Phase::Esst { machine, .. }) => Some(machine.phase()),
                _ => None,
            },
            certified: self.esst_certificate.is_some(),
            ticks: self.progress_ticks,
        }
    }

    /// Records a committed move: updates the self-tracked position. Moves
    /// tick the progress counter except in the phases an adversary can
    /// prolong without bound — Phase-3 token seeking (sweeps repeat until
    /// the token is pinned) and Phase-1 ESST walking (the machine can
    /// chase an adversarially suspended token indefinitely; ESST progress
    /// is its *phase* advancing instead — see [`SglProgress::ticks`]).
    fn commit(&mut self, port: PortId) -> PortId {
        if !matches!(
            self.phase,
            Some(Phase::SeekToken { .. }) | Some(Phase::Esst { .. })
        ) {
            self.progress_ticks += 1;
        }
        let arr = self.g.traverse(self.cur, port);
        self.cur = arr.node;
        self.cur_entry = Some(arr.entry_port);
        port
    }

    /// Next traversal of the (resumable) RV-asynch-poly schedule.
    fn rv_step(&mut self) -> PortId {
        loop {
            if let Some(t) = self.cursor.next_traversal() {
                self.rv_traversals += 1;
                self.progress_ticks += 1;
                // The cursor tracks position itself; keep ours in sync.
                self.cur = t.to;
                self.cur_entry = Some(t.entry);
                return t.exit;
            }
            let spec = self.algorithm.next_spec();
            self.cursor.push(spec);
        }
    }

    /// Consumes the token-sighting flags accumulated since the last move:
    /// `(at_node, inside, suspended)`.
    fn take_token_flags(&mut self) -> (bool, bool, bool) {
        let flags = (
            self.met_token_at_node,
            self.met_token_inside,
            self.met_token_suspended,
        );
        self.met_token_at_node = false;
        self.met_token_inside = false;
        self.met_token_suspended = false;
        flags
    }

    fn produce_output(&mut self, set: Bag) {
        self.progress_ticks += 1;
        self.final_set = Some(set.clone());
        self.output = Some(set);
    }

    /// Drives Phase 1 (ESST) one step; returns the next port, or `None`
    /// when ESST finished (the caller then switches phase).
    fn esst_step(&mut self, at_node: bool, inside: bool, suspended: bool) -> Option<PortId> {
        let Some(Phase::Esst { machine, fresh }) = self.phase.as_mut() else {
            unreachable!("esst_step outside phase 1");
        };
        if *fresh {
            *fresh = false;
        } else {
            let phase_before = machine.phase();
            machine.arrived(ArrivalReport {
                entry: self.cur_entry.expect("moved at least once"),
                degree: self.g.degree(self.cur),
                token_inside: inside,
                token_at_node: at_node,
                token_suspended: suspended,
            });
            // An ESST phase advance is the protocol-level progress unit of
            // Phase 1 (individual walks within a phase are not: an
            // adversary can prolong the token chase without bound).
            if machine.phase() > phase_before {
                self.progress_ticks += 1;
            }
        }
        match machine.current_request() {
            Drive::Traverse { port, .. } => Some(port),
            Drive::Done => None,
        }
    }
}

impl<'g, P: ExplorationProvider + Clone> Behavior for SglBehavior<'g, P> {
    type Info = SglInfo;

    fn start_node(&self) -> NodeId {
        self.start
    }

    fn info(&self) -> SglInfo {
        SglInfo {
            label: self.label.value(),
            state: self.state,
            bag: self.bag.clone(),
            final_set: self.final_set.clone(),
            has_output: self.output.is_some(),
        }
    }

    fn next_port(&mut self) -> Option<PortId> {
        match self.state {
            StateKind::Ghost => {
                // Parked forever; outputs happen in on_meeting.
                self.take_token_flags();
                None
            }
            StateKind::Traveller => {
                let port = self.rv_step();
                Some(port) // position already committed by rv_step
            }
            StateKind::Explorer => {
                if self.needs_esst_init {
                    self.needs_esst_init = false;
                    let (at_node, _inside, _suspended) = self.take_token_flags();
                    let machine =
                        EsstMachine::new(self.provider.clone(), self.g.degree(self.cur), at_node)
                            .with_suspension_policy(self.config.suspension);
                    self.phase = Some(Phase::Esst {
                        machine,
                        fresh: true,
                    });
                }
                if self.phase.is_none() {
                    // Finished (output produced) or otherwise parked.
                    self.take_token_flags();
                    return None;
                }
                // Token-sighting flags for the arrival that triggered this
                // query; valid until the next committed move.
                let (at_node, inside, suspended) = self.take_token_flags();
                loop {
                    match self.phase.as_mut().expect("explorer always has a phase") {
                        Phase::Esst { .. } => {
                            if let Some(port) = self.esst_step(at_node, inside, suspended) {
                                return Some(self.commit(port));
                            }
                            // Phase 1 done: derive E(n) and set up Phase 2.
                            // A suspended-token certificate closing the
                            // phase early is recorded here; it leaves the
                            // rest of the pipeline untouched (same E(n)
                            // derivation, same backtrack) because the
                            // certified token can never re-enter a node
                            // and change what the remaining phases learn.
                            let Some(Phase::Esst { machine, .. }) = self.phase.take() else {
                                unreachable!("matched Phase::Esst on the line above")
                            };
                            self.e_bound = Some(machine.phase());
                            self.esst_certificate = machine.certificate();
                            // Backtracking replays the recorded entry ports
                            // newest-first; `pop()` consumes from the back.
                            let remaining = machine.into_walk_entries();
                            self.phase = Some(Phase::Backtrack { remaining });
                        }
                        Phase::Backtrack { remaining } => {
                            if let Some(port) = remaining.pop() {
                                return Some(self.commit(port));
                            }
                            debug_assert_eq!(
                                self.cur,
                                self.cursor.position(),
                                "backtrack must return to the RV interruption node"
                            );
                            let e = self.e_bound.expect("phase 1 computed E(n)");
                            let threshold = self
                                .config
                                .completion_threshold(e, self.label.bit_length() as u64);
                            self.phase = Some(Phase::ResumeRv { threshold });
                        }
                        Phase::ResumeRv { threshold } => {
                            let threshold = *threshold;
                            if self.bag.min_label() < self.label.value() {
                                // Abort Phase 2 → Phase 3: seek the token.
                                let e = self.e_bound.expect("E(n) known");
                                self.phase = Some(Phase::SeekToken {
                                    walker: RWalker::new(self.provider.clone(), e),
                                });
                                self.cur_entry = None; // fresh R application
                                continue;
                            }
                            if self.rv_traversals >= threshold {
                                // Completed Phase 2 without hearing of a
                                // smaller label: this agent believes it is
                                // the minimum → collection sweep.
                                let e = self.e_bound.expect("E(n) known");
                                self.phase = Some(Phase::CollectFwd {
                                    walker: RWalker::new(self.provider.clone(), e),
                                    log: Vec::new(),
                                });
                                self.cur_entry = None;
                                continue;
                            }
                            let port = self.rv_step();
                            return Some(port);
                        }
                        Phase::SeekToken { walker } => {
                            if at_node || inside {
                                // Met the token: adopt its outcome.
                                if self.token_had_output || self.final_set.is_some() {
                                    let set =
                                        self.final_set.clone().unwrap_or_else(|| self.bag.clone());
                                    self.produce_output(set);
                                } else {
                                    self.state = StateKind::Ghost;
                                }
                                self.phase = None;
                                return None;
                            }
                            match walker.next_exit(self.cur_entry, self.g.degree(self.cur)) {
                                Some(port) => return Some(self.commit(port)),
                                None => {
                                    // R(E(n), ·) is integral, so the token's
                                    // extended edge was covered; only a token
                                    // still finishing its last edge can have
                                    // been missed — sweep again.
                                    let e = self.e_bound.expect("E(n) known");
                                    *walker = RWalker::new(self.provider.clone(), e);
                                    self.cur_entry = None;
                                }
                            }
                        }
                        Phase::CollectFwd { walker, log } => {
                            match walker.next_exit(self.cur_entry, self.g.degree(self.cur)) {
                                Some(port) => {
                                    let arr = self.g.traverse(self.cur, port);
                                    log.push(arr.entry_port);
                                    return Some(self.commit(port));
                                }
                                None => {
                                    // Sweep complete: the bag now holds every
                                    // label; announce on the way back.
                                    let log = std::mem::take(log);
                                    self.final_set = Some(self.bag.clone());
                                    self.phase = Some(Phase::AnnounceBack { log });
                                }
                            }
                        }
                        Phase::AnnounceBack { log } => {
                            if let Some(port) = log.pop() {
                                return Some(self.commit(port));
                            }
                            // Back at the sweep's origin: output and park.
                            let set = self.final_set.clone().expect("set before announcing");
                            self.produce_output(set);
                            self.phase = None;
                            return None;
                        }
                    }
                }
            }
        }
    }

    fn on_meeting(&mut self, place: MeetingPlace, peers: &[SglInfo]) {
        // 1. Bags merge and the final set propagates, unconditionally.
        //    Information gained here is progress (see SglProgress::ticks):
        //    new labels and a newly learned final set each tick.
        let bag_before = self.bag.len();
        let had_final_set = self.final_set.is_some();
        for p in peers {
            self.bag.merge(&p.bag);
            if self.final_set.is_none() {
                self.final_set = p.final_set.clone();
            }
        }
        self.progress_ticks += (self.bag.len() - bag_before) as u64;
        if !had_final_set && self.final_set.is_some() {
            self.progress_ticks += 1;
        }
        // 2. Token sighting flags. A sighting of a *ghost* at the same
        //    place as the previous token sighting is structurally a
        //    suspended-token sighting — a ghost holds at most one
        //    committed crossing, so position stability means the schedule
        //    is withholding that crossing (token parked at a node it
        //    never leaves, or held strictly inside an edge) — which is
        //    the attestation the ESST suspension census needs (see
        //    SglConfig::suspension). Any position change, or a sighting
        //    of a still-travelling token, breaks the census streak.
        if let Some(token) = self.token_label {
            for p in peers {
                if p.label == token {
                    match place {
                        MeetingPlace::Node(_) => self.met_token_at_node = true,
                        MeetingPlace::Edge(_) => self.met_token_inside = true,
                    }
                    if p.state == StateKind::Ghost && self.token_place == Some(place) {
                        self.met_token_suspended = true;
                    }
                    self.token_place = Some(place);
                    self.token_had_output |= p.has_output;
                }
            }
        }
        // 3. Ghosts (and finished agents) output as soon as the complete
        //    set reaches them.
        if self.output.is_none()
            && self.final_set.is_some()
            && (self.state == StateKind::Ghost
                || matches!(self.phase, Some(Phase::SeekToken { .. })))
        {
            let set = self.final_set.clone().expect("just checked");
            self.produce_output(set);
            if self.state == StateKind::Explorer {
                self.state = StateKind::Ghost;
                self.phase = None;
            }
        }
        // 4. Traveller transition rules (paper §4, state traveller).
        if self.state == StateKind::Traveller {
            let heard_smaller = peers.iter().any(|p| p.bag.min_label() < self.label.value());
            if heard_smaller {
                self.state = StateKind::Ghost;
                self.phase = None;
                self.progress_ticks += 1;
                return;
            }
            let non_explorers: Vec<&SglInfo> = peers
                .iter()
                .filter(|p| p.state != StateKind::Explorer)
                .collect();
            if let Some(token) = non_explorers.iter().map(|p| p.label).min() {
                self.state = StateKind::Explorer;
                self.token_label = Some(token);
                self.needs_esst_init = true;
                self.progress_ticks += 1;
            }
        }
    }

    fn fork(&self) -> Self {
        self.clone()
    }

    /// The protocol's progress ticks plus the output flag — what the
    /// stall-detecting stop policies ([`rv_sim::AdaptiveThreshold`]) and
    /// quiescence checks watch (see [`SglProgress::ticks`]).
    fn progress(&self) -> rv_sim::BehaviorProgress {
        rv_sim::BehaviorProgress {
            metric: self.progress_ticks,
            done: self.output.is_some(),
        }
    }
}
