//! The bag: the set of (label, value) pairs an agent has heard of.

use std::collections::BTreeMap;

/// An agent's bag `W`: every label it has heard of, with the initial value
/// attached to that label (for gossiping). Bags only ever grow, by merging
/// at meetings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bag {
    entries: BTreeMap<u64, u64>,
}

impl Bag {
    /// A bag holding only the owner's own (label, value).
    pub fn singleton(label: u64, value: u64) -> Self {
        let mut entries = BTreeMap::new();
        entries.insert(label, value);
        Bag { entries }
    }

    /// Smallest label heard of (`Min(W)`); bags are never empty.
    pub fn min_label(&self) -> u64 {
        *self.entries.keys().next().expect("bags are never empty")
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Bags are never empty (they always hold the owner's label).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `label` has been heard of.
    pub fn contains(&self, label: u64) -> bool {
        self.entries.contains_key(&label)
    }

    /// Merges another bag in (set union; values agree by construction).
    pub fn merge(&mut self, other: &Bag) {
        for (&l, &v) in &other.entries {
            self.entries.insert(l, v);
        }
    }

    /// Iterates `(label, value)` pairs in increasing label order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries.iter().map(|(&l, &v)| (l, v))
    }

    /// The labels in increasing order.
    pub fn labels(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_min() {
        let b = Bag::singleton(7, 70);
        assert_eq!(b.min_label(), 7);
        assert_eq!(b.len(), 1);
        assert!(b.contains(7));
        assert!(!b.contains(8));
    }

    #[test]
    fn merge_is_union_and_idempotent() {
        let mut a = Bag::singleton(5, 50);
        let b = Bag::singleton(3, 30);
        a.merge(&b);
        assert_eq!(a.labels(), vec![3, 5]);
        assert_eq!(a.min_label(), 3);
        let snapshot = a.clone();
        a.merge(&b);
        assert_eq!(a, snapshot, "merging twice changes nothing");
    }

    #[test]
    fn values_ride_along_with_labels() {
        let mut a = Bag::singleton(2, 200);
        a.merge(&Bag::singleton(9, 900));
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs, vec![(2, 200), (9, 900)]);
    }
}
