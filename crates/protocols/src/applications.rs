//! The four applications solved by SGL (paper §4): team size, leader
//! election, perfect renaming, gossiping.

use crate::bag::Bag;

/// The four problem outputs, all derived from one complete label/value set
/// (the output of Algorithm SGL).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solutions {
    /// **Team size**: the number of participating agents.
    pub team_size: usize,
    /// **Leader election**: the label of the elected leader (the smallest).
    pub leader: u64,
    /// **Perfect renaming**: this agent's new name in `{1, …, k}` (the rank
    /// of its label).
    pub new_name: usize,
    /// **Gossiping**: every agent's initial value, keyed by label, in label
    /// order.
    pub gossip: Vec<(u64, u64)>,
}

/// Derives all four solutions for the agent labeled `own_label` from its
/// SGL output `set`.
///
/// # Panics
///
/// Panics if `own_label` is not in the set (an SGL output always contains
/// the owner's label).
pub fn solve(own_label: u64, set: &Bag) -> Solutions {
    assert!(
        set.contains(own_label),
        "SGL output must contain the owner's label"
    );
    let labels = set.labels();
    let rank = labels
        .iter()
        .position(|&l| l == own_label)
        .expect("just checked")
        + 1;
    Solutions {
        team_size: set.len(),
        leader: set.min_label(),
        new_name: rank,
        gossip: set.iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of(pairs: &[(u64, u64)]) -> Bag {
        let mut b = Bag::singleton(pairs[0].0, pairs[0].1);
        for &(l, v) in &pairs[1..] {
            b.merge(&Bag::singleton(l, v));
        }
        b
    }

    #[test]
    fn solutions_from_a_three_agent_set() {
        let set = set_of(&[(10, 100), (3, 30), (7, 70)]);
        let s = solve(7, &set);
        assert_eq!(s.team_size, 3);
        assert_eq!(s.leader, 3);
        assert_eq!(s.new_name, 2); // 7 is the 2nd smallest of {3, 7, 10}
        assert_eq!(s.gossip, vec![(3, 30), (7, 70), (10, 100)]);
    }

    #[test]
    fn renaming_is_a_bijection_onto_1_to_k() {
        let set = set_of(&[(5, 0), (9, 0), (2, 0), (14, 0)]);
        let mut names: Vec<usize> = set
            .labels()
            .iter()
            .map(|&l| solve(l, &set).new_name)
            .collect();
        names.sort_unstable();
        assert_eq!(names, vec![1, 2, 3, 4]);
    }

    #[test]
    fn all_agents_agree_on_leader_and_size() {
        let set = set_of(&[(5, 0), (9, 0), (2, 0)]);
        for &l in &set.labels() {
            let s = solve(l, &set);
            assert_eq!(s.leader, 2);
            assert_eq!(s.team_size, 3);
        }
    }

    #[test]
    #[should_panic(expected = "owner's label")]
    fn solve_rejects_foreign_label() {
        let set = set_of(&[(5, 0)]);
        solve(6, &set);
    }
}
