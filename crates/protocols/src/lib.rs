#![forbid(unsafe_code)]
//! Algorithm **SGL** (Strong Global Learning) and its four applications —
//! paper §4.
//!
//! A team of `k > 1` agents with distinct labels, placed at distinct nodes
//! of an unknown network and woken asynchronously, must each acquire the
//! labels (and initial values) of **all** agents *and know that the set is
//! complete*. From that, each agent solves:
//!
//! * **team size** — output `k`;
//! * **leader election** — output the smallest label;
//! * **perfect renaming** — adopt the rank of its own label in `{1..k}`;
//! * **gossiping** — output every agent's initial value.
//!
//! The protocol runs each agent through three states:
//!
//! * **traveller** — executes RV-asynch-poly until a meeting where either
//!   someone has heard of a smaller label (→ become a *ghost*) or a
//!   non-explorer is present (→ become an *explorer*, using the smallest
//!   non-explorer met — which becomes a ghost — as its token);
//! * **ghost** — finishes its current edge and parks forever, a
//!   semi-stationary token; outputs once told its bag is complete;
//! * **explorer** — Phase 1: procedure ESST with its token, learning an
//!   upper bound `E(n)` on the graph order; Phase 2: backtracks and resumes
//!   RV-asynch-poly until a completion threshold, aborting as soon as its
//!   bag holds a smaller label; Phase 3: a non-minimal explorer walks
//!   `R(E(n), ·)` to rejoin its token and becomes a ghost, while the
//!   globally smallest agent walks `R(E(n), ·)` collecting every ghost's
//!   bag, then walks it backwards announcing the complete label set.
//!
//! Two documented substitutions from the paper (DESIGN.md §4): `E(n)` is
//! the ESST *termination phase* rather than its cost (both are valid
//! computable upper bounds on `n`; the phase keeps `R(E(n), ·)` walkable),
//! and the Phase-2 completion threshold `Π(E(n), |L|)` is pluggable
//! ([`SglConfig::completion_threshold`]) because the paper's `Π` is
//! astronomically large; every experiment *verifies* post-hoc the property
//! the threshold must deliver (no traveller or dormant agent remains when
//! the minimal agent enters Phase 3).

mod applications;
mod bag;
mod sgl;

pub use applications::{solve, Solutions};
pub use bag::Bag;
pub use sgl::{SglBehavior, SglConfig, SglInfo, SglPhase, SglProgress, StateKind};
