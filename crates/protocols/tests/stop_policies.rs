//! Stop policies over protocol (SGL) runs: certificate-enabled runs
//! retire the three former outlier cells as *certified quiescent* well
//! under budget, the certificate-free ablation shows what each cell costs
//! without it (the structural stall detector fires where a mid-edge
//! suspension exists, and honestly reads `Cutoff` where none does),
//! detector-enabled runs are bit-identical to plain runs on converging
//! cells, and the rendezvous-order cells are affordable.
//!
//! The three "outlier" cells (`tree8/lazy(1)/sgl-k3`,
//! `tree8/greedy-avoid/sgl-k3`, `gnp8/greedy-avoid/sgl-k4`) were long
//! suspected to be Phase-3 token-seek stalls; the dedicated trace
//! (`docs/STALL_TRACE.md`) refuted that — they are **Phase-1 ESST
//! blowups**: the adversary legally pins the token ghost at one position
//! forever (parked at a node in the lazy cell, suspended strictly inside
//! an edge in the greedy-avoid cells), so the explorer's last ESST phase
//! inflates ~12× past its nominal length. The suspended-token census
//! turns that pinning into a positive termination certificate.

use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_protocols::{SglBehavior, SglConfig};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{AdaptiveThreshold, EarlyQuiescence, RunConfig, RunEnd, RunOutcome, Runtime};

/// Matrix constants: graph seed, adversary seed, SGL labels.
const GRAPH_SEED: u64 = 5;
const ADVERSARY_SEED: u64 = 3;
const SGL_LABELS: [u64; 4] = [6, 9, 14, 21];

struct CellReport {
    out: RunOutcome,
    outputs: Vec<bool>,
    certified: Vec<bool>,
}

fn run_cell_with(
    family: GraphFamily,
    n: usize,
    k: usize,
    kind: AdversaryKind,
    cutoff: u64,
    policy: Option<&mut dyn rv_sim::StopPolicy>,
    config: SglConfig,
) -> CellReport {
    let uxs = SeededUxs::quadratic();
    let g = family.generate(n, GRAPH_SEED);
    let behaviors: Vec<_> = SGL_LABELS[..k]
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                &g,
                uxs,
                NodeId(i * g.order() / k),
                Label::new(l).unwrap(),
                l + 1000,
                config,
            )
        })
        .collect();
    let mut rt = Runtime::new(&g, behaviors, RunConfig::protocol().with_cutoff(cutoff));
    let mut adv = kind.build(ADVERSARY_SEED);
    let out = match policy {
        Some(p) => rt.run_with_policy(adv.as_mut(), p),
        None => rt.run(adv.as_mut()),
    };
    let outputs = (0..rt.agent_count())
        .map(|i| rt.behavior(i).output().is_some())
        .collect();
    let certified = (0..rt.agent_count())
        .map(|i| rt.behavior(i).certificate().is_some())
        .collect();
    CellReport {
        out,
        outputs,
        certified,
    }
}

fn run_cell(
    family: GraphFamily,
    n: usize,
    k: usize,
    kind: AdversaryKind,
    cutoff: u64,
    policy: Option<&mut dyn rv_sim::StopPolicy>,
) -> (RunOutcome, Vec<bool>) {
    let r = run_cell_with(family, n, k, kind, cutoff, policy, SglConfig::default());
    (r.out, r.outputs)
}

/// The certificate-free configuration used by the ablation legs.
fn nocert() -> SglConfig {
    SglConfig {
        suspension: None,
        ..SglConfig::default()
    }
}

/// With the suspended-token census on (the default), the three former
/// outlier cells end *certified quiescent* — `AllParked`, every agent
/// outputs, pairwise completeness holds — several-fold under the
/// 2.5M-traversal budget they used to burn to `Stalled`/`Cutoff`.
#[test]
fn outlier_cells_end_certified_quiescent_under_budget() {
    let outliers = [
        (GraphFamily::RandomTree, 3, AdversaryKind::LazySecond),
        (GraphFamily::RandomTree, 3, AdversaryKind::GreedyAvoid),
        (GraphFamily::Gnp, 4, AdversaryKind::GreedyAvoid),
    ];
    for (family, k, kind) in outliers {
        let r = run_cell_with(family, 8, k, kind, 2_500_000, None, SglConfig::default());
        assert_eq!(
            r.out.end,
            RunEnd::AllParked,
            "{family}(8)/{kind}/k{k} must quiesce"
        );
        assert!(
            r.out.total_traversals < 500_000,
            "{family}(8)/{kind}/k{k} must retire several-fold under budget (got {})",
            r.out.total_traversals
        );
        assert!(
            r.certified.iter().any(|&c| c),
            "{family}(8)/{kind}/k{k}: some explorer must hold a certificate"
        );
        assert!(
            r.outputs.iter().all(|&o| o),
            "{family}(8)/{kind}/k{k}: every agent must output"
        );
        assert!(
            (1..r.outputs.len()).all(|j| r.out.meetings.pair_met(0, j)),
            "{family}(8)/{kind}/k{k}: the minimal agent must have met every teammate"
        );
    }
}

/// The certificate-free ablation, under the structural stall detector:
/// the two cells whose token is suspended *strictly inside an edge* are
/// classified `Stalled` (the detector's hold conjunct is satisfied by a
/// genuine multi-million-action suspension), while the lazy cell — whose
/// token is merely parked at a node, with no agent mid-edge — honestly
/// burns the budget to `Cutoff` instead of being mislabelled.
#[test]
fn ablation_separates_suspension_stalls_from_slow_cells() {
    for (family, k, kind, held_floor) in [
        (
            GraphFamily::RandomTree,
            3,
            AdversaryKind::GreedyAvoid,
            2_000_000,
        ),
        (GraphFamily::Gnp, 4, AdversaryKind::GreedyAvoid, 2_000_000),
    ] {
        let mut policy = AdaptiveThreshold::default();
        let r = run_cell_with(family, 8, k, kind, 2_500_000, Some(&mut policy), nocert());
        assert_eq!(
            r.out.end,
            RunEnd::Stalled,
            "{family}(8)/{kind}/k{k}+nocert must be classified Stalled"
        );
        let report = policy
            .suspension()
            .expect("a Stalled verdict must carry its suspension evidence");
        assert!(
            report.held_actions >= held_floor,
            "{family}(8)/{kind}/k{k}+nocert: suspect held only {} actions",
            report.held_actions
        );
    }
    let mut policy = AdaptiveThreshold::default();
    let r = run_cell_with(
        GraphFamily::RandomTree,
        8,
        3,
        AdversaryKind::LazySecond,
        2_500_000,
        Some(&mut policy),
        nocert(),
    );
    assert_eq!(
        r.out.end,
        RunEnd::Cutoff,
        "tree(8)/lazy(1)/k3+nocert has no mid-edge suspension: must read Cutoff"
    );
}

/// On a converging cell the stall detector is invisible: same end, same
/// cost, same action count, same meeting log, same outputs as a plain
/// `run()` — including under the adversary the outliers stall under.
#[test]
fn adaptive_policy_is_invisible_on_converging_cells() {
    for (family, n, k, kind) in [
        (GraphFamily::Ring, 6, 2, AdversaryKind::GreedyAvoid),
        (GraphFamily::RandomTree, 8, 2, AdversaryKind::GreedyAvoid),
    ] {
        let (plain, plain_outputs) = run_cell(family, n, k, kind, 30_000_000, None);
        assert_eq!(plain.end, RunEnd::AllParked, "{family}({n})/{kind}");
        let mut policy = AdaptiveThreshold::default();
        let (detected, detected_outputs) =
            run_cell(family, n, k, kind, 30_000_000, Some(&mut policy));
        assert_eq!(plain.end, detected.end);
        assert_eq!(plain.total_traversals, detected.total_traversals);
        assert_eq!(plain.actions, detected.actions);
        assert_eq!(plain.meetings, detected.meetings);
        assert_eq!(plain_outputs, detected_outputs);
    }
}

/// The census-based quiescence check agrees with the run loop's own
/// AllParked detection: same outcome, bit for bit.
#[test]
fn early_quiescence_matches_natural_quiescence() {
    let (plain, plain_outputs) = run_cell(
        GraphFamily::Ring,
        6,
        2,
        AdversaryKind::RoundRobin,
        30_000_000,
        None,
    );
    assert_eq!(plain.end, RunEnd::AllParked);
    let mut policy = EarlyQuiescence;
    let (early, early_outputs) = run_cell(
        GraphFamily::Ring,
        6,
        2,
        AdversaryKind::RoundRobin,
        30_000_000,
        Some(&mut policy),
    );
    assert_eq!(plain.end, early.end);
    assert_eq!(plain.total_traversals, early.total_traversals);
    assert_eq!(plain.actions, early.actions);
    assert_eq!(plain.meetings, early.meetings);
    assert_eq!(plain_outputs, early_outputs);
}

/// A rendezvous-order protocol cell quiesces under the adaptive policy —
/// the affordability the large matrix sub-table rests on. (ring(16)
/// completes too, certified at ≈ 0.8M traversals where it used to need
/// ≈ 17.8M; the matrix covers it, this test keeps the suite's wall-clock
/// at the ring(12) scale.)
#[test]
fn order_12_cell_quiesces_under_the_adaptive_policy() {
    let mut policy = AdaptiveThreshold::default();
    let (out, outputs) = run_cell(
        GraphFamily::Ring,
        12,
        2,
        AdversaryKind::RoundRobin,
        50_000_000,
        Some(&mut policy),
    );
    assert_eq!(out.end, RunEnd::AllParked, "ring(12) must quiesce");
    assert!(outputs.iter().all(|&o| o), "every agent must output");
    // The post-hoc completeness check, via the meeting log's per-agent
    // views: the minimal agent (index 0, label 6) met every teammate.
    assert!(
        (1..outputs.len()).all(|j| out.meetings.pair_met(0, j)),
        "the minimal agent must have met every teammate"
    );
}
