//! Stop policies over protocol (SGL) runs: the stall detector fires on
//! exactly the three known non-quiescing matrix cells, detector-enabled
//! runs are bit-identical to plain runs on converging cells, and the
//! adaptive policy makes the rendezvous-order cells affordable.
//!
//! The three "outlier" cells (`tree8/lazy(1)/sgl-k3`,
//! `tree8/greedy-avoid/sgl-k3`, `gnp8/greedy-avoid/sgl-k4`) were long
//! suspected to be Phase-3 token-seek stalls; the dedicated trace
//! (`docs/STALL_TRACE.md`) refuted that — they are **Phase-1 ESST
//! blowups**: the adversary legally postpones the token ghost's final
//! `Finish` forever, so the explorer's last ESST phase inflates ~12×
//! past its nominal length, and the progress ticks (which count ESST
//! *phase advances*, not walking) go silent from ≈ action 240k onward.

use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_protocols::{SglBehavior, SglConfig};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{AdaptiveThreshold, EarlyQuiescence, RunConfig, RunEnd, RunOutcome, Runtime};

/// Matrix constants: graph seed, adversary seed, SGL labels.
const GRAPH_SEED: u64 = 5;
const ADVERSARY_SEED: u64 = 3;
const SGL_LABELS: [u64; 4] = [6, 9, 14, 21];

fn run_cell(
    family: GraphFamily,
    n: usize,
    k: usize,
    kind: AdversaryKind,
    cutoff: u64,
    policy: Option<&mut dyn rv_sim::StopPolicy>,
) -> (RunOutcome, Vec<bool>) {
    let uxs = SeededUxs::quadratic();
    let g = family.generate(n, GRAPH_SEED);
    let behaviors: Vec<_> = SGL_LABELS[..k]
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                &g,
                uxs,
                NodeId(i * g.order() / k),
                Label::new(l).unwrap(),
                l + 1000,
                SglConfig::default(),
            )
        })
        .collect();
    let mut rt = Runtime::new(&g, behaviors, RunConfig::protocol().with_cutoff(cutoff));
    let mut adv = kind.build(ADVERSARY_SEED);
    let out = match policy {
        Some(p) => rt.run_with_policy(adv.as_mut(), p),
        None => rt.run(adv.as_mut()),
    };
    let outputs = (0..rt.agent_count())
        .map(|i| rt.behavior(i).output().is_some())
        .collect();
    (out, outputs)
}

/// The three non-quiescing matrix cells end `Stalled` well under the
/// 2.5M-traversal budget (they used to burn all of it and read `Cutoff`).
#[test]
fn stall_detector_fires_on_all_three_outlier_cells() {
    let outliers = [
        (GraphFamily::RandomTree, 3, AdversaryKind::LazySecond),
        (GraphFamily::RandomTree, 3, AdversaryKind::GreedyAvoid),
        (GraphFamily::Gnp, 4, AdversaryKind::GreedyAvoid),
    ];
    for (family, k, kind) in outliers {
        let mut policy = AdaptiveThreshold::default();
        let (out, _) = run_cell(family, 8, k, kind, 2_500_000, Some(&mut policy));
        assert_eq!(
            out.end,
            RunEnd::Stalled,
            "{family}(8)/{kind}/k{k} must be classified Stalled"
        );
        assert!(
            out.total_traversals < 2_500_000,
            "{family}(8)/{kind}/k{k} must retire under the budget (got {})",
            out.total_traversals
        );
    }
}

/// On a converging cell the stall detector is invisible: same end, same
/// cost, same action count, same meeting log, same outputs as a plain
/// `run()` — including under the adversary the outliers stall under.
#[test]
fn adaptive_policy_is_invisible_on_converging_cells() {
    for (family, n, k, kind) in [
        (GraphFamily::Ring, 6, 2, AdversaryKind::GreedyAvoid),
        (GraphFamily::RandomTree, 8, 2, AdversaryKind::GreedyAvoid),
    ] {
        let (plain, plain_outputs) = run_cell(family, n, k, kind, 30_000_000, None);
        assert_eq!(plain.end, RunEnd::AllParked, "{family}({n})/{kind}");
        let mut policy = AdaptiveThreshold::default();
        let (detected, detected_outputs) =
            run_cell(family, n, k, kind, 30_000_000, Some(&mut policy));
        assert_eq!(plain.end, detected.end);
        assert_eq!(plain.total_traversals, detected.total_traversals);
        assert_eq!(plain.actions, detected.actions);
        assert_eq!(plain.meetings, detected.meetings);
        assert_eq!(plain_outputs, detected_outputs);
    }
}

/// The census-based quiescence check agrees with the run loop's own
/// AllParked detection: same outcome, bit for bit.
#[test]
fn early_quiescence_matches_natural_quiescence() {
    let (plain, plain_outputs) = run_cell(
        GraphFamily::Ring,
        6,
        2,
        AdversaryKind::RoundRobin,
        30_000_000,
        None,
    );
    assert_eq!(plain.end, RunEnd::AllParked);
    let mut policy = EarlyQuiescence;
    let (early, early_outputs) = run_cell(
        GraphFamily::Ring,
        6,
        2,
        AdversaryKind::RoundRobin,
        30_000_000,
        Some(&mut policy),
    );
    assert_eq!(plain.end, early.end);
    assert_eq!(plain.total_traversals, early.total_traversals);
    assert_eq!(plain.actions, early.actions);
    assert_eq!(plain.meetings, early.meetings);
    assert_eq!(plain_outputs, early_outputs);
}

/// A rendezvous-order protocol cell quiesces under the adaptive policy —
/// the affordability the large matrix sub-table rests on. (ring(16)
/// completes too, at ≈ 17.8M traversals; the matrix covers it, this test
/// keeps the suite's wall-clock at the ring(12) scale.)
#[test]
fn order_12_cell_quiesces_under_the_adaptive_policy() {
    let mut policy = AdaptiveThreshold::default();
    let (out, outputs) = run_cell(
        GraphFamily::Ring,
        12,
        2,
        AdversaryKind::RoundRobin,
        50_000_000,
        Some(&mut policy),
    );
    assert_eq!(out.end, RunEnd::AllParked, "ring(12) must quiesce");
    assert!(outputs.iter().all(|&o| o), "every agent must output");
    // The post-hoc completeness check, via the meeting log's per-agent
    // views: the minimal agent (index 0, label 6) met every teammate.
    assert!(
        (1..outputs.len()).all(|j| out.meetings.pair_met(0, j)),
        "the minimal agent must have met every teammate"
    );
}
