//! Protocol runs under crash-stop faults: Algorithm SGL must **never
//! hang** when teammates crash — every run ends classified (quiesced
//! among survivors, a detector verdict, or the cutoff backstop).
//!
//! The paper's model has no failures; crash-stop is the robustness
//! harness's addition (see `rv_sim::fault`), so these tests pin the
//! simulator contract, not a theorem: with a crashed teammate the
//! protocol may stall (the survivors keep searching for a label that
//! will never finish its sweep) but the run loop and the stop-policy
//! layer must convert that into a verdict, not a wedge.

use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{generators, NodeId};
use rv_protocols::{SglBehavior, SglConfig};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{
    and_then, AdaptiveThreshold, CrashFault, EarlyQuiescence, FaultPlan, FixedCutoff, RunConfig,
    RunEnd, Runtime,
};

/// Traversal backstop: generous enough for a clean k=3 SGL run on
/// ring(8), tight enough that a wedged run fails the suite quickly.
const CUTOFF: u64 = 20_000_000;

fn run_crashed_sgl(victim: usize, at_action: u64, kind: AdversaryKind, seed: u64) -> RunEnd {
    let g = generators::ring(8);
    let labels = [5u64, 2, 11];
    let agents: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                &g,
                SeededUxs::quadratic(),
                NodeId(i * g.order() / labels.len()),
                Label::new(l).unwrap(),
                l * 10,
                SglConfig::default(),
            )
        })
        .collect();
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(CUTOFF));
    rt.set_fault_plan(FaultPlan::new(
        vec![CrashFault {
            at_action,
            agent: victim,
        }],
        vec![],
        vec![],
    ));
    let mut adv = kind.build(seed);
    // The scenario matrix's protocol detector stack, with a tighter
    // stall window so a stalled-by-crash run is classified in test time.
    let mut policy = and_then(
        EarlyQuiescence,
        and_then(AdaptiveThreshold::new(200_000, 4), FixedCutoff::new(CUTOFF)),
    );
    let out = rt.run_with_policy(adv.as_mut(), &mut policy);
    assert!(
        rt.crashed(victim),
        "victim {victim} should be crashed by the end ({:?})",
        out.end
    );
    out.end
}

/// Crashing any team member — including the minimal-label agent, which
/// holds the SGL token role — at wake-up time or mid-protocol always
/// terminates with a classified end. (Which end depends on when the
/// crash lands relative to the survivors' sweeps; "not hanging, and
/// named" is the contract.)
#[test]
fn sgl_with_a_crashed_teammate_terminates_classified() {
    for victim in 0..3usize {
        for at_action in [0u64, 5_000, 200_000] {
            let end = run_crashed_sgl(victim, at_action, AdversaryKind::Random, 11);
            assert!(
                matches!(
                    end,
                    RunEnd::AllParked
                        | RunEnd::SurvivorsParked
                        | RunEnd::Stalled
                        | RunEnd::Diverged
                        | RunEnd::Cutoff
                ),
                "victim {victim} at {at_action}: unclassified end {end:?}"
            );
        }
    }
}

/// Crashing the whole team classifies `AllCrashed` without burning the
/// traversal budget.
#[test]
fn sgl_with_all_agents_crashed_ends_all_crashed() {
    let g = generators::ring(8);
    let labels = [5u64, 2, 11];
    let agents: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                &g,
                SeededUxs::quadratic(),
                NodeId(i * g.order() / labels.len()),
                Label::new(l).unwrap(),
                l * 10,
                SglConfig::default(),
            )
        })
        .collect();
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(CUTOFF));
    rt.set_fault_plan(FaultPlan::new(
        (0..3)
            .map(|agent| CrashFault {
                at_action: 100,
                agent,
            })
            .collect(),
        vec![],
        vec![],
    ));
    let mut adv = AdversaryKind::Random.build(7);
    let out = rt.run(adv.as_mut());
    assert_eq!(out.end, RunEnd::AllCrashed);
    assert!(out.actions <= 101, "crashes land at the scheduled action");
}
