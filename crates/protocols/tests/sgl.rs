//! End-to-end Algorithm SGL (Theorem 4.1): every agent outputs the complete
//! label/value set, under several adversaries, team sizes and graphs —
//! and the four applications derived from it are mutually consistent.

use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{generators, Graph, GraphFamily, NodeId};
use rv_protocols::{solve, SglBehavior, SglConfig, StateKind};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, Runtime};

fn uxs() -> SeededUxs {
    SeededUxs::quadratic()
}

/// Builds a team of `labels.len()` SGL agents spread over `g`, runs it
/// under `kind`, and returns the runtime for inspection.
fn run_sgl<'g>(
    g: &'g Graph,
    labels: &[u64],
    kind: AdversaryKind,
    seed: u64,
    cutoff: u64,
) -> (RunEnd, Runtime<'g, SglBehavior<'g, SeededUxs>>) {
    let n = g.order();
    assert!(labels.len() <= n);
    let agents: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let start = NodeId(i * n / labels.len());
            SglBehavior::new(
                g,
                uxs(),
                start,
                Label::new(l).unwrap(),
                l * 10,
                SglConfig::default(),
            )
        })
        .collect();
    let mut rt = Runtime::new(g, agents, RunConfig::protocol().with_cutoff(cutoff));
    let mut adv = kind.build(seed);
    let out = rt.run(adv.as_mut());
    (out.end, rt)
}

/// Asserts Theorem 4.1's postcondition on a finished runtime.
fn assert_all_output(rt: &Runtime<SglBehavior<SeededUxs>>, labels: &[u64], ctx: &str) {
    let mut expected: Vec<u64> = labels.to_vec();
    expected.sort_unstable();
    for i in 0..rt.agent_count() {
        let b = rt.behavior(i);
        let out = b
            .output()
            .unwrap_or_else(|| panic!("{ctx}: agent {} ({:?}) produced no output", i, b.state()));
        assert_eq!(
            out.labels(),
            expected,
            "{ctx}: agent {i} has a wrong label set"
        );
        // Gossip: values ride along.
        for (l, v) in out.iter() {
            assert_eq!(v, l * 10, "{ctx}: wrong value for label {l}");
        }
    }
}

#[test]
fn two_agents_on_a_ring() {
    let g = generators::ring(6);
    let labels = [5, 2];
    for kind in [
        AdversaryKind::Random,
        AdversaryKind::EagerMeet,
        AdversaryKind::GreedyAvoid,
    ] {
        let (end, rt) = run_sgl(&g, &labels, kind, 11, 30_000_000);
        assert_eq!(end, RunEnd::AllParked, "{kind}: run must quiesce");
        assert_all_output(&rt, &labels, &format!("ring6/{kind}"));
    }
}

#[test]
fn three_agents_on_a_random_graph() {
    let g = generators::gnp_connected(7, 0.4, 33);
    let labels = [9, 4, 14];
    for kind in [AdversaryKind::Random, AdversaryKind::EagerMeet] {
        let (end, rt) = run_sgl(&g, &labels, kind, 5, 30_000_000);
        assert_eq!(end, RunEnd::AllParked, "{kind}");
        assert_all_output(&rt, &labels, &format!("gnp7/{kind}"));
    }
}

#[test]
fn five_agents_on_a_tree() {
    let g = generators::random_tree(9, 77);
    let labels = [3, 11, 6, 20, 8];
    let (end, rt) = run_sgl(&g, &labels, AdversaryKind::Random, 21, 60_000_000);
    assert_eq!(end, RunEnd::AllParked);
    assert_all_output(&rt, &labels, "tree9/random");
}

#[test]
fn applications_are_consistent_across_agents() {
    let g = generators::ring(5);
    let labels = [12, 7, 30];
    let (end, rt) = run_sgl(&g, &labels, AdversaryKind::Random, 3, 30_000_000);
    assert_eq!(end, RunEnd::AllParked);
    let mut names = Vec::new();
    for i in 0..rt.agent_count() {
        let b = rt.behavior(i);
        let s = solve(b.label().value(), b.output().unwrap());
        assert_eq!(s.team_size, 3);
        assert_eq!(s.leader, 7);
        assert_eq!(s.gossip.len(), 3);
        names.push(s.new_name);
    }
    names.sort_unstable();
    assert_eq!(names, vec![1, 2, 3], "renaming must be a perfect bijection");
}

#[test]
fn exactly_one_agent_runs_the_collection_sweep() {
    // Only the minimum-label agent may finish Phase 2 un-aborted; everyone
    // else must end as a ghost. Check final states.
    let g = generators::ring(6);
    let labels = [25, 3, 18, 9];
    let (end, rt) = run_sgl(&g, &labels, AdversaryKind::Random, 55, 60_000_000);
    assert_eq!(end, RunEnd::AllParked);
    let min_idx = 1; // label 3
    for i in 0..rt.agent_count() {
        let b = rt.behavior(i);
        if i == min_idx {
            assert_eq!(b.state(), StateKind::Explorer, "the minimum stays explorer");
        } else {
            assert_eq!(b.state(), StateKind::Ghost, "agent {i} should end as ghost");
        }
        assert!(b.output().is_some());
    }
}

#[test]
fn lazy_wakeups_still_terminate() {
    // Lazy adversary keeps one agent dormant as long as possible: the
    // protocol must still complete (dormant agents are found and woken).
    let g = generators::ring(6);
    let labels = [5, 2, 8];
    let (end, rt) = run_sgl(&g, &labels, AdversaryKind::LazyFirst, 1, 60_000_000);
    assert_eq!(end, RunEnd::AllParked);
    assert_all_output(&rt, &labels, "ring6/lazy");
}

#[test]
fn works_on_every_family_with_random_adversary() {
    for fam in GraphFamily::ALL {
        let g = fam.generate(6, 13);
        let labels = [4, 10];
        let (end, rt) = run_sgl(&g, &labels, AdversaryKind::Random, 29, 60_000_000);
        assert_eq!(end, RunEnd::AllParked, "{fam}");
        assert_all_output(&rt, &labels, &format!("{fam}/random"));
    }
}
