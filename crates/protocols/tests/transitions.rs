//! Unit-level tests of the SGL state-transition rules (paper §4,
//! "state traveller"), driven by synthetic meetings — no simulator.

use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{generators, NodeId};
use rv_protocols::{Bag, SglBehavior, SglConfig, SglInfo, StateKind};
use rv_sim::{Behavior, MeetingPlace};

fn agent(g: &rv_graph::Graph, label: u64) -> SglBehavior<'_, SeededUxs> {
    SglBehavior::new(
        g,
        SeededUxs::quadratic(),
        NodeId(0),
        Label::new(label).unwrap(),
        label,
        SglConfig::default(),
    )
}

fn info(label: u64, state: StateKind) -> SglInfo {
    SglInfo {
        label,
        state,
        bag: Bag::singleton(label, label),
        final_set: None,
        has_output: false,
    }
}

#[test]
fn traveller_meeting_smaller_bag_becomes_ghost() {
    let g = generators::ring(5);
    let mut a = agent(&g, 10);
    assert_eq!(a.state(), StateKind::Traveller);
    a.on_meeting(
        MeetingPlace::Node(NodeId(0)),
        &[info(3, StateKind::Traveller)],
    );
    assert_eq!(a.state(), StateKind::Ghost);
    // Ghosts park: next_port yields None forever.
    assert_eq!(a.next_port(), None);
    assert_eq!(a.next_port(), None);
}

#[test]
fn traveller_meeting_larger_traveller_becomes_explorer() {
    let g = generators::ring(5);
    let mut a = agent(&g, 3);
    a.on_meeting(
        MeetingPlace::Node(NodeId(0)),
        &[info(10, StateKind::Traveller)],
    );
    assert_eq!(a.state(), StateKind::Explorer);
    // The explorer starts moving (ESST phase 1).
    assert!(a.next_port().is_some());
}

#[test]
fn traveller_meeting_only_explorers_with_larger_bags_stays_traveller() {
    let g = generators::ring(5);
    let mut a = agent(&g, 3);
    a.on_meeting(
        MeetingPlace::Node(NodeId(0)),
        &[info(10, StateKind::Explorer)],
    );
    assert_eq!(
        a.state(),
        StateKind::Traveller,
        "explorers alone do not convert"
    );
    // But the bag still merged.
    assert!(a.bag().contains(10));
}

#[test]
fn traveller_meeting_ghost_becomes_explorer_with_that_token() {
    let g = generators::ring(5);
    let mut a = agent(&g, 3);
    a.on_meeting(MeetingPlace::Node(NodeId(0)), &[info(7, StateKind::Ghost)]);
    assert_eq!(a.state(), StateKind::Explorer);
}

#[test]
fn smallest_non_explorer_is_chosen_as_token_in_multiway_meetings() {
    // Indirect check: with peers {explorer 4, traveller 9, ghost 6}, the
    // token must be 6 (smallest non-explorer); the agent transitions.
    let g = generators::ring(5);
    let mut a = agent(&g, 3);
    a.on_meeting(
        MeetingPlace::Node(NodeId(0)),
        &[
            info(4, StateKind::Explorer),
            info(9, StateKind::Traveller),
            info(6, StateKind::Ghost),
        ],
    );
    assert_eq!(a.state(), StateKind::Explorer);
    assert!(a.bag().contains(4) && a.bag().contains(9) && a.bag().contains(6));
}

#[test]
fn ghost_rule_takes_priority_over_explorer_rule() {
    // A peer carries a bag with a smaller label AND is a traveller: the
    // ghost rule fires first (paper order).
    let g = generators::ring(5);
    let mut a = agent(&g, 5);
    let mut peer = info(9, StateKind::Traveller);
    peer.bag.merge(&Bag::singleton(2, 2)); // heard of label 2 < 5
    a.on_meeting(MeetingPlace::Node(NodeId(0)), &[peer]);
    assert_eq!(a.state(), StateKind::Ghost);
}

#[test]
fn final_set_propagation_makes_a_ghost_output() {
    let g = generators::ring(5);
    let mut a = agent(&g, 10);
    // Become a ghost first.
    a.on_meeting(
        MeetingPlace::Node(NodeId(0)),
        &[info(3, StateKind::Traveller)],
    );
    assert!(a.output().is_none());
    // Now a peer announces the complete set.
    let mut full = Bag::singleton(3, 3);
    full.merge(&Bag::singleton(10, 10));
    let announcer = SglInfo {
        label: 3,
        state: StateKind::Explorer,
        bag: full.clone(),
        final_set: Some(full.clone()),
        has_output: true,
    };
    a.on_meeting(MeetingPlace::Node(NodeId(0)), &[announcer]);
    let out = a
        .output()
        .expect("ghost outputs on receiving the final set");
    assert_eq!(out, &full);
}

#[test]
fn bags_merge_on_every_meeting_regardless_of_state() {
    let g = generators::ring(5);
    let mut a = agent(&g, 2); // smallest — never converts on these meetings
    for l in [30u64, 40, 50] {
        a.on_meeting(
            MeetingPlace::Edge(rv_graph::EdgeId::new(NodeId(0), NodeId(1))),
            &[info(l, StateKind::Explorer)],
        );
    }
    assert_eq!(a.bag().len(), 4);
    assert_eq!(a.bag().min_label(), 2);
    assert_eq!(a.state(), StateKind::Traveller);
}

#[test]
fn traveller_keeps_walking_until_a_decisive_meeting() {
    let g = generators::ring(6);
    let mut a = agent(&g, 4);
    for _ in 0..50 {
        assert!(a.next_port().is_some(), "travellers never park");
    }
    assert_eq!(a.state(), StateKind::Traveller);
}
