//! Golden equivalence for the suspended-token certificate, in three
//! parts mirroring the three regimes the census can land in:
//!
//! 1. **Sub-floor invisibility** — on every golden cell that converges
//!    before the evidence floors ([`SuspensionPolicy`]) are reachable,
//!    the armed census is **bit-identical** to a certificate-free run:
//!    same end, same cost, same action count, same meeting log, same
//!    per-agent protocol state, and no certificate. This is the
//!    "provably free" claim made concrete: the census only ever *reads*
//!    the driver's attestation bit, so the sole way it can change a run
//!    is by actually certifying.
//!
//! 2. **Certified-early equivalence** — on converging cells large enough
//!    for the floors, the token ghost eventually parks for good and the
//!    explorer certifies the parked token instead of walking the rest of
//!    its phase against it (a parked ghost is a permanent suspension
//!    too). The run must end strictly cheaper with the paper's
//!    postconditions intact: `AllParked`, the same gossip outputs as the
//!    certificate-free run, and pairwise-met completeness.
//!
//! 3. **Suspension cells** — on the three former outliers and the large
//!    `lazy(1)` rings the certificate unlocked, the explorer closes the
//!    pinned phase on a certificate whose evidence meets the policy
//!    floors, and the run still quiesces complete.

use rv_core::Label;
use rv_explore::esst::{SuspendedTokenCert, SuspensionPolicy};
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_protocols::{SglBehavior, SglConfig};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, RunOutcome, Runtime};

/// Matrix constants: graph seed, adversary seed, SGL labels.
const GRAPH_SEED: u64 = 5;
const ADVERSARY_SEED: u64 = 3;
const SGL_LABELS: [u64; 4] = [6, 9, 14, 21];

/// FNV-1a-style mix for the meeting log (full `Debug` would be megabytes).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
}

/// One finished run, reduced to everything observable: outcome counters,
/// a hash of the complete meeting log, per-agent protocol state, the
/// rendered gossip outputs, and the certificates (if any).
struct RunReport {
    fingerprint: String,
    end: RunEnd,
    cost: u64,
    meetings: rv_sim::MeetingLog,
    outputs: Vec<Option<String>>,
    certificates: Vec<Option<SuspendedTokenCert>>,
}

fn fingerprint(out: &RunOutcome, rt: &Runtime<SglBehavior<SeededUxs>>) -> String {
    let mut h = Fnv::new();
    for m in &out.meetings {
        h.write_u64(m.agents.len() as u64);
        for &a in &m.agents {
            h.write_u64(a as u64);
        }
        h.write_u64(m.at_cost);
        h.write_u64(m.at_action);
        h.write_u64(match m.place {
            rv_sim::MeetingPlace::Node(v) => v.0 as u64,
            rv_sim::MeetingPlace::Edge(e) => (1 << 32) | ((e.a.0 as u64) << 16) | e.b.0 as u64,
        });
    }
    let agents: Vec<String> = (0..rt.agent_count())
        .map(|i| {
            let b = rt.behavior(i);
            format!(
                "{}:{:?} bag={:?} out={:?} e={:?}",
                b.label(),
                b.state(),
                b.bag().labels(),
                b.output().map(|s| s.iter().collect::<Vec<_>>()),
                b.order_bound(),
            )
        })
        .collect();
    format!(
        "{:?} cost={} actions={} per={:?} meetings={}#{:016x} agents={agents:?}",
        out.end,
        out.total_traversals,
        out.actions,
        out.per_agent,
        out.meetings.len(),
        h.0,
    )
}

fn run_cell(
    family: GraphFamily,
    n: usize,
    k: usize,
    kind: AdversaryKind,
    cutoff: u64,
    suspension: Option<SuspensionPolicy>,
) -> RunReport {
    let uxs = SeededUxs::quadratic();
    let g = family.generate(n, GRAPH_SEED);
    let config = SglConfig {
        suspension,
        ..SglConfig::default()
    };
    let behaviors: Vec<_> = SGL_LABELS[..k]
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                &g,
                uxs,
                NodeId(i * g.order() / k),
                Label::new(l).unwrap(),
                l + 1000,
                config,
            )
        })
        .collect();
    let mut rt = Runtime::new(&g, behaviors, RunConfig::protocol().with_cutoff(cutoff));
    let mut adv = kind.build(ADVERSARY_SEED);
    let out = rt.run(adv.as_mut());
    RunReport {
        fingerprint: fingerprint(&out, &rt),
        end: out.end,
        cost: out.total_traversals,
        outputs: (0..rt.agent_count())
            .map(|i| {
                rt.behavior(i)
                    .output()
                    .map(|s| format!("{:?}", s.iter().collect::<Vec<_>>()))
            })
            .collect(),
        certificates: (0..rt.agent_count())
            .map(|i| rt.behavior(i).certificate())
            .collect(),
        meetings: out.meetings,
    }
}

/// Regime 1: on every golden cell whose whole run fits under the
/// evidence floors, the armed census is invisible — the run with the
/// default policy is bit-for-bit the run with no census at all, and
/// neither holds a certificate. One cell per graph family, all four
/// adversaries represented.
#[test]
fn certificate_is_invisible_on_every_sub_floor_golden_cell() {
    let goldens = [
        (GraphFamily::Ring, 4, 2, AdversaryKind::LazySecond),
        (GraphFamily::Path, 4, 2, AdversaryKind::EagerMeet),
        (GraphFamily::Path, 4, 2, AdversaryKind::GreedyAvoid),
        (GraphFamily::RandomTree, 4, 2, AdversaryKind::EagerMeet),
        (GraphFamily::Gnp, 4, 2, AdversaryKind::RoundRobin),
        (GraphFamily::Lollipop, 4, 2, AdversaryKind::GreedyAvoid),
    ];
    for (family, n, k, kind) in goldens {
        let armed = run_cell(
            family,
            n,
            k,
            kind,
            2_500_000,
            SglConfig::default().suspension,
        );
        let disarmed = run_cell(family, n, k, kind, 2_500_000, None);
        assert_eq!(
            armed.end,
            RunEnd::AllParked,
            "{family}({n})/{kind}/k{k} must be a converging golden cell"
        );
        assert_eq!(
            armed.fingerprint, disarmed.fingerprint,
            "{family}({n})/{kind}/k{k}: the armed census must be invisible"
        );
        assert!(
            armed.certificates.iter().all(Option::is_none),
            "{family}({n})/{kind}/k{k}: a sub-floor cell must not certify"
        );
    }
}

/// Regime 2: on converging cells large enough to clear the floors, the
/// explorer certifies the token ghost once it has parked for good, and
/// the certified run is a strict improvement with identical
/// postconditions: `AllParked`, strictly cheaper than the natural run,
/// the same gossip output at every agent, and the minimal agent still
/// met every teammate.
#[test]
fn certified_early_runs_preserve_outputs_and_completeness() {
    let cells = [
        (GraphFamily::Ring, 5, 3, AdversaryKind::EagerMeet),
        (GraphFamily::Ring, 6, 2, AdversaryKind::GreedyAvoid),
        (GraphFamily::Path, 6, 3, AdversaryKind::LazySecond),
        (GraphFamily::RandomTree, 8, 2, AdversaryKind::GreedyAvoid),
        (GraphFamily::Gnp, 6, 3, AdversaryKind::RoundRobin),
        (GraphFamily::Lollipop, 7, 3, AdversaryKind::RoundRobin),
    ];
    for (family, n, k, kind) in cells {
        let armed = run_cell(
            family,
            n,
            k,
            kind,
            5_000_000,
            SglConfig::default().suspension,
        );
        let disarmed = run_cell(family, n, k, kind, 5_000_000, None);
        assert_eq!(disarmed.end, RunEnd::AllParked, "{family}({n})/{kind}/k{k}");
        assert_eq!(
            armed.end,
            RunEnd::AllParked,
            "{family}({n})/{kind}/k{k}: the certified run must still quiesce"
        );
        assert!(
            armed.certificates.iter().any(Option::is_some),
            "{family}({n})/{kind}/k{k}: a cell this size must certify its parked token"
        );
        assert!(
            armed.cost < disarmed.cost,
            "{family}({n})/{kind}/k{k}: certified {} must beat natural {}",
            armed.cost,
            disarmed.cost
        );
        assert_eq!(
            armed.outputs, disarmed.outputs,
            "{family}({n})/{kind}/k{k}: certifying must not change any gossip output"
        );
        assert!(
            armed.outputs.iter().all(Option::is_some),
            "{family}({n})/{kind}/k{k}: every agent must output"
        );
        assert!(
            (1..armed.outputs.len()).all(|j| armed.meetings.pair_met(0, j)),
            "{family}({n})/{kind}/k{k}: the minimal agent must have met every teammate"
        );
    }
}

/// Regime 3: on the suspension cells the explorer certifies, the
/// evidence meets the policy floors, and the run quiesces with the
/// paper's postconditions intact — several-fold under where the
/// certificate-free run would still be walking.
#[test]
fn suspension_cells_certify_and_quiesce_complete() {
    let policy = SuspensionPolicy::default();
    let cells = [
        (
            GraphFamily::RandomTree,
            8,
            3,
            AdversaryKind::LazySecond,
            2_500_000,
        ),
        (
            GraphFamily::RandomTree,
            8,
            3,
            AdversaryKind::GreedyAvoid,
            2_500_000,
        ),
        (
            GraphFamily::Gnp,
            8,
            4,
            AdversaryKind::GreedyAvoid,
            2_500_000,
        ),
        (
            GraphFamily::Ring,
            12,
            2,
            AdversaryKind::LazySecond,
            50_000_000,
        ),
        (
            GraphFamily::Ring,
            16,
            2,
            AdversaryKind::LazySecond,
            50_000_000,
        ),
    ];
    for (family, n, k, kind, cutoff) in cells {
        let r = run_cell(family, n, k, kind, cutoff, Some(policy));
        assert_eq!(
            r.end,
            RunEnd::AllParked,
            "{family}({n})/{kind}/k{k} must quiesce certified"
        );
        let cert = r
            .certificates
            .iter()
            .flatten()
            .next()
            .unwrap_or_else(|| panic!("{family}({n})/{kind}/k{k} must hold a certificate"));
        assert!(
            cert.sightings >= policy.min_sightings && cert.span >= policy.min_span,
            "{family}({n})/{kind}/k{k}: certificate evidence {cert:?} below the policy floors"
        );
        assert!(
            r.outputs.iter().all(Option::is_some),
            "{family}({n})/{kind}/k{k}: every agent must output"
        );
        assert!(
            (1..r.outputs.len()).all(|j| r.meetings.pair_met(0, j)),
            "{family}({n})/{kind}/k{k}: the minimal agent must have met every teammate"
        );
    }
}
