//! Golden-equivalence for protocol-runtime snapshots under SGL contention:
//! freezing a mid-run [`Runtime::snapshot`] and continuing **both** the
//! original runtime and a restored copy must be invisible — identical run
//! outcome, meeting log, gossip bags, outputs, and adversary RNG streams
//! (the forked adversary continues the seeded stream mid-way).
//!
//! This is the protocol-mode counterpart of the rendezvous detour proptest
//! in `rv_sim` (`golden_equivalence.rs`): protocol runs keep going through
//! every meeting, so the snapshot must capture agents mid-gossip — bags,
//! phase machinery, token flags — and a copy-on-write handle onto a
//! meeting log that keeps growing on both sides of the fork afterwards.

use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{generators, Graph, NodeId};
use rv_protocols::{SglBehavior, SglConfig};
use rv_sim::adversary::{Adversary, EagerMeet, RandomAdversary};
use rv_sim::{RunConfig, RunOutcome, Runtime};

type Rt<'g> = Runtime<'g, SglBehavior<'g, SeededUxs>>;

const LABELS: [u64; 3] = [6, 9, 14];

fn team(g: &Graph) -> Vec<SglBehavior<'_, SeededUxs>> {
    let uxs = SeededUxs::quadratic();
    LABELS
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            SglBehavior::new(
                g,
                uxs,
                NodeId(i * g.order() / LABELS.len()),
                Label::new(l).unwrap(),
                l + 1000,
                SglConfig::default(),
            )
        })
        .collect()
}

/// FNV-1a-style mix for the meeting log (full `Debug` would be megabytes).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
}

/// Everything observable about a finished protocol run, as one string:
/// outcome counters, a hash of the complete meeting log, and per-agent
/// protocol state (state kind, gossip bag, output set, order bound).
fn fingerprint(out: &RunOutcome, rt: &Rt<'_>) -> String {
    let mut h = Fnv::new();
    for m in &out.meetings {
        h.write_u64(m.agents.len() as u64);
        for &a in &m.agents {
            h.write_u64(a as u64);
        }
        h.write_u64(m.at_cost);
        h.write_u64(m.at_action);
        h.write_u64(match m.place {
            rv_sim::MeetingPlace::Node(v) => v.0 as u64,
            rv_sim::MeetingPlace::Edge(e) => (1 << 32) | ((e.a.0 as u64) << 16) | e.b.0 as u64,
        });
    }
    let agents: Vec<String> = (0..rt.agent_count())
        .map(|i| {
            let b = rt.behavior(i);
            format!(
                "{}:{:?} bag={:?} out={:?} e={:?}",
                b.label(),
                b.state(),
                b.bag().labels(),
                b.output().map(|s| s.iter().collect::<Vec<_>>()),
                b.order_bound(),
            )
        })
        .collect();
    format!(
        "{:?} cost={} actions={} per={:?} meetings={}#{:016x} agents={agents:?}",
        out.end,
        out.total_traversals,
        out.actions,
        out.per_agent,
        out.meetings.len(),
        h.0,
    )
}

/// Runs the instance uninterrupted and returns its fingerprint + action
/// count (so detours can split strictly mid-run).
fn uninterrupted<A: Adversary>(g: &Graph, mut adv: A) -> (String, u64) {
    let mut rt = Runtime::new(g, team(g), RunConfig::protocol());
    let out = rt.run(&mut adv);
    let actions = out.actions;
    (fingerprint(&out, &rt), actions)
}

/// Steps a manual prefix of `split` actions via [`Runtime::step`] —
/// `run()`'s own loop body, so the prefix is decision-for-decision
/// identical by construction (protocol mode does *not* stop at meetings)
/// — then snapshots, forks the adversary, and finishes both continuations.
fn detour<A: Adversary + Clone>(g: &Graph, mut adv: A, split: u64) -> (String, String) {
    let config = RunConfig::protocol();
    let mut rt = Runtime::new(g, team(g), config);
    let mut meetings = Vec::new();
    for _ in 0..split {
        let end = rt.step(&mut adv, &mut meetings);
        assert!(end.is_none(), "split must be strictly mid-run");
    }
    let snap = rt.snapshot();
    let mut forked_adv = adv.clone();

    let out = rt.run(&mut adv);
    let continued = fingerprint(&out, &rt);

    let mut restored = Runtime::from_snapshot(g, &snap, config);
    let out = restored.run(&mut forked_adv);
    let resumed = fingerprint(&out, &restored);
    (continued, resumed)
}

/// The detour check for one adversary over the ring(5) contention
/// instance, splitting at several points across the run (early wakes,
/// mid-run gossip, deep into the explorer phases).
fn check_detours<A: Adversary + Clone>(make_adv: impl Fn() -> A, name: &str) {
    let g = generators::ring(5);
    let (golden, actions) = uninterrupted(&g, make_adv());
    assert!(actions > 100, "instance must be non-trivial");
    for split in [1, actions / 4, actions / 2, actions - 1] {
        let (continued, resumed) = detour(&g, make_adv(), split);
        assert_eq!(
            continued, golden,
            "{name}: continuing past a snapshot at action {split} diverged"
        );
        assert_eq!(
            resumed, golden,
            "{name}: restoring a snapshot at action {split} diverged"
        );
    }
}

#[test]
fn snapshot_detour_is_invisible_under_seeded_random_contention() {
    // RandomAdversary: the fork must capture the RNG stream mid-way.
    check_detours(|| RandomAdversary::new(11), "random(11)");
}

#[test]
fn snapshot_detour_is_invisible_under_eager_meetings() {
    // EagerMeet maximises meeting density: every snapshot lands between
    // gossip exchanges and the log keeps growing on both sides.
    check_detours(EagerMeet::new, "eager-meet");
}
