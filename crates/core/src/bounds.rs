//! The worst-case cost bounds: `Π(n, m)` of Theorem 3.1 and the
//! exponential bound of the naive baseline — the paper's headline
//! comparison (experiment T2), evaluated exactly with bignums.

use rv_arith::Big;
use rv_explore::ExplorationProvider;

/// The starred upper-bound recurrences from the proof of Theorem 3.1.
///
/// The paper lists (with `X*_k = 2P(k)+1`, `Q*_k = Σ X*_i`):
///
/// ```text
/// Y*_k = 2P(k)·Q*_k         Z*_k = Σ_{i≤k} Y*_i
/// A*_k = 2P(k)·Z*_k         B*_k = 2·A*_{4k}·Y*_k
/// K*_k = 2(B*_{4k} + A*_{8k})·X*_k
/// Ω*_k = (2k−1)·K*_k·X*_k
/// ```
///
/// **Reproduction erratum** (recorded in EXPERIMENTS.md): the paper's
/// `Y*_k = 2P(k)·Q*_k` does *not* dominate the exact
/// `|Y(k)| = 2(P(k)+1)·|Q(k)| + 2P(k)` for small `k` (e.g. `k ≤ 4` under
/// `P(k) = 4k³`) — the paper's constant bookkeeping is loose, which is
/// harmless for its asymptotic claim but would make our `Π(n, m)` not a
/// true upper bound. We therefore use the tightened dominating forms
/// `Y*_k = 2(P(k)+1)·Q*_k` and `A*_k = 2(P(k)+1)·Z*_k`; everything
/// downstream dominates by composition. Both variants are the same
/// polynomial degree, so every claim of Theorem 3.1 is preserved.
#[derive(Debug)]
pub struct StarredLengths<P> {
    provider: P,
    // BTreeMap rather than HashMap: deterministic everywhere, and the
    // memo is tiny (a handful of (tag, k) keys), so the log factor is free.
    memo: std::cell::RefCell<std::collections::BTreeMap<(u8, u64), Big>>,
}

impl<P: ExplorationProvider> StarredLengths<P> {
    /// Creates the evaluator for the provider's length polynomial.
    pub fn new(provider: P) -> Self {
        StarredLengths {
            provider,
            memo: Default::default(),
        }
    }

    fn p(&self, k: u64) -> Big {
        Big::from(self.provider.len(k))
    }

    fn memoized(&self, tag: u8, k: u64, compute: impl FnOnce(&Self) -> Big) -> Big {
        if let Some(v) = self.memo.borrow().get(&(tag, k)) {
            return v.clone();
        }
        let v = compute(self);
        self.memo.borrow_mut().insert((tag, k), v.clone());
        v
    }

    /// `X*_k = 2P(k) + 1`.
    pub fn x(&self, k: u64) -> Big {
        self.p(k) * 2u64 + 1u64
    }

    /// `Q*_k = Σ_{i=1..k} X*_i`.
    pub fn q(&self, k: u64) -> Big {
        self.memoized(0, k, |s| if k == 1 { s.x(1) } else { s.q(k - 1) + s.x(k) })
    }

    /// `Y*_k = 2(P(k)+1) · Q*_k` (tightened; see the type-level erratum).
    pub fn y(&self, k: u64) -> Big {
        self.memoized(1, k, |s| (s.p(k) + 1u64) * 2u64 * s.q(k))
    }

    /// `Z*_k = Σ_{i=1..k} Y*_i`.
    pub fn z(&self, k: u64) -> Big {
        self.memoized(2, k, |s| if k == 1 { s.y(1) } else { s.z(k - 1) + s.y(k) })
    }

    /// `A*_k = 2(P(k)+1) · Z*_k` (tightened; see the type-level erratum).
    pub fn a(&self, k: u64) -> Big {
        self.memoized(3, k, |s| (s.p(k) + 1u64) * 2u64 * s.z(k))
    }

    /// `B*_k = 2 · A*_{4k} · Y*_k`.
    pub fn b(&self, k: u64) -> Big {
        self.memoized(4, k, |s| s.a(4 * k) * 2u64 * s.y(k))
    }

    /// `K*_k = 2(B*_{4k} + A*_{8k}) · X*_k`.
    pub fn k(&self, k: u64) -> Big {
        self.memoized(5, k, |s| (s.b(4 * k) + s.a(8 * k)) * 2u64 * s.x(k))
    }

    /// `Ω*_k = (2k−1) · K*_k · X*_k`.
    pub fn omega(&self, k: u64) -> Big {
        self.memoized(6, k, |s| s.k(k) * (2 * k - 1) * s.x(k))
    }

    /// `T*_k ≤ N(2A*_{4k} + 2B*_{2k} + K*_k)` — the bound on the length of
    /// one piece, where `N = 2(n + l) + 1`.
    pub fn piece(&self, k: u64, n_cap: &Big) -> Big {
        n_cap * &(self.a(4 * k) * 2u64 + self.b(2 * k) * 2u64 + self.k(k))
    }
}

/// The polynomial bound `Π(n, m)` of Theorem 3.1: two agents executing
/// RV-asynch-poly in a graph of order `n`, the smaller of their labels
/// having binary length `m`, must meet before either performs `Π(n, m)`
/// edge traversals.
///
/// Computed exactly as in the proof: `l = 2m + 2`, `N = 2(n + l) + 1`,
/// `Π(n, m) = Σ_{k=1..N} (T*_k + Ω*_k)`.
///
/// # Panics
///
/// Panics if `n < 2` or `m == 0`.
pub fn pi_bound<P: ExplorationProvider>(provider: P, n: u64, m: u64) -> Big {
    assert!(n >= 2, "rendezvous needs at least two nodes");
    assert!(m >= 1, "labels are positive, so their length is at least 1");
    let star = StarredLengths::new(provider);
    let l = 2 * m + 2;
    let n_iterations = 2 * (n + l) + 1;
    let n_cap = Big::from(n_iterations);
    (1..=n_iterations)
        .map(|k| star.piece(k, &n_cap) + star.omega(k))
        .sum()
}

/// Worst-case cost bound of the **naive baseline** (known `n`): the agent
/// with label `L` walks `|X(n)| · (2P(n)+1)^L` traversals; rendezvous is
/// guaranteed by the time the larger-labeled agent finishes, so the
/// guaranteed-by cost is at most the sum for both agents, bounded here for
/// the pair `(L, L')` with `L' ≤ L` by `2 · 2P(n) · (2P(n)+1)^L`.
///
/// Exponential in the label **value** `L`, hence doubly exponential in the
/// label length — the quantity `Π(n, m)` replaces.
pub fn naive_bound<P: ExplorationProvider>(provider: P, n: u64, larger_label: u64) -> Big {
    let x_len = Big::from(2 * provider.len(n));
    let reps = Big::from(2 * provider.len(n) + 1).pow(larger_label);
    x_len * reps * 2u64
}

/// `log₁₀` of [`naive_bound`], computed analytically — the bound itself has
/// `Θ(L)` digits, so materialising it for large label values is infeasible
/// (which is the paper's point). Exact up to floating-point rounding.
pub fn naive_bound_log10<P: ExplorationProvider>(provider: P, n: u64, larger_label: u64) -> f64 {
    let p = provider.len(n) as f64;
    (2.0 * p).log10() + larger_label as f64 * (2.0 * p + 1.0).log10() + 2f64.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_explore::{SeededUxs, TableUxs};
    use rv_trajectory::Lengths;

    #[test]
    fn starred_bounds_dominate_exact_lengths() {
        let star = StarredLengths::new(SeededUxs::default());
        let exact = Lengths::new(SeededUxs::default());
        for k in 1..6 {
            assert!(star.x(k) >= exact.x(k), "X k={k}");
            assert!(star.q(k) >= exact.q(k), "Q k={k}");
            assert!(star.y(k) >= exact.y(k), "Y k={k}");
            assert!(star.z(k) >= exact.z(k), "Z k={k}");
            assert!(star.a(k) >= exact.a(k), "A k={k}");
            assert!(star.b(k) >= exact.b(k), "B k={k}");
            assert!(star.k(k) >= exact.k(k), "K k={k}");
            assert!(star.omega(k) >= exact.omega(k), "Ω k={k}");
        }
    }

    #[test]
    fn pi_is_monotone_in_n_and_m() {
        let p = SeededUxs::default();
        assert!(pi_bound(p, 2, 1) < pi_bound(p, 3, 1));
        assert!(pi_bound(p, 2, 1) < pi_bound(p, 2, 2));
        assert!(pi_bound(p, 8, 4) < pi_bound(p, 16, 4));
    }

    #[test]
    fn pi_grows_polynomially_in_n() {
        // log Π should grow like c·log n, not like n: check the growth rate
        // by doubling n and bounding the log-ratio.
        let p = SeededUxs::default();
        let l16 = pi_bound(p, 16, 1).log10();
        let l32 = pi_bound(p, 32, 1).log10();
        let l64 = pi_bound(p, 64, 1).log10();
        // Doubling n adds a bounded number of digits (polynomial) rather
        // than doubling the digit count (exponential).
        let g1 = l32 - l16;
        let g2 = l64 - l32;
        assert!(g1 < l16, "growth looks exponential: {l16} → {l32}");
        assert!((g1 - g2).abs() < g1, "growth rate should be roughly stable");
    }

    #[test]
    fn pi_grows_polynomially_in_label_length_but_naive_exponentially() {
        let p = SeededUxs::default();
        // Π at n=4: label length 8 vs 16 — polynomial growth.
        let pi8 = pi_bound(p, 4, 8).log10();
        let pi16 = pi_bound(p, 4, 16).log10();
        assert!(
            pi16 / pi8 < 3.0,
            "Π must be polynomial in m: {pi8} vs {pi16}"
        );
        // Naive at the same n: labels 2^8 and 2^16 (lengths 9 and 17).
        let nv8 = naive_bound(p, 4, 1 << 8).log10();
        let nv16 = naive_bound(p, 4, 1 << 16).log10();
        assert!(
            nv16 / nv8 > 100.0,
            "naive must be doubly exponential in label length: {nv8} vs {nv16}"
        );
        // And the headline: Π beats naive already for short labels.
        assert!(pi_bound(p, 4, 8) < naive_bound(p, 4, 1 << 8));
    }

    #[test]
    fn pi_with_unit_p_is_hand_checkable_shape() {
        // With P(k) = 1, all starred quantities are tiny, and Π is the sum
        // of N piece+fence bounds.
        let p = TableUxs::new(vec![vec![0]]);
        let star = StarredLengths::new(&p);
        assert_eq!(star.x(9), Big::from(3u64));
        assert_eq!(star.q(3), Big::from(9u64));
        // Tightened Y*: 2(P+1)·Q* = 2·2·9.
        assert_eq!(star.y(3), Big::from(36u64));
        let pi = pi_bound(&p, 2, 1);
        // l = 4, N = 13: Π must exceed the largest fence bound alone.
        assert!(pi > star.omega(13));
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn pi_rejects_trivial_graphs() {
        pi_bound(SeededUxs::default(), 1, 1);
    }
}
