//! The naive exponential-cost rendezvous baseline (paper §3, opening).
//!
//! If the graph order `n` (or an upper bound) is known, the following
//! simple algorithm works: an agent with label `L` follows
//! `(R(n,v) R̄(n,v))^((2P(n)+1)^L)` — that is, `X(n, v)` repeated
//! `(2P(n)+1)^L` times — and stops. The agent with the larger label
//! performs more integral round trips than the smaller agent has edge
//! traversals in total, so if they never met while both moved, the larger
//! one sweeps the graph again after the smaller has stopped and must find
//! it. The two drawbacks the paper fixes: it needs `n`, and its cost is
//! **exponential in `L`** (not in `|L|` — doubly exponential in the label
//! length). This module exists as the baseline for experiment F2.

use crate::label::Label;
use rv_arith::Big;
use rv_explore::ExplorationProvider;
use rv_trajectory::Spec;

/// Schedule generator for the naive baseline. Unlike [`crate::RvAlgorithm`]
/// the schedule is finite: after `(2P(n)+1)^L` repetitions of `X(n)` the
/// agent stops forever.
#[derive(Clone, Debug)]
pub struct NaiveAlgorithm {
    n: u64,
    remaining: Big,
}

impl NaiveAlgorithm {
    /// Creates the schedule for known graph order `n` and label `label`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new<P: ExplorationProvider>(provider: &P, n: u64, label: Label) -> Self {
        assert!(n > 0, "graph order must be positive");
        let reps = Big::from(2 * provider.len(n) + 1).pow(label.value());
        NaiveAlgorithm { n, remaining: reps }
    }

    /// Repetitions left.
    pub fn remaining(&self) -> &Big {
        &self.remaining
    }

    /// Next spec, or `None` once the agent has stopped.
    pub fn next_spec(&mut self) -> Option<Spec> {
        let next = self.remaining.checked_sub(&Big::one())?;
        self.remaining = next;
        Some(Spec::X(self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_explore::TableUxs;

    #[test]
    fn repetition_count_is_exponential_in_label_value() {
        let p = TableUxs::new(vec![vec![0]]); // P(n) = 1 → base 3
        let a = NaiveAlgorithm::new(&p, 4, Label::new(2).unwrap());
        assert_eq!(a.remaining(), &Big::from(9u64));
        let b = NaiveAlgorithm::new(&p, 4, Label::new(10).unwrap());
        assert_eq!(b.remaining(), &Big::from(3u64.pow(10)));
    }

    #[test]
    fn schedule_is_finite_and_emits_x_n() {
        let p = TableUxs::new(vec![vec![0]]);
        let mut a = NaiveAlgorithm::new(&p, 5, Label::new(1).unwrap());
        let mut count = 0;
        while let Some(spec) = a.next_spec() {
            assert_eq!(spec, Spec::X(5));
            count += 1;
        }
        assert_eq!(count, 3); // (2·1+1)^1
        assert!(a.next_spec().is_none(), "stopped agents stay stopped");
    }
}
