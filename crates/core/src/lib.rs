#![forbid(unsafe_code)]
//! Algorithm **RV-asynch-poly** — deterministic asynchronous rendezvous at
//! polynomial cost (paper §3), plus the naive exponential baseline and the
//! exact worst-case cost bound `Π(n, m)` of Theorem 3.1.
//!
//! An agent with label `L` first transforms `L`'s binary representation
//! `c₁…c_r` into the *modified label* `M(L) = c₁c₁c₂c₂…c_rc_r 0 1`
//! ([`ModifiedLabel`]) — a prefix-free code, so two distinct agents always
//! disagree on some bit position both possess. The algorithm
//! ([`RvAlgorithm`]) then walks an infinite schedule of trajectories
//! organised into *pieces* separated by *fences*:
//!
//! ```text
//! for k = 1, 2, 3, …                          (piece k)
//!     for i = 1 .. min(k, s):                 (segment i of piece k)
//!         bit bᵢ = 1 → follow B(2k, v) twice  (two "atoms")
//!         bit bᵢ = 0 → follow A(4k, v) twice
//!         more bits to come in this piece → border K(k, v)
//!         last bit of the piece           → fence  Ω(k, v)
//! ```
//!
//! The synchronisation trajectories `K`/`Ω` force the other agent to make
//! progress (or meet); the atom trajectories `A`/`B` are engineered so that
//! when the two agents process the first bit where their modified labels
//! differ at roughly the same time, a meeting is unavoidable (Lemma 3.1).
//! Theorem 3.1 bounds the total cost to rendezvous by `Π(n, m)` — see
//! [`pi_bound`] — polynomial in the graph order `n` and the length `m` of
//! the smaller label.
//!
//! # Examples
//!
//! ```
//! use rv_core::{Label, RvAlgorithm, Role};
//!
//! let mut alg = RvAlgorithm::new(Label::new(5).unwrap());
//! // Piece 1 processes one bit (the first bit of M(5) = 1) then a fence.
//! let (spec, role) = alg.next_labeled();
//! assert_eq!(spec.to_string(), "B(2)");
//! assert!(matches!(role, Role::Atom { k: 1, i: 1, bit: true, first: true }));
//! ```

mod algorithm;
mod bounds;
mod label;
mod naive;

pub use algorithm::{Role, RvAlgorithm, RvVariant};
pub use bounds::{naive_bound, naive_bound_log10, pi_bound, StarredLengths};
pub use label::{Label, ModifiedLabel};
pub use naive::NaiveAlgorithm;
