//! The RV-asynch-poly schedule generator.

use crate::label::Label;
use rv_trajectory::Spec;
use std::fmt;

/// Structural role of a spec within the algorithm's schedule — the paper's
/// vocabulary of §3.2 (atoms, segments, borders, pieces, fences), used by
/// the simulator's instrumentation and the synchronisation-lemma tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// One of the two atoms of segment `S_i(k)`; `bit` is the processed bit
    /// `b_i`, `first` distinguishes the two atoms.
    Atom {
        /// Piece number (the `k` of the outer loop).
        k: u64,
        /// Segment index (1-based bit position).
        i: u64,
        /// The processed bit of the modified label.
        bit: bool,
        /// Whether this is the first of the segment's two atoms.
        first: bool,
    },
    /// The border `K_{i,i+1}(k)` between segments `i` and `i+1` of piece `k`.
    Border {
        /// Piece number.
        k: u64,
        /// Segment it follows.
        i: u64,
    },
    /// The fence `Ω(k)` ending piece `k`.
    Fence {
        /// Piece number.
        k: u64,
    },
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Atom { k, i, bit, first } => write!(
                f,
                "atom {}/2 of S_{i}({k}) [bit {}]",
                if *first { 1 } else { 2 },
                u8::from(*bit)
            ),
            Role::Border { k, i } => write!(f, "border K_{{{i},{}}}({k})", i + 1),
            Role::Fence { k } => write!(f, "fence Ω({k})"),
        }
    }
}

/// Design-choice switches for the ablation experiment (F6). The default is
/// the paper's algorithm; each switch disables one ingredient §3.1 argues
/// is necessary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RvVariant {
    /// Paper: each segment follows its atom trajectory **twice**. Ablation:
    /// once.
    pub doubled_atoms: bool,
    /// Paper: atoms use scaled parameters `B(2k)` / `A(4k)`. Ablation:
    /// `B(k)` / `A(k)`.
    pub scaled_params: bool,
    /// Paper: bits come from the prefix-free transform `M(L)`. Ablation:
    /// the raw binary representation of `L`.
    pub modified_label: bool,
}

impl Default for RvVariant {
    fn default() -> Self {
        RvVariant {
            doubled_atoms: true,
            scaled_params: true,
            modified_label: true,
        }
    }
}

/// Infinite schedule of trajectory specs for Algorithm RV-asynch-poly,
/// executed by an agent with a given label (paper §3.1 pseudocode).
///
/// The agent follows the specs in order, each starting from its fixed
/// starting node `v` — every spec in the schedule is closed (returns to
/// `v`), so the cursor is always back at `v` when the next spec begins.
#[derive(Clone, Debug)]
pub struct RvAlgorithm {
    label: Label,
    bits: Vec<bool>,
    variant: RvVariant,
    /// Piece number `k ≥ 1`.
    k: u64,
    /// Segment index `i` in `1..=min(k, s)`.
    i: u64,
    /// Position within the segment: 0, 1 = atoms; 2 = border/fence.
    stage: u8,
}

impl RvAlgorithm {
    /// Starts the schedule for an agent labeled `label` (the paper's
    /// algorithm).
    pub fn new(label: Label) -> Self {
        Self::with_variant(label, RvVariant::default())
    }

    /// Starts an ablated variant of the schedule (see [`RvVariant`]).
    pub fn with_variant(label: Label, variant: RvVariant) -> Self {
        let bits = if variant.modified_label {
            label.modified().bits().to_vec()
        } else {
            let r = label.bit_length();
            (0..r).rev().map(|p| label.value() >> p & 1 == 1).collect()
        };
        RvAlgorithm {
            label,
            bits,
            variant,
            k: 1,
            i: 1,
            stage: 0,
        }
    }

    /// The agent's label.
    pub fn label(&self) -> Label {
        self.label
    }

    /// The bit string the schedule processes (the modified label by
    /// default).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Current piece number.
    pub fn piece(&self) -> u64 {
        self.k
    }

    /// Produces the next trajectory spec (the schedule never ends).
    pub fn next_spec(&mut self) -> Spec {
        self.next_labeled().0
    }

    /// Produces the next spec together with its structural [`Role`].
    pub fn next_labeled(&mut self) -> (Spec, Role) {
        let s = self.bits.len() as u64;
        let limit = self.k.min(s);
        debug_assert!(self.i <= limit);
        let bit = self.bits[self.i as usize - 1];
        let (b_scale, a_scale) = if self.variant.scaled_params {
            (2, 4)
        } else {
            (1, 1)
        };
        let atom_stages: u8 = if self.variant.doubled_atoms { 2 } else { 1 };
        let out = if self.stage < atom_stages {
            let spec = if bit {
                Spec::B(b_scale * self.k)
            } else {
                Spec::A(a_scale * self.k)
            };
            let role = Role::Atom {
                k: self.k,
                i: self.i,
                bit,
                first: self.stage == 0,
            };
            (spec, role)
        } else if limit > self.i {
            (
                Spec::K(self.k),
                Role::Border {
                    k: self.k,
                    i: self.i,
                },
            )
        } else {
            (Spec::Omega(self.k), Role::Fence { k: self.k })
        };
        // Advance.
        if self.stage < atom_stages {
            self.stage += 1;
        } else {
            self.stage = 0;
            if self.i < limit {
                self.i += 1;
            } else {
                self.i = 1;
                self.k += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(label: u64, count: usize) -> Vec<(Spec, Role)> {
        let mut alg = RvAlgorithm::new(Label::new(label).unwrap());
        (0..count).map(|_| alg.next_labeled()).collect()
    }

    #[test]
    fn piece_1_processes_one_bit_then_fence() {
        // M(1) = 1101; first bit is 1 → atoms are B(2·1).
        let sched = collect(1, 3);
        assert_eq!(sched[0].0, Spec::B(2));
        assert_eq!(sched[1].0, Spec::B(2));
        assert_eq!(sched[2].0, Spec::Omega(1));
        assert!(matches!(
            sched[0].1,
            Role::Atom {
                k: 1,
                i: 1,
                bit: true,
                first: true
            }
        ));
        assert!(matches!(
            sched[1].1,
            Role::Atom {
                k: 1,
                i: 1,
                bit: true,
                first: false
            }
        ));
        assert!(matches!(sched[2].1, Role::Fence { k: 1 }));
    }

    #[test]
    fn piece_2_processes_two_bits_with_border_between() {
        // M(1) = 1101: piece 2 handles bits b1=1, b2=1.
        let sched = collect(1, 9);
        // piece 1: B B Ω; piece 2: B B K B B Ω.
        assert_eq!(sched[3].0, Spec::B(4));
        assert_eq!(sched[5].0, Spec::K(2));
        assert!(matches!(sched[5].1, Role::Border { k: 2, i: 1 }));
        assert_eq!(sched[6].0, Spec::B(4));
        assert_eq!(sched[8].0, Spec::Omega(2));
    }

    #[test]
    fn zero_bits_use_a_atoms() {
        // M(2) = 1 1 0 0 0 1 (binary 10 doubled = 1100, suffix 01).
        let mut alg = RvAlgorithm::new(Label::new(2).unwrap());
        // Skip piece 1 (3 specs) to reach piece 2, whose second segment
        // processes bit b2 = 1 — wait, b2 of M(2)=110001 is 1.
        for _ in 0..3 {
            alg.next_spec();
        }
        // Piece 2, segment 1 (bit 1): B(4). Segment 2 (bit 1): B(4).
        assert_eq!(alg.next_spec(), Spec::B(4));
        // Fast-forward to piece 3 segment 3 which processes bit b3 = 0.
        let mut alg = RvAlgorithm::new(Label::new(2).unwrap());
        let mut seen_a = None;
        for _ in 0..40 {
            let (spec, role) = alg.next_labeled();
            if let Role::Atom { bit: false, .. } = role {
                seen_a = Some(spec);
                break;
            }
        }
        match seen_a {
            Some(Spec::A(k)) => assert_eq!(k % 4, 0, "A atoms use parameter 4k"),
            other => panic!("expected an A atom, got {other:?}"),
        }
    }

    #[test]
    fn piece_k_has_min_k_s_segments() {
        // For label 1, s = 4; piece 10 must have exactly 4 segments.
        let mut alg = RvAlgorithm::new(Label::new(1).unwrap());
        let mut segments_in_piece_10 = 0;
        for _ in 0..1000 {
            let (_, role) = alg.next_labeled();
            match role {
                Role::Atom {
                    k: 10, first: true, ..
                } => segments_in_piece_10 += 1,
                Role::Fence { k: 11 } => break,
                _ => {}
            }
        }
        assert_eq!(segments_in_piece_10, 4);
    }

    #[test]
    fn every_piece_ends_with_its_fence() {
        let mut alg = RvAlgorithm::new(Label::new(23).unwrap());
        let mut expected_next_fence = 1;
        for _ in 0..300 {
            let (spec, role) = alg.next_labeled();
            if let Role::Fence { k } = role {
                assert_eq!(k, expected_next_fence);
                assert_eq!(spec, Spec::Omega(k));
                expected_next_fence += 1;
            }
        }
        assert!(expected_next_fence > 3, "several fences must have passed");
    }

    #[test]
    fn atom_parameters_follow_the_paper() {
        // Bit 1 → B(2k); bit 0 → A(4k).
        let mut alg = RvAlgorithm::new(Label::new(6).unwrap()); // M(6)=11 11 00 01
        for _ in 0..400 {
            let (spec, role) = alg.next_labeled();
            if let Role::Atom { k, bit, .. } = role {
                match (bit, spec) {
                    (true, Spec::B(p)) => assert_eq!(p, 2 * k),
                    (false, Spec::A(p)) => assert_eq!(p, 4 * k),
                    other => panic!("wrong atom spec: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn role_display_is_readable() {
        let role = Role::Atom {
            k: 3,
            i: 2,
            bit: true,
            first: false,
        };
        assert_eq!(role.to_string(), "atom 2/2 of S_2(3) [bit 1]");
        assert_eq!(Role::Border { k: 3, i: 1 }.to_string(), "border K_{1,2}(3)");
        assert_eq!(Role::Fence { k: 4 }.to_string(), "fence Ω(4)");
    }
}
