//! Agent labels and the prefix-free label transform.

use std::fmt;

/// An agent label: a strictly positive integer, known only to its owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u64);

impl Label {
    /// Creates a label; returns `None` for `0` (the model requires strictly
    /// positive labels).
    pub fn new(value: u64) -> Option<Self> {
        (value > 0).then_some(Label(value))
    }

    /// The numeric value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// The paper's `|L|`: the length of the binary representation.
    pub fn bit_length(&self) -> u32 {
        64 - self.0.leading_zeros()
    }

    /// The modified label `M(L)`.
    pub fn modified(&self) -> ModifiedLabel {
        ModifiedLabel::of(*self)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The modified label `M(x) = c₁c₁c₂c₂…c_rc_r 0 1` where `c₁…c_r` is the
/// binary representation of `x` (most significant bit first).
///
/// Two properties drive the algorithm (both tested):
/// * `M(x)` is never a prefix of `M(y)` for `x ≠ y`;
/// * `M` is injective.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ModifiedLabel {
    bits: Vec<bool>,
}

impl ModifiedLabel {
    /// Computes `M(label)`.
    pub fn of(label: Label) -> Self {
        let r = label.bit_length();
        let mut bits = Vec::with_capacity(2 * r as usize + 2);
        for pos in (0..r).rev() {
            let bit = label.value() >> pos & 1 == 1;
            bits.push(bit);
            bits.push(bit);
        }
        bits.push(false);
        bits.push(true);
        ModifiedLabel { bits }
    }

    /// The paper's `s`: number of bits of the modified label (`2|L| + 2`).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Modified labels are never empty (labels are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th bit, **1-based** as in the paper (`b_1 … b_s`).
    ///
    /// # Panics
    ///
    /// Panics if `i == 0` or `i > s`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i >= 1 && i <= self.bits.len(),
            "bit index {i} out of 1..={}",
            self.bits.len()
        );
        self.bits[i - 1]
    }

    /// All bits, most significant first.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Returns the first (1-based) position where `self` and `other`
    /// differ. Guaranteed to exist for distinct labels within the shorter
    /// length (prefix-freeness).
    pub fn first_difference(&self, other: &ModifiedLabel) -> Option<usize> {
        let shorter = self.bits.len().min(other.bits.len());
        (0..shorter)
            .find(|&j| self.bits[j] != other.bits[j])
            .map(|j| j + 1)
    }
}

impl fmt::Display for ModifiedLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_rejects_zero() {
        assert!(Label::new(0).is_none());
        assert!(Label::new(1).is_some());
    }

    #[test]
    fn bit_length_matches_paper_definition() {
        assert_eq!(Label::new(1).unwrap().bit_length(), 1);
        assert_eq!(Label::new(2).unwrap().bit_length(), 2);
        assert_eq!(Label::new(255).unwrap().bit_length(), 8);
        assert_eq!(Label::new(256).unwrap().bit_length(), 9);
    }

    #[test]
    fn modified_label_of_5() {
        // 5 = 101 → doubled 11 00 11, suffix 01.
        let m = Label::new(5).unwrap().modified();
        assert_eq!(m.to_string(), "11001101");
        assert_eq!(m.len(), 8);
        assert!(m.bit(1));
        assert!(!m.bit(3));
        assert!(!m.bit(7));
        assert!(m.bit(8));
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn bit_is_one_based() {
        Label::new(5).unwrap().modified().bit(0);
    }

    #[test]
    fn length_is_2r_plus_2() {
        for v in [1u64, 2, 3, 7, 100, u64::MAX] {
            let l = Label::new(v).unwrap();
            assert_eq!(l.modified().len() as u32, 2 * l.bit_length() + 2);
        }
    }

    #[test]
    fn first_difference_exists_for_distinct_labels() {
        let a = Label::new(12).unwrap().modified();
        let b = Label::new(13).unwrap().modified();
        let pos = a.first_difference(&b).expect("distinct labels must differ");
        assert!(pos <= a.len().min(b.len()));
        assert_ne!(a.bit(pos), b.bit(pos));
    }

    #[test]
    fn same_label_has_no_difference() {
        let a = Label::new(9).unwrap().modified();
        let b = Label::new(9).unwrap().modified();
        assert_eq!(a.first_difference(&b), None);
    }

    #[test]
    fn prefix_freeness_small_exhaustive() {
        // M(x) must never be a prefix of M(y), x != y, exhaustively for
        // small labels.
        let labels: Vec<ModifiedLabel> = (1u64..=64)
            .map(|v| Label::new(v).unwrap().modified())
            .collect();
        for (i, a) in labels.iter().enumerate() {
            for (j, b) in labels.iter().enumerate() {
                if i == j {
                    continue;
                }
                let is_prefix = a.len() <= b.len() && a.bits() == &b.bits()[..a.len()];
                assert!(!is_prefix, "M({}) is a prefix of M({})", i + 1, j + 1);
            }
        }
    }
}
