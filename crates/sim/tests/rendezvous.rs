//! End-to-end rendezvous: Algorithm RV-asynch-poly must meet under every
//! adversary in the suite, on every graph family (Theorem 3.1, empirically),
//! and the key structural lemma (Lemma 3.1) must hold.

use proptest::prelude::*;
use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{generators, GraphFamily, NodeId};
use rv_sim::adversary::AdversaryKind;
use rv_sim::{RunConfig, RunEnd, Runtime, RvBehavior, SpecBehavior};
use rv_trajectory::Spec;

fn uxs() -> SeededUxs {
    SeededUxs::quadratic()
}

fn run_rendezvous(
    g: &rv_graph::Graph,
    starts: (usize, usize),
    labels: (u64, u64),
    kind: AdversaryKind,
    seed: u64,
    cutoff: u64,
) -> rv_sim::RunOutcome {
    let agents = vec![
        RvBehavior::new(g, uxs(), NodeId(starts.0), Label::new(labels.0).unwrap()),
        RvBehavior::new(g, uxs(), NodeId(starts.1), Label::new(labels.1).unwrap()),
    ];
    let mut rt = Runtime::new(g, agents, RunConfig::rendezvous().with_cutoff(cutoff));
    let mut adv = kind.build(seed);
    rt.run(adv.as_mut())
}

#[test]
fn rendezvous_on_every_family_under_every_adversary() {
    // Round-robin is excluded here: exact-lockstep scheduling can trap both
    // agents in the fence Ω(1) (≈10¹⁹ repetitions of a 16-step loop) in
    // disjoint regions — see `fence_trap_under_exact_lockstep` below.
    let robust = [
        AdversaryKind::Random,
        AdversaryKind::LazyFirst,
        AdversaryKind::LazySecond,
        AdversaryKind::GreedyAvoid,
        AdversaryKind::EagerMeet,
    ];
    for fam in GraphFamily::ALL {
        let g = fam.generate(8, 42);
        let n = g.order();
        for kind in robust {
            let out = run_rendezvous(&g, (0, n / 2), (6, 9), kind, 1, 5_000_000);
            assert!(
                matches!(out.end, RunEnd::Meeting),
                "{fam}/{kind}: no meeting within {} traversals",
                out.total_traversals
            );
        }
    }
}

/// A reproduction finding worth pinning down: under *exact-lockstep*
/// round-robin scheduling on the hypercube, both agents reach the fence
/// Ω(1) — `X(1)` repeated ~10¹⁹ times — anchored at nodes whose 16-step
/// loops never interact, so no feasible horizon produces a meeting. The
/// guarantee of Theorem 3.1 only engages at pieces k ≥ n+l, i.e. within the
/// astronomical bound Π(n,m); this is the algorithm's galactic-constant
/// nature, not a bug (every other adversary meets in a handful of steps —
/// see the probe results recorded in EXPERIMENTS.md).
#[test]
fn fence_trap_under_exact_lockstep() {
    let g = generators::hypercube(3);
    let trapped = run_rendezvous(&g, (0, 4), (6, 9), AdversaryKind::RoundRobin, 1, 200_000);
    assert!(
        matches!(trapped.end, RunEnd::Cutoff),
        "the Ω(1) trap should persist"
    );
    // The same configuration under a fair *random* scheduler meets at once.
    let free = run_rendezvous(&g, (0, 4), (6, 9), AdversaryKind::Random, 1, 200_000);
    assert!(matches!(free.end, RunEnd::Meeting));
    // And round-robin itself is fine on the ring, where the X(1) loops of
    // the two agents overlap.
    let ring = generators::ring(8);
    let out = run_rendezvous(
        &ring,
        (0, 4),
        (6, 9),
        AdversaryKind::RoundRobin,
        1,
        5_000_000,
    );
    assert!(
        matches!(out.end, RunEnd::Meeting),
        "cost {}",
        out.total_traversals
    );
}

#[test]
fn lazy_adversary_is_beaten_by_the_active_agent_alone() {
    // Freeze agent 1: agent 0 must find the frozen agent by itself.
    let g = generators::ring(10);
    let out = run_rendezvous(&g, (0, 5), (3, 12), AdversaryKind::LazySecond, 0, 1_000_000);
    assert!(matches!(out.end, RunEnd::Meeting));
    assert_eq!(out.per_agent[1], 0, "the frozen agent never moved");
    assert!(out.per_agent[0] > 0);
}

#[test]
fn eager_adversary_meets_fast() {
    let g = generators::ring(16);
    let eager = run_rendezvous(&g, (0, 8), (2, 7), AdversaryKind::EagerMeet, 3, 1_000_000);
    let greedy = run_rendezvous(&g, (0, 8), (2, 7), AdversaryKind::GreedyAvoid, 3, 1_000_000);
    assert!(matches!(eager.end, RunEnd::Meeting));
    assert!(matches!(greedy.end, RunEnd::Meeting));
    assert!(
        eager.total_traversals <= greedy.total_traversals,
        "eager ({}) should not cost more than greedy-avoid ({})",
        eager.total_traversals,
        greedy.total_traversals
    );
}

#[test]
fn identical_starting_distance_different_labels_still_meet() {
    // Symmetric positions on an even ring: label difference is the only
    // symmetry breaker (the reason labels exist at all).
    let g = generators::ring(12);
    for kind in AdversaryKind::ALL {
        let out = run_rendezvous(&g, (0, 6), (21, 22), kind, 9, 5_000_000);
        assert!(matches!(out.end, RunEnd::Meeting), "{kind}");
    }
}

/// Lemma 3.1: if agent b keeps repeating X(m, v) while agent a follows one
/// entire X(m, u), the agents must meet — under any adversary.
#[test]
fn lemma_3_1_x_repetition_forces_meeting() {
    for (n, seed) in [(6usize, 1u64), (9, 2), (12, 3)] {
        let g = generators::gnp_connected(n, 0.4, seed);
        let m = n as u64; // X(m) is integral for m ≥ n
        for kind in AdversaryKind::ALL {
            let repeater = SpecBehavior::looping(&g, uxs(), NodeId(0), vec![], Spec::X(m));
            let walker = SpecBehavior::new(&g, uxs(), NodeId(n / 2), vec![Spec::X(m); 4]);
            let mut rt = Runtime::new(
                &g,
                vec![repeater, walker],
                RunConfig::rendezvous().with_cutoff(2_000_000),
            );
            let mut adv = kind.build(17);
            let out = rt.run(adv.as_mut());
            assert!(
                matches!(out.end, RunEnd::Meeting),
                "n={n} {kind}: Lemma 3.1 violated (cost {})",
                out.total_traversals
            );
        }
    }
}

/// Lemma 3.1 with Y instead of X (the lemma's closing remark).
#[test]
fn lemma_3_1_holds_for_y_trajectories() {
    let g = generators::ring(7);
    for kind in [AdversaryKind::GreedyAvoid, AdversaryKind::Random] {
        let repeater = SpecBehavior::looping(&g, uxs(), NodeId(0), vec![], Spec::Y(7));
        let walker = SpecBehavior::new(&g, uxs(), NodeId(3), vec![Spec::Y(7); 2]);
        let mut rt = Runtime::new(
            &g,
            vec![repeater, walker],
            RunConfig::rendezvous().with_cutoff(5_000_000),
        );
        let mut adv = kind.build(23);
        let out = rt.run(adv.as_mut());
        assert!(matches!(out.end, RunEnd::Meeting), "{kind}");
    }
}

/// The measured rendezvous cost never exceeds the theoretical bound
/// Π(n, min |L|) — vacuously far below it in practice, but the comparison
/// exercises the bound machinery end to end.
#[test]
fn measured_cost_is_below_pi_bound() {
    let g = generators::ring(6);
    let out = run_rendezvous(&g, (0, 3), (5, 9), AdversaryKind::GreedyAvoid, 5, 5_000_000);
    assert!(matches!(out.end, RunEnd::Meeting));
    let m = Label::new(5).unwrap().bit_length() as u64;
    let bound = rv_core::pi_bound(uxs(), g.order() as u64, m);
    assert!(rv_arith::Big::from(out.total_traversals) < bound);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (graph, labels, starts, adversary seed): rendezvous always
    /// happens under the meeting-avoiding adversary.
    #[test]
    fn random_instances_always_meet(
        n in 4usize..12,
        gseed in any::<u64>(),
        l1 in 1u64..200,
        l2 in 1u64..200,
        aseed in any::<u64>(),
    ) {
        prop_assume!(l1 != l2);
        let g = generators::gnp_connected(n, 0.35, gseed);
        let out = run_rendezvous(
            &g,
            (0, n - 1),
            (l1, l2),
            AdversaryKind::GreedyAvoid,
            aseed,
            5_000_000,
        );
        prop_assert!(matches!(out.end, RunEnd::Meeting));
    }
}
