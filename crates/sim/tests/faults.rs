//! End-to-end fault-injection suite (`rv_sim::fault` through `Runtime`).
//!
//! Two contracts are pinned here:
//!
//! * **Empty plans are free** — installing `FaultPlan::empty()` produces
//!   run fingerprints bit-identical to never touching the fault API, for
//!   every adversary in the suite (RNG streams included).
//! * **Faulted runs never hang** — crash-stop and outage scenarios always
//!   terminate with a *classified* end (`AllCrashed`, `SurvivorsParked`,
//!   a meeting forced on a crashed body, or an outage fast-forward),
//!   never a spin.

use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{generators, GraphFamily, NodeId};
use rv_sim::adversary::{AdversaryKind, RoundRobin};
use rv_sim::{
    CrashFault, FaultPlan, OutageFault, RunConfig, RunEnd, RunOutcome, Runtime, RvBehavior,
    ScriptBehavior,
};

const CUTOFF: u64 = 4_000_000;

/// One rendezvous run with an optional fault plan, rendered as the same
/// fingerprint line as the golden-equivalence suite.
fn run_fingerprint(
    fam: GraphFamily,
    n: usize,
    gseed: u64,
    kind: AdversaryKind,
    aseed: u64,
    plan: Option<FaultPlan>,
) -> String {
    let uxs = SeededUxs::quadratic();
    let g = fam.generate(n, gseed);
    let agents = vec![
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(6).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(g.order() / 2), Label::new(9).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(CUTOFF));
    if let Some(plan) = plan {
        rt.set_fault_plan(plan);
    }
    let mut adv = kind.build(aseed);
    let out = rt.run(adv.as_mut());
    format!(
        "{:?} cost={} actions={} per={:?} meetings={:?}",
        out.end, out.total_traversals, out.actions, out.per_agent, out.meetings
    )
}

/// The golden-equivalence case list (same coverage: every adversary kind,
/// three graph families).
const CASES: [(GraphFamily, usize, u64, AdversaryKind, u64); 12] = [
    (GraphFamily::Ring, 12, 5, AdversaryKind::RoundRobin, 0),
    (GraphFamily::Ring, 12, 5, AdversaryKind::Random, 11),
    (GraphFamily::Ring, 12, 5, AdversaryKind::GreedyAvoid, 7),
    (GraphFamily::Ring, 12, 5, AdversaryKind::EagerMeet, 0),
    (GraphFamily::Gnp, 12, 5, AdversaryKind::RoundRobin, 0),
    (GraphFamily::Gnp, 12, 5, AdversaryKind::Random, 11),
    (GraphFamily::Gnp, 12, 5, AdversaryKind::GreedyAvoid, 7),
    (GraphFamily::Gnp, 12, 5, AdversaryKind::LazySecond, 0),
    (GraphFamily::Lollipop, 12, 5, AdversaryKind::RoundRobin, 0),
    (GraphFamily::Lollipop, 12, 5, AdversaryKind::Random, 11),
    (GraphFamily::Lollipop, 12, 5, AdversaryKind::GreedyAvoid, 7),
    (GraphFamily::Lollipop, 12, 5, AdversaryKind::LazyFirst, 0),
];

/// The acceptance criterion for the fault layer's zero-cost claim:
/// installing the empty plan (which still constructs and consults a
/// `FaultClock` every step — the *stronger* form of the claim) changes no
/// observable bit of any run in the adversary suite.
#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    for &(fam, n, gseed, kind, aseed) in CASES.iter() {
        let bare = run_fingerprint(fam, n, gseed, kind, aseed, None);
        let empty = run_fingerprint(fam, n, gseed, kind, aseed, Some(FaultPlan::empty()));
        assert_eq!(
            bare, empty,
            "FaultPlan::empty() perturbed {fam} n={n} {kind} seed={aseed}"
        );
    }
}

/// Crashing every agent before the first decision classifies as
/// `AllCrashed` immediately — no action taken, no spin.
#[test]
fn all_agents_crashed_classifies_all_crashed() {
    let uxs = SeededUxs::quadratic();
    let g = generators::ring(6);
    let agents = vec![
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(2).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(3), Label::new(5).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(CUTOFF));
    rt.set_fault_plan(FaultPlan::new(
        vec![
            CrashFault {
                at_action: 0,
                agent: 0,
            },
            CrashFault {
                at_action: 0,
                agent: 1,
            },
        ],
        vec![],
        vec![],
    ));
    let out = rt.run(&mut RoundRobin::new());
    assert_eq!(out.end, RunEnd::AllCrashed);
    assert_eq!(out.total_traversals, 0);
    assert_eq!(out.actions, 0);
    assert!(rt.crashed(0) && rt.crashed(1));
}

/// Crash-stop body semantics: a crashed agent stops acting but its body
/// still forces meetings — the survivor's rendezvous trajectory walks
/// into it and the run ends `Meeting`, with the crashed agent at zero
/// traversals.
#[test]
fn crashed_body_still_forces_rendezvous() {
    let uxs = SeededUxs::quadratic();
    let g = generators::ring(6);
    let agents = vec![
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(2).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(3), Label::new(5).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(CUTOFF));
    rt.set_fault_plan(FaultPlan::new(
        vec![CrashFault {
            at_action: 0,
            agent: 1,
        }],
        vec![],
        vec![],
    ));
    let out = rt.run(&mut RoundRobin::new());
    assert_eq!(out.end, RunEnd::Meeting);
    assert_eq!(out.per_agent[1], 0, "crashed agents never traverse");
    let m = out
        .meetings
        .last()
        .expect("rendezvous ended with a meeting");
    assert_eq!(m.agents, vec![0, 1]);
    assert!(rt.crashed(1) && !rt.crashed(0));
}

/// A survivor that parks while a teammate is crashed (and out of reach)
/// classifies as `SurvivorsParked`, not `AllParked`.
#[test]
fn survivor_parking_classifies_survivors_parked() {
    let g = generators::path(3);
    // Agent 0 walks one edge (node 0 → node 1) and parks; agent 1 sleeps
    // at node 2 and is crashed before it can ever wake.
    let agents = vec![
        ScriptBehavior::new(NodeId(0), [0]),
        ScriptBehavior::new(NodeId(2), []),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(CUTOFF));
    rt.set_fault_plan(FaultPlan::new(
        vec![CrashFault {
            at_action: 0,
            agent: 1,
        }],
        vec![],
        vec![],
    ));
    let out = rt.run(&mut RoundRobin::new());
    assert_eq!(out.end, RunEnd::SurvivorsParked);
    assert_eq!(out.per_agent, vec![1, 0]);
}

/// An outage that blocks the only legal move does not hang the run: the
/// action clock fast-forwards to the release and the run completes.
#[test]
fn outage_fast_forwards_instead_of_hanging() {
    let g = generators::path(3);
    // Agent 0 wants the 0–1 edge (downed below); agent 1 wakes at node 2
    // and parks immediately, so once both are awake the outage is the
    // *only* thing between the run and quiescence.
    let agents = vec![
        ScriptBehavior::new(NodeId(0), [0]),
        ScriptBehavior::new(NodeId(2), []),
    ];
    let blocked = g.edge_index_at(NodeId(0), rv_graph::PortId(0));
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(CUTOFF));
    rt.set_fault_plan(FaultPlan::new(
        vec![],
        vec![OutageFault {
            at_action: 0,
            edge_index: blocked,
            duration_actions: 50,
        }],
        vec![],
    ));
    let out = rt.run(&mut RoundRobin::new());
    assert_eq!(out.end, RunEnd::AllParked);
    assert_eq!(
        out.per_agent,
        vec![1, 0],
        "the walk completed after release"
    );
    assert!(
        out.actions >= 50,
        "the clock fast-forwarded past the outage window (actions={})",
        out.actions
    );
}

/// An outage outliving every live agent's options is still terminal when
/// all awake agents are crashed or parked — release times only count for
/// agents that can actually move again.
#[test]
fn outage_on_a_crashed_agent_is_not_a_release() {
    let g = generators::path(3);
    let agents = vec![
        ScriptBehavior::new(NodeId(0), [0]),
        ScriptBehavior::new(NodeId(2), []),
    ];
    let blocked = g.edge_index_at(NodeId(0), rv_graph::PortId(0));
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol().with_cutoff(CUTOFF));
    // Crash the outage-blocked agent right after the two wakes: nothing
    // will ever cross that edge, so the run must classify
    // (SurvivorsParked), not fast-forward towards the distant release.
    rt.set_fault_plan(FaultPlan::new(
        vec![CrashFault {
            at_action: 2,
            agent: 0,
        }],
        vec![OutageFault {
            at_action: 0,
            edge_index: blocked,
            duration_actions: u64::MAX - 1,
        }],
        vec![],
    ));
    let out = rt.run(&mut RoundRobin::new());
    assert_eq!(out.end, RunEnd::SurvivorsParked);
    assert_eq!(out.total_traversals, 0);
    assert!(
        out.actions < 10,
        "no fast-forward happened: {}",
        out.actions
    );
}

/// Log-loss semantics: the meeting still *happens* (participants served,
/// rendezvous still ends `Meeting` at the same action) but the durable
/// log misses the append.
#[test]
fn log_loss_drops_the_append_but_not_the_meeting() {
    let run = |plan: Option<FaultPlan>| -> RunOutcome {
        let uxs = SeededUxs::quadratic();
        let g = GraphFamily::Ring.generate(12, 5);
        let agents = vec![
            RvBehavior::new(&g, uxs, NodeId(0), Label::new(6).unwrap()),
            RvBehavior::new(&g, uxs, NodeId(6), Label::new(9).unwrap()),
        ];
        let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(CUTOFF));
        if let Some(plan) = plan {
            rt.set_fault_plan(plan);
        }
        rt.run(&mut RoundRobin::new())
    };
    let clean = run(None);
    assert_eq!(clean.end, RunEnd::Meeting);
    let meeting_action = clean
        .meetings
        .last()
        .expect("clean run logged its meeting")
        .at_action;
    let lossy = run(Some(FaultPlan::new(vec![], vec![], vec![meeting_action])));
    assert_eq!(lossy.end, RunEnd::Meeting, "the meeting still happened");
    assert_eq!(lossy.actions, clean.actions, "same trajectory, same clock");
    assert!(
        lossy.meetings.is_empty(),
        "the lossy append must not reach the log"
    );
}

/// Seeded plans honour their profile bounds and at-most-one-crash-per-
/// agent canonicalisation when driven through a real runtime: the run
/// terminates classified under an aggressive seeded plan.
#[test]
fn seeded_plans_terminate_classified() {
    let uxs = SeededUxs::quadratic();
    let g = GraphFamily::Ring.generate(8, 3);
    for seed in 0..24u64 {
        let plan = FaultPlan::seeded(
            seed,
            &rv_sim::FaultProfile {
                horizon_actions: 200,
                agents: 2,
                edges: g.size(),
                crashes: 2,
                outages: 3,
                max_outage_actions: 64,
                log_losses: 2,
            },
        );
        let agents = vec![
            RvBehavior::new(&g, uxs, NodeId(0), Label::new(6).unwrap()),
            RvBehavior::new(&g, uxs, NodeId(4), Label::new(9).unwrap()),
        ];
        let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(100_000));
        rt.set_fault_plan(plan);
        let out = rt.run(&mut RoundRobin::new());
        assert!(
            matches!(
                out.end,
                RunEnd::Meeting | RunEnd::Cutoff | RunEnd::AllCrashed | RunEnd::SurvivorsParked
            ),
            "seed {seed} ended unclassified: {:?}",
            out.end
        );
    }
}

/// Snapshot/restore composes with an installed plan: restoring to an
/// earlier action rewinds the fault clock too, so the restored run
/// replays crashes deterministically and lands on the same outcome.
#[test]
fn snapshot_restore_replays_faults_deterministically() {
    let uxs = SeededUxs::quadratic();
    let g = generators::ring(6);
    let make = || {
        vec![
            RvBehavior::new(&g, uxs, NodeId(0), Label::new(2).unwrap()),
            RvBehavior::new(&g, uxs, NodeId(3), Label::new(5).unwrap()),
        ]
    };
    let plan = FaultPlan::new(
        vec![CrashFault {
            at_action: 7,
            agent: 1,
        }],
        vec![],
        vec![],
    );
    let mut rt = Runtime::new(&g, make(), RunConfig::rendezvous().with_cutoff(CUTOFF));
    rt.set_fault_plan(plan.clone());
    let baseline = rt.run(&mut RoundRobin::new());

    let mut rt = Runtime::new(&g, make(), RunConfig::rendezvous().with_cutoff(CUTOFF));
    rt.set_fault_plan(plan);
    let early = rt.snapshot();
    let first = rt.run(&mut RoundRobin::new());
    rt.restore(&early);
    let replay = rt.run(&mut RoundRobin::new());
    for out in [&first, &replay] {
        assert_eq!(out.end, baseline.end);
        assert_eq!(out.actions, baseline.actions);
        assert_eq!(out.total_traversals, baseline.total_traversals);
        assert_eq!(out.per_agent, baseline.per_agent);
    }
}
