//! Determinism and bookkeeping invariants of the scheduler runtime.

use proptest::prelude::*;
use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{generators, NodeId};
use rv_sim::adversary::{AdversaryKind, RandomAdversary};
use rv_sim::{Place, RunConfig, RunEnd, Runtime, RvBehavior};

fn outcome_fingerprint(seed: u64, aseed: u64) -> (RunEnd, u64, Vec<u64>, usize) {
    let g = generators::gnp_connected(8, 0.4, seed);
    let uxs = SeededUxs::quadratic();
    let agents = vec![
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(5).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(7), Label::new(11).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous());
    let out = rt.run(&mut RandomAdversary::new(aseed));
    (
        out.end,
        out.total_traversals,
        out.per_agent.clone(),
        out.meetings.len(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical (graph seed, adversary seed) → identical runs, bit for bit.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), aseed in any::<u64>()) {
        prop_assert_eq!(outcome_fingerprint(seed, aseed), outcome_fingerprint(seed, aseed));
    }

    /// Per-agent traversal counts always sum to the total.
    #[test]
    fn per_agent_costs_sum_to_total(seed in any::<u64>(), aseed in any::<u64>()) {
        let (_, total, per_agent, _) = outcome_fingerprint(seed, aseed);
        prop_assert_eq!(per_agent.iter().sum::<u64>(), total);
    }

    /// On every state reachable by a random schedule, the buffer-reusing
    /// `legal_choices_into` produces exactly what the allocating
    /// `legal_choices` returns — even into a dirty buffer.
    #[test]
    fn legal_choices_into_matches_legal_choices(seed in any::<u64>(), aseed in any::<u64>()) {
        let g = generators::gnp_connected(8, 0.4, seed);
        let uxs = SeededUxs::quadratic();
        let agents = vec![
            RvBehavior::new(&g, uxs, NodeId(0), Label::new(5).unwrap()),
            RvBehavior::new(&g, uxs, NodeId(7), Label::new(11).unwrap()),
        ];
        let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous());
        let mut adv = RandomAdversary::new(aseed);
        let mut buf = Vec::new();
        let mut meetings = Vec::new();
        for step in 0..200 {
            let fresh = rt.legal_choices();
            rt.legal_choices_into(&mut buf); // not cleared between steps
            prop_assert_eq!(&buf, &fresh, "divergence at step {}", step);
            if fresh.is_empty() {
                break;
            }
            use rv_sim::adversary::Adversary;
            meetings.clear();
            rt.apply_into(adv.choose(&fresh, step as u64), &mut meetings);
            if !meetings.is_empty() {
                break;
            }
        }
    }
}

#[test]
fn cutoff_is_respected_exactly() {
    let g = generators::ring(6);
    let uxs = SeededUxs::quadratic();
    let agents = vec![
        // Labels chosen so round-robin lockstep delays the meeting long
        // enough to hit a tiny cutoff.
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(6).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(3), Label::new(9).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(10));
    let mut adv = AdversaryKind::GreedyAvoid.build(3);
    let out = rt.run(adv.as_mut());
    match out.end {
        RunEnd::Cutoff => assert!(out.total_traversals >= 10),
        RunEnd::Meeting => assert!(out.total_traversals <= 10),
        other => panic!("plain RV runs end at a meeting or the cutoff, not {other:?}"),
    }
}

#[test]
fn positions_track_places_consistently() {
    let g = generators::ring(5);
    let uxs = SeededUxs::quadratic();
    let agents = vec![
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(2).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(2), Label::new(3).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(100));
    // Before any action: both asleep at their start nodes.
    assert_eq!(rt.place(0), Place::AtNode(NodeId(0)));
    assert_eq!(rt.place(1), Place::AtNode(NodeId(2)));
    assert_eq!(rt.total_traversals(), 0);
    let mut adv = AdversaryKind::Random.build(9);
    let _ = rt.run(adv.as_mut());
    // After the run, every agent is somewhere legal.
    for i in 0..rt.agent_count() {
        match rt.place(i) {
            Place::AtNode(v) => assert!(v.0 < g.order()),
            Place::Inside { edge, from, to } => {
                assert_eq!(edge, rv_graph::EdgeId::new(from, to));
            }
        }
    }
}

#[test]
fn meetings_report_monotone_costs_and_valid_participants() {
    let g = generators::gnp_connected(9, 0.4, 4);
    let uxs = SeededUxs::quadratic();
    let agents = vec![
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(4).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(8), Label::new(13).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous());
    let mut adv = AdversaryKind::EagerMeet.build(0);
    let out = rt.run(adv.as_mut());
    let mut prev = 0;
    for m in &out.meetings {
        assert!(m.at_cost >= prev, "meeting costs are non-decreasing");
        prev = m.at_cost;
        assert!(m.agents.len() >= 2);
        assert!(m.agents.iter().all(|&a| a < 2));
    }
}
