//! Soundness of the forced-meeting rules (DESIGN.md §2.1), exercised with
//! scripted agents on hand-built graphs.

use rv_graph::{generators, EdgeId, NodeId};
use rv_sim::adversary::{Adversary, GreedyAvoid};
use rv_sim::{ActionKind, Choice, ChoiceInfo, MeetingPlace, RunConfig, Runtime, ScriptBehavior};

/// A scripted adversary replaying a fixed action list (panics if illegal).
#[allow(dead_code)] // scaffold for hand-scripted schedules
struct Scripted(Vec<Choice>, usize);

impl Adversary for Scripted {
    fn choose(&mut self, choices: &[ChoiceInfo], _tick: u64) -> Choice {
        let c = self.0[self.1];
        self.1 += 1;
        assert!(
            choices.iter().any(|ci| ci.choice == c),
            "scripted choice {c:?} illegal among {choices:?}"
        );
        c
    }
}

fn wake(agent: usize) -> Choice {
    Choice {
        agent,
        kind: ActionKind::Wake,
    }
}
fn start(agent: usize) -> Choice {
    Choice {
        agent,
        kind: ActionKind::Start,
    }
}
fn finish(agent: usize) -> Choice {
    Choice {
        agent,
        kind: ActionKind::Finish,
    }
}

/// Opposite-direction co-occupancy forces a meeting, declared at the
/// second Start, inside the edge.
#[test]
fn opposite_directions_meet_inside_edge() {
    // Path 0-1: agent A at 0 goes right; agent B at 1 goes left.
    let g = generators::path(2);
    let agents = vec![
        ScriptBehavior::new(NodeId(0), [0]),
        ScriptBehavior::new(NodeId(1), [0]),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous());
    for c in [wake(0), wake(1), start(0)] {
        assert!(rt.apply(c).is_empty());
    }
    let meetings = rt.apply(start(1));
    assert_eq!(meetings.len(), 1);
    assert_eq!(meetings[0].agents, vec![0, 1]);
    assert_eq!(
        meetings[0].place,
        MeetingPlace::Edge(EdgeId::new(NodeId(0), NodeId(1)))
    );
}

/// Same-direction co-occupancy alone does NOT force a meeting; the
/// follower finishing first (overtaking) does.
#[test]
fn same_direction_overtake_meets_but_gap_does_not() {
    // Ring of 3; both agents traverse edge 1→2 (port towards 2).
    let g = generators::ring(3);
    let p12 = g.port_towards(NodeId(1), NodeId(2)).unwrap().0;
    let p01 = g.port_towards(NodeId(0), NodeId(1)).unwrap().0;
    // Agent A starts at 1 and goes to 2. Agent B starts at 0, comes to 1,
    // then follows into the same edge.
    let agents = vec![
        ScriptBehavior::new(NodeId(1), [p12]),
        ScriptBehavior::new(NodeId(0), [p01, p12]),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol());
    for c in [wake(1), wake(0)] {
        rt.apply(c);
    }
    // B walks 0→1. A is still at node 1 → node-contact meeting there.
    rt.apply(start(1));
    let m = rt.apply(finish(1));
    assert_eq!(m.len(), 1, "B arrives at node 1 where A stands");
    // A enters edge 1→2; B follows (same direction): no forced meeting.
    assert!(rt.apply(start(0)).is_empty());
    assert!(
        rt.apply(start(1)).is_empty(),
        "same direction entry is safe"
    );
    // B (entered second) finishes first: it must overtake A → meeting.
    let m = rt.apply(finish(1));
    assert_eq!(m.len(), 1);
    assert_eq!(
        m[0].place,
        MeetingPlace::Edge(EdgeId::new(NodeId(1), NodeId(2)))
    );
    // A then finishes; B is at node 2 → node meeting.
    let m = rt.apply(finish(0));
    assert_eq!(m.len(), 1);
    assert_eq!(m[0].place, MeetingPlace::Node(NodeId(2)));
}

/// FIFO order: the agent that entered first may finish first without any
/// meeting.
#[test]
fn same_direction_fifo_exit_is_meeting_free() {
    let g = generators::ring(3);
    let p12 = g.port_towards(NodeId(1), NodeId(2)).unwrap().0;
    let p01 = g.port_towards(NodeId(0), NodeId(1)).unwrap().0;
    let agents = vec![
        ScriptBehavior::new(
            NodeId(1),
            [p12, g.port_towards(NodeId(2), NodeId(0)).unwrap().0],
        ),
        ScriptBehavior::new(NodeId(0), [p01, p12]),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol());
    for c in [wake(0), wake(1), start(0)] {
        rt.apply(c);
    }
    // A (agent 0) enters 1→2 first and leaves; B enters after A started.
    rt.apply(start(1)); // B starts 0→1
    assert!(rt.apply(finish(0)).is_empty(), "front agent exits cleanly");
    // B arrives at 1 (A has left node 2... node 1 empty) — no meeting.
    assert!(rt.apply(finish(1)).is_empty());
}

/// A traversal into a node holding a sleeping agent wakes it and meets it.
#[test]
fn visiting_a_dormant_agent_wakes_and_meets_it() {
    let g = generators::path(2);
    let agents = vec![
        ScriptBehavior::new(NodeId(0), [0]),
        ScriptBehavior::new(NodeId(1), [0]),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous());
    rt.apply(wake(0));
    rt.apply(start(0));
    let m = rt.apply(finish(0));
    assert_eq!(
        m.len(),
        1,
        "arrival at the dormant agent's node is a meeting"
    );
    assert_eq!(m[0].place, MeetingPlace::Node(NodeId(1)));
}

/// The greedy-avoid adversary postpones the avoidable meeting but the
/// engine still reports the unavoidable one on a two-node path.
#[test]
fn greedy_avoid_cannot_escape_on_path2() {
    let g = generators::path(2);
    let agents = vec![
        ScriptBehavior::new(NodeId(0), [0, 0, 0]),
        ScriptBehavior::new(NodeId(1), [0, 0, 0]),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous());
    let out = rt.run(&mut GreedyAvoid::new(7));
    assert!(matches!(out.end, rv_sim::RunEnd::Meeting));
}

/// Cost accounting: traversals count on Finish only, per agent and total.
#[test]
fn cost_counts_completed_traversals() {
    let g = generators::ring(4);
    let agents = vec![
        ScriptBehavior::new(NodeId(0), [0, 0]),
        ScriptBehavior::new(NodeId(2), []),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol());
    rt.apply(wake(0));
    rt.apply(wake(1));
    rt.apply(start(0));
    assert_eq!(rt.total_traversals(), 0, "starting is not a traversal");
    rt.apply(finish(0));
    assert_eq!(rt.total_traversals(), 1);
    assert_eq!(rt.traversals(0), 1);
    assert_eq!(rt.traversals(1), 0);
}

/// With everyone parked the run ends as AllParked.
#[test]
fn all_parked_terminates_run() {
    let g = generators::ring(4);
    let agents = vec![
        ScriptBehavior::new(NodeId(0), [0]),
        ScriptBehavior::new(NodeId(2), []),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::protocol());
    let out = rt.run(&mut rv_sim::adversary::RoundRobin::new());
    assert!(matches!(out.end, rv_sim::RunEnd::AllParked));
    assert_eq!(out.total_traversals, 1);
}

#[test]
#[should_panic(expected = "distinct nodes")]
fn duplicate_start_nodes_are_rejected() {
    let g = generators::ring(4);
    let agents = vec![
        ScriptBehavior::new(NodeId(0), [0]),
        ScriptBehavior::new(NodeId(0), [0]),
    ];
    let _ = Runtime::new(&g, agents, RunConfig::protocol());
}
