//! Property suite for the serde-wire persistence layer (`rv_sim::wire`):
//! a mid-run checkpoint that crosses the wire — snapshot to JSON and
//! back, adversary RNG state as a decimal string — must resume
//! **bit-identically** to both the uninterrupted run and an in-memory
//! `restore`, whatever the instance and wherever the cut lands.
//!
//! This is the durable-sweep checkpointer's correctness contract: a
//! SIGKILL between any two actions loses nothing but wall-clock time.

use proptest::prelude::*;
use rv_graph::{generators, NodeId};
use rv_sim::adversary::GreedyAvoid;
use rv_sim::wire::{decode_script, encode_script, SnapshotWire};
use rv_sim::{RunConfig, Runtime, RuntimeSnapshot, ScriptBehavior};

/// Runs the remainder of a protocol-mode run and fingerprints every
/// observable field of the outcome.
fn finish(
    g: &rv_graph::Graph,
    snap: &RuntimeSnapshot<ScriptBehavior>,
    adv: &mut GreedyAvoid,
) -> String {
    let mut rt = Runtime::from_snapshot(g, snap, RunConfig::protocol());
    let out = rt.run(adv);
    format!(
        "{:?} cost={} actions={} per={:?} meetings={:?} rng={}",
        out.end,
        out.total_traversals,
        out.actions,
        out.per_agent,
        out.meetings,
        adv.rng_state()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full checkpoint cycle — runtime snapshot through
    /// `SnapshotWire` JSON, adversary RNG state through its decimal
    /// string — resumes bit-identically to the in-memory restore, on a
    /// random instance cut at a random point mid-run.
    #[test]
    fn wire_checkpoint_resumes_bit_identically(
        n in 4usize..9,
        offset in 1usize..8,
        len_a in 3usize..10,
        len_b in 3usize..10,
        seed in any::<u64>(),
        prefix in 0u64..24,
    ) {
        let g = generators::ring(n);
        let offset = 1 + (offset % (n - 1)); // distinct start nodes
        // Scripts over ring ports {0, 1}: deterministic walks with
        // plenty of crossings for GreedyAvoid to dodge.
        let scripts = |salt: u64, len: usize| -> Vec<usize> {
            (0..len).map(|i| ((salt >> (i % 61)) & 1) as usize).collect()
        };
        let behaviors = vec![
            ScriptBehavior::new(NodeId(0), scripts(seed, len_a)),
            ScriptBehavior::new(NodeId(offset), scripts(seed.rotate_left(13), len_b)),
        ];
        let mut rt = Runtime::new(&g, behaviors, RunConfig::protocol());
        let mut adv = GreedyAvoid::new(seed);

        // Drive a prefix; stop early if the run finishes first.
        let mut meetings = Vec::new();
        for _ in 0..prefix {
            if rt.step(&mut adv, &mut meetings).is_some() {
                break;
            }
        }

        // The checkpoint: snapshot + RNG state, both through their wire
        // encodings. The RNG state is a raw u64 and must survive as a
        // decimal *string* (serde_json's f64 path would corrupt it).
        let snap = rt.snapshot();
        let json = SnapshotWire::from_snapshot(&snap, encode_script).to_json();
        let rng_wire = adv.rng_state().to_string();

        let rebuilt = SnapshotWire::from_json(&json)
            .expect("rendered wire must parse")
            .into_snapshot(&g, decode_script)
            .expect("wire must rebuild over the same graph");
        let mut adv_rebuilt = GreedyAvoid::from_rng_state(
            rng_wire.parse::<u64>().expect("decimal u64 string"),
        );

        let mut adv_mem = adv.clone();
        let in_memory = finish(&g, &snap, &mut adv_mem);
        let from_wire = finish(&g, &rebuilt, &mut adv_rebuilt);
        prop_assert_eq!(
            &from_wire, &in_memory,
            "wire checkpoint diverged from the in-memory restore"
        );

        // And the uninterrupted original agrees too (the snapshot detour
        // is invisible).
        let continued = finish(&g, &rt.snapshot(), &mut adv);
        prop_assert_eq!(&continued, &in_memory, "snapshot detour was visible");
    }

    /// RNG states round-trip exactly through the decimal-string wire
    /// encoding across the full u64 range — including values at and
    /// above 2^53, where a JSON-number path would silently round.
    #[test]
    fn rng_state_strings_are_exact_at_full_width(state in any::<u64>()) {
        let adv = GreedyAvoid::from_rng_state(state);
        let wire = adv.rng_state().to_string();
        let back = GreedyAvoid::from_rng_state(wire.parse::<u64>().unwrap());
        prop_assert_eq!(back.rng_state(), state);
        // Draw both streams forward: identical continuations.
        let mut a = adv;
        let mut b = back;
        let g = generators::ring(5);
        let behaviors = vec![
            ScriptBehavior::new(NodeId(0), [0, 1, 0, 1]),
            ScriptBehavior::new(NodeId(2), [1, 0, 1, 0]),
        ];
        let mut rt = Runtime::new(&g, behaviors, RunConfig::protocol());
        let snap = rt.snapshot();
        let one = {
            let out = rt.run(&mut a);
            format!("{:?} {} {}", out.end, out.actions, a.rng_state())
        };
        let two = {
            let mut rt = Runtime::from_snapshot(&g, &snap, RunConfig::protocol());
            let out = rt.run(&mut b);
            format!("{:?} {} {}", out.end, out.actions, b.rng_state())
        };
        prop_assert_eq!(one, two);
    }
}
