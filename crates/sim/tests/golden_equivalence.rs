//! Golden-equivalence suite for the CSR + dense-occupancy refactor.
//!
//! The constants below were captured from the pre-CSR seed implementation
//! (`HashMap<EdgeId, EdgeOcc>` occupancy over `Vec<Vec<…>>` adjacency);
//! the refactored runtime must be bit-for-bit identical in every observable
//! outcome: `RunEnd`, total/per-agent traversal counts, action counts, the
//! full meeting list, and the exact traversal streams of the cursor.
//!
//! To re-capture after an *intentional* semantic change, run
//! `cargo test -p rv_sim --test golden_equivalence -- --ignored --nocapture`
//! and paste the printed table over `GOLDEN`.

use proptest::prelude::*;
use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{GraphFamily, NodeId};
use rv_sim::adversary::{
    Adversary, AdversaryKind, EagerMeet, GreedyAvoid, Lazy, RandomAdversary, RoundRobin,
};
use rv_sim::{RunConfig, Runtime, RvBehavior};
use rv_trajectory::{Spec, TrajectoryCursor};

const CUTOFF: u64 = 4_000_000;

/// FNV-1a-style byte-stream mix (FNV-64 offset basis, 32-bit FNV prime —
/// not the standard 64-bit prime; do NOT "fix" the constant, the GOLDEN
/// values below were captured with exactly this function).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
    fn write_usize(&mut self, x: usize) {
        self.write(&(x as u64).to_le_bytes());
    }
}

/// One rendezvous run under a fixed adversary, rendered as a stable
/// fingerprint line covering every observable field of the outcome.
fn run_fingerprint(
    fam: GraphFamily,
    n: usize,
    gseed: u64,
    kind: AdversaryKind,
    aseed: u64,
) -> String {
    let uxs = SeededUxs::quadratic();
    let g = fam.generate(n, gseed);
    let agents = vec![
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(6).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(g.order() / 2), Label::new(9).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(CUTOFF));
    let mut adv = kind.build(aseed);
    let out = rt.run(adv.as_mut());
    format!(
        "{:?} cost={} actions={} per={:?} meetings={:?}",
        out.end, out.total_traversals, out.actions, out.per_agent, out.meetings
    )
}

/// Streams `spec` for up to `steps` traversals and fingerprints the exact
/// (from, exit, to, entry) sequence plus the final position.
fn cursor_fingerprint(fam: GraphFamily, n: usize, gseed: u64, spec: Spec, steps: u64) -> u64 {
    let uxs = SeededUxs::quadratic();
    let g = fam.generate(n, gseed);
    let mut c = TrajectoryCursor::new(&g, uxs, NodeId(0));
    c.push(spec);
    let mut h = Fnv::new();
    for _ in 0..steps {
        match c.next_traversal() {
            None => break,
            Some(t) => {
                h.write_usize(t.from.0);
                h.write_usize(t.exit.0);
                h.write_usize(t.to.0);
                h.write_usize(t.entry.0);
            }
        }
    }
    h.write_usize(c.position().0);
    h.write(&c.steps().to_le_bytes());
    h.0
}

const RUN_CASES: [(GraphFamily, usize, u64, AdversaryKind, u64); 12] = [
    (GraphFamily::Ring, 12, 5, AdversaryKind::RoundRobin, 0),
    (GraphFamily::Ring, 12, 5, AdversaryKind::Random, 11),
    (GraphFamily::Ring, 12, 5, AdversaryKind::GreedyAvoid, 7),
    (GraphFamily::Ring, 12, 5, AdversaryKind::EagerMeet, 0),
    (GraphFamily::Gnp, 12, 5, AdversaryKind::RoundRobin, 0),
    (GraphFamily::Gnp, 12, 5, AdversaryKind::Random, 11),
    (GraphFamily::Gnp, 12, 5, AdversaryKind::GreedyAvoid, 7),
    (GraphFamily::Gnp, 12, 5, AdversaryKind::LazySecond, 0),
    (GraphFamily::Lollipop, 12, 5, AdversaryKind::RoundRobin, 0),
    (GraphFamily::Lollipop, 12, 5, AdversaryKind::Random, 11),
    (GraphFamily::Lollipop, 12, 5, AdversaryKind::GreedyAvoid, 7),
    (GraphFamily::Lollipop, 12, 5, AdversaryKind::LazyFirst, 0),
];

const CURSOR_CASES: [(GraphFamily, usize, u64, Spec, u64); 3] = [
    (GraphFamily::Ring, 12, 5, Spec::Y(3), 50_000),
    (GraphFamily::Gnp, 16, 9, Spec::B(8), 50_000),
    (GraphFamily::Lollipop, 12, 5, Spec::A(2), 50_000),
];

/// Captured from the seed implementation — see module docs.
const GOLDEN_RUNS: [&str; 12] = [
    "Meeting cost=54 actions=110 per=[27, 27] meetings=[Meeting { agents: [0, 1], place: Node(NodeId(9)), at_cost: 54, at_action: 110 }]",
    "Meeting cost=59 actions=122 per=[34, 25] meetings=[Meeting { agents: [0, 1], place: Edge(EdgeId { a: NodeId(7), b: NodeId(8) }), at_cost: 59, at_action: 122 }]",
    "Meeting cost=57 actions=118 per=[31, 26] meetings=[Meeting { agents: [0, 1], place: Edge(EdgeId { a: NodeId(8), b: NodeId(9) }), at_cost: 57, at_action: 118 }]",
    "Meeting cost=53 actions=110 per=[27, 26] meetings=[Meeting { agents: [0, 1], place: Edge(EdgeId { a: NodeId(8), b: NodeId(9) }), at_cost: 53, at_action: 110 }]",
    "Meeting cost=14 actions=30 per=[7, 7] meetings=[Meeting { agents: [0, 1], place: Node(NodeId(3)), at_cost: 14, at_action: 30 }]",
    "Meeting cost=47 actions=96 per=[26, 21] meetings=[Meeting { agents: [0, 1], place: Node(NodeId(11)), at_cost: 47, at_action: 96 }]",
    "Meeting cost=13 actions=30 per=[6, 7] meetings=[Meeting { agents: [0, 1], place: Edge(EdgeId { a: NodeId(3), b: NodeId(8) }), at_cost: 13, at_action: 30 }]",
    "Meeting cost=24 actions=49 per=[24, 0] meetings=[Meeting { agents: [0, 1], place: Node(NodeId(6)), at_cost: 24, at_action: 49 }]",
    "Meeting cost=2 actions=6 per=[1, 1] meetings=[Meeting { agents: [0, 1], place: Node(NodeId(5)), at_cost: 2, at_action: 6 }]",
    "Meeting cost=2 actions=6 per=[1, 1] meetings=[Meeting { agents: [0, 1], place: Node(NodeId(5)), at_cost: 2, at_action: 6 }]",
    "Meeting cost=28 actions=58 per=[17, 11] meetings=[Meeting { agents: [0, 1], place: Node(NodeId(2)), at_cost: 28, at_action: 58 }]",
    "Meeting cost=4 actions=9 per=[0, 4] meetings=[Meeting { agents: [0, 1], place: Node(NodeId(0)), at_cost: 4, at_action: 9 }]",
];

/// Captured from the seed implementation — see module docs.
const GOLDEN_CURSORS: [u64; 3] = [0x40c8887426cfba35, 0x6ceaa7ecb7a77d4e, 0x1668da4b08c4f477];

#[test]
fn run_outcomes_match_seed_implementation() {
    for (i, &(fam, n, gseed, kind, aseed)) in RUN_CASES.iter().enumerate() {
        let got = run_fingerprint(fam, n, gseed, kind, aseed);
        assert_eq!(
            got, GOLDEN_RUNS[i],
            "outcome drifted from the seed implementation: {fam} n={n} {kind} seed={aseed}"
        );
    }
}

#[test]
fn cursor_streams_match_seed_implementation() {
    for (i, &(fam, n, gseed, spec, steps)) in CURSOR_CASES.iter().enumerate() {
        let got = cursor_fingerprint(fam, n, gseed, spec, steps);
        assert_eq!(
            got, GOLDEN_CURSORS[i],
            "traversal stream drifted from the seed implementation: {fam} n={n} {spec}"
        );
    }
}

/// The exhaustive minimax search enumerates the same schedule tree before
/// and after the refactor (incremental deepening + parallel root fan-out
/// must not change the explored leaf set or the aggregate result).
fn minimax_fingerprint(max_actions: usize) -> String {
    let uxs = SeededUxs::quadratic();
    let g = rv_graph::generators::path(3);
    let res = rv_sim::minimax::exhaustive_worst_case(
        &g,
        || {
            vec![
                RvBehavior::new(&g, uxs, NodeId(0), Label::new(1).unwrap()),
                RvBehavior::new(&g, uxs, NodeId(2), Label::new(2).unwrap()),
            ]
        },
        max_actions,
    );
    format!(
        "max={:?} avoids={} schedules={}",
        res.max_meeting_cost, res.some_schedule_avoids, res.schedules_explored
    )
}

const MINIMAX_CASES: [usize; 3] = [6, 10, 12];

/// Captured from the seed implementation — see module docs.
const GOLDEN_MINIMAX: [&str; 3] = [
    "max=Some(2) avoids=true schedules=64",
    "max=Some(4) avoids=true schedules=724",
    "max=Some(4) avoids=true schedules=2236",
];

#[test]
fn minimax_results_match_seed_implementation() {
    for (i, &depth) in MINIMAX_CASES.iter().enumerate() {
        assert_eq!(
            minimax_fingerprint(depth),
            GOLDEN_MINIMAX[i],
            "minimax drifted from the seed implementation at depth {depth}"
        );
    }
}

/// Action count of golden run `i`, parsed from its fingerprint — used to
/// place the snapshot detour strictly mid-run.
fn golden_actions(i: usize) -> u64 {
    GOLDEN_RUNS[i]
        .split("actions=")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("golden fingerprints carry actions=N")
}

/// Replays golden run case `i` with a snapshot/restore detour after
/// `split` adversary actions: steps the run manually (mirroring
/// `Runtime::run`) to the split point, freezes a [`rv_sim::RuntimeSnapshot`]
/// and forks the adversary, then finishes **both** continuations — the
/// original runtime with the original adversary, and a fresh
/// `Runtime::from_snapshot` with the forked adversary. Returns both final
/// fingerprints; snapshot fidelity means each is bit-identical to the
/// uninterrupted golden fingerprint (including the `GreedyAvoid` /
/// `RandomAdversary` RNG streams, which the fork must capture mid-stream).
fn detour_fingerprints(i: usize, split: u64) -> (String, String) {
    fn go<A: Adversary + Clone>(
        fam: GraphFamily,
        n: usize,
        gseed: u64,
        mut adv: A,
        split: u64,
    ) -> (String, String) {
        let uxs = SeededUxs::quadratic();
        let g = fam.generate(n, gseed);
        let config = RunConfig::rendezvous().with_cutoff(CUTOFF);
        let agents = vec![
            RvBehavior::new(&g, uxs, NodeId(0), Label::new(6).unwrap()),
            RvBehavior::new(&g, uxs, NodeId(g.order() / 2), Label::new(9).unwrap()),
        ];
        let mut rt = Runtime::new(&g, agents, config);
        // Manual prefix via `Runtime::step` — `run()`'s own loop body, so
        // the prefix is decision-for-decision identical by construction.
        let mut meetings = Vec::new();
        for _ in 0..split {
            let end = rt.step(&mut adv, &mut meetings);
            assert!(end.is_none(), "split is strictly mid-run (got {end:?})");
        }
        let snap = rt.snapshot();
        let mut forked_adv = adv.clone();
        let fingerprint = |rt: &mut Runtime<RvBehavior<SeededUxs>>, adv: &mut A| {
            let out = rt.run(adv);
            format!(
                "{:?} cost={} actions={} per={:?} meetings={:?}",
                out.end, out.total_traversals, out.actions, out.per_agent, out.meetings
            )
        };
        let continued = fingerprint(&mut rt, &mut adv);
        let mut restored = Runtime::from_snapshot(&g, &snap, config);
        let resumed = fingerprint(&mut restored, &mut forked_adv);
        (continued, resumed)
    }

    let (fam, n, gseed, kind, aseed) = RUN_CASES[i];
    match kind {
        AdversaryKind::RoundRobin => go(fam, n, gseed, RoundRobin::new(), split),
        AdversaryKind::Random => go(fam, n, gseed, RandomAdversary::new(aseed), split),
        AdversaryKind::LazyFirst => go(fam, n, gseed, Lazy::new(0), split),
        AdversaryKind::LazySecond => go(fam, n, gseed, Lazy::new(1), split),
        AdversaryKind::GreedyAvoid => go(fam, n, gseed, GreedyAvoid::new(aseed), split),
        AdversaryKind::EagerMeet => go(fam, n, gseed, EagerMeet::new(), split),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot fidelity against the golden suite: interrupting any golden
    /// run at any mid-run action with `restore(snapshot())` — continuing
    /// both the original and the restored copy — produces run fingerprints
    /// bit-identical to the uninterrupted golden run, adversary RNG
    /// streams included.
    #[test]
    fn snapshot_restore_detour_is_invisible(case in 0usize..12, salt in any::<u64>()) {
        // Interrupt strictly before the final (meeting) action.
        let split = salt % golden_actions(case).max(1);
        let (continued, resumed) = detour_fingerprints(case, split);
        prop_assert_eq!(continued.as_str(), GOLDEN_RUNS[case],
            "continuing past a snapshot diverged (case {}, split {})", case, split);
        prop_assert_eq!(resumed.as_str(), GOLDEN_RUNS[case],
            "restoring a snapshot diverged (case {}, split {})", case, split);
    }
}

/// Replays golden run case `i` under a stop policy instead of a plain
/// `run()` and returns the fingerprint.
fn policy_fingerprint(i: usize, policy: &mut dyn rv_sim::StopPolicy) -> String {
    let (fam, n, gseed, kind, aseed) = RUN_CASES[i];
    let uxs = SeededUxs::quadratic();
    let g = fam.generate(n, gseed);
    let agents = vec![
        RvBehavior::new(&g, uxs, NodeId(0), Label::new(6).unwrap()),
        RvBehavior::new(&g, uxs, NodeId(g.order() / 2), Label::new(9).unwrap()),
    ];
    let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous().with_cutoff(CUTOFF));
    let mut adv = kind.build(aseed);
    let out = rt.run_with_policy(adv.as_mut(), policy);
    format!(
        "{:?} cost={} actions={} per={:?} meetings={:?}",
        out.end, out.total_traversals, out.actions, out.per_agent, out.meetings
    )
}

/// The stop-policy contract on converging runs: a detector may change
/// *when* a non-converging run stops, never *what* a converging run
/// computes. Every golden case converges, so running it under the
/// divergence detector — alone, chained with a policy-level cutoff, or
/// with the census-based quiescence check — must reproduce the golden
/// fingerprint bit for bit, adversary RNG streams included.
#[test]
fn detector_enabled_runs_match_golden_fingerprints() {
    use rv_sim::{and_then, DivergenceDetector, EarlyQuiescence, FixedCutoff};
    for (i, golden) in GOLDEN_RUNS.iter().enumerate() {
        let mut detector = DivergenceDetector::default();
        assert_eq!(
            policy_fingerprint(i, &mut detector),
            *golden,
            "divergence detector changed converging case {i}"
        );
        let mut chained = and_then(
            EarlyQuiescence,
            and_then(DivergenceDetector::default(), FixedCutoff::new(CUTOFF)),
        );
        assert_eq!(
            policy_fingerprint(i, &mut chained),
            *golden,
            "chained policies changed converging case {i}"
        );
    }
}

/// A policy-level [`rv_sim::FixedCutoff`] stops at exactly the same point
/// as the legacy `with_cutoff` plumbing it replaces: same end, same
/// traversal count, same meeting log — on a cutoff-bound run.
#[test]
fn policy_cutoff_matches_the_with_cutoff_shim() {
    let uxs = SeededUxs::quadratic();
    let g = GraphFamily::Ring.generate(12, 5);
    let make = || {
        vec![
            RvBehavior::new(&g, uxs, NodeId(0), Label::new(6).unwrap()),
            RvBehavior::new(&g, uxs, NodeId(6), Label::new(9).unwrap()),
        ]
    };
    for budget in [1u64, 7, 25, 40] {
        // Shim: the budget lives in the config.
        let mut rt = Runtime::new(&g, make(), RunConfig::rendezvous().with_cutoff(budget));
        let mut adv = RoundRobin::new();
        let shim = rt.run(&mut adv);
        // Policy: generous config backstop, the policy carries the budget.
        let mut rt = Runtime::new(&g, make(), RunConfig::rendezvous().with_cutoff(CUTOFF));
        let mut adv = RoundRobin::new();
        let mut policy = rv_sim::FixedCutoff::new(budget);
        let via_policy = rt.run_with_policy(&mut adv, &mut policy);
        assert_eq!(shim.end, via_policy.end, "budget {budget}");
        assert_eq!(
            shim.total_traversals, via_policy.total_traversals,
            "budget {budget}"
        );
        assert_eq!(shim.actions, via_policy.actions, "budget {budget}");
        assert_eq!(shim.meetings, via_policy.meetings, "budget {budget}");
    }
}

/// Prints the current fingerprints for re-capture (see module docs).
#[test]
#[ignore = "capture helper: prints fingerprints instead of asserting"]
fn capture_fingerprints() {
    for (i, &(fam, n, gseed, kind, aseed)) in RUN_CASES.iter().enumerate() {
        println!("RUN{i}\t{}", run_fingerprint(fam, n, gseed, kind, aseed));
    }
    for (i, &(fam, n, gseed, spec, steps)) in CURSOR_CASES.iter().enumerate() {
        println!(
            "CUR{i}\t{:#018x}",
            cursor_fingerprint(fam, n, gseed, spec, steps)
        );
    }
    for (i, &depth) in MINIMAX_CASES.iter().enumerate() {
        println!("MM{i}\t{}", minimax_fingerprint(depth));
    }
}
