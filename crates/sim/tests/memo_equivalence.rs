//! Golden memo-equivalence suite for the transposition-table search.
//!
//! The minimax contract is that [`rv_sim::search_worst_case`] returns a
//! **bit-identical** [`WorstCase`] — including the exact explored-leaf
//! count — for every configuration: memo on or off, identity or full
//! automorphism group, and any worker count. The constants below were
//! captured from the plain sequential enumeration (memo off, one worker);
//! every other configuration must reproduce them exactly.
//!
//! To re-capture after an *intentional* semantic change, run
//! `cargo test -p rv_sim --test memo_equivalence -- --ignored --nocapture`
//! and paste the printed table over `GOLDEN`.

use rv_core::Label;
use rv_explore::SeededUxs;
use rv_graph::{generators, Automorphisms, Graph, GraphFamily, NodeId};
use rv_sim::{search_worst_case, RvBehavior, SearchOptions};

/// The worker counts every case is replayed at. The machine may expose
/// fewer cores; the pool still spawns this many workers, which is exactly
/// the oversubscribed interleaving the bit-identity claim must survive.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Case {
    name: &'static str,
    family: GraphFamily,
    n: usize,
    depth: usize,
}

const CASES: [Case; 5] = [
    Case {
        name: "path3/d6",
        family: GraphFamily::Path,
        n: 3,
        depth: 6,
    },
    Case {
        name: "path3/d10",
        family: GraphFamily::Path,
        n: 3,
        depth: 10,
    },
    Case {
        name: "path3/d12",
        family: GraphFamily::Path,
        n: 3,
        depth: 12,
    },
    Case {
        name: "ring4/d8",
        family: GraphFamily::Ring,
        n: 4,
        depth: 8,
    },
    Case {
        name: "ring4/d12",
        family: GraphFamily::Ring,
        n: 4,
        depth: 12,
    },
];

/// `(max_meeting_cost, some_schedule_avoids, schedules_explored)` captured
/// from the sequential unmemoized enumeration, one row per [`CASES`] entry.
const GOLDEN: [(Option<u64>, bool, u64); 5] = [
    (Some(2), true, 64),
    (Some(4), true, 724),
    (Some(4), true, 2236),
    (Some(2), true, 196),
    (Some(2), true, 2836),
];

fn graph_for(case: &Case) -> Graph {
    match case.family {
        GraphFamily::Path => generators::path(case.n),
        GraphFamily::Ring => generators::ring(case.n),
        _ => unreachable!("suite covers path and ring"),
    }
}

fn behaviors<'g>(g: &'g Graph, uxs: SeededUxs) -> Vec<RvBehavior<'g, SeededUxs>> {
    vec![
        RvBehavior::new(g, uxs, NodeId(0), Label::new(1).unwrap()),
        RvBehavior::new(g, uxs, NodeId(2), Label::new(2).unwrap()),
    ]
}

#[test]
fn memoized_search_is_bit_identical_to_golden_enumeration() {
    let uxs = SeededUxs::quadratic();
    for (case, golden) in CASES.iter().zip(GOLDEN) {
        let g = graph_for(case);
        let autos = case.family.automorphisms(&g);
        // (memo, quotient group) configurations; every one must agree.
        let configs: [(bool, Option<&Automorphisms>); 3] =
            [(false, None), (true, None), (true, Some(&autos))];
        for (memo, automorphisms) in configs {
            for workers in WORKER_COUNTS {
                let report = search_worst_case(
                    &g,
                    || behaviors(&g, uxs),
                    case.depth,
                    &SearchOptions {
                        workers: Some(workers),
                        memo,
                        automorphisms,
                    },
                );
                let got = (
                    report.worst.max_meeting_cost,
                    report.worst.some_schedule_avoids,
                    report.worst.schedules_explored,
                );
                assert_eq!(
                    got,
                    golden,
                    "{}: memo={memo} autos={} workers={workers} diverged from golden",
                    case.name,
                    automorphisms.is_some(),
                );
                assert_eq!(
                    report.memo.is_some(),
                    memo,
                    "{}: table stats must be reported iff the table was on",
                    case.name
                );
            }
        }
    }
}

/// Sequential memoized stats are deterministic: same probes/hits/entries
/// on every run (the parallel counts legitimately vary with stealing).
#[test]
fn sequential_memo_stats_are_deterministic() {
    let uxs = SeededUxs::quadratic();
    let case = &CASES[3]; // ring4/d8
    let g = graph_for(case);
    let autos = case.family.automorphisms(&g);
    let run = || {
        search_worst_case(
            &g,
            || behaviors(&g, uxs),
            case.depth,
            &SearchOptions {
                workers: Some(1),
                memo: true,
                automorphisms: Some(&autos),
            },
        )
        .memo
        .expect("memo on")
    };
    let a = run();
    let b = run();
    assert_eq!((a.probes, a.hits, a.entries), (b.probes, b.hits, b.entries));
    assert!(a.hits > 0, "the ring collapses states; hits must occur");
}

/// Prints the golden table for re-capture (see module docs).
#[test]
#[ignore = "re-capture helper, run with --ignored --nocapture"]
fn capture_golden() {
    let uxs = SeededUxs::quadratic();
    for case in &CASES {
        let g = graph_for(case);
        let worst = search_worst_case(
            &g,
            || behaviors(&g, uxs),
            case.depth,
            &SearchOptions {
                workers: Some(1),
                memo: false,
                automorphisms: None,
            },
        )
        .worst;
        println!(
            "    ({:?}, {}, {}), // {}",
            worst.max_meeting_cost, worst.some_schedule_avoids, worst.schedules_explored, case.name
        );
    }
}
