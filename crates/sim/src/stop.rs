//! The progress-aware stop-policy layer.
//!
//! A run used to know exactly one way to stop early: a flat traversal
//! cutoff. That burns the full budget on runs that stopped *telling you
//! anything* long before — a rendezvous ablation whose piece number is
//! stuck while cost explodes, or a protocol run pinned in an ESST phase by
//! an adversarially suspended token. This module separates the *decision
//! to stop* from the run loop:
//!
//! * [`Progress`] — a cheap record of everything observable about a run's
//!   advancement, assembled by [`crate::Runtime::progress`] from counters
//!   the runtime already maintains incrementally plus the agents'
//!   [`BehaviorProgress`] reports;
//! * [`StopPolicy`] — a pluggable termination rule consulted every
//!   [`StopPolicy::cadence`] adversary actions by
//!   [`crate::Runtime::run_with_policy`];
//! * the built-in policies — [`FixedCutoff`] (the policy form of the
//!   legacy `RunConfig::with_cutoff` plumbing, which survives as a thin
//!   compatibility shim and hard backstop), [`DivergenceDetector`]
//!   (rendezvous piece-number stagnation), [`AdaptiveThreshold`]
//!   (protocol-mode stall detection with a progress-scaled patience
//!   window), and [`EarlyQuiescence`] (census-based quiescence check).
//!
//! Policies are deterministic: they read action/traversal counters, never
//! the clock, so a policy-terminated run is exactly reproducible and the
//! golden suites can assert that detector-enabled runs are bit-identical
//! to plain runs on every converging instance (a detector may change when
//! a *non-converging* run stops, never what a converging run computes).

use crate::runtime::RunEnd;

/// An agent's self-reported progress, aggregated into [`Progress`] by the
/// runtime. The default (all zeros) makes every behavior trivially
/// compatible; behaviors with a meaningful notion of advancement override
/// [`crate::Behavior::progress`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BehaviorProgress {
    /// A monotone work ordinal. For rendezvous agents this is the
    /// algorithm's **piece number** — the quantity whose stagnation-
    /// while-cost-grows defines divergence. For SGL agents it is the
    /// protocol's progress-tick counter (`SglProgress::ticks`): moves in
    /// bounded phases plus information gains, silent in the
    /// adversarially prolongable ones.
    pub metric: u64,
    /// `true` once the agent has delivered its final result (an SGL
    /// output). Rendezvous agents never report done — the *run* ends at
    /// the meeting instead.
    pub done: bool,
}

/// Everything observable about a run's advancement, assembled in
/// O(agents) by [`crate::Runtime::progress`]: the runtime's incremental
/// counters, a census of agent states, per-agent traversal extremes, and
/// the aggregated [`BehaviorProgress`] reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Progress {
    /// Adversary actions executed.
    pub actions: u64,
    /// Total completed traversals — the paper's *cost*.
    pub total_traversals: u64,
    /// Meetings declared so far.
    pub meetings: u64,
    /// Action counter at the most recent meeting (`None` before the
    /// first), giving policies the meeting *rate* for free.
    pub last_meeting_action: Option<u64>,
    /// Cost at the most recent meeting.
    pub last_meeting_cost: Option<u64>,
    /// Number of agents.
    pub agents: usize,
    /// Census: awake agents standing at a node with no committed move.
    pub parked: usize,
    /// Census: agents not yet woken.
    pub asleep: usize,
    /// Census: agents strictly inside an edge.
    pub moving: usize,
    /// Census: agents felled by crash-stop faults (see [`crate::fault`]);
    /// always 0 without a fault plan. Crashed agents leave the other
    /// buckets and the traversal extremes below.
    pub crashed: usize,
    /// Agents whose behavior reports `done` (see [`BehaviorProgress`]).
    pub done_agents: usize,
    /// Fewest completed traversals over the live agents (starvation
    /// signal; see [`StarvationCensus`]).
    pub min_agent_traversals: u64,
    /// Most completed traversals over the live agents.
    pub max_agent_traversals: u64,
    /// Index of the least-served live agent (first argmin of the
    /// traversal counts) — names the starving agent in diagnostics.
    pub min_agent: usize,
    /// Sum over agents of [`BehaviorProgress::metric`].
    pub metric_sum: u64,
    /// Max over agents of [`BehaviorProgress::metric`].
    pub metric_max: u64,
    /// Structural token-suspension census: the longest time (in actions)
    /// any live, awake agent has held its current committed crossing —
    /// `actions − entered_at` maximised over agents strictly inside an
    /// edge. Zero when nobody is mid-edge. Crashed agents are excluded: a
    /// body wedged in an edge forever is a fault, not a suspension.
    pub longest_hold_actions: u64,
    /// Index of the agent realising [`Progress::longest_hold_actions`]
    /// (0 when nobody is mid-edge) — names the suspect in diagnostics.
    pub longest_hold_agent: usize,
}

/// A pluggable termination rule for [`crate::Runtime::run_with_policy`].
///
/// The run loop consults the policy every [`StopPolicy::cadence`] actions
/// with a fresh [`Progress`] record; returning `Some(end)` stops the run
/// with that end. Policies must be deterministic functions of the records
/// they see (no clocks, no RNG) so policy-stopped runs reproduce exactly.
pub trait StopPolicy {
    /// Adversary actions between checks. Checks cost O(agents), so the
    /// default keeps the overhead invisible next to the run loop while
    /// bounding detection latency; [`FixedCutoff`] overrides it to 1 for
    /// exactness.
    fn cadence(&self) -> u64 {
        1024
    }

    /// Inspects the progress record; `Some(end)` stops the run.
    fn check(&mut self, progress: &Progress) -> Option<RunEnd>;
}

/// Stops at a traversal budget — the [`StopPolicy`] form of the legacy
/// [`crate::RunConfig::with_cutoff`] plumbing (which remains available as
/// a compatibility shim and always-on backstop: the run loop checks the
/// config cutoff inline before every action). Cadence 1, so a
/// policy-driven cutoff stops at exactly the configured cost, matching
/// the shim bit for bit.
#[derive(Clone, Copy, Debug)]
pub struct FixedCutoff {
    /// Stop once total traversals reach this.
    pub max_total_traversals: u64,
}

impl FixedCutoff {
    /// Cutoff at `max` total traversals.
    pub fn new(max: u64) -> Self {
        FixedCutoff {
            max_total_traversals: max,
        }
    }
}

impl StopPolicy for FixedCutoff {
    fn cadence(&self) -> u64 {
        1
    }

    fn check(&mut self, p: &Progress) -> Option<RunEnd> {
        (p.total_traversals >= self.max_total_traversals).then_some(RunEnd::Cutoff)
    }
}

/// Rendezvous divergence: the max piece number ([`BehaviorProgress::
/// metric`]) has not advanced while cost grew past a window.
///
/// A converging rendezvous run either meets or advances its piece
/// schedule; across the scenario matrix every converging cell meets at
/// cost ≤ 278 without leaving piece 1, while the diverging ablation cells
/// (`unscaled`) burn any budget inside one piece. The default window of
/// 5 000 traversals therefore has ~18× margin over every converging cell
/// and stops diverging cells ~20× under the matrix's 100k budget.
#[derive(Clone, Copy, Debug)]
pub struct DivergenceDetector {
    /// Cost growth tolerated without a piece advance.
    pub window_traversals: u64,
    last_metric: u64,
    cost_at_advance: u64,
}

impl DivergenceDetector {
    /// Detector with an explicit window.
    pub fn new(window_traversals: u64) -> Self {
        DivergenceDetector {
            window_traversals,
            last_metric: 0,
            cost_at_advance: 0,
        }
    }
}

impl Default for DivergenceDetector {
    /// The matrix calibration: window 5 000 (see type docs).
    fn default() -> Self {
        DivergenceDetector::new(5_000)
    }
}

impl StopPolicy for DivergenceDetector {
    fn cadence(&self) -> u64 {
        256
    }

    fn check(&mut self, p: &Progress) -> Option<RunEnd> {
        // Re-prime on any non-forward movement, not just metric advances:
        // a policy value reused for a second run — or consulted after a
        // `Runtime::restore` rolled the counters back — must restart its
        // window instead of comparing across timelines (an unchecked
        // subtraction here would underflow and mis-fire instantly).
        if p.metric_max != self.last_metric || p.total_traversals < self.cost_at_advance {
            self.last_metric = p.metric_max;
            self.cost_at_advance = p.total_traversals;
            return None;
        }
        (p.total_traversals - self.cost_at_advance >= self.window_traversals)
            .then_some(RunEnd::Diverged)
    }
}

/// Protocol-mode stall detection: the run is stalled once the summed
/// progress metric has been silent for `max(base_actions, slack ×
/// actions-at-last-advance)` adversary actions **and** the silence bears
/// the structural signature of a suspended token — some live agent has
/// held its committed crossing ([`Progress::longest_hold_actions`]) for
/// at least half the silent window.
///
/// The window's two terms cover the two legitimate-silence regimes
/// measured across the SGL matrix (see `docs/STALL_TRACE.md`): early in a
/// run the longest honest silence is bounded in absolute terms (the
/// base), while late phases of large instances (a ring(16) final ESST
/// phase) are silent for a multiple of the work that preceded them (the
/// slack). The defaults are base 2 200 000 actions, slack 9.
///
/// The structural conjunct is what makes the verdict qualitative rather
/// than calibrated: every stall the matrix can produce is a token ghost
/// suspended mid-edge, so at the moment a true stall trips the window the
/// suspect's hold covers (essentially all of) the silence, while an
/// *honest* long silence — a parked token at a node, agents churning
/// through a final ESST phase — never shows any agent holding one edge
/// for millions of actions. Before this test the window alone decided,
/// and the worst honest silences sat only 1.07–1.11× under it; now a
/// window overrun without a matching hold is simply not a stall.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveThreshold {
    /// Absolute silence tolerated regardless of position.
    pub base_actions: u64,
    /// Additional patience per action of progress already banked.
    pub slack: u64,
    action_at_advance: u64,
    last_sum: u64,
    primed: bool,
    census: StarvationCensus,
    hold_agent: usize,
    hold_actions: u64,
}

impl AdaptiveThreshold {
    /// Policy with explicit base and slack.
    pub fn new(base_actions: u64, slack: u64) -> Self {
        AdaptiveThreshold {
            base_actions,
            slack,
            action_at_advance: 0,
            last_sum: 0,
            primed: false,
            census: StarvationCensus::default(),
            hold_agent: 0,
            hold_actions: 0,
        }
    }

    /// The starvation verdict accumulated over the records this policy
    /// saw — the diagnostic to print beside a `Stalled` end ("agent X
    /// silent for N actions"). `None` before the first check.
    pub fn starvation(&self) -> Option<StarvationReport> {
        self.census.report()
    }

    /// The structural-suspension half of a `Stalled` verdict: the agent
    /// with the longest live committed-crossing hold at the last check,
    /// and how long it has held it. `None` until a check has seen an
    /// agent mid-edge.
    pub fn suspension(&self) -> Option<SuspensionReport> {
        (self.hold_actions > 0).then_some(SuspensionReport {
            agent: self.hold_agent,
            held_actions: self.hold_actions,
        })
    }
}

impl Default for AdaptiveThreshold {
    /// The matrix calibration: base 2.2M actions, slack 9 (see type docs).
    fn default() -> Self {
        AdaptiveThreshold::new(2_200_000, 9)
    }
}

impl StopPolicy for AdaptiveThreshold {
    fn check(&mut self, p: &Progress) -> Option<RunEnd> {
        self.census.observe(p);
        self.hold_agent = p.longest_hold_agent;
        self.hold_actions = p.longest_hold_actions;
        // `!=` rather than `>`, and a backwards-clock check: reuse across
        // runs or a `Runtime::restore` can move both the metric and the
        // action counter backwards, and the window must restart rather
        // than underflow (see the same guard on `DivergenceDetector`).
        if !self.primed || p.metric_sum != self.last_sum || p.actions < self.action_at_advance {
            self.primed = true;
            self.last_sum = p.metric_sum;
            self.action_at_advance = p.actions;
            return None;
        }
        let window = self
            .base_actions
            .max(self.slack.saturating_mul(self.action_at_advance));
        let silence = p.actions - self.action_at_advance;
        // The hold need only cover *half* the silence, not all of it: the
        // suspect may have started its final crossing shortly after the
        // last metric tick, and both clocks then advance in lockstep, so
        // the hold approaches the silence from below without ever
        // reaching it. Half is reached after one more window at most and
        // is still far beyond any honest hold (tens of actions).
        (silence >= window && p.longest_hold_actions >= silence / 2).then_some(RunEnd::Stalled)
    }
}

/// The starvation census — the ROADMAP's "nearly free" structural signal:
/// [`Progress`] already carries the per-agent traversal extremes, so
/// tracking how long the *minimum* has been flat names the least-served
/// agent and how long the scheduler has silenced it ("agent X silent for
/// N actions"). Feed it every [`Progress`] record a policy sees (it is
/// embedded in [`AdaptiveThreshold`], whose `Stalled` verdicts it
/// annotates); read the verdict with [`StarvationCensus::report`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StarvationCensus {
    last_min: u64,
    action_at_advance: u64,
    last_actions: u64,
    agent: usize,
    primed: bool,
}

/// The structural half of an [`AdaptiveThreshold`] `Stalled` verdict: the
/// agent holding a committed crossing the longest, and for how many
/// actions — "agent X has held a committed `Finish` for N actions". See
/// [`AdaptiveThreshold::suspension`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuspensionReport {
    /// The longest-holding mid-edge agent at the last check.
    pub agent: usize,
    /// How many actions it has held its current crossing.
    pub held_actions: u64,
}

/// A starvation verdict: the least-served agent and how long the minimum
/// traversal count has been flat. See [`StarvationCensus`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StarvationReport {
    /// Index of the least-served live agent at the last observation.
    pub agent: usize,
    /// Actions since the minimum traversal count last advanced.
    pub silent_actions: u64,
    /// The flat minimum traversal count itself.
    pub traversals: u64,
}

impl StarvationCensus {
    /// Folds one progress record into the census. Backwards counter moves
    /// (policy reuse, snapshot restores) re-prime the window, same as the
    /// detectors.
    pub fn observe(&mut self, p: &Progress) {
        if !self.primed
            || p.min_agent_traversals != self.last_min
            || p.actions < self.action_at_advance
        {
            self.primed = true;
            self.last_min = p.min_agent_traversals;
            self.action_at_advance = p.actions;
        }
        self.last_actions = p.actions;
        self.agent = p.min_agent;
    }

    /// The current verdict (`None` before the first observation).
    pub fn report(&self) -> Option<StarvationReport> {
        self.primed.then_some(StarvationReport {
            agent: self.agent,
            silent_actions: self.last_actions - self.action_at_advance,
            traversals: self.last_min,
        })
    }
}

/// Census-based quiescence check: ends the run `AllParked` as soon as
/// every agent is awake, at a node, and parked — the same condition the
/// run loop detects by enumerating legal choices and finding none, read
/// directly off the incremental census instead. Composes with detectors
/// whose custom drivers want quiescence checks without enumeration; by
/// construction it never changes what a run computes, only (at most) how
/// its final no-choices probe is spelled.
#[derive(Clone, Copy, Debug, Default)]
pub struct EarlyQuiescence;

impl StopPolicy for EarlyQuiescence {
    fn check(&mut self, p: &Progress) -> Option<RunEnd> {
        if p.asleep != 0 || p.moving != 0 || p.parked + p.crashed != p.agents {
            return None;
        }
        // Mirror the run loop's own classification of a choiceless state
        // (fault-free runs keep getting plain `AllParked`).
        Some(if p.crashed == p.agents {
            RunEnd::AllCrashed
        } else if p.crashed > 0 {
            RunEnd::SurvivorsParked
        } else {
            RunEnd::AllParked
        })
    }
}

/// Consults `a` then `b` at the finer of the two cadences — policy
/// combinators compose left to right, first hit wins. Built by
/// [`and_then`].
#[derive(Clone, Copy, Debug)]
pub struct Chain<A, B> {
    a: A,
    b: B,
}

/// Chains two policies: check `a`, then `b`; the first `Some(end)` stops
/// the run. The chain runs at the finer cadence of the two, so each
/// policy is checked at least as often as it asked for.
pub fn and_then<A: StopPolicy, B: StopPolicy>(a: A, b: B) -> Chain<A, B> {
    Chain { a, b }
}

impl<A: StopPolicy, B: StopPolicy> StopPolicy for Chain<A, B> {
    fn cadence(&self) -> u64 {
        self.a.cadence().min(self.b.cadence())
    }

    fn check(&mut self, p: &Progress) -> Option<RunEnd> {
        self.a.check(p).or_else(|| self.b.check(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progress(actions: u64, cost: u64, metric_sum: u64, metric_max: u64) -> Progress {
        Progress {
            actions,
            total_traversals: cost,
            meetings: 0,
            last_meeting_action: None,
            last_meeting_cost: None,
            agents: 2,
            parked: 0,
            asleep: 0,
            moving: 1,
            crashed: 0,
            done_agents: 0,
            min_agent_traversals: 0,
            max_agent_traversals: cost,
            min_agent: 0,
            metric_sum,
            metric_max,
            // One agent mid-edge since action 0: the structural hold
            // covers any silence, so window-focused tests exercise the
            // window alone.
            longest_hold_actions: actions,
            longest_hold_agent: 0,
        }
    }

    #[test]
    fn fixed_cutoff_fires_at_the_budget() {
        let mut p = FixedCutoff::new(100);
        assert_eq!(p.check(&progress(10, 99, 0, 0)), None);
        assert_eq!(p.check(&progress(11, 100, 0, 0)), Some(RunEnd::Cutoff));
        assert_eq!(p.cadence(), 1, "exact cutoffs need per-action checks");
    }

    #[test]
    fn divergence_detector_resets_on_piece_advance() {
        let mut d = DivergenceDetector::new(1_000);
        assert_eq!(d.check(&progress(0, 0, 1, 1)), None);
        assert_eq!(d.check(&progress(10, 900, 1, 1)), None);
        // Piece advance at cost 950: window restarts there.
        assert_eq!(d.check(&progress(11, 950, 2, 2)), None);
        assert_eq!(d.check(&progress(20, 1_900, 2, 2)), None);
        assert_eq!(d.check(&progress(21, 1_950, 2, 2)), Some(RunEnd::Diverged));
    }

    #[test]
    fn adaptive_threshold_scales_patience_with_position() {
        let mut a = AdaptiveThreshold::new(1_000, 4);
        // First check primes the window at the current position.
        assert_eq!(a.check(&progress(100, 0, 5, 5)), None);
        // Base window governs early: silent for 1 000 actions from 100.
        assert_eq!(a.check(&progress(1_099, 0, 5, 5)), None);
        assert_eq!(a.check(&progress(1_100, 0, 5, 5)), Some(RunEnd::Stalled));

        // Later, the slack term governs: progress at action 10 000 buys
        // a 40 000-action window.
        let mut a = AdaptiveThreshold::new(1_000, 4);
        assert_eq!(a.check(&progress(100, 0, 5, 5)), None);
        assert_eq!(a.check(&progress(10_000, 0, 6, 6)), None);
        assert_eq!(a.check(&progress(49_999, 0, 6, 6)), None);
        assert_eq!(a.check(&progress(50_000, 0, 6, 6)), Some(RunEnd::Stalled));
    }

    #[test]
    fn adaptive_threshold_needs_a_structural_hold_to_stall() {
        // A window-sized silence alone is not a stall: if no agent has
        // held a committed crossing for at least half of it, the silence
        // is honest (the token is parked at a node) and the run continues
        // no matter how far past the window it drifts.
        let mut a = AdaptiveThreshold::new(1_000, 0);
        let mut p = progress(100, 0, 5, 5);
        p.longest_hold_actions = 0;
        assert_eq!(a.check(&p), None);
        p.actions = 50_000;
        p.longest_hold_actions = 30; // a fresh, honest crossing
        assert_eq!(a.check(&p), None, "no hold, no stall");
        // The same silence with a covering hold is the real signature.
        p.longest_hold_actions = 25_000;
        p.longest_hold_agent = 2;
        assert_eq!(a.check(&p), Some(RunEnd::Stalled));
        let s = a.suspension().expect("a mid-edge agent was observed");
        assert_eq!(s.agent, 2);
        assert_eq!(s.held_actions, 25_000);
    }

    #[test]
    fn detectors_reprime_when_counters_move_backwards() {
        // Reusing a policy for a second run (or consulting it after a
        // snapshot restore) presents smaller counters; the window must
        // restart, not underflow.
        let mut d = DivergenceDetector::new(1_000);
        assert_eq!(d.check(&progress(0, 0, 5, 5)), None);
        assert_eq!(d.check(&progress(10, 900, 6, 6)), None);
        // Second run: cost rolled back below cost_at_advance (900).
        assert_eq!(d.check(&progress(1, 50, 1, 1)), None, "must re-prime");
        assert_eq!(d.check(&progress(9, 1_049, 1, 1)), None);
        assert_eq!(d.check(&progress(10, 1_050, 1, 1)), Some(RunEnd::Diverged));

        let mut a = AdaptiveThreshold::new(1_000, 0);
        assert_eq!(a.check(&progress(5_000, 0, 9, 9)), None);
        // Restore: actions rolled back, metric shrank.
        assert_eq!(a.check(&progress(100, 0, 3, 3)), None, "must re-prime");
        assert_eq!(a.check(&progress(1_099, 0, 3, 3)), None);
        assert_eq!(a.check(&progress(1_100, 0, 3, 3)), Some(RunEnd::Stalled));
    }

    #[test]
    fn early_quiescence_reads_the_census() {
        let mut q = EarlyQuiescence;
        let mut p = progress(5, 3, 0, 0);
        assert_eq!(q.check(&p), None, "an agent is mid-edge");
        p.moving = 0;
        p.parked = 2;
        assert_eq!(q.check(&p), Some(RunEnd::AllParked));
        p.asleep = 1;
        p.parked = 1;
        assert_eq!(q.check(&p), None, "asleep agents can still be woken");
    }

    #[test]
    fn starvation_census_tracks_the_flat_minimum() {
        let mut c = StarvationCensus::default();
        assert_eq!(c.report(), None, "unprimed census has no verdict");
        let mut p = progress(100, 0, 0, 0);
        p.min_agent_traversals = 4;
        p.min_agent = 1;
        c.observe(&p);
        assert_eq!(
            c.report(),
            Some(StarvationReport {
                agent: 1,
                silent_actions: 0,
                traversals: 4
            })
        );
        // The minimum stays flat while the clock runs: silence grows.
        p.actions = 900;
        c.observe(&p);
        assert_eq!(c.report().unwrap().silent_actions, 800);
        // The minimum advances: the window restarts.
        p.actions = 1_000;
        p.min_agent_traversals = 5;
        c.observe(&p);
        assert_eq!(c.report().unwrap().silent_actions, 0);
        // A backwards clock (snapshot restore / policy reuse) re-primes
        // instead of underflowing.
        p.actions = 40;
        c.observe(&p);
        assert_eq!(c.report().unwrap().silent_actions, 0);
        p.actions = 120;
        c.observe(&p);
        assert_eq!(c.report().unwrap().silent_actions, 80);
    }

    #[test]
    fn adaptive_threshold_exposes_its_census() {
        let mut a = AdaptiveThreshold::new(1_000, 2);
        assert_eq!(a.starvation(), None, "no checks yet");
        let mut p = progress(10, 0, 1, 1);
        p.min_agent_traversals = 2;
        p.min_agent = 1;
        a.check(&p);
        p.actions = 250;
        a.check(&p);
        let report = a.starvation().expect("census primed by check()");
        assert_eq!(report.agent, 1);
        assert_eq!(report.silent_actions, 240);
        assert_eq!(report.traversals, 2);
    }

    #[test]
    fn chain_checks_left_then_right_at_the_finer_cadence() {
        let mut c = and_then(FixedCutoff::new(50), DivergenceDetector::new(10));
        assert_eq!(c.cadence(), 1);
        assert_eq!(c.check(&progress(1, 50, 1, 1)), Some(RunEnd::Cutoff));
        let mut c = and_then(DivergenceDetector::new(10), FixedCutoff::new(1_000));
        assert_eq!(c.check(&progress(1, 0, 1, 1)), None);
        assert_eq!(c.check(&progress(2, 10, 1, 1)), Some(RunEnd::Diverged));
    }
}
