//! The scheduler runtime: agent slots, edge occupancy, forced-meeting
//! detection, and the adversary-driven run loop.
//!
//! The hot path is allocation-free in steady state: edge occupancy is a
//! dense `Vec<EdgeOcc>` indexed by [`Graph::edge_index_at`] (no hashing,
//! queues keep their capacity across occupancy changes), and the `_into`
//! variants of [`Runtime::legal_choices`] / [`Runtime::apply`] write into
//! caller-owned buffers that [`Runtime::run`] and the minimax search reuse
//! across steps.
//!
//! # State lifecycle
//!
//! A runtime state moves through construct → run → snapshot → fork →
//! restore: [`Runtime::new`] constructs, [`Runtime::run`] / `apply` steps,
//! [`Runtime::snapshot`] freezes the complete mid-run state (forking every
//! behavior per the [`Behavior::fork`] contract) into a
//! [`RuntimeSnapshot`], and [`Runtime::restore`] /
//! [`Runtime::from_snapshot`] re-enter that state — on the same runtime,
//! a fresh one, or another thread — without replaying the schedule prefix.
//! [`Runtime::reset`] is the other rewind: back to the *initial* state
//! with brand-new behaviors (see its docs for the reset-vs-restore rule of
//! thumb).

use crate::behavior::Behavior;
use crate::fault::{FaultClock, FaultPlan};
use crate::meeting::{Meeting, MeetingLog, MeetingPlace};
use rv_graph::{EdgeId, Graph, NodeId, PortId};

/// Agent position at the abstraction level of the model (see crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Place {
    /// Standing at a node.
    AtNode(NodeId),
    /// Strictly inside `edge`, committed to arriving at `to`.
    Inside {
        /// The occupied edge.
        edge: EdgeId,
        /// Departure node.
        from: NodeId,
        /// Committed arrival node.
        to: NodeId,
    },
}

/// The primitive scheduling actions available to the adversary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActionKind {
    /// Begin the agent's committed traversal (node → edge interior).
    Start,
    /// Complete the agent's traversal (edge interior → node).
    Finish,
    /// Wake a sleeping agent.
    Wake,
}

/// One adversary decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Choice {
    /// Index of the agent acted upon.
    pub agent: usize,
    /// The action.
    pub kind: ActionKind,
}

/// A legal choice, annotated with whether taking it forces a meeting —
/// the information a meeting-avoiding adversary needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChoiceInfo {
    /// The choice.
    pub choice: Choice,
    /// `true` if applying it declares at least one meeting.
    pub causes_meeting: bool,
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunEnd {
    /// A meeting occurred and the config stops at the first meeting.
    Meeting,
    /// No agent can act: everyone is parked (and nobody is asleep).
    AllParked,
    /// The total-traversal cutoff was reached.
    Cutoff,
    /// A stop policy concluded the run diverges: its progress metric (the
    /// rendezvous piece number) stagnated while cost grew past the
    /// policy's window (see [`crate::stop::DivergenceDetector`]).
    Diverged,
    /// A stop policy concluded the run stalled: the summed progress
    /// metric went silent for longer than the policy's patience window
    /// (see [`crate::stop::AdaptiveThreshold`]).
    Stalled,
    /// Every agent has crash-stopped (see [`crate::fault`]); nothing can
    /// ever act again. Only reachable with a fault plan installed.
    AllCrashed,
    /// Crash faults felled some agents and every survivor is parked —
    /// quiescence among survivors, the fault-mode sibling of `AllParked`.
    /// Only reachable with a fault plan installed.
    SurvivorsParked,
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Why the run ended.
    pub end: RunEnd,
    /// Total completed traversals over all agents (the paper's *cost*).
    pub total_traversals: u64,
    /// Completed traversals per agent.
    pub per_agent: Vec<u64>,
    /// All meetings declared, in order — an O(1) handle onto the runtime's
    /// copy-on-write log, not a deep copy (protocol runs log a meeting per
    /// exchange; the outcome must not double peak memory).
    pub meetings: MeetingLog,
    /// Number of adversary actions executed.
    pub actions: u64,
}

/// Run parameters.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Stop at the first meeting (rendezvous experiments).
    pub stop_on_first_meeting: bool,
    /// Abort after this many completed traversals in total.
    pub max_total_traversals: u64,
}

impl RunConfig {
    /// Rendezvous configuration: stop at the first meeting, generous cutoff.
    pub fn rendezvous() -> Self {
        RunConfig {
            stop_on_first_meeting: true,
            max_total_traversals: 50_000_000,
        }
    }

    /// Protocol configuration: meetings are exchanges, run to quiescence.
    pub fn protocol() -> Self {
        RunConfig {
            stop_on_first_meeting: false,
            max_total_traversals: 50_000_000,
        }
    }

    /// Replaces the traversal cutoff.
    ///
    /// This is the **compatibility shim** over the stop-policy layer: the
    /// run loop checks this budget inline before every action (exactly
    /// the semantics of a [`crate::stop::FixedCutoff`] policy at cadence
    /// 1), so it doubles as the hard backstop under
    /// [`Runtime::run_with_policy`] — detectors fire first when they have
    /// something to say, the budget catches everything else.
    pub fn with_cutoff(mut self, max: u64) -> Self {
        self.max_total_traversals = max;
        self
    }
}

#[derive(Debug)]
pub(crate) struct Slot<B> {
    pub(crate) behavior: B,
    pub(crate) place: Place,
    /// Dense edge index of the occupied edge; valid iff `place` is
    /// `Inside { .. }` (kept beside `place` so occupancy lookups skip the
    /// port scan an `EdgeId` → index conversion would need).
    pub(crate) inside_index: usize,
    /// Committed next traversal when at a node (`None` = parked).
    pub(crate) pending: Option<(PortId, NodeId)>,
    pub(crate) awake: bool,
    /// Crash-stop fault flag (see [`crate::fault`]): the agent never acts
    /// again, but its body still forces meetings where it lies.
    pub(crate) crashed: bool,
    pub(crate) traversals: u64,
    /// Action count at this agent's latest `Start` — the moment it entered
    /// its current edge. Meaningful iff `place` is `Inside { .. }`; while
    /// there, `actions - entered_at` is how long the agent has *held* its
    /// one committed crossing (the structural token-suspension census of
    /// [`crate::stop::Progress::longest_hold_actions`]). Instrumentation
    /// only: never consulted by scheduling, legality, or memo keys.
    pub(crate) entered_at: u64,
}

impl<B: Behavior> Slot<B> {
    /// Forks the slot: scheduler bookkeeping is copied, the behavior is
    /// forked per the [`Behavior::fork`] contract.
    fn fork(&self) -> Self {
        Slot {
            behavior: self.behavior.fork(),
            place: self.place,
            inside_index: self.inside_index,
            pending: self.pending,
            awake: self.awake,
            crashed: self.crashed,
            traversals: self.traversals,
            entered_at: self.entered_at,
        }
    }
}

/// Token returned by [`Runtime::apply_undoable`]: the exact slice of
/// runtime state a meeting-free apply can mutate, keyed by action kind.
/// [`Runtime::undo`] consumes it to rewind the apply in O(1) — the
/// memoized minimax search pairs apply/undo around every descent instead
/// of forking whole runtimes (see `crate::minimax::explore_memo`).
#[derive(Debug)]
pub(crate) enum ApplyUndo<B> {
    /// A `Start` never touches the behavior: restore the `Copy` fields and
    /// pop the queue tail (locatable from the post-apply slot).
    Start {
        agent: usize,
        place: Place,
        pending: Option<(PortId, NodeId)>,
    },
    /// A `Finish` advances the behavior (arrival re-commit): the slot is
    /// forked whole, and the queue removal position is recorded so the
    /// agent reinserts exactly where it sat.
    Finish {
        slot: Slot<B>,
        agent: usize,
        index: usize,
        from_a: bool,
        my_pos: usize,
    },
    /// A `Wake` commits the first move: slot forked whole; nothing else
    /// moves.
    Wake { slot: Slot<B>, agent: usize },
}

/// Per-edge occupancy: FIFO queues of agents inside, one per direction.
/// Direction is identified by the departure node.
#[derive(Clone, Debug, Default)]
pub(crate) struct EdgeOcc {
    /// Agents that entered from `edge.a`, in entry order (front = eldest).
    pub(crate) from_a: Vec<usize>,
    /// Agents that entered from `edge.b`, in entry order.
    pub(crate) from_b: Vec<usize>,
}

impl EdgeOcc {
    fn queue(&self, from_a_side: bool) -> &Vec<usize> {
        if from_a_side {
            &self.from_a
        } else {
            &self.from_b
        }
    }
    fn queue_mut(&mut self, from_a_side: bool) -> &mut Vec<usize> {
        if from_a_side {
            &mut self.from_a
        } else {
            &mut self.from_b
        }
    }
}

/// A frozen mid-run [`Runtime`] state: forked behaviors plus all scheduler
/// bookkeeping. Produced by [`Runtime::snapshot`], consumed (by reference,
/// any number of times) by [`Runtime::restore`] and
/// [`Runtime::from_snapshot`].
///
/// The snapshot does not borrow the runtime or the graph, so it can be
/// moved across threads (it is `Send` whenever the behavior is) — the
/// minimax search ships frontier snapshots to worker threads this way.
#[derive(Debug)]
pub struct RuntimeSnapshot<B> {
    pub(crate) slots: Vec<Slot<B>>,
    pub(crate) edges: Vec<EdgeOcc>,
    pub(crate) meetings: MeetingLog,
    pub(crate) actions: u64,
    pub(crate) total_traversals: u64,
}

impl<B: Behavior> RuntimeSnapshot<B> {
    /// Total completed traversals at the moment of the snapshot.
    pub fn total_traversals(&self) -> u64 {
        self.total_traversals
    }

    /// Adversary actions executed at the moment of the snapshot.
    pub fn actions(&self) -> u64 {
        self.actions
    }

    /// The meeting log as of the snapshot (an O(1) copy-on-write handle;
    /// the snapshot shares sealed chunks with the runtime it froze).
    pub fn meetings(&self) -> &MeetingLog {
        &self.meetings
    }
}

/// The adversarial scheduler over a set of agents in one graph.
///
/// See the crate documentation for the model; see
/// [`crate::adversary`] for the strategies that drive it.
pub struct Runtime<'g, B> {
    g: &'g Graph,
    slots: Vec<Slot<B>>,
    /// Occupancy per dense edge index (`edges.len() == g.size()`). Queues
    /// of edges that empty out keep their capacity for the next occupant.
    edges: Vec<EdgeOcc>,
    /// Append-only copy-on-write log (see [`MeetingLog`]): snapshots, the
    /// [`RunOutcome`], and forks all take O(1) handles instead of copies.
    meetings: MeetingLog,
    actions: u64,
    total_traversals: u64,
    config: RunConfig,
    /// Reusable scratch for participant lists built while `self.edges` or
    /// `self.slots` is borrowed (meeting declaration is rare; the scratch
    /// keeps the common paths allocation-free even when it fires).
    scratch: Vec<usize>,
    /// Reusable legal-choice buffer for [`Runtime::step`] (transient, not
    /// part of the frozen state — snapshots never carry it).
    choice_scratch: Vec<ChoiceInfo>,
    /// Fault-injection cursor (see [`crate::fault`]); `None` = no plan
    /// installed, which keeps every fault branch a single `Option` check.
    /// Like [`RunConfig`], the plan is run *configuration*: snapshots do
    /// not carry it, and [`Runtime::restore`] keeps the current plan (the
    /// clock rewinds itself when the action counter moves backwards).
    faults: Option<FaultClock>,
}

impl<'g, B: Behavior> Runtime<'g, B> {
    /// Creates a runtime with all agents asleep at their behaviors' start
    /// nodes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two agents are supplied or two agents share a
    /// start node (the model places agents at distinct nodes).
    pub fn new(g: &'g Graph, behaviors: Vec<B>, config: RunConfig) -> Self {
        let mut rt = Runtime {
            g,
            slots: Vec::new(),
            edges: vec![EdgeOcc::default(); g.size()],
            meetings: MeetingLog::new(),
            actions: 0,
            total_traversals: 0,
            config,
            scratch: Vec::new(),
            choice_scratch: Vec::new(),
            faults: None,
        };
        rt.install(behaviors);
        rt
    }

    /// Rewinds the runtime to the **initial** state with a fresh set of
    /// agents, reusing every internal allocation (edge queues, slot
    /// storage, scratch).
    ///
    /// Use `reset` when the next run should start from scratch with *new*
    /// behaviors (different labels, a different algorithm variant, a fresh
    /// RNG); use [`Runtime::restore`] to rewind to a **mid-run** state
    /// captured by [`Runtime::snapshot`] — restore keeps the agents'
    /// accumulated state (cursor position, warm length memos, RNG streams)
    /// and is what the replay-free minimax search uses instead of
    /// re-executing schedule prefixes after a `reset`.
    ///
    /// # Panics
    ///
    /// As for [`Runtime::new`].
    pub fn reset(&mut self, behaviors: Vec<B>) {
        for occ in &mut self.edges {
            occ.from_a.clear();
            occ.from_b.clear();
        }
        self.meetings.clear();
        self.actions = 0;
        self.total_traversals = 0;
        self.slots.clear();
        self.install(behaviors);
    }

    /// Freezes the complete mid-run state — agent behaviors (via
    /// [`Behavior::fork`]), positions, committed moves, edge occupancy,
    /// meeting history, and counters — into an **O(agents + edges)**
    /// snapshot that can be [`Runtime::restore`]d any number of times, on
    /// this runtime or on a fresh one built with
    /// [`Runtime::from_snapshot`]. The meeting history is captured as an
    /// O(1) [`MeetingLog`] handle, so snapshot cost is independent of how
    /// many meetings the run has accumulated — protocol runs snapshot as
    /// cheaply at their millionth exchange as at their first.
    ///
    /// Snapshots are independent of the runtime that produced them: taking
    /// one never perturbs the run, and a snapshot outlives its runtime.
    pub fn snapshot(&self) -> RuntimeSnapshot<B> {
        RuntimeSnapshot {
            slots: self.slots.iter().map(Slot::fork).collect(),
            edges: self.edges.clone(),
            meetings: self.meetings.clone(),
            actions: self.actions,
            total_traversals: self.total_traversals,
        }
    }

    /// Rewinds this runtime to the mid-run state captured by `snap`,
    /// reusing internal allocations where possible. See [`Runtime::reset`]
    /// for when to reset instead.
    ///
    /// The snapshot is borrowed, not consumed: the same snapshot can seed
    /// any number of restores (the minimax search re-enters each frontier
    /// state once per sibling branch).
    ///
    /// # Panics
    ///
    /// Panics if `snap` was taken on a runtime over a different graph
    /// (detected by edge-table size).
    pub fn restore(&mut self, snap: &RuntimeSnapshot<B>) {
        assert_eq!(
            snap.edges.len(),
            self.edges.len(),
            "snapshot belongs to a runtime over a different graph"
        );
        self.slots.clear();
        self.slots.extend(snap.slots.iter().map(Slot::fork));
        self.edges.clone_from(&snap.edges);
        self.meetings = snap.meetings.clone();
        self.actions = snap.actions;
        self.total_traversals = snap.total_traversals;
    }

    /// Like [`Runtime::restore`], but consumes the snapshot and moves its
    /// state in without forking the behaviors — the cheap path for a
    /// snapshot's *last* use (the minimax search re-enters each node once
    /// per sibling; the final sibling takes the state by move).
    ///
    /// # Panics
    ///
    /// As for [`Runtime::restore`].
    pub fn restore_owned(&mut self, snap: RuntimeSnapshot<B>) {
        assert_eq!(
            snap.edges.len(),
            self.edges.len(),
            "snapshot belongs to a runtime over a different graph"
        );
        self.slots = snap.slots;
        self.edges = snap.edges;
        self.meetings = snap.meetings;
        self.actions = snap.actions;
        self.total_traversals = snap.total_traversals;
    }

    /// Builds a fresh runtime positioned at the mid-run state captured by
    /// `snap` — the cross-thread entry point of the parallel minimax
    /// search, whose workers receive snapshots instead of behavior
    /// factories.
    ///
    /// # Panics
    ///
    /// Panics if `snap` was not taken over `g` (edge-table size mismatch).
    pub fn from_snapshot(g: &'g Graph, snap: &RuntimeSnapshot<B>, config: RunConfig) -> Self {
        assert_eq!(
            snap.edges.len(),
            g.size(),
            "snapshot belongs to a runtime over a different graph"
        );
        Runtime {
            g,
            slots: snap.slots.iter().map(Slot::fork).collect(),
            edges: snap.edges.clone(),
            meetings: snap.meetings.clone(),
            actions: snap.actions,
            total_traversals: snap.total_traversals,
            config,
            scratch: Vec::new(),
            choice_scratch: Vec::new(),
            faults: None,
        }
    }

    /// Like [`Runtime::from_snapshot`], but consumes the snapshot and moves
    /// its state in without forking — the cheap constructor when the
    /// snapshot has no further use (a search worker entering its first
    /// owned job). Mirrors the [`Runtime::restore`] /
    /// [`Runtime::restore_owned`] pairing.
    ///
    /// # Panics
    ///
    /// As for [`Runtime::from_snapshot`].
    pub fn from_snapshot_owned(g: &'g Graph, snap: RuntimeSnapshot<B>, config: RunConfig) -> Self {
        assert_eq!(
            snap.edges.len(),
            g.size(),
            "snapshot belongs to a runtime over a different graph"
        );
        Runtime {
            g,
            slots: snap.slots,
            edges: snap.edges,
            meetings: snap.meetings,
            actions: snap.actions,
            total_traversals: snap.total_traversals,
            config,
            scratch: Vec::new(),
            choice_scratch: Vec::new(),
            faults: None,
        }
    }

    fn install(&mut self, behaviors: Vec<B>) {
        assert!(behaviors.len() >= 2, "the model has at least two agents");
        for (i, b) in behaviors.iter().enumerate() {
            assert!(
                behaviors[..i]
                    .iter()
                    .all(|o| o.start_node() != b.start_node()),
                "agents must start at distinct nodes (duplicate {:?})",
                b.start_node()
            );
        }
        self.slots
            .extend(behaviors.into_iter().map(|behavior| Slot {
                place: Place::AtNode(behavior.start_node()),
                behavior,
                inside_index: usize::MAX,
                pending: None,
                awake: false,
                crashed: false,
                traversals: 0,
                entered_at: 0,
            }));
    }

    /// Current position of agent `i`.
    pub fn place(&self, i: usize) -> Place {
        self.slots[i].place
    }

    /// Completed traversals of agent `i`.
    pub fn traversals(&self, i: usize) -> u64 {
        self.slots[i].traversals
    }

    /// Total completed traversals.
    pub fn total_traversals(&self) -> u64 {
        self.total_traversals
    }

    /// Immutable access to agent `i`'s behavior (for post-run inspection).
    pub fn behavior(&self, i: usize) -> &B {
        &self.slots[i].behavior
    }

    /// Warms every behavior (see [`Behavior::warm`]): one-time lazy setup —
    /// first spec materialisation, repetition-count evaluation — happens
    /// now instead of inside the first `Start` applied to each agent.
    /// Snapshots taken afterwards carry the warm state into every restore,
    /// so branchy searches (see [`crate::minimax`]) pay it once rather than
    /// once per branch. Port streams are unchanged; only instrumentation
    /// that observes *when* lazy setup runs (e.g. schedule-phase progress
    /// before an agent's first move) can tell the difference.
    pub fn warm_behaviors(&mut self) {
        for slot in &mut self.slots {
            slot.behavior.warm();
        }
    }

    /// The full agent-slot table, for the canonical-fingerprint renderer
    /// (see `crate::memo`): fingerprinting needs every scheduler-visible
    /// component of an agent's state — place, committed move, flags,
    /// traversal count — in one read.
    pub(crate) fn slots_for_memo(&self) -> &[Slot<B>] {
        &self.slots
    }

    /// The dense edge-occupancy table (indexed by [`Graph::edge_index_at`]),
    /// for the canonical-fingerprint renderer: queue membership and order
    /// are part of the state a transposition-table key must capture.
    pub(crate) fn edge_occupancy(&self) -> &[EdgeOcc] {
        &self.edges
    }

    /// The graph this runtime schedules over.
    pub(crate) fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.slots.len()
    }

    /// Adversary actions executed so far.
    pub fn actions(&self) -> u64 {
        self.actions
    }

    /// Meetings declared so far.
    pub fn meetings(&self) -> &MeetingLog {
        &self.meetings
    }

    /// Installs a fault plan (see [`crate::fault`]); replaces any current
    /// plan and rewinds its clock. The empty plan is provably free — the
    /// golden suites pin that installing `FaultPlan::empty()` leaves every
    /// run bit-identical.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultClock::new(plan));
    }

    /// Removes the fault plan (fault branches go back to one `Option`
    /// check that never takes the slow path).
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|c| c.plan())
    }

    /// `true` if agent `i` has crash-stopped (see [`crate::fault`]).
    pub fn crashed(&self, i: usize) -> bool {
        self.slots[i].crashed
    }

    /// Marks crashes whose time has come and expires outage windows —
    /// called by [`Runtime::step`] before enumerating choices, so fault
    /// effects land at deterministic action counts.
    fn apply_due_faults(&mut self) {
        let Some(mut clock) = self.faults.take() else {
            return;
        };
        let slots = &mut self.slots;
        clock.advance(self.actions, |agent| {
            if let Some(slot) = slots.get_mut(agent) {
                slot.crashed = true;
            }
        });
        self.faults = Some(clock);
    }

    /// `true` if dense edge `index` is inside an outage window right now.
    fn edge_is_down(&self, index: usize) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.edge_down(index, self.actions))
    }

    /// All currently legal choices with meeting annotations.
    ///
    /// Allocates a fresh vector; the run loop and search use
    /// [`Runtime::legal_choices_into`] to reuse a buffer across steps.
    pub fn legal_choices(&self) -> Vec<ChoiceInfo> {
        let mut out = Vec::new();
        self.legal_choices_into(&mut out);
        out
    }

    /// Writes all currently legal choices into `out` (cleared first), in
    /// the same order as [`Runtime::legal_choices`].
    pub fn legal_choices_into(&self, out: &mut Vec<ChoiceInfo>) {
        out.clear();
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.crashed {
                continue; // crash-stop: the agent never acts again
            }
            if !slot.awake {
                out.push(ChoiceInfo {
                    choice: Choice {
                        agent: i,
                        kind: ActionKind::Wake,
                    },
                    causes_meeting: false,
                });
                continue;
            }
            match slot.place {
                Place::AtNode(v) => {
                    if let Some((port, _to)) = slot.pending {
                        let index = self.g.edge_index_at(v, port);
                        if self.edge_is_down(index) {
                            continue; // outage: entry blocked until release
                        }
                        let causes_meeting = self.start_would_meet(index, v);
                        out.push(ChoiceInfo {
                            choice: Choice {
                                agent: i,
                                kind: ActionKind::Start,
                            },
                            causes_meeting,
                        });
                    }
                }
                Place::Inside { from, to, .. } => {
                    let causes_meeting = self.finish_would_meet(i, slot.inside_index, from, to);
                    out.push(ChoiceInfo {
                        choice: Choice {
                            agent: i,
                            kind: ActionKind::Finish,
                        },
                        causes_meeting,
                    });
                }
            }
        }
    }

    /// `true` if the departure node is the canonical smaller endpoint of
    /// the edge with dense index `index` — the key of the direction queues.
    fn departs_a_side(&self, index: usize, from: NodeId) -> bool {
        self.g.edge_id(index).a == from
    }

    fn start_would_meet(&self, index: usize, from: NodeId) -> bool {
        // Opposite direction = entered from the other endpoint.
        !self.edges[index]
            .queue(!self.departs_a_side(index, from))
            .is_empty()
    }

    fn finish_would_meet(&self, i: usize, index: usize, from: NodeId, to: NodeId) -> bool {
        // Overtaking: any same-direction occupant that entered before `i`.
        let q = self.edges[index].queue(self.departs_a_side(index, from));
        let my_pos = q
            .iter()
            .position(|&a| a == i)
            .expect("agent must be queued");
        if my_pos > 0 {
            return true;
        }
        // Node contact at the arrival node.
        self.slots
            .iter()
            .enumerate()
            .any(|(j, s)| j != i && s.place == Place::AtNode(to))
    }

    /// Applies one adversary choice; returns the meetings it forced.
    ///
    /// Allocates the returned vector only when meetings fired; the run loop
    /// uses [`Runtime::apply_into`] to reuse a buffer across steps.
    ///
    /// # Panics
    ///
    /// Panics if the choice is not currently legal.
    pub fn apply(&mut self, choice: Choice) -> Vec<Meeting> {
        let mut out = Vec::new();
        self.apply_into(choice, &mut out);
        out
    }

    /// Applies one adversary choice, pushing the meetings it forced onto
    /// `out` (which is *not* cleared — callers owning the buffer clear it
    /// between steps).
    ///
    /// # Panics
    ///
    /// Panics if the choice is not currently legal.
    pub fn apply_into(&mut self, choice: Choice, out: &mut Vec<Meeting>) {
        self.actions += 1;
        let i = choice.agent;
        match choice.kind {
            ActionKind::Wake => {
                assert!(!self.slots[i].awake, "Wake on an awake agent");
                self.slots[i].awake = true;
                self.fetch_pending(i);
                // Waking at an occupied node is a meeting (the agents stand
                // at the same point).
                let here = match self.slots[i].place {
                    Place::AtNode(v) => v,
                    Place::Inside { .. } => unreachable!("asleep agents are at nodes"),
                };
                let mut present = std::mem::take(&mut self.scratch);
                present.clear();
                present.extend(
                    self.slots
                        .iter()
                        .enumerate()
                        .filter(|(j, s)| *j != i && s.awake && s.place == Place::AtNode(here))
                        .map(|(j, _)| j),
                );
                if !present.is_empty() {
                    present.push(i);
                    present.sort_unstable();
                    let m = self.declare(present.clone(), MeetingPlace::Node(here));
                    out.push(m);
                }
                self.scratch = present;
            }
            ActionKind::Start => {
                let slot = &mut self.slots[i];
                assert!(slot.awake, "Start on a sleeping agent");
                let v = match slot.place {
                    Place::AtNode(v) => v,
                    _ => panic!("Start on an agent inside an edge"),
                };
                let (port, to) = slot.pending.take().expect("Start without a committed move");
                let index = self.g.edge_index_at(v, port);
                let edge = self.g.edge_id(index);
                slot.place = Place::Inside { edge, from: v, to };
                slot.inside_index = index;
                slot.entered_at = self.actions;
                let from_a = edge.a == v;
                // Forced crossings with opposite-direction occupants
                // (captured into scratch: `declare` below re-borrows self).
                let mut opposite = std::mem::take(&mut self.scratch);
                opposite.clear();
                opposite.extend_from_slice(self.edges[index].queue(!from_a));
                self.edges[index].queue_mut(from_a).push(i);
                for &j in &opposite {
                    let m = self.declare(vec![i.min(j), i.max(j)], MeetingPlace::Edge(edge));
                    out.push(m);
                }
                self.scratch = opposite;
            }
            ActionKind::Finish => {
                let (edge, from, to) = match self.slots[i].place {
                    Place::Inside { edge, from, to } => (edge, from, to),
                    _ => panic!("Finish on an agent not inside an edge"),
                };
                let index = self.slots[i].inside_index;
                // Overtaken same-direction occupants (entered earlier).
                let q = self.edges[index].queue_mut(edge.a == from);
                let my_pos = q.iter().position(|&a| a == i).expect("agent queued");
                let mut overtaken = std::mem::take(&mut self.scratch);
                overtaken.clear();
                overtaken.extend_from_slice(&q[..my_pos]);
                q.remove(my_pos);
                self.slots[i].place = Place::AtNode(to);
                self.slots[i].inside_index = usize::MAX;
                self.slots[i].traversals += 1;
                self.total_traversals += 1;
                for &j in &overtaken {
                    let m = self.declare_excluding(
                        vec![i.min(j), i.max(j)],
                        MeetingPlace::Edge(edge),
                        Some(i),
                    );
                    out.push(m);
                }
                // Node contact: everyone standing at the arrival node.
                // Sleeping agents there are woken by the visit.
                overtaken.clear();
                let mut present = overtaken;
                present.extend(
                    self.slots
                        .iter()
                        .enumerate()
                        .filter(|(j, s)| *j != i && s.place == Place::AtNode(to))
                        .map(|(j, _)| j),
                );
                if !present.is_empty() {
                    for &j in &present {
                        if !self.slots[j].awake && !self.slots[j].crashed {
                            self.slots[j].awake = true;
                            self.fetch_pending(j);
                        }
                    }
                    present.push(i);
                    present.sort_unstable();
                    let m =
                        self.declare_excluding(present.clone(), MeetingPlace::Node(to), Some(i));
                    out.push(m);
                }
                self.scratch = present;
                // The agent commits its next move knowing everything that
                // happened up to and including this arrival. (If a meeting
                // was declared, `declare` already committed it with the
                // meeting information in hand.)
                if self.slots[i].pending.is_none() {
                    self.fetch_pending(i);
                }
            }
        }
    }

    /// `true` iff applying [`ActionKind::Wake`] to agent `i` right now
    /// would declare a meeting — the exact predicate of the `Wake` arm of
    /// [`Runtime::apply_into`] (another *awake* agent standing at the
    /// sleeper's node; a co-located sleeper does not meet). `Wake` is the
    /// only action kind whose meetings are not annotated by
    /// [`Runtime::legal_choices_into`], so this check is what lets the
    /// memoized search route every child through the undoable-apply path.
    pub(crate) fn wake_would_meet(&self, i: usize) -> bool {
        let here = match self.slots[i].place {
            Place::AtNode(v) => v,
            Place::Inside { .. } => unreachable!("asleep agents are at nodes"),
        };
        self.slots
            .iter()
            .enumerate()
            .any(|(j, s)| j != i && s.awake && s.place == Place::AtNode(here))
    }

    /// Applies a choice that is known to be meeting-free (`causes_meeting`
    /// annotation false; for `Wake`, [`Runtime::wake_would_meet`] false)
    /// and returns a token that [`Runtime::undo`] uses to rewind it
    /// exactly. The depth-first memoized search pairs these around every
    /// descent instead of snapshotting whole runtimes: a meeting-free
    /// apply mutates only the acting agent's slot, one edge queue, and the
    /// action/traversal counters, so saving that slice is O(1) in the
    /// number of agents and edges — and a `Start` never touches its
    /// behavior at all, so its token is a couple of `Copy` fields.
    ///
    /// `out` receives the apply's meetings exactly as
    /// [`Runtime::apply_into`] would (not cleared first).
    ///
    /// # Panics
    ///
    /// Panics if the choice is not currently legal, or if applying it
    /// declares a meeting after all — that would mean the caller's
    /// meeting-free evidence was wrong and the token cannot cover the
    /// mutation (peer behaviors were notified).
    pub(crate) fn apply_undoable(
        &mut self,
        choice: Choice,
        out: &mut Vec<Meeting>,
    ) -> ApplyUndo<B> {
        debug_assert!(
            self.faults.is_none(),
            "undoable applies assume no fault plan is installed"
        );
        let i = choice.agent;
        let token = match choice.kind {
            // `Start` only moves the agent into an edge: `pending` is
            // taken, `place`/`inside_index` change, the queue gains a tail
            // entry. The behavior is untouched (it committed at arrival).
            ActionKind::Start => ApplyUndo::Start {
                agent: i,
                place: self.slots[i].place,
                pending: self.slots[i].pending,
            },
            // `Finish` re-commits the behavior on arrival (`fetch_pending`)
            // — fork the whole slot. The queue removal happens at the
            // agent's current position, recorded here so undo can reinsert
            // in place.
            ActionKind::Finish => {
                let (edge, from) = match self.slots[i].place {
                    Place::Inside { edge, from, .. } => (edge, from),
                    _ => panic!("Finish on an agent not inside an edge"),
                };
                let index = self.slots[i].inside_index;
                let from_a = edge.a == from;
                let my_pos = self.edges[index]
                    .queue(from_a)
                    .iter()
                    .position(|&a| a == i)
                    .expect("agent must be queued");
                ApplyUndo::Finish {
                    slot: self.slots[i].fork(),
                    agent: i,
                    index,
                    from_a,
                    my_pos,
                }
            }
            // `Wake` flips the flag and commits the first move — behavior
            // mutates, fork the slot.
            ActionKind::Wake => ApplyUndo::Wake {
                slot: self.slots[i].fork(),
                agent: i,
            },
        };
        let before = out.len();
        self.apply_into(choice, out);
        assert_eq!(
            out.len(),
            before,
            "apply_undoable on a choice that declared a meeting"
        );
        token
    }

    /// Rewinds one [`Runtime::apply_undoable`] call. The runtime must be
    /// in exactly the state that apply left it in (the memoized search
    /// guarantees this: every descendant's own applies were undone before
    /// this one).
    pub(crate) fn undo(&mut self, token: ApplyUndo<B>) {
        self.actions -= 1;
        match token {
            ApplyUndo::Start {
                agent,
                place,
                pending,
            } => {
                // The applied `Start` left the agent inside the edge it
                // entered; pop it back off that queue's tail.
                let (index, from_a) = match self.slots[agent].place {
                    Place::Inside { edge, from, .. } => {
                        (self.slots[agent].inside_index, edge.a == from)
                    }
                    _ => unreachable!("undo of a Start finds the agent inside an edge"),
                };
                let q = self.edges[index].queue_mut(from_a);
                debug_assert_eq!(q.last(), Some(&agent), "Start pushed the queue tail");
                q.pop();
                let slot = &mut self.slots[agent];
                slot.place = place;
                slot.inside_index = usize::MAX;
                slot.pending = pending;
            }
            ApplyUndo::Finish {
                slot,
                agent,
                index,
                from_a,
                my_pos,
            } => {
                self.total_traversals -= 1;
                self.edges[index].queue_mut(from_a).insert(my_pos, agent);
                self.slots[agent] = slot;
            }
            ApplyUndo::Wake { slot, agent } => {
                self.slots[agent] = slot;
            }
        }
    }

    /// Records a meeting and delivers it to every participant. Committed
    /// moves stay binding (see crate docs), but *parked* participants get a
    /// fresh `next_port` query — parking is a decision, not a commitment,
    /// and new information may end it (e.g. an SGL explorer whose token
    /// just arrived).
    fn declare(&mut self, agents: Vec<usize>, place: MeetingPlace) -> Meeting {
        self.declare_excluding(agents, place, None)
    }

    /// Like [`Runtime::declare`] but defers the re-commit of `skip` (the
    /// agent whose action produced this meeting commits once at the end of
    /// its action, after *all* resulting meetings are delivered).
    fn declare_excluding(
        &mut self,
        agents: Vec<usize>,
        place: MeetingPlace,
        skip: Option<usize>,
    ) -> Meeting {
        let infos: Vec<B::Info> = agents
            .iter()
            .map(|&j| self.slots[j].behavior.info())
            .collect();
        for (idx, &j) in agents.iter().enumerate() {
            // Crash-stop body semantics (see `crate::fault`): a crashed
            // participant's info stays readable by the live agents, but it
            // receives no delivery and never re-commits.
            if self.slots[j].crashed {
                continue;
            }
            let peers: Vec<B::Info> = infos
                .iter()
                .enumerate()
                .filter(|(p, _)| *p != idx)
                .map(|(_, info)| info.clone())
                .collect();
            self.slots[j].behavior.on_meeting(place, &peers);
            // A parked agent may decide to move again after learning
            // something new (e.g. an SGL explorer whose token arrives).
            if Some(j) != skip
                && self.slots[j].awake
                && matches!(self.slots[j].place, Place::AtNode(_))
                && self.slots[j].pending.is_none()
            {
                self.fetch_pending(j);
            }
        }
        let m = Meeting {
            agents,
            place,
            at_cost: self.total_traversals,
            at_action: self.actions,
        };
        // Log-loss fault: the meeting *happened* (participants were served
        // above, the caller still sees it) but its durable append is lost.
        let lost = self
            .faults
            .as_ref()
            .is_some_and(|f| f.log_lost(self.actions));
        if !lost {
            self.meetings.push(m.clone());
        }
        m
    }

    /// Asks the behavior for its next committed move from its current node.
    fn fetch_pending(&mut self, i: usize) {
        let v = match self.slots[i].place {
            Place::AtNode(v) => v,
            Place::Inside { .. } => unreachable!("pending is only fetched at nodes"),
        };
        let slot = &mut self.slots[i];
        slot.pending = slot.behavior.next_port().map(|port| {
            assert!(port.0 < self.g.degree(v), "behavior chose an invalid port");
            (port, self.g.traverse(v, port).node)
        });
    }

    /// Executes **one** adversary decision — exactly one iteration of
    /// [`Runtime::run`]'s loop (cutoff check, legal-choice enumeration,
    /// `adversary.choose`, apply, first-meeting check), decision for
    /// decision. Meetings forced by the step are pushed onto
    /// `new_meetings` (cleared first); `Some(end)` means the run is over
    /// and no action was taken this call (for `Cutoff`/`AllParked`) or
    /// the configured stop fired (`Meeting`).
    ///
    /// `run` is a loop over `step`, so callers driving a run step-by-step
    /// — the perf harness's checkpointing loop, the snapshot-detour
    /// golden suites — stay in lockstep with `run()` by construction.
    pub fn step(
        &mut self,
        adversary: &mut dyn crate::adversary::Adversary,
        new_meetings: &mut Vec<Meeting>,
    ) -> Option<RunEnd> {
        new_meetings.clear();
        if self.total_traversals >= self.config.max_total_traversals {
            return Some(RunEnd::Cutoff);
        }
        self.apply_due_faults();
        let mut choices = std::mem::take(&mut self.choice_scratch);
        self.legal_choices_into(&mut choices);
        while choices.is_empty() {
            // A choiceless state is terminal unless an edge outage is the
            // only thing pinning a live agent — then the adversary's sole
            // move is to wait, so the action clock jumps to the earliest
            // release (each jump is strictly forward past at least one
            // live window, so this loop terminates). Never-hang contract:
            // with no blocking outage the state is classified, not spun.
            match self.earliest_blocked_release() {
                Some(release) => {
                    self.actions = release;
                    self.apply_due_faults();
                    self.legal_choices_into(&mut choices);
                }
                None => {
                    self.choice_scratch = choices;
                    return Some(self.classify_quiescence());
                }
            }
        }
        let choice = adversary.choose(&choices, self.actions);
        debug_assert!(
            choices.iter().any(|c| c.choice == choice),
            "adversary returned an illegal choice"
        );
        self.apply_into(choice, new_meetings);
        self.choice_scratch = choices;
        if self.config.stop_on_first_meeting && !new_meetings.is_empty() {
            return Some(RunEnd::Meeting);
        }
        None
    }

    /// Runs under `adversary` until a terminal condition (see [`RunEnd`]).
    ///
    /// The returned outcome's meeting list is an O(1) handle onto the
    /// runtime's copy-on-write log — constructing the outcome costs
    /// O(agents) however many meetings the run declared.
    pub fn run(&mut self, adversary: &mut dyn crate::adversary::Adversary) -> RunOutcome {
        let mut new_meetings: Vec<Meeting> = Vec::new();
        let end = loop {
            if let Some(end) = self.step(adversary, &mut new_meetings) {
                break end;
            }
        };
        self.outcome(end)
    }

    /// Earliest action at which an outage currently blocking a live
    /// agent's committed `Start` releases — `None` when no live agent is
    /// outage-blocked (then a choiceless state is genuinely terminal).
    fn earliest_blocked_release(&self) -> Option<u64> {
        let clock = self.faults.as_ref()?;
        let mut earliest: Option<u64> = None;
        for slot in &self.slots {
            if slot.crashed || !slot.awake {
                continue;
            }
            if let (Place::AtNode(v), Some((port, _))) = (slot.place, slot.pending) {
                let index = self.g.edge_index_at(v, port);
                if let Some(r) = clock.edge_release(index, self.actions) {
                    earliest = Some(earliest.map_or(r, |e| e.min(r)));
                }
            }
        }
        earliest
    }

    /// Names a choiceless state: `AllParked` clean, the fault-aware
    /// variants when crash-stop faults are in the picture.
    fn classify_quiescence(&self) -> RunEnd {
        let crashed = self.slots.iter().filter(|s| s.crashed).count();
        if crashed == 0 {
            RunEnd::AllParked
        } else if crashed == self.slots.len() {
            RunEnd::AllCrashed
        } else {
            RunEnd::SurvivorsParked
        }
    }

    /// Assembles the current state into a [`RunOutcome`] ending with `end`.
    fn outcome(&self, end: RunEnd) -> RunOutcome {
        RunOutcome {
            end,
            total_traversals: self.total_traversals,
            per_agent: self.slots.iter().map(|s| s.traversals).collect(),
            meetings: self.meetings.clone(),
            actions: self.actions,
        }
    }

    /// Assembles the run's [`crate::stop::Progress`] record in O(agents):
    /// the incremental counters the runtime already maintains, a census of
    /// agent states, and the agents' [`Behavior::progress`] reports.
    pub fn progress(&self) -> crate::stop::Progress {
        let mut parked = 0usize;
        let mut asleep = 0usize;
        let mut moving = 0usize;
        let mut crashed = 0usize;
        let mut done_agents = 0usize;
        let mut metric_sum = 0u64;
        let mut metric_max = 0u64;
        let mut min_tr = u64::MAX;
        let mut max_tr = 0u64;
        let mut min_agent = 0usize;
        let mut longest_hold = 0u64;
        let mut longest_hold_agent = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            let bp = slot.behavior.progress();
            metric_sum += bp.metric;
            metric_max = metric_max.max(bp.metric);
            if bp.done {
                done_agents += 1;
            }
            // Crashed agents leave the liveness census and the traversal
            // extremes: a dead agent is trivially "starved", and counting
            // it would blind the starvation signal for the survivors.
            if slot.crashed {
                crashed += 1;
                continue;
            }
            if !slot.awake {
                asleep += 1;
            } else {
                match slot.place {
                    Place::AtNode(_) => {
                        if slot.pending.is_none() {
                            parked += 1;
                        }
                    }
                    Place::Inside { .. } => {
                        moving += 1;
                        // Structural suspension census: how long has this
                        // (live, awake) agent held its committed crossing?
                        // Crashed slots were skipped above — a body wedged
                        // mid-edge forever must not read as "suspended".
                        let hold = self.actions - slot.entered_at;
                        if hold > longest_hold {
                            longest_hold = hold;
                            longest_hold_agent = i;
                        }
                    }
                }
            }
            if slot.traversals < min_tr {
                min_tr = slot.traversals;
                min_agent = i;
            }
            max_tr = max_tr.max(slot.traversals);
        }
        let last = self.meetings.last();
        crate::stop::Progress {
            actions: self.actions,
            total_traversals: self.total_traversals,
            meetings: self.meetings.len() as u64,
            last_meeting_action: last.map(|m| m.at_action),
            last_meeting_cost: last.map(|m| m.at_cost),
            agents: self.slots.len(),
            parked,
            asleep,
            moving,
            crashed,
            done_agents,
            min_agent_traversals: if min_tr == u64::MAX { 0 } else { min_tr },
            max_agent_traversals: max_tr,
            min_agent,
            metric_sum,
            metric_max,
            longest_hold_actions: longest_hold,
            longest_hold_agent,
        }
    }

    /// Runs under `adversary` until a terminal condition **or** until
    /// `policy` calls the run over — consulted with a fresh
    /// [`crate::stop::Progress`] record every
    /// [`crate::stop::StopPolicy::cadence`] adversary actions (and once
    /// before the first action, so priming policies observe the start).
    ///
    /// Between policy checks this is [`Runtime::run`]'s exact loop —
    /// decision for decision — and policy checks are pure reads, so a run
    /// whose policy never fires is bit-identical to a plain `run()`. The
    /// config's traversal budget ([`RunConfig::with_cutoff`]) stays active
    /// as the hard backstop.
    pub fn run_with_policy(
        &mut self,
        adversary: &mut dyn crate::adversary::Adversary,
        policy: &mut dyn crate::stop::StopPolicy,
    ) -> RunOutcome {
        self.run_with_policy_observed(adversary, policy, |_| {})
    }

    /// [`Runtime::run_with_policy`] with a read-only observer invoked at
    /// every cadence point the policy declines to stop at — the hook the
    /// durable-sweep checkpointer uses to persist in-flight state without
    /// perturbing the run (the observer takes `&Self`, so it *cannot*
    /// perturb it; a no-op observer is bit-identical to
    /// [`Runtime::run_with_policy`] by construction).
    pub fn run_with_policy_observed(
        &mut self,
        adversary: &mut dyn crate::adversary::Adversary,
        policy: &mut dyn crate::stop::StopPolicy,
        mut observer: impl FnMut(&Self),
    ) -> RunOutcome {
        let cadence = policy.cadence().max(1);
        let mut next_check = self.actions;
        let mut new_meetings: Vec<Meeting> = Vec::new();
        let end = loop {
            if self.actions >= next_check {
                // The config budget wins ties: if the backstop is already
                // exhausted, this run IS a cutoff — a detector firing in
                // the same cadence gap must not relabel it (detector ends
                // mean "retired strictly under the budget").
                if self.total_traversals >= self.config.max_total_traversals {
                    break RunEnd::Cutoff;
                }
                if let Some(end) = policy.check(&self.progress()) {
                    break end;
                }
                observer(self);
                next_check = self.actions + cadence;
            }
            if let Some(end) = self.step(adversary, &mut new_meetings) {
                break end;
            }
        };
        self.outcome(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::RoundRobin;
    use crate::behavior::ScriptBehavior;
    use rv_graph::generators;

    fn two_walkers(g: &Graph) -> Vec<ScriptBehavior> {
        vec![
            ScriptBehavior::new(NodeId(0), [0, 0, 0, 0]),
            ScriptBehavior::new(NodeId(g.order() / 2), [0, 0, 0, 0]),
        ]
    }

    /// Steps `n` legal choices (first legal each time), stopping early if
    /// the run terminates.
    fn step_n<B: Behavior>(rt: &mut Runtime<B>, n: usize) {
        let mut choices = Vec::new();
        let mut meetings = Vec::new();
        for _ in 0..n {
            rt.legal_choices_into(&mut choices);
            let Some(c) = choices.first() else { return };
            meetings.clear();
            rt.apply_into(c.choice, &mut meetings);
        }
    }

    #[test]
    fn snapshot_captures_and_restore_rewinds() {
        let g = generators::ring(6);
        let mut rt = Runtime::new(&g, two_walkers(&g), RunConfig::rendezvous());
        step_n(&mut rt, 5);
        let snap = rt.snapshot();
        assert_eq!(snap.actions(), rt.actions());
        assert_eq!(snap.total_traversals(), rt.total_traversals());
        let places: Vec<Place> = (0..rt.agent_count()).map(|i| rt.place(i)).collect();

        // Diverge, then rewind.
        step_n(&mut rt, 4);
        assert_ne!(rt.actions(), snap.actions());
        rt.restore(&snap);
        assert_eq!(rt.actions(), snap.actions());
        assert_eq!(rt.total_traversals(), snap.total_traversals());
        for (i, &p) in places.iter().enumerate() {
            assert_eq!(rt.place(i), p);
        }
    }

    #[test]
    fn one_snapshot_seeds_many_identical_continuations() {
        let g = generators::ring(6);
        let mut rt = Runtime::new(&g, two_walkers(&g), RunConfig::rendezvous());
        step_n(&mut rt, 3);
        let snap = rt.snapshot();
        let finish = |rt: &mut Runtime<ScriptBehavior>| {
            let out = rt.run(&mut RoundRobin::new());
            format!("{:?} {} {:?}", out.end, out.total_traversals, out.meetings)
        };
        let a = {
            let mut fresh = Runtime::from_snapshot(&g, &snap, RunConfig::rendezvous());
            finish(&mut fresh)
        };
        rt.restore(&snap);
        let b = finish(&mut rt);
        rt.restore(&snap);
        let c = finish(&mut rt);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    /// Runs a protocol-mode schedule long enough to accumulate meetings,
    /// then checks the O(agents + edges) snapshot contract structurally:
    /// the snapshot's meeting log *shares* the runtime's sealed chunks
    /// instead of copying them, at any log length.
    #[test]
    fn protocol_snapshots_share_the_meeting_log() {
        let g = generators::ring(4);
        // Two scripted walkers marching in lockstep on a small ring meet
        // constantly; protocol mode keeps going through every meeting.
        let behaviors = vec![
            ScriptBehavior::new(NodeId(0), [0; 600]),
            ScriptBehavior::new(NodeId(1), [0; 600]),
        ];
        let mut rt = Runtime::new(&g, behaviors, RunConfig::protocol());
        let mut choices = Vec::new();
        let mut meetings = Vec::new();
        let mut checked = 0;
        loop {
            rt.legal_choices_into(&mut choices);
            let Some(c) = choices.first() else { break };
            meetings.clear();
            rt.apply_into(c.choice, &mut meetings);
            if rt.actions().is_multiple_of(64) {
                let snap = rt.snapshot();
                assert!(
                    snap.meetings().shares_storage_with(rt.meetings()),
                    "snapshot at action {} copied the meeting log",
                    rt.actions()
                );
                assert_eq!(snap.meetings().len(), rt.meetings().len());
                checked += 1;
            }
        }
        assert!(checked > 5, "the schedule must snapshot repeatedly");
        assert!(
            rt.meetings().len() > 100,
            "the schedule must accumulate meetings (got {})",
            rt.meetings().len()
        );
    }

    #[test]
    fn run_outcome_shares_the_meeting_log() {
        let g = generators::ring(6);
        let mut rt = Runtime::new(&g, two_walkers(&g), RunConfig::protocol());
        let out = rt.run(&mut RoundRobin::new());
        assert_eq!(out.end, RunEnd::AllParked);
        assert!(
            out.meetings.shares_storage_with(rt.meetings()) || rt.meetings().len() < 32, // short logs have no sealed chunks to share
            "RunOutcome must hand out the COW log, not a deep copy"
        );
        assert_eq!(out.meetings.len(), rt.meetings().len());
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn restore_rejects_foreign_snapshots() {
        let g6 = generators::ring(6);
        let g4 = generators::ring(4);
        let rt6 = Runtime::new(&g6, two_walkers(&g6), RunConfig::rendezvous());
        let snap = rt6.snapshot();
        let mut rt4 = Runtime::new(&g4, two_walkers(&g4), RunConfig::rendezvous());
        rt4.restore(&snap);
    }
}
