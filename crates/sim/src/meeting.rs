//! Meeting events.

use rv_graph::{EdgeId, NodeId};

/// Where a forced meeting happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeetingPlace {
    /// All participants stood at this node.
    Node(NodeId),
    /// The participants' position curves crossed strictly inside this edge.
    Edge(EdgeId),
}

/// A forced meeting between two or more agents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Meeting {
    /// Indices (into the runtime's agent vector) of the participants.
    pub agents: Vec<usize>,
    /// Where the meeting happened.
    pub place: MeetingPlace,
    /// Total completed traversals (over all agents) when the meeting was
    /// declared — the *cost* at meeting time.
    pub at_cost: u64,
    /// Scheduler action counter when the meeting was declared.
    pub at_action: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meeting_place_comparisons() {
        let e = EdgeId::new(NodeId(1), NodeId(2));
        assert_eq!(
            MeetingPlace::Edge(e),
            MeetingPlace::Edge(EdgeId::new(NodeId(2), NodeId(1)))
        );
        assert_ne!(MeetingPlace::Node(NodeId(1)), MeetingPlace::Node(NodeId(2)));
    }
}
