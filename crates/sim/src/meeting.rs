//! Meeting events.

use rv_graph::{EdgeId, NodeId};

/// Where a forced meeting happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeetingPlace {
    /// All participants stood at this node.
    Node(NodeId),
    /// The participants' position curves crossed strictly inside this edge.
    Edge(EdgeId),
}

/// A forced meeting between two or more agents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Meeting {
    /// Indices (into the runtime's agent vector) of the participants.
    pub agents: Vec<usize>,
    /// Where the meeting happened.
    pub place: MeetingPlace,
    /// Total completed traversals (over all agents) when the meeting was
    /// declared — the *cost* at meeting time.
    pub at_cost: u64,
    /// Scheduler action counter when the meeting was declared.
    pub at_action: u64,
}

// `Debug` output (derived, above) is the bit-exact form the golden suite
// fingerprints; `Display` (below) is the compact human form that failing
// snapshot/fork tests print. Keep both — they serve different readers.

impl std::fmt::Display for MeetingPlace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeetingPlace::Node(v) => write!(f, "node {}", v.0),
            MeetingPlace::Edge(e) => write!(f, "edge {}–{}", e.a.0, e.b.0),
        }
    }
}

impl std::fmt::Display for Meeting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "meeting of {:?} at {} (cost {}, action {})",
            self.agents, self.place, self.at_cost, self.at_action
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meeting_place_comparisons() {
        let e = EdgeId::new(NodeId(1), NodeId(2));
        assert_eq!(
            MeetingPlace::Edge(e),
            MeetingPlace::Edge(EdgeId::new(NodeId(2), NodeId(1)))
        );
        assert_ne!(MeetingPlace::Node(NodeId(1)), MeetingPlace::Node(NodeId(2)));
    }

    #[test]
    fn display_is_compact_and_readable() {
        let m = Meeting {
            agents: vec![0, 1],
            place: MeetingPlace::Edge(EdgeId::new(NodeId(2), NodeId(1))),
            at_cost: 54,
            at_action: 110,
        };
        assert_eq!(
            m.to_string(),
            "meeting of [0, 1] at edge 1–2 (cost 54, action 110)"
        );
        assert_eq!(MeetingPlace::Node(NodeId(7)).to_string(), "node 7");
    }
}
