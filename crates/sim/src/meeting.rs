//! Meeting events and the copy-on-write meeting log.

use rv_graph::{EdgeId, NodeId};
use std::sync::Arc;

/// Where a forced meeting happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeetingPlace {
    /// All participants stood at this node.
    Node(NodeId),
    /// The participants' position curves crossed strictly inside this edge.
    Edge(EdgeId),
}

/// A forced meeting between two or more agents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Meeting {
    /// Indices (into the runtime's agent vector) of the participants.
    pub agents: Vec<usize>,
    /// Where the meeting happened.
    pub place: MeetingPlace,
    /// Total completed traversals (over all agents) when the meeting was
    /// declared — the *cost* at meeting time.
    pub at_cost: u64,
    /// Scheduler action counter when the meeting was declared.
    pub at_action: u64,
}

// `Debug` output (derived, above) is the bit-exact form the golden suite
// fingerprints; `Display` (below) is the compact human form that failing
// snapshot/fork tests print. Keep both — they serve different readers.

impl std::fmt::Display for MeetingPlace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeetingPlace::Node(v) => write!(f, "node {}", v.0),
            MeetingPlace::Edge(e) => write!(f, "edge {}–{}", e.a.0, e.b.0),
        }
    }
}

impl std::fmt::Display for Meeting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "meeting of {:?} at {} (cost {}, action {})",
            self.agents, self.place, self.at_cost, self.at_action
        )
    }
}

/// Meetings per sealed chunk. Bounds the tail copied by `clone` (and the
/// per-push amortised sealing cost); large enough that the per-chunk `Arc`
/// overhead is noise next to the `Meeting`s themselves.
const CHUNK: usize = 32;

/// A sealed chunk of the log plus the chain of all earlier chunks,
/// newest-first. Shared (`Arc`) between every log handle that contains it.
#[derive(Debug)]
struct Node {
    /// Exactly [`CHUNK`] meetings, in declaration order.
    chunk: Vec<Meeting>,
    /// The previously sealed chunk, if any.
    prev: Option<Arc<Node>>,
}

impl Drop for Node {
    fn drop(&mut self) {
        // Unlink the chain iteratively: the default recursive drop would
        // use one stack frame per chunk, overflowing on logs with millions
        // of meetings. Stop at the first node another handle still shares.
        let mut prev = self.prev.take();
        while let Some(node) = prev {
            match Arc::into_inner(node) {
                Some(mut inner) => prev = inner.prev.take(),
                None => break,
            }
        }
    }
}

/// A persistent, append-only log of [`Meeting`]s with **O(1) clone**.
///
/// Sealed history lives in shared `Arc` chunks (a newest-first chain);
/// only the unsealed tail (at most one chunk of 32 meetings) is owned, so
/// cloning a log of any length copies a bounded tail plus one `Arc`
/// bump — this is what makes [`crate::Runtime::snapshot`] O(agents +
/// edges) in protocol mode, where the log grows with gossip for the whole
/// run. Handles are value types: pushing onto one handle never changes
/// what another observes (copy-on-write at chunk granularity).
///
/// `Debug` renders exactly like `Vec<Meeting>` — the golden-fingerprint
/// suites format outcomes with `{:?}` and must not move.
#[derive(Clone, Default)]
pub struct MeetingLog {
    /// Sealed chunks, newest first; `None` while the log is shorter than
    /// one chunk.
    sealed: Option<Arc<Node>>,
    /// Meetings in the sealed chain (always a multiple of [`CHUNK`]).
    sealed_len: usize,
    /// The growing tail; sealed into the chain at [`CHUNK`] meetings.
    tail: Vec<Meeting>,
}

impl MeetingLog {
    /// An empty log.
    pub fn new() -> Self {
        MeetingLog::default()
    }

    /// Number of meetings logged.
    pub fn len(&self) -> usize {
        self.sealed_len + self.tail.len()
    }

    /// `true` if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a meeting. Amortised O(1); never touches sealed history.
    pub(crate) fn push(&mut self, m: Meeting) {
        self.tail.push(m);
        if self.tail.len() == CHUNK {
            let chunk = std::mem::replace(&mut self.tail, Vec::with_capacity(CHUNK));
            self.sealed = Some(Arc::new(Node {
                chunk,
                prev: self.sealed.take(),
            }));
            self.sealed_len += CHUNK;
        }
    }

    /// Empties the log. Sealed chunks still referenced by other handles
    /// (snapshots, outcomes) stay alive over there; this handle restarts
    /// from scratch, keeping the tail's allocation.
    pub(crate) fn clear(&mut self) {
        self.sealed = None;
        self.sealed_len = 0;
        self.tail.clear();
    }

    /// The most recent meeting, if any.
    pub fn last(&self) -> Option<&Meeting> {
        self.tail
            .last()
            .or_else(|| self.sealed.as_ref().and_then(|n| n.chunk.last()))
    }

    /// Iterates the meetings in declaration order.
    ///
    /// Walking the chunk chain costs O(len / CHUNK) up front (the chain is
    /// newest-first and iteration is oldest-first); the traversal itself is
    /// then linear.
    pub fn iter(&self) -> Iter<'_> {
        let mut chunks = Vec::with_capacity(self.sealed_len / CHUNK);
        let mut cur = self.sealed.as_deref();
        while let Some(n) = cur {
            chunks.push(&n.chunk[..]);
            cur = n.prev.as_deref();
        }
        chunks.reverse();
        chunks.push(&self.tail[..]);
        Iter {
            chunks,
            chunk: 0,
            at: 0,
        }
    }

    /// Copies the log out into a plain vector (oldest first).
    pub fn to_vec(&self) -> Vec<Meeting> {
        self.iter().cloned().collect()
    }

    /// `true` if `self` and `other` share their newest sealed chunk by
    /// pointer — the structural-sharing property the O(1)-clone tests
    /// assert. Logs shorter than one chunk share trivially (both have no
    /// sealed history to copy).
    pub fn shares_storage_with(&self, other: &Self) -> bool {
        match (&self.sealed, &other.sealed) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// A per-agent **view**: iterates, in declaration order, exactly the
    /// meetings `agent` participated in — a filtered cursor over the
    /// shared chunk chain, not a materialised copy, so protocol analytics
    /// (per-agent meeting counts, who-met-whom completeness checks) walk
    /// the log without a `to_vec()` of millions of exchanges.
    pub fn for_agent(&self, agent: usize) -> AgentMeetings<'_> {
        AgentMeetings {
            inner: self.iter(),
            agent,
        }
    }

    /// `true` if agents `a` and `b` ever appeared in one meeting — the
    /// pairwise building block of the SGL post-hoc completeness check
    /// (the completion-threshold substitution is sound on a run iff the
    /// minimal agent met every other agent). Walks `a`'s view —
    /// allocation-free, linear in the log's length, early-exiting at the
    /// first shared meeting.
    pub fn pair_met(&self, a: usize, b: usize) -> bool {
        self.for_agent(a).any(|m| m.agents.contains(&b))
    }
}

impl std::fmt::Debug for MeetingLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for MeetingLog {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for MeetingLog {}

/// In-order borrowed iterator over a [`MeetingLog`].
pub struct Iter<'a> {
    /// Chunk slices, oldest first, ending with the tail.
    chunks: Vec<&'a [Meeting]>,
    chunk: usize,
    at: usize,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a Meeting;

    fn next(&mut self) -> Option<&'a Meeting> {
        while self.chunk < self.chunks.len() {
            if let Some(m) = self.chunks[self.chunk].get(self.at) {
                self.at += 1;
                return Some(m);
            }
            self.chunk += 1;
            self.at = 0;
        }
        None
    }
}

impl<'a> IntoIterator for &'a MeetingLog {
    type Item = &'a Meeting;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// A per-agent view over a [`MeetingLog`]: the meetings one agent
/// participated in, oldest first. Created by [`MeetingLog::for_agent`];
/// borrows the shared chunk chain (no copying).
pub struct AgentMeetings<'a> {
    inner: Iter<'a>,
    agent: usize,
}

impl<'a> Iterator for AgentMeetings<'a> {
    type Item = &'a Meeting;

    fn next(&mut self) -> Option<&'a Meeting> {
        self.inner.by_ref().find(|m| m.agents.contains(&self.agent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meeting_place_comparisons() {
        let e = EdgeId::new(NodeId(1), NodeId(2));
        assert_eq!(
            MeetingPlace::Edge(e),
            MeetingPlace::Edge(EdgeId::new(NodeId(2), NodeId(1)))
        );
        assert_ne!(MeetingPlace::Node(NodeId(1)), MeetingPlace::Node(NodeId(2)));
    }

    fn meeting(i: usize) -> Meeting {
        Meeting {
            agents: vec![0, 1],
            place: MeetingPlace::Node(NodeId(i % 7)),
            at_cost: i as u64,
            at_action: 2 * i as u64,
        }
    }

    #[test]
    fn log_matches_vec_semantics() {
        let mut log = MeetingLog::new();
        let mut vec = Vec::new();
        assert!(log.is_empty());
        assert_eq!(log.last(), None);
        for i in 0..(3 * CHUNK + 5) {
            log.push(meeting(i));
            vec.push(meeting(i));
            assert_eq!(log.len(), vec.len());
            assert_eq!(log.last(), vec.last());
        }
        assert_eq!(log.to_vec(), vec);
        assert_eq!(log.iter().count(), vec.len());
        // Debug must render exactly like Vec<Meeting>: the golden suite
        // fingerprints outcomes with {:?}.
        assert_eq!(format!("{log:?}"), format!("{vec:?}"));
        log.clear();
        assert!(log.is_empty());
        assert_eq!(format!("{log:?}"), "[]");
    }

    #[test]
    fn clone_is_structural_sharing_not_a_copy() {
        let mut log = MeetingLog::new();
        for i in 0..(10 * CHUNK) {
            log.push(meeting(i));
        }
        let snap = log.clone();
        assert!(
            snap.shares_storage_with(&log),
            "clone must share sealed chunks, not copy them"
        );
        assert_eq!(snap, log);
    }

    #[test]
    fn pushes_after_clone_leave_the_clone_untouched() {
        let mut log = MeetingLog::new();
        for i in 0..(2 * CHUNK + CHUNK / 2) {
            log.push(meeting(i));
        }
        let frozen = log.clone();
        let frozen_contents = frozen.to_vec();
        for i in 0..(2 * CHUNK) {
            log.push(meeting(1000 + i));
        }
        assert_eq!(frozen.len(), 2 * CHUNK + CHUNK / 2);
        assert_eq!(frozen.to_vec(), frozen_contents, "COW: clone is immutable");
        assert_eq!(log.len(), 4 * CHUNK + CHUNK / 2);
        // The two handles still share the chunks sealed before the fork.
        let shared_prefix: Vec<_> = log.iter().take(frozen.len()).cloned().collect();
        assert_eq!(shared_prefix, frozen_contents);
    }

    #[test]
    fn dropping_a_long_log_does_not_recurse() {
        // One chunk per stack frame would overflow here if Node dropped
        // recursively (debug stacks hold ~tens of thousands of frames).
        let mut log = MeetingLog::new();
        for i in 0..100_000 {
            log.push(meeting(i));
        }
        let keep_alive = log.clone();
        drop(log); // shared chain: unlink stops at the shared node
        drop(keep_alive); // sole owner: unlinks the whole chain iteratively
    }

    #[test]
    fn agent_views_filter_without_materialising() {
        let mut log = MeetingLog::new();
        // Meetings alternate participants: {0,1}, {1,2}, {0,2}, {0,1,2}…
        let patterns: [&[usize]; 4] = [&[0, 1], &[1, 2], &[0, 2], &[0, 1, 2]];
        for i in 0..(4 * CHUNK) {
            log.push(Meeting {
                agents: patterns[i % 4].to_vec(),
                place: MeetingPlace::Node(NodeId(i % 5)),
                at_cost: i as u64,
                at_action: i as u64,
            });
        }
        for agent in 0..3usize {
            let via_view: Vec<_> = log.for_agent(agent).cloned().collect();
            let via_filter: Vec<_> = log
                .iter()
                .filter(|m| m.agents.contains(&agent))
                .cloned()
                .collect();
            assert_eq!(via_view, via_filter, "view drifted for agent {agent}");
            assert_eq!(via_view.len(), 3 * CHUNK, "3 of every 4 meetings");
        }
        assert!(log.for_agent(7).next().is_none(), "unknown agent: empty");
    }

    #[test]
    fn pair_met_is_symmetric_and_exact() {
        let mut log = MeetingLog::new();
        log.push(Meeting {
            agents: vec![0, 2],
            place: MeetingPlace::Node(NodeId(1)),
            at_cost: 1,
            at_action: 1,
        });
        log.push(Meeting {
            agents: vec![1, 3],
            place: MeetingPlace::Node(NodeId(2)),
            at_cost: 2,
            at_action: 2,
        });
        assert!(log.pair_met(0, 2) && log.pair_met(2, 0));
        assert!(log.pair_met(1, 3) && log.pair_met(3, 1));
        assert!(!log.pair_met(0, 1));
        assert!(!log.pair_met(2, 3));
    }

    #[test]
    fn display_is_compact_and_readable() {
        let m = Meeting {
            agents: vec![0, 1],
            place: MeetingPlace::Edge(EdgeId::new(NodeId(2), NodeId(1))),
            at_cost: 54,
            at_action: 110,
        };
        assert_eq!(
            m.to_string(),
            "meeting of [0, 1] at edge 1–2 (cost 54, action 110)"
        );
        assert_eq!(MeetingPlace::Node(NodeId(7)).to_string(), "node 7");
    }
}
