//! Adversary strategies.
//!
//! The paper's adversary controls agent speed arbitrarily; in the abstract
//! scheduler that power is the choice of which legal action to apply next
//! (see crate docs). Different strategies probe different corners of that
//! power:
//!
//! * [`RoundRobin`] — fair interleaving (the "no adversary" reference);
//! * [`RandomAdversary`] — seeded random interleavings;
//! * [`Lazy`] — freezes one agent for as long as legally possible, the
//!   classical worst case for rendezvous (the moving agent must find a
//!   stationary one);
//! * [`GreedyAvoid`] — postpones every avoidable meeting, the strongest
//!   polynomial-time heuristic for delaying rendezvous;
//! * [`EagerMeet`] — takes meetings as soon as possible (lower-bound
//!   reference).

use crate::runtime::{ActionKind, Choice, ChoiceInfo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduling strategy: picks one of the currently legal choices.
pub trait Adversary {
    /// Chooses among `choices` (guaranteed non-empty); `tick` is the global
    /// action counter, usable for rotation.
    fn choose(&mut self, choices: &[ChoiceInfo], tick: u64) -> Choice;
}

/// Wakes everyone immediately, then rotates through agents fairly,
/// finishing started traversals before starting new ones.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates the fair scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for RoundRobin {
    fn choose(&mut self, choices: &[ChoiceInfo], _tick: u64) -> Choice {
        if let Some(w) = choices.iter().find(|c| c.choice.kind == ActionKind::Wake) {
            return w.choice;
        }
        // Rotate: first choice whose agent index >= next, else wrap.
        let pick = choices
            .iter()
            .filter(|c| c.choice.agent >= self.next)
            .min_by_key(|c| c.choice.agent)
            .or_else(|| choices.iter().min_by_key(|c| c.choice.agent))
            .expect("choices non-empty");
        self.next = pick.choice.agent + 1;
        pick.choice
    }
}

/// Seeded uniformly random choices (wakes agents only when chosen).
#[derive(Clone, Debug)]
pub struct RandomAdversary {
    rng: StdRng,
}

impl RandomAdversary {
    /// Creates the strategy from a seed (runs are reproducible).
    pub fn new(seed: u64) -> Self {
        RandomAdversary {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The raw RNG state mid-stream (see [`GreedyAvoid::rng_state`]).
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Rebuilds the adversary mid-stream from a saved state.
    pub fn from_rng_state(state: u64) -> Self {
        RandomAdversary {
            rng: StdRng::from_state(state),
        }
    }
}

impl Adversary for RandomAdversary {
    fn choose(&mut self, choices: &[ChoiceInfo], _tick: u64) -> Choice {
        choices[self.rng.gen_range(0..choices.len())].choice
    }
}

/// Freezes one victim agent: never schedules it while any other agent has a
/// legal action (and wakes it last). The rendezvous guarantee must then be
/// delivered entirely by the other agent's trajectory.
#[derive(Clone, Debug)]
pub struct Lazy {
    victim: usize,
}

impl Lazy {
    /// Creates the strategy freezing agent index `victim`.
    pub fn new(victim: usize) -> Self {
        Lazy { victim }
    }
}

impl Adversary for Lazy {
    fn choose(&mut self, choices: &[ChoiceInfo], _tick: u64) -> Choice {
        let non_victim = |c: &&ChoiceInfo| c.choice.agent != self.victim;
        // Prefer acting on non-victims; among them, wake first, then finish
        // before start (keeps at most one inside-edge at a time per agent).
        if let Some(c) = choices
            .iter()
            .filter(non_victim)
            .min_by_key(|c| match c.choice.kind {
                ActionKind::Wake => 0,
                ActionKind::Finish => 1,
                ActionKind::Start => 2,
            })
        {
            return c.choice;
        }
        choices[0].choice
    }
}

/// Takes any meeting-free choice while one exists, preferring (per seed) a
/// random one — the strongest meeting-postponing heuristic in this suite.
#[derive(Clone, Debug)]
pub struct GreedyAvoid {
    rng: StdRng,
}

impl GreedyAvoid {
    /// Creates the strategy from a seed.
    pub fn new(seed: u64) -> Self {
        GreedyAvoid {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The raw RNG state mid-stream — what the serde wire layer persists
    /// so a resumed run draws the *continuation* of this adversary's
    /// stream, not a reseeded one (see `rv_sim::wire`).
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Rebuilds the adversary mid-stream from a state saved by
    /// [`GreedyAvoid::rng_state`].
    pub fn from_rng_state(state: u64) -> Self {
        GreedyAvoid {
            rng: StdRng::from_state(state),
        }
    }
}

impl Adversary for GreedyAvoid {
    fn choose(&mut self, choices: &[ChoiceInfo], _tick: u64) -> Choice {
        // Count-then-select keeps the per-step path allocation-free while
        // drawing the same RNG stream as the collect-into-Vec original.
        let safe = choices.iter().filter(|c| !c.causes_meeting).count();
        if safe == 0 {
            // Meeting unavoidable: concede the cheapest one.
            choices[0].choice
        } else {
            let pick = self.rng.gen_range(0..safe);
            choices
                .iter()
                .filter(|c| !c.causes_meeting)
                .nth(pick)
                .expect("pick < safe count")
                .choice
        }
    }
}

/// Takes a meeting-causing choice whenever one exists — the cooperative
/// scheduler, bounding rendezvous cost from below.
#[derive(Clone, Debug, Default)]
pub struct EagerMeet;

impl EagerMeet {
    /// Creates the cooperative scheduler.
    pub fn new() -> Self {
        EagerMeet
    }
}

impl Adversary for EagerMeet {
    fn choose(&mut self, choices: &[ChoiceInfo], tick: u64) -> Choice {
        if let Some(c) = choices.iter().find(|c| c.causes_meeting) {
            return c.choice;
        }
        choices[tick as usize % choices.len()].choice
    }
}

/// The adversary suite used by the experiments, by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AdversaryKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`RandomAdversary`].
    Random,
    /// [`Lazy`] freezing agent 0.
    LazyFirst,
    /// [`Lazy`] freezing agent 1.
    LazySecond,
    /// [`GreedyAvoid`].
    GreedyAvoid,
    /// [`EagerMeet`].
    EagerMeet,
}

impl AdversaryKind {
    /// Every strategy, in reporting order.
    pub const ALL: [AdversaryKind; 6] = [
        AdversaryKind::RoundRobin,
        AdversaryKind::Random,
        AdversaryKind::LazyFirst,
        AdversaryKind::LazySecond,
        AdversaryKind::GreedyAvoid,
        AdversaryKind::EagerMeet,
    ];

    /// Instantiates the strategy (seeded variants use `seed`).
    pub fn build(self, seed: u64) -> Box<dyn Adversary> {
        match self {
            AdversaryKind::RoundRobin => Box::new(RoundRobin::new()),
            AdversaryKind::Random => Box::new(RandomAdversary::new(seed)),
            AdversaryKind::LazyFirst => Box::new(Lazy::new(0)),
            AdversaryKind::LazySecond => Box::new(Lazy::new(1)),
            AdversaryKind::GreedyAvoid => Box::new(GreedyAvoid::new(seed)),
            AdversaryKind::EagerMeet => Box::new(EagerMeet::new()),
        }
    }
}

impl std::fmt::Display for AdversaryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AdversaryKind::RoundRobin => "round-robin",
            AdversaryKind::Random => "random",
            AdversaryKind::LazyFirst => "lazy(0)",
            AdversaryKind::LazySecond => "lazy(1)",
            AdversaryKind::GreedyAvoid => "greedy-avoid",
            AdversaryKind::EagerMeet => "eager-meet",
        };
        f.write_str(s)
    }
}
