#![forbid(unsafe_code)]
//! The asynchronous adversary: an exact, discrete abstraction of the
//! paper's continuous walk model (§1, "The model"), with pluggable
//! adversary strategies and forced-meeting detection.
//!
//! # The abstraction (DESIGN.md §2.1)
//!
//! In the paper, an agent picks its *route* (a sequence of edges) while an
//! adversary designs the *walk* — arbitrary continuous motion along the
//! route. Only two facts about the continuum matter for meetings:
//!
//! * agents at the **same node simultaneously** have met;
//! * two agents simultaneously **inside the same edge** have met iff they
//!   travel in opposite directions, or one must pass the other
//!   (same-direction overtaking) — by the intermediate value theorem.
//!
//! So agent state reduces to `AtNode(v)` or `Inside(edge, direction)`, and
//! the adversary's continuous power reduces to choosing, at each instant,
//! which agent **starts** its next committed traversal and which **finishes**
//! its current one (plus when to **wake** sleeping agents). Meetings are
//! declared exactly when *every* continuous realisation of the chosen
//! schedule forces one:
//!
//! * `Start` into an edge occupied in the opposite direction — the two
//!   position curves must cross (meeting strictly inside the edge);
//! * `Finish` that overtakes same-direction occupants that entered earlier
//!   and have not left;
//! * `Finish` into a node where other agents stand.
//!
//! Conversely, any schedule in which none of these fire has a meeting-free
//! continuous realisation (keep same-direction gaps open), so the
//! simulation neither misses forced meetings nor invents avoidable ones.
//!
//! Agents **commit** to their next edge upon arriving at a node (based on
//! everything they know at that moment, including meetings delivered on
//! arrival); information learned while waiting at the node affects their
//! *subsequent* choices only. This matches the paper's treatment of
//! state transitions that happen "while traversing an edge" (e.g. a ghost
//! completes its current traversal before parking, which keeps the SGL
//! token inside one extended edge).
//!
//! # `reset` vs `restore`
//!
//! A [`Runtime`] offers two ways to rewind, and they answer different
//! questions:
//!
//! * [`Runtime::reset`] returns to the **initial** state with *newly
//!   constructed* behaviors — use it when the next run is a genuinely new
//!   experiment (different labels, variant, or adversary seed). It re-pays
//!   behavior construction (fresh cursors, cold length memos).
//! * [`Runtime::restore`] returns to a **mid-run** state frozen earlier by
//!   [`Runtime::snapshot`] — use it to branch execution from a common
//!   prefix (the minimax search), to retry a suffix, or to hand a state to
//!   another thread ([`Runtime::from_snapshot`]). Behaviors come back via
//!   [`Behavior::fork`] in O(state) with all accumulated context intact:
//!   no prefix replay, no reconstruction.
//!
//! Rule of thumb: *new agents → `reset`; same agents, earlier point in
//! time → `restore`*.
//!
//! # Examples
//!
//! ```
//! use rv_sim::{Runtime, RunConfig, RunEnd, RvBehavior, adversary::RoundRobin};
//! use rv_core::Label;
//! use rv_explore::SeededUxs;
//! use rv_graph::{generators, NodeId};
//!
//! let g = generators::ring(6);
//! let uxs = SeededUxs::default();
//! let agents = vec![
//!     RvBehavior::new(&g, uxs, NodeId(0), Label::new(2).unwrap()),
//!     RvBehavior::new(&g, uxs, NodeId(3), Label::new(5).unwrap()),
//! ];
//! let mut rt = Runtime::new(&g, agents, RunConfig::rendezvous());
//! let outcome = rt.run(&mut RoundRobin::new());
//! assert!(matches!(outcome.end, RunEnd::Meeting));
//! ```

pub mod adversary;
mod behavior;
pub mod fault;
mod meeting;
mod memo;
pub mod minimax;
mod runtime;
pub mod stop;
pub mod wire;

pub use behavior::{Behavior, NaiveBehavior, RvBehavior, ScriptBehavior, SpecBehavior};
pub use fault::{CrashFault, FaultClock, FaultPlan, FaultProfile, OutageFault};
pub use meeting::{AgentMeetings, Meeting, MeetingLog, MeetingPlace};
pub use memo::MemoStats;
pub use minimax::{search_worst_case, SearchOptions, SearchReport};
pub use runtime::{
    ActionKind, Choice, ChoiceInfo, Place, RunConfig, RunEnd, RunOutcome, Runtime, RuntimeSnapshot,
};
pub use stop::{
    and_then, AdaptiveThreshold, BehaviorProgress, DivergenceDetector, EarlyQuiescence,
    FixedCutoff, Progress, StarvationCensus, StarvationReport, StopPolicy, SuspensionReport,
};
