//! Transposition table and canonical state fingerprints for the minimax
//! search (see `docs/MINIMAX.md` for the full design).
//!
//! # Why the schedule tree is a DAG
//!
//! The minimax adversary explores schedules as a tree, but distinct
//! schedule prefixes frequently reach the *same* runtime state: the same
//! agent places, the same edge-queue contents, the same committed moves and
//! the same behavior futures. Subtrees below equal states have equal
//! worst-case values, so the search space is really a DAG and re-exploring
//! a reached state is pure waste. On vertex-transitive families (rings,
//! tori) the sharing is stronger still: states that are graph-automorphism
//! images of each other also have equal values, because every scheduling
//! rule of the runtime (legality, queue order, crossing/overtake/node
//! meetings, traversal costs) is stated in terms of nodes and edges only —
//! never node *identities*.
//!
//! # The fingerprint
//!
//! A state's fingerprint digests, per agent: awake/crashed flags, a place
//! tag (asleep, parked, committed-at-node, inside-an-edge), the place's
//! nodes, the agent's position in its direction queue when inside an edge,
//! and a bounded window of the agent's **future arrival nodes** — the nodes
//! the behavior will arrive at next, resolved via
//! [`Behavior::future_ports`] and capped at what is reachable within the
//! residual search depth. Including the future makes the fingerprint exact:
//! two states with equal fingerprints generate identical residual subtrees
//! action for action. The digest uses SplitMix64-style mixing over two
//! independent lanes (128 bits total) — no `std::hash` machinery, per the
//! workspace determinism rules. The *canonical* fingerprint is the minimum
//! digest over every declared graph automorphism ([`rv_graph::Automorphisms`]),
//! which quotients the table by the family's symmetry group.
//!
//! Because the runtime's meeting semantics on a simple graph depend only on
//! which *edge* an agent occupies — determined by its endpoints — and never
//! on port numbers, plain graph automorphisms (not port-preserving ones)
//! are the right quotient once behavior futures are resolved to node
//! sequences.
//!
//! # Reservation protocol
//!
//! [`MemoTable::probe_or_reserve`] returns one of three verdicts: `Hit`
//! (a finished value is stored), `Reserve` (the caller now owns the slot
//! and **must** later [`MemoTable::publish`] a value or
//! [`MemoTable::release`] the reservation), or `Busy` (another worker owns
//! the slot; the caller computes the subtree itself *without publishing*,
//! so no worker ever blocks on another). A reserved-but-unfilled entry is
//! never reported as a hit — in particular a job retried across the
//! `catch_unwind` boundary in `crate::minimax` releases its reservations
//! first and so never observes its own half-done work.

use crate::behavior::Behavior;
use crate::runtime::{Place, Runtime};
use rv_graph::{Automorphisms, NodeId, PortId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Memo key: canonical fingerprint plus residual search depth. Two states
/// share a subtree value only when both components agree.
pub(crate) type MemoKey = (u128, u32);

/// SplitMix64 finalizer: the avalanche stage of Steele et al.'s SplitMix64,
/// the same mixing family as `crate::fault` uses for fault streams.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Two independent SplitMix64 lanes, combined into a 128-bit digest.
struct Lanes {
    a: u64,
    b: u64,
}

impl Lanes {
    fn new(agents: usize) -> Self {
        Lanes {
            a: mix64(0x5157_c318_a5c7_9d01 ^ agents as u64),
            b: mix64(0x71c9_4f8b_23d5_16a3 ^ agents as u64),
        }
    }

    fn push(&mut self, v: u64) {
        self.a = mix64(self.a ^ v);
        self.b = mix64(self.b.wrapping_add(v).rotate_left(23));
    }

    fn digest(&self) -> u128 {
        ((self.a as u128) << 64) | self.b as u128
    }
}

/// The memoized value of a subtree, stored **relative to the total
/// traversal count at the subtree root** so that equal states reached at
/// different absolute costs share one entry:
///
/// * `max_delta` — worst meeting cost minus the root's total traversals
///   (`None` when every schedule in the subtree avoids meeting);
/// * `avoids` — some schedule in the subtree avoids all meetings;
/// * `leaves` — number of leaf schedules in the subtree, so memo hits keep
///   `WorstCase::schedules_explored` bit-identical to plain enumeration.
///
/// Reconstruction at a hit is `root_total + max_delta`; `max`/`sum`/`or`
/// all commute with the constant offset, so the memoized search reproduces
/// the unmemoized values exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct MemoValue {
    pub(crate) max_delta: Option<u64>,
    pub(crate) avoids: bool,
    pub(crate) leaves: u64,
}

impl MemoValue {
    pub(crate) fn empty() -> Self {
        MemoValue {
            max_delta: None,
            avoids: false,
            leaves: 0,
        }
    }

    /// A leaf where the schedule ends without a meeting (depth cap or no
    /// legal action).
    pub(crate) fn avoid_leaf() -> Self {
        MemoValue {
            max_delta: None,
            avoids: true,
            leaves: 1,
        }
    }

    /// Records a meeting leaf `delta` traversals above the subtree root.
    pub(crate) fn record_meeting_delta(&mut self, delta: u64) {
        self.leaves += 1;
        self.max_delta = Some(self.max_delta.map_or(delta, |m| m.max(delta)));
    }

    /// Folds a child subtree's value in; the child root sits `offset`
    /// traversals above this subtree's root.
    pub(crate) fn absorb(&mut self, child: MemoValue, offset: u64) {
        if let Some(d) = child.max_delta {
            let shifted = offset + d;
            self.max_delta = Some(self.max_delta.map_or(shifted, |m| m.max(shifted)));
        }
        self.avoids |= child.avoids;
        self.leaves += child.leaves;
    }
}

/// Verdict of [`MemoTable::probe_or_reserve`].
pub(crate) enum Probe {
    /// A finished value is stored; use it instead of searching.
    Hit(MemoValue),
    /// The caller now owns the slot and must `publish` or `release` it.
    Reserve,
    /// Another worker owns the slot; search without publishing.
    Busy,
}

enum Entry {
    Reserved,
    Filled(MemoValue),
}

const SHARDS: usize = 64;

/// One shard's storage: a flat unsorted vector scanned linearly. The
/// shard index already consumes a mixed fingerprint, so entries spread
/// near-uniformly and a shard holds a handful of entries even on the
/// deepest searches the harness runs (depth-14 ring: 78 entries across 64
/// shards) — at that occupancy a contiguous scan of 28-byte pairs beats
/// any node- or probe-based structure, and layout is trivially
/// deterministic (insertion order; never iterated).
type Shard = Vec<(MemoKey, Entry)>;

fn shard_find(shard: &Shard, key: MemoKey) -> Option<usize> {
    shard.iter().position(|(k, _)| *k == key)
}

/// Deterministic sharded transposition table. Shard choice is a pure
/// function of the fingerprint, so two workers probing the same state
/// serialize on one shard while probes of unrelated states stay off each
/// other's locks.
pub(crate) struct MemoTable {
    shards: Vec<Mutex<Shard>>,
    probes: AtomicU64,
    hits: AtomicU64,
}

/// Table instrumentation, surfaced through `crate::minimax::SearchReport`.
/// Deterministic at one worker; at higher worker counts `probes`/`hits`
/// depend on the steal interleaving (the *values* of the search never do).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Table lookups (both reserving and read-only).
    pub probes: u64,
    /// Lookups answered by a finished entry.
    pub hits: u64,
    /// Entries resident at the end of the search.
    pub entries: u64,
}

impl MemoTable {
    pub(crate) fn new() -> Self {
        MemoTable {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            probes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &MemoKey) -> &Mutex<Shard> {
        let fp = key.0;
        let h = mix64(fp as u64 ^ (fp >> 64) as u64);
        &self.shards[h as usize & (SHARDS - 1)]
    }

    /// Looks `key` up; on a miss, reserves the slot for the caller.
    pub(crate) fn probe_or_reserve(&self, key: MemoKey) -> Probe {
        // ordering: Relaxed — stats counters only; never synchronizes data.
        self.probes.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(&key).lock().expect("memo shard poisoned");
        match shard_find(&shard, key) {
            None => {
                shard.push((key, Entry::Reserved));
                Probe::Reserve
            }
            Some(i) => match &shard[i].1 {
                Entry::Reserved => Probe::Busy,
                Entry::Filled(value) => {
                    // ordering: Relaxed — stats counter only.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Probe::Hit(*value)
                }
            },
        }
    }

    /// Read-only lookup (no reservation) — the split path uses this so a
    /// job that fans children out to the deques never owes a publish.
    pub(crate) fn probe(&self, key: MemoKey) -> Option<MemoValue> {
        // ordering: Relaxed — stats counters only; never synchronizes data.
        self.probes.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(&key).lock().expect("memo shard poisoned");
        match shard_find(&shard, key) {
            Some(i) => match &shard[i].1 {
                Entry::Filled(value) => {
                    // ordering: Relaxed — stats counter only.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(*value)
                }
                Entry::Reserved => None,
            },
            None => None,
        }
    }

    /// Completes a reservation with the finished subtree value.
    pub(crate) fn publish(&self, key: MemoKey, value: MemoValue) {
        let mut shard = self.shard(&key).lock().expect("memo shard poisoned");
        match shard_find(&shard, key) {
            Some(i) => shard[i].1 = Entry::Filled(value),
            None => shard.push((key, Entry::Filled(value))),
        }
    }

    /// Abandons a reservation (panic-retry path): the slot reverts to
    /// vacant so the retried job — or any other worker — can reserve it
    /// afresh instead of seeing half-done work. Filled entries are left
    /// alone. (`swap_remove` is safe: shard layout is never observed —
    /// lookups are whole-key equality scans and stats only count lengths.)
    pub(crate) fn release(&self, key: MemoKey) {
        let mut shard = self.shard(&key).lock().expect("memo shard poisoned");
        if let Some(i) = shard_find(&shard, key) {
            if matches!(shard[i].1, Entry::Reserved) {
                shard.swap_remove(i);
            }
        }
    }

    pub(crate) fn stats(&self) -> MemoStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len() as u64)
            .sum();
        MemoStats {
            // ordering: Relaxed — reading stats counters after the fact.
            probes: self.probes.load(Ordering::Relaxed),
            // ordering: Relaxed — reading stats counters after the fact.
            hits: self.hits.load(Ordering::Relaxed),
            entries,
        }
    }
}

/// An agent's resolved future, anchored at one state (the search root).
#[derive(Default)]
struct AgentFuture {
    /// The nodes the agent will arrive at, in order, starting with its
    /// committed/in-flight arrival if any. With `k` traversals completed
    /// since the anchor, the agent's next arrival is `arrivals[k]`.
    arrivals: Vec<NodeId>,
    /// The agent's traversal count at the anchor.
    base_traversals: u64,
    /// `arrivals` is the agent's *entire* future (the behavior parks at
    /// the end) rather than a resolution-limit truncation.
    complete: bool,
}

/// Every agent's future arrival-node sequence, resolved **once per
/// search** from the root state and shared read-only by all workers.
///
/// This is sound because behaviors are deterministic port sequences — the
/// adversary controls *timing*, never routing — and the only event that
/// changes a behavior's future, a meeting, is terminal in this search
/// (meetings are leaves; no post-meeting state is ever fingerprinted).
/// A crashed agent simply stops consuming its sequence. So agent `i`'s
/// `k`-th arrival is the same node in every schedule, and one resolution
/// at the root covers every state of every job.
pub(crate) struct FutureTable {
    agents: Vec<AgentFuture>,
    supported: bool,
}

impl FutureTable {
    /// Resolves the futures of `rt`'s agents with `horizon` actions of
    /// search below the current state. Resolves `horizon / 2 + 1` ports
    /// per agent, which covers the deepest window any state within
    /// `horizon` actions can ask for: a state `t` actions down has
    /// completed at most `(t - 1) / 2` traversals per agent (a traversal
    /// is a Start plus a Finish, after a Wake) and fingerprints a window
    /// of at most `(horizon - t + 1) / 2` more arrivals, so
    /// `k + need ≤ horizon / 2`; the `+ 1` is slack. Keeping the
    /// resolution tight matters because draining ports at the root can
    /// cross schedule-phase boundaries, and each boundary pays the
    /// algorithm's next-spec arithmetic.
    pub(crate) fn resolve<B: Behavior>(rt: &Runtime<'_, B>, horizon: usize) -> Self {
        let g = rt.graph();
        let resolve = horizon / 2 + 1;
        let mut agents = Vec::with_capacity(rt.agent_count());
        let mut ports: Vec<PortId> = Vec::new();
        for slot in rt.slots_for_memo() {
            let mut fut = AgentFuture {
                arrivals: Vec::new(),
                base_traversals: slot.traversals,
                complete: true,
            };
            if slot.crashed {
                agents.push(fut); // a crashed body never moves again
                continue;
            }
            // Where the port walk resumes from: the committed/in-flight
            // arrival if there is one, else the node an asleep agent will
            // wake at. A parked agent has no future.
            let walk_from = if !slot.awake {
                match slot.place {
                    Place::AtNode(v) => Some(v),
                    Place::Inside { .. } => unreachable!("asleep agents are at nodes"),
                }
            } else {
                match slot.place {
                    Place::AtNode(_) => slot.pending.map(|(_, to)| {
                        fut.arrivals.push(to);
                        to
                    }),
                    Place::Inside { to, .. } => {
                        fut.arrivals.push(to);
                        Some(to)
                    }
                }
            };
            if let Some(start) = walk_from {
                ports.clear();
                if !slot.behavior.future_ports(&mut ports, resolve) {
                    return FutureTable {
                        agents,
                        supported: false,
                    };
                }
                fut.complete = ports.len() < resolve;
                let mut cur = start;
                for &p in &ports {
                    cur = g.traverse(cur, p).node;
                    fut.arrivals.push(cur);
                }
            }
            agents.push(fut);
        }
        FutureTable {
            agents,
            supported: true,
        }
    }

    /// `false` when any behavior lacks [`Behavior::future_ports`] support —
    /// fingerprints are unavailable and the search runs unmemoized.
    pub(crate) fn is_supported(&self) -> bool {
        self.supported
    }
}

/// Per-agent render of the current state, precomputed once per fingerprint
/// so the per-automorphism loop is pure hashing.
enum RenderKind {
    Asleep(NodeId),
    Parked(NodeId),
    Committed(NodeId),
    Inside { from: NodeId, to: NodeId, qpos: u64 },
}

struct Render {
    kind: RenderKind,
    crashed: bool,
    wstart: usize,
    wend: usize,
}

/// Per-worker scratch for computing canonical fingerprints. All state
/// lives in the shared [`FutureTable`]; this struct only owns reusable
/// buffers, so each worker carries one and never allocates per probe.
pub(crate) struct Fingerprinter {
    renders: Vec<Render>,
    best: Vec<u64>,
    /// `(position in `best`, original node id)` of every node-valued entry
    /// — the only positions where two automorphisms' renderings can
    /// differ, so minimization compares and rewrites just these.
    node_pos: Vec<(u32, u32)>,
}

impl Fingerprinter {
    pub(crate) fn new() -> Self {
        Fingerprinter {
            renders: Vec::new(),
            best: Vec::new(),
            node_pos: Vec::new(),
        }
    }

    /// The canonical fingerprint of `rt`'s current state with `residual`
    /// actions of search below it, minimized over `autos`: the state is
    /// rendered to a value sequence under each automorphism, the
    /// lexicographically least rendering is selected (with early-exit
    /// comparison, so non-canonical automorphisms cost a handful of
    /// compares), and only that one rendering is hashed. `None` when
    /// fingerprinting is unsupported or the root resolution cannot cover
    /// this state's window (never happens from `crate::minimax`, whose
    /// resolution horizon covers the whole search; kept as a correctness
    /// backstop).
    pub(crate) fn fingerprint<B: Behavior>(
        &mut self,
        rt: &Runtime<'_, B>,
        residual: usize,
        autos: &Automorphisms,
        futures: &FutureTable,
    ) -> Option<u128> {
        if !futures.supported {
            return None;
        }
        let slots = rt.slots_for_memo();
        let occ = rt.edge_occupancy();
        self.renders.clear();
        for (i, slot) in slots.iter().enumerate() {
            let fut = &futures.agents[i];
            let k = (slot.traversals - fut.base_traversals) as usize;
            let (kind, need) = if slot.crashed {
                let kind = match slot.place {
                    Place::AtNode(v) => RenderKind::Parked(v),
                    Place::Inside { from, to, .. } => RenderKind::Inside {
                        from,
                        to,
                        qpos: queue_position(&occ[slot.inside_index], slot, i),
                    },
                };
                (kind, 0)
            } else if !slot.awake {
                let v = match slot.place {
                    Place::AtNode(v) => v,
                    Place::Inside { .. } => unreachable!("asleep agents are at nodes"),
                };
                (RenderKind::Asleep(v), residual.saturating_sub(1) / 2)
            } else {
                match slot.place {
                    Place::AtNode(v) => {
                        if slot.pending.is_some() {
                            debug_assert_eq!(
                                slot.pending.map(|(_, to)| to),
                                fut.arrivals.get(k).copied(),
                                "committed arrival must head the future window"
                            );
                            (RenderKind::Committed(v), residual / 2)
                        } else {
                            (RenderKind::Parked(v), 0)
                        }
                    }
                    Place::Inside { from, to, .. } => (
                        RenderKind::Inside {
                            from,
                            to,
                            qpos: queue_position(&occ[slot.inside_index], slot, i),
                        },
                        residual.div_ceil(2),
                    ),
                }
            };
            let len = fut.arrivals.len();
            if k + need > len && !fut.complete {
                return None; // resolution horizon too short for this window
            }
            self.renders.push(Render {
                kind,
                crashed: slot.crashed,
                wstart: k.min(len),
                wend: (k + need).min(len),
            });
        }
        // Canonicalize, then hash once: materialize the value sequence
        // under the first automorphism, then lexicographically minimize
        // over the rest. Renderings under two automorphisms agree at every
        // structural position (tags, queue positions, window lengths) and
        // can differ only where a node id was mapped, so both the compare
        // and the rewrite touch just the recorded node positions — a
        // non-canonical automorphism costs a handful of array reads.
        self.best.clear();
        self.node_pos.clear();
        let perm0 = autos.perm(0);
        for (i, r) in self.renders.iter().enumerate() {
            let best = &mut self.best;
            let node_pos = &mut self.node_pos;
            let node = |best: &mut Vec<u64>, node_pos: &mut Vec<(u32, u32)>, v: NodeId| {
                node_pos.push((best.len() as u32, v.0 as u32));
                best.push(perm0[v.0] as u64);
            };
            match r.kind {
                RenderKind::Asleep(v) => {
                    best.push(0x10 | r.crashed as u64);
                    node(best, node_pos, v);
                }
                RenderKind::Parked(v) => {
                    best.push(0x20 | r.crashed as u64);
                    node(best, node_pos, v);
                }
                RenderKind::Committed(v) => {
                    best.push(0x30 | r.crashed as u64);
                    node(best, node_pos, v);
                }
                RenderKind::Inside { from, to, qpos } => {
                    best.push(0x40 | r.crashed as u64);
                    node(best, node_pos, from);
                    node(best, node_pos, to);
                    best.push(qpos);
                }
            }
            let window = &futures.agents[i].arrivals[r.wstart..r.wend];
            best.push(window.len() as u64);
            for &w in window {
                node(best, node_pos, w);
            }
        }
        for k in 1..autos.len() {
            let perm = autos.perm(k);
            let mut smaller = false;
            for &(pos, v) in &self.node_pos {
                let mapped = perm[v as usize] as u64;
                match mapped.cmp(&self.best[pos as usize]) {
                    std::cmp::Ordering::Less => {
                        smaller = true;
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                    std::cmp::Ordering::Equal => {}
                }
            }
            if smaller {
                for &(pos, v) in &self.node_pos {
                    self.best[pos as usize] = perm[v as usize] as u64;
                }
            }
        }
        let mut lanes = Lanes::new(slots.len());
        for &v in &self.best {
            lanes.push(v);
        }
        Some(lanes.digest())
    }
}

/// The agent's position in its direction queue (0 = eldest). Queue
/// contents need not be hashed separately: per-agent (edge, direction,
/// position) tuples determine every queue exactly.
fn queue_position<B>(
    occ: &crate::runtime::EdgeOcc,
    slot: &crate::runtime::Slot<B>,
    i: usize,
) -> u64 {
    let from = match slot.place {
        Place::Inside { from, .. } => from,
        Place::AtNode(_) => unreachable!("queue position queried for an agent at a node"),
    };
    let q = if occ_from_a(slot, from) {
        &occ.from_a
    } else {
        &occ.from_b
    };
    q.iter()
        .position(|&a| a == i)
        .expect("inside agent must be in its direction queue") as u64
}

fn occ_from_a<B>(slot: &crate::runtime::Slot<B>, from: NodeId) -> bool {
    match slot.place {
        Place::Inside { edge, .. } => edge.a == from,
        Place::AtNode(_) => unreachable!("direction queried for an agent at a node"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ScriptBehavior;
    use crate::runtime::{RunConfig, Runtime};
    use proptest::prelude::*;
    use rv_graph::{generators, Graph};

    #[test]
    fn probe_reserve_publish_roundtrip() {
        let table = MemoTable::new();
        let key = (42u128, 7u32);
        assert!(matches!(table.probe_or_reserve(key), Probe::Reserve));
        // A reserved-but-unfilled entry is Busy, never a Hit.
        assert!(matches!(table.probe_or_reserve(key), Probe::Busy));
        assert!(table.probe(key).is_none());
        let value = MemoValue {
            max_delta: Some(3),
            avoids: true,
            leaves: 11,
        };
        // publish: completes the reservation taken four lines up.
        table.publish(key, value);
        match table.probe_or_reserve(key) {
            Probe::Hit(v) => assert_eq!(v, value),
            _ => panic!("published entry must hit"),
        }
        assert_eq!(table.probe(key), Some(value));
        let stats = table.stats();
        // Five lookups above count as probes (both probe_or_reserve and the
        // read-only probe); only the post-publish pair scored hits.
        assert_eq!(stats.probes, 5);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn release_reverts_reservation_but_keeps_filled_entries() {
        // The retry hazard: a panicked job must be able to release its
        // reservations so its own retry does not see half-done work.
        let table = MemoTable::new();
        let key = (7u128, 2u32);
        assert!(matches!(table.probe_or_reserve(key), Probe::Reserve));
        // publish: not reached — this test abandons the reservation.
        table.release(key);
        // The slot is vacant again: the retry re-reserves it.
        assert!(matches!(table.probe_or_reserve(key), Probe::Reserve));
        let value = MemoValue {
            max_delta: None,
            avoids: true,
            leaves: 1,
        };
        // publish: completes the second reservation.
        table.publish(key, value);
        // Releasing a filled entry is a no-op.
        // publish: guard check — release must not evict the filled value.
        table.release(key);
        assert_eq!(table.probe(key), Some(value));
    }

    #[test]
    fn memo_value_absorb_is_offset_exact() {
        let mut v = MemoValue::empty();
        v.record_meeting_delta(5);
        let mut child = MemoValue::avoid_leaf();
        child.record_meeting_delta(2);
        v.absorb(child, 10);
        assert_eq!(v.max_delta, Some(12));
        assert!(v.avoids);
        assert_eq!(v.leaves, 3);
    }

    /// Walks `ports` from `start`, returning the arrival-node path.
    fn node_path(g: &Graph, start: NodeId, ports: &[usize]) -> Vec<NodeId> {
        let mut path = vec![start];
        let mut cur = start;
        for &p in ports {
            cur = g.traverse(cur, rv_graph::PortId(p)).node;
            path.push(cur);
        }
        path
    }

    /// Rewrites a script so that agent `i` of the image runtime walks the
    /// σ-image of the original's node path.
    fn mapped_script(g: &Graph, perm: &[u32], start: NodeId, ports: &[usize]) -> ScriptBehavior {
        let path = node_path(g, start, ports);
        let mapped: Vec<usize> = path
            .windows(2)
            .map(|w| {
                let (u, v) = (NodeId(perm[w[0].0] as usize), NodeId(perm[w[1].0] as usize));
                g.port_towards(u, v)
                    .expect("automorphism preserves adjacency")
                    .0
            })
            .collect();
        ScriptBehavior::new(NodeId(perm[start.0] as usize), mapped)
    }

    fn apply_steps<B: Behavior>(rt: &mut Runtime<'_, B>, picks: &[usize]) -> usize {
        let mut choices = Vec::new();
        let mut meetings = Vec::new();
        let mut applied = 0;
        for &pick in picks {
            rt.legal_choices_into(&mut choices);
            if choices.is_empty() {
                break;
            }
            let c = choices[pick % choices.len()].choice;
            meetings.clear();
            rt.apply_into(c, &mut meetings);
            applied += 1;
            if !meetings.is_empty() {
                break; // meetings are leaves in the minimax search
            }
        }
        applied
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The satellite invariant: for every declared automorphism σ, the
        /// σ-image of a reachable state fingerprints identically (the
        /// canonical fingerprint is σ-invariant).
        #[test]
        fn fingerprint_is_automorphism_invariant(
            n in 4usize..9,
            s0 in 0usize..8,
            s1 in 0usize..8,
            ports0 in proptest::collection::vec(0usize..2, 0..10),
            ports1 in proptest::collection::vec(0usize..2, 0..10),
            picks in proptest::collection::vec(0usize..6, 0..12),
            sigma in 0usize..16,
        ) {
            let g = generators::ring(n);
            let autos = rv_graph::GraphFamily::Ring.automorphisms(&g);
            let perm = autos.perm(sigma % autos.len()).to_vec();
            let horizon = 24usize;

            let start0 = NodeId(s0 % n);
            let start1 = NodeId(s1 % n);
            prop_assume!(start0 != start1); // runtimes require distinct starts
            let original = vec![
                ScriptBehavior::new(start0, ports0.clone()),
                ScriptBehavior::new(start1, ports1.clone()),
            ];
            let image = vec![
                mapped_script(&g, &perm, start0, &ports0),
                mapped_script(&g, &perm, start1, &ports1),
            ];

            let mut rt_a = Runtime::new(&g, original, RunConfig::rendezvous());
            let mut rt_b = Runtime::new(&g, image, RunConfig::rendezvous());

            let mut fpr_a = Fingerprinter::new();
            let mut fpr_b = Fingerprinter::new();
            let fut_a = FutureTable::resolve(&rt_a, horizon);
            let fut_b = FutureTable::resolve(&rt_b, horizon);
            prop_assert!(fut_a.is_supported() && fut_b.is_supported());

            // Same decision sequence on both: legality corresponds under σ,
            // so the two runs stay σ-images of each other throughout.
            let applied_a = apply_steps(&mut rt_a, &picks);
            let applied_b = apply_steps(&mut rt_b, &picks);
            prop_assert_eq!(applied_a, applied_b, "σ-image runs must not diverge");

            let residual = horizon - applied_a;
            let fp_a = fpr_a.fingerprint(&rt_a, residual, &autos, &fut_a);
            let fp_b = fpr_b.fingerprint(&rt_b, residual, &autos, &fut_b);
            prop_assert!(fp_a.is_some());
            prop_assert_eq!(fp_a, fp_b, "canonical fingerprints must agree");
        }
    }

    #[test]
    fn fingerprint_separates_distinct_states() {
        let g = generators::path(4);
        let autos = Automorphisms::identity(g.order());
        let mk = |a: usize, b: usize| {
            vec![
                ScriptBehavior::new(NodeId(a), [0, 0, 0]),
                ScriptBehavior::new(NodeId(b), [0, 0, 0]),
            ]
        };
        let rt_a = Runtime::new(&g, mk(0, 3), RunConfig::rendezvous());
        let rt_b = Runtime::new(&g, mk(1, 3), RunConfig::rendezvous());
        let mut fpr = Fingerprinter::new();
        let fut_a = FutureTable::resolve(&rt_a, 10);
        let fp_a = fpr.fingerprint(&rt_a, 10, &autos, &fut_a);
        let fut_b = FutureTable::resolve(&rt_b, 10);
        let fp_b = fpr.fingerprint(&rt_b, 10, &autos, &fut_b);
        assert!(fp_a.is_some() && fp_b.is_some());
        assert_ne!(fp_a, fp_b, "different starts must fingerprint apart");
    }

    #[test]
    fn fingerprint_is_anchor_independent() {
        // Future tables resolved at different depths must agree on a
        // common descendant state: the table is shared across jobs.
        let g = generators::ring(6);
        let autos = rv_graph::GraphFamily::Ring.automorphisms(&g);
        let mk = || {
            vec![
                ScriptBehavior::new(NodeId(0), [0, 0, 1, 0, 0]),
                ScriptBehavior::new(NodeId(3), [1, 1, 0, 1, 1]),
            ]
        };
        let horizon = 16usize;
        let picks: Vec<usize> = vec![0, 1, 2, 0, 1];

        let mut rt_root = Runtime::new(&g, mk(), RunConfig::rendezvous());
        let mut fpr = Fingerprinter::new();
        let fut_root = FutureTable::resolve(&rt_root, horizon);
        let applied = apply_steps(&mut rt_root, &picks);
        let fp_from_root = fpr.fingerprint(&rt_root, horizon - applied, &autos, &fut_root);

        let mut rt_mid = Runtime::new(&g, mk(), RunConfig::rendezvous());
        let mid = apply_steps(&mut rt_mid, &picks[..2]);
        let fut_mid = FutureTable::resolve(&rt_mid, horizon - mid);
        let applied_rest = apply_steps(&mut rt_mid, &picks[2..]);
        let fp_from_mid = fpr.fingerprint(&rt_mid, horizon - mid - applied_rest, &autos, &fut_mid);

        assert_eq!(mid + applied_rest, applied);
        assert!(fp_from_root.is_some());
        assert_eq!(fp_from_root, fp_from_mid);
    }

    #[test]
    fn unsupported_behavior_disables_fingerprinting() {
        struct Opaque(NodeId);
        impl Behavior for Opaque {
            type Info = ();
            fn start_node(&self) -> NodeId {
                self.0
            }
            fn next_port(&mut self) -> Option<PortId> {
                None
            }
            fn info(&self) {}
            fn on_meeting(&mut self, _place: crate::meeting::MeetingPlace, _peers: &[()]) {}
            fn fork(&self) -> Self {
                Opaque(self.0)
            }
        }
        let g = generators::path(4);
        let rt = Runtime::new(
            &g,
            vec![Opaque(NodeId(0)), Opaque(NodeId(3))],
            RunConfig::rendezvous(),
        );
        // The agents start asleep, so resolution must preview their
        // post-wake futures — which Opaque cannot.
        let futures = FutureTable::resolve(&rt, 10);
        assert!(!futures.is_supported());
        let autos = Automorphisms::identity(g.order());
        let mut fpr = Fingerprinter::new();
        assert_eq!(fpr.fingerprint(&rt, 10, &autos, &futures), None);
    }
}
