//! Serde-wire persistence for [`RuntimeSnapshot`]: save a frozen mid-run
//! state to JSON, load it back, and resume bit-identically.
//!
//! The vendored serde stub renders JSON but has **no generic
//! deserialisation** (its `Deserialize` is an empty marker), so the wire
//! format is an explicit, non-generic mirror of the snapshot —
//! [`SnapshotWire`] — rendered with `#[derive(Serialize)]` and parsed back
//! by hand over [`serde_json::Value`]. Behavior state crosses the wire as
//! an opaque per-agent payload string produced by a caller-supplied
//! encoder and consumed by the matching decoder, so behaviors opt into
//! persistence without the snapshot layer knowing their internals
//! ([`encode_script`]/[`decode_script`] cover [`ScriptBehavior`], the
//! durable-sweep checkpoint format's behavior of record).
//!
//! Two integer-width caveats are load-bearing:
//!
//! * the [`serde_json::Value`] parser routes numbers through `f64`, exact
//!   only below 2⁵³ — fine for action/traversal counters (budgets cap at
//!   5·10⁷) but **not** for raw 64-bit RNG states, which therefore cross
//!   the wire as decimal *strings* (see [`rand::rngs::StdRng::state`] and
//!   the adversary `rng_state` accessors);
//! * round-trip equality is asserted structurally by the proptest suite
//!   (`save → load → restore` bit-identical to an in-memory restore),
//!   not by comparing JSON texts.

use crate::behavior::Behavior;
use crate::meeting::{Meeting, MeetingLog, MeetingPlace};
use crate::runtime::{EdgeOcc, Place, RuntimeSnapshot, Slot};
use crate::ScriptBehavior;
use rv_graph::{Graph, NodeId, PortId};
use serde::Serialize;
use serde_json::Value;

/// One agent's scheduler state plus its opaque behavior payload. `Place`
/// is flattened into optionals (`at_node` for `AtNode`, `from`/`to` +
/// `inside_index` for `Inside`; the `EdgeId` is re-derived from the dense
/// index against the graph at load time).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct AgentWire {
    /// `Some(v)` iff the agent stands at node `v`.
    pub at_node: Option<usize>,
    /// Departure node when inside an edge.
    pub from: Option<usize>,
    /// Committed arrival node when inside an edge.
    pub to: Option<usize>,
    /// Dense edge index when inside an edge.
    pub inside_index: Option<usize>,
    /// Committed next move: exit port.
    pub pending_port: Option<usize>,
    /// Committed next move: arrival node.
    pub pending_to: Option<usize>,
    /// Whether the agent has been woken.
    pub awake: bool,
    /// Crash-stop fault flag (see [`crate::fault`]).
    pub crashed: bool,
    /// Completed traversals.
    pub traversals: u64,
    /// Action count at the agent's latest edge entry (meaningful iff
    /// inside an edge; see `Slot::entered_at`). Carried verbatim so a
    /// restored run's suspension census is bit-identical.
    pub entered_at: u64,
    /// Opaque behavior payload (encoder-defined; see module docs).
    pub behavior: String,
}

/// One logged meeting on the wire.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MeetingWire {
    /// Participant indices, ascending.
    pub agents: Vec<usize>,
    /// `Some(v)` iff the meeting was at node `v`.
    pub at_node: Option<usize>,
    /// Edge endpoints (canonical order) iff the meeting was inside an edge.
    pub edge_a: Option<usize>,
    /// See `edge_a`.
    pub edge_b: Option<usize>,
    /// Cost at declaration.
    pub at_cost: u64,
    /// Action count at declaration.
    pub at_action: u64,
}

/// The non-generic wire mirror of a [`RuntimeSnapshot`]. Build with
/// [`SnapshotWire::from_snapshot`], render with [`SnapshotWire::to_json`],
/// parse with [`SnapshotWire::from_json`], and re-enter the runtime with
/// [`SnapshotWire::into_snapshot`].
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SnapshotWire {
    /// Per-agent state, in slot order.
    pub agents: Vec<AgentWire>,
    /// Per-edge occupancy queues `(from_a, from_b)`, dense edge order.
    pub edges: Vec<(Vec<usize>, Vec<usize>)>,
    /// The full meeting log, in declaration order.
    pub meetings: Vec<MeetingWire>,
    /// Adversary actions executed at the freeze point.
    pub actions: u64,
    /// Completed traversals at the freeze point.
    pub total_traversals: u64,
}

impl SnapshotWire {
    /// Flattens `snap` onto the wire, encoding each behavior with
    /// `encode`.
    pub fn from_snapshot<B: Behavior>(
        snap: &RuntimeSnapshot<B>,
        encode: impl Fn(&B) -> String,
    ) -> Self {
        let agents = snap
            .slots
            .iter()
            .map(|slot| {
                let (at_node, from, to, inside_index) = match slot.place {
                    Place::AtNode(v) => (Some(v.0), None, None, None),
                    Place::Inside { from, to, .. } => {
                        (None, Some(from.0), Some(to.0), Some(slot.inside_index))
                    }
                };
                AgentWire {
                    at_node,
                    from,
                    to,
                    inside_index,
                    pending_port: slot.pending.map(|(p, _)| p.0),
                    pending_to: slot.pending.map(|(_, v)| v.0),
                    awake: slot.awake,
                    crashed: slot.crashed,
                    traversals: slot.traversals,
                    entered_at: slot.entered_at,
                    behavior: encode(&slot.behavior),
                }
            })
            .collect();
        let edges = snap
            .edges
            .iter()
            .map(|occ| (occ.from_a.clone(), occ.from_b.clone()))
            .collect();
        let meetings = snap
            .meetings
            .iter()
            .map(|m| {
                let (at_node, edge_a, edge_b) = match m.place {
                    MeetingPlace::Node(v) => (Some(v.0), None, None),
                    MeetingPlace::Edge(e) => (None, Some(e.a.0), Some(e.b.0)),
                };
                MeetingWire {
                    agents: m.agents.clone(),
                    at_node,
                    edge_a,
                    edge_b,
                    at_cost: m.at_cost,
                    at_action: m.at_action,
                }
            })
            .collect();
        SnapshotWire {
            agents,
            edges,
            meetings,
            actions: snap.actions,
            total_traversals: snap.total_traversals,
        }
    }

    /// Renders the wire form as one JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("vendored serde_json::to_string is infallible")
    }

    /// Parses a document rendered by [`SnapshotWire::to_json`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = serde_json::from_str(s).map_err(|e| e.to_string())?;
        let agents = arr(&v, "agents")?
            .iter()
            .map(agent_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let edges = arr(&v, "edges")?
            .iter()
            .map(|pair| {
                let qs = pair
                    .as_array()
                    .ok_or_else(|| "edge occupancy must be a pair of queues".to_string())?;
                if qs.len() != 2 {
                    return Err("edge occupancy must be a pair of queues".to_string());
                }
                Ok((usize_list(&qs[0])?, usize_list(&qs[1])?))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let meetings = arr(&v, "meetings")?
            .iter()
            .map(meeting_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SnapshotWire {
            agents,
            edges,
            meetings,
            actions: req_u64(&v, "actions")?,
            total_traversals: req_u64(&v, "total_traversals")?,
        })
    }

    /// Rebuilds a [`RuntimeSnapshot`] over `g`, decoding each behavior
    /// payload with `decode`. Fails (never panics) on payloads the
    /// decoder rejects or positions that do not fit `g`.
    pub fn into_snapshot<B: Behavior>(
        &self,
        g: &Graph,
        decode: impl Fn(&str) -> Result<B, String>,
    ) -> Result<RuntimeSnapshot<B>, String> {
        if self.edges.len() != g.size() {
            return Err(format!(
                "snapshot has {} edges, graph has {}",
                self.edges.len(),
                g.size()
            ));
        }
        let mut slots = Vec::with_capacity(self.agents.len());
        for (i, a) in self.agents.iter().enumerate() {
            let (place, inside_index) = match (a.at_node, a.from, a.to, a.inside_index) {
                (Some(v), None, None, None) => {
                    if v >= g.order() {
                        return Err(format!("agent {i} stands at out-of-range node {v}"));
                    }
                    (Place::AtNode(NodeId(v)), usize::MAX)
                }
                (None, Some(from), Some(to), Some(index)) => {
                    if index >= g.size() {
                        return Err(format!("agent {i} inside out-of-range edge {index}"));
                    }
                    let edge = g.edge_id(index);
                    if (edge.a.0, edge.b.0) != (from.min(to), from.max(to)) {
                        return Err(format!("agent {i}: edge {index} does not join {from}-{to}"));
                    }
                    (
                        Place::Inside {
                            edge,
                            from: NodeId(from),
                            to: NodeId(to),
                        },
                        index,
                    )
                }
                _ => return Err(format!("agent {i} has an inconsistent place encoding")),
            };
            let pending = match (a.pending_port, a.pending_to) {
                (Some(p), Some(v)) => Some((PortId(p), NodeId(v))),
                (None, None) => None,
                _ => return Err(format!("agent {i} has a half-encoded pending move")),
            };
            slots.push(Slot {
                behavior: decode(&a.behavior).map_err(|e| format!("agent {i} behavior: {e}"))?,
                place,
                inside_index,
                pending,
                awake: a.awake,
                crashed: a.crashed,
                traversals: a.traversals,
                entered_at: a.entered_at,
            });
        }
        let edges = self
            .edges
            .iter()
            .map(|(from_a, from_b)| EdgeOcc {
                from_a: from_a.clone(),
                from_b: from_b.clone(),
            })
            .collect();
        let mut meetings = MeetingLog::new();
        for (i, m) in self.meetings.iter().enumerate() {
            let place = match (m.at_node, m.edge_a, m.edge_b) {
                (Some(v), None, None) => MeetingPlace::Node(NodeId(v)),
                (None, Some(a), Some(b)) => {
                    MeetingPlace::Edge(rv_graph::EdgeId::new(NodeId(a), NodeId(b)))
                }
                _ => return Err(format!("meeting {i} has an inconsistent place encoding")),
            };
            meetings.push(Meeting {
                agents: m.agents.clone(),
                place,
                at_cost: m.at_cost,
                at_action: m.at_action,
            });
        }
        Ok(RuntimeSnapshot {
            slots,
            edges,
            meetings,
            actions: self.actions,
            total_traversals: self.total_traversals,
        })
    }
}

/// Canonical wire encoding for [`ScriptBehavior`]: start node plus the
/// unplayed port tail. Inverse: [`decode_script`].
pub fn encode_script(b: &ScriptBehavior) -> String {
    let ports: Vec<usize> = b.remaining_ports().map(|p| p.0).collect();
    let mut out = String::new();
    out.push_str("{\"start\":");
    out.push_str(&b.start_node().0.to_string());
    out.push_str(",\"ports\":");
    out.push_str(&serde_json::to_string(&ports).expect("vendored to_string is infallible"));
    out.push('}');
    out
}

/// Parses a payload produced by [`encode_script`].
pub fn decode_script(s: &str) -> Result<ScriptBehavior, String> {
    let v = serde_json::from_str(s).map_err(|e| e.to_string())?;
    let start = req_u64(&v, "start")? as usize;
    let ports = usize_list(
        v.get("ports")
            .ok_or_else(|| "script payload: missing `ports`".to_string())?,
    )?;
    Ok(ScriptBehavior::new(NodeId(start), ports))
}

fn arr<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], String> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("snapshot wire: missing array field `{key}`"))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("snapshot wire: missing integer field `{key}`"))
}

fn opt_usize(v: &Value, key: &str) -> Result<Option<usize>, String> {
    match v.get(key) {
        None => Err(format!("snapshot wire: missing field `{key}`")),
        Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| format!("snapshot wire: field `{key}` must be an integer or null")),
    }
}

fn usize_list(v: &Value) -> Result<Vec<usize>, String> {
    v.as_array()
        .ok_or_else(|| "snapshot wire: expected an array of integers".to_string())?
        .iter()
        .map(|x| {
            x.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| "snapshot wire: non-integer in list".to_string())
        })
        .collect()
}

fn agent_from_value(v: &Value) -> Result<AgentWire, String> {
    Ok(AgentWire {
        at_node: opt_usize(v, "at_node")?,
        from: opt_usize(v, "from")?,
        to: opt_usize(v, "to")?,
        inside_index: opt_usize(v, "inside_index")?,
        pending_port: opt_usize(v, "pending_port")?,
        pending_to: opt_usize(v, "pending_to")?,
        awake: v
            .get("awake")
            .and_then(Value::as_bool)
            .ok_or_else(|| "snapshot wire: missing bool field `awake`".to_string())?,
        crashed: v
            .get("crashed")
            .and_then(Value::as_bool)
            .ok_or_else(|| "snapshot wire: missing bool field `crashed`".to_string())?,
        traversals: req_u64(v, "traversals")?,
        entered_at: req_u64(v, "entered_at")?,
        behavior: v
            .get("behavior")
            .and_then(Value::as_str)
            .ok_or_else(|| "snapshot wire: missing string field `behavior`".to_string())?
            .to_string(),
    })
}

fn meeting_from_value(v: &Value) -> Result<MeetingWire, String> {
    Ok(MeetingWire {
        agents: usize_list(
            v.get("agents")
                .ok_or_else(|| "snapshot wire: meeting missing `agents`".to_string())?,
        )?,
        at_node: opt_usize(v, "at_node")?,
        edge_a: opt_usize(v, "edge_a")?,
        edge_b: opt_usize(v, "edge_b")?,
        at_cost: req_u64(v, "at_cost")?,
        at_action: req_u64(v, "at_action")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::RoundRobin;
    use crate::{RunConfig, Runtime};
    use rv_graph::generators;

    fn mid_run_snapshot() -> (Graph, RuntimeSnapshot<ScriptBehavior>) {
        let g = generators::ring(6);
        let behaviors = vec![
            ScriptBehavior::new(NodeId(0), [0, 1, 0, 1, 0]),
            ScriptBehavior::new(NodeId(3), [1, 1, 0, 0, 1]),
        ];
        let mut rt = Runtime::new(&g, behaviors, RunConfig::protocol());
        let mut choices = Vec::new();
        let mut meetings = Vec::new();
        for _ in 0..7 {
            rt.legal_choices_into(&mut choices);
            let Some(c) = choices.first() else { break };
            meetings.clear();
            rt.apply_into(c.choice, &mut meetings);
        }
        let snap = rt.snapshot();
        (generators::ring(6), snap)
    }

    #[test]
    fn wire_round_trip_restores_bit_identically() {
        let (g, snap) = mid_run_snapshot();
        let wire = SnapshotWire::from_snapshot(&snap, encode_script);
        let parsed = SnapshotWire::from_json(&wire.to_json()).expect("rendered wire must parse");
        assert_eq!(wire, parsed);
        let rebuilt = parsed
            .into_snapshot(&g, decode_script)
            .expect("wire must rebuild over the same graph");

        // Both snapshots must finish the run identically.
        let fingerprint = |s: &RuntimeSnapshot<ScriptBehavior>| {
            let mut rt = Runtime::from_snapshot(&g, s, RunConfig::protocol());
            let out = rt.run(&mut RoundRobin::new());
            format!(
                "{:?} {} {} {:?}",
                out.end, out.total_traversals, out.actions, out.meetings
            )
        };
        assert_eq!(fingerprint(&snap), fingerprint(&rebuilt));
    }

    #[test]
    fn wire_rejects_mismatched_graphs_and_garbage() {
        let (_, snap) = mid_run_snapshot();
        let wire = SnapshotWire::from_snapshot(&snap, encode_script);
        let g4 = generators::ring(4);
        assert!(wire.into_snapshot(&g4, decode_script).is_err());
        assert!(SnapshotWire::from_json("{\"agents\":[]}").is_err());
        assert!(SnapshotWire::from_json("not json").is_err());
    }

    #[test]
    fn script_payload_round_trips() {
        let b = ScriptBehavior::new(NodeId(4), [1, 0, 1]);
        let back = decode_script(&encode_script(&b)).expect("script payload must parse");
        assert_eq!(back.start_node(), NodeId(4));
        assert_eq!(
            back.remaining_ports().collect::<Vec<_>>(),
            b.remaining_ports().collect::<Vec<_>>()
        );
    }
}
