//! The agent-behavior abstraction and the two rendezvous behaviors.

use crate::meeting::MeetingPlace;
use rv_core::{Label, NaiveAlgorithm, RvAlgorithm};
use rv_explore::ExplorationProvider;
use rv_graph::{Graph, NodeId, PortId};
use rv_trajectory::TrajectoryCursor;

/// An agent algorithm as seen by the scheduler.
///
/// The runtime queries `next_port` whenever the agent stands at a node and
/// must commit its next move; returning `None` parks the agent. A parked
/// agent is queried again after each meeting delivered to it (new
/// information may end the parking), so implementations must tolerate
/// repeated `None`-after-`None` queries.
///
/// # The fork contract
///
/// [`Behavior::fork`] captures the agent's complete mid-run state in
/// O(state). The fork and the original must be **observationally
/// indistinguishable** from the moment of the fork onwards: identical
/// `next_port` streams, identical `info` snapshots, and identical reactions
/// to identical meeting deliveries — including the state of any internal
/// RNG or memoisation. Stepping either copy must never affect the other.
/// This is what lets [`crate::Runtime::snapshot`] freeze a mid-run
/// configuration and the minimax search re-enter it without replaying the
/// schedule prefix. Behaviors whose state is plain data implement it as
/// `self.clone()`.
pub trait Behavior {
    /// Information revealed to peers at a meeting.
    type Info: Clone;

    /// The node this agent is placed at initially.
    fn start_node(&self) -> NodeId;

    /// Commits the next traversal (exit port from the current node), or
    /// parks.
    fn next_port(&mut self) -> Option<PortId>;

    /// Snapshot of the information this agent shares when met.
    fn info(&self) -> Self::Info;

    /// Delivery of a meeting with `peers` at `place`.
    fn on_meeting(&mut self, place: MeetingPlace, peers: &[Self::Info]);

    /// Forks the agent mid-run: an independent copy that will behave
    /// bit-identically from this point on (see the trait docs for the
    /// exact contract).
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Self-reported progress for the stop-policy layer (see
    /// [`crate::stop::BehaviorProgress`]): a monotone work ordinal plus a
    /// done flag, aggregated into [`crate::stop::Progress`] by
    /// [`crate::Runtime::progress`]. The default reports no progress,
    /// which keeps scripted test behaviors trivially compatible with
    /// census- and cutoff-based policies (`FixedCutoff`,
    /// `EarlyQuiescence`). **Metric-watching detectors read a permanently
    /// flat metric as stagnation**: running a default-progress behavior
    /// under `DivergenceDetector`/`AdaptiveThreshold` will fire once the
    /// window elapses — wire those detectors only to behaviors that
    /// override this with a real metric.
    fn progress(&self) -> crate::stop::BehaviorProgress {
        crate::stop::BehaviorProgress::default()
    }

    /// Appends up to `limit` exit ports this agent would commit to next —
    /// the ports the following `limit` calls to [`Behavior::next_port`]
    /// would return — **without consuming them**, and returns `true`.
    /// Appending fewer than `limit` ports means the agent parks after the
    /// ones appended.
    ///
    /// Returning `false` (the default) declares the look-ahead unsupported;
    /// the minimax transposition table (see `crate::memo`) is disabled for
    /// any search containing such an agent, since its future cannot be
    /// folded into a state fingerprint. Implementations must only return
    /// `true` when the preview is exact: the ports appended here, in order,
    /// are precisely what `next_port` will produce as long as no meeting is
    /// delivered in between (meetings may redirect an agent, but the
    /// minimax search treats meetings as leaves, so the preview is never
    /// consulted across one).
    fn future_ports(&self, _out: &mut Vec<PortId>, _limit: usize) -> bool {
        false
    }

    /// Performs any one-time lazy setup the first [`Behavior::next_port`]
    /// would do — materialising schedule state, evaluating repetition
    /// counts — **without consuming a port**. Forks taken after warming
    /// inherit the materialised state, so a search that snapshots one root
    /// and restores it across thousands of branches (see `crate::minimax`)
    /// pays the setup once instead of once per branch. Must commute with
    /// the port stream: `warm(); next_port()` and `next_port()` alone must
    /// return identical ports with identical subsequent behavior. The
    /// default does nothing.
    fn warm(&mut self) {}
}

/// Algorithm RV-asynch-poly as a schedulable behavior: streams the infinite
/// piece/fence schedule through a [`TrajectoryCursor`]. Meetings carry the
/// agent's label; the behavior itself never reacts to them (rendezvous ends
/// the run).
#[derive(Clone)]
pub struct RvBehavior<'g, P> {
    cursor: TrajectoryCursor<'g, P>,
    algorithm: RvAlgorithm,
    start: NodeId,
}

impl<P: ExplorationProvider + Clone> std::fmt::Debug for RvBehavior<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RvBehavior")
            .field("label", &self.algorithm.label().value())
            .field("piece", &self.algorithm.piece())
            .field("start", &self.start)
            .field("cursor", &self.cursor)
            .finish()
    }
}

impl<'g, P: ExplorationProvider + Clone> RvBehavior<'g, P> {
    /// Places an agent with `label` at `start`.
    pub fn new(g: &'g Graph, provider: P, start: NodeId, label: Label) -> Self {
        Self::with_variant(g, provider, start, label, rv_core::RvVariant::default())
    }

    /// Places an agent running an ablated variant of the algorithm
    /// (experiment F6).
    pub fn with_variant(
        g: &'g Graph,
        provider: P,
        start: NodeId,
        label: Label,
        variant: rv_core::RvVariant,
    ) -> Self {
        RvBehavior {
            cursor: TrajectoryCursor::new(g, provider, start),
            algorithm: RvAlgorithm::with_variant(label, variant),
            start,
        }
    }

    /// The agent's label.
    pub fn label(&self) -> Label {
        self.algorithm.label()
    }

    /// The piece the schedule is currently in (instrumentation).
    pub fn piece(&self) -> u64 {
        self.algorithm.piece()
    }
}

impl<'g, P: ExplorationProvider + Clone> Behavior for RvBehavior<'g, P> {
    type Info = Label;

    fn start_node(&self) -> NodeId {
        self.start
    }

    fn next_port(&mut self) -> Option<PortId> {
        loop {
            if let Some(t) = self.cursor.next_traversal() {
                return Some(t.exit);
            }
            let spec = self.algorithm.next_spec(); // the RV schedule never ends
            self.cursor.push(spec);
        }
    }

    fn info(&self) -> Label {
        self.algorithm.label()
    }

    fn on_meeting(&mut self, _place: MeetingPlace, _peers: &[Label]) {}

    fn fork(&self) -> Self {
        self.clone()
    }

    /// The algorithm's piece number — the ordinal whose stagnation while
    /// cost grows is the rendezvous divergence signature (see
    /// [`crate::stop::DivergenceDetector`]).
    fn progress(&self) -> crate::stop::BehaviorProgress {
        crate::stop::BehaviorProgress {
            metric: self.algorithm.piece(),
            done: false,
        }
    }

    /// Exact look-ahead by draining a fork: the RV schedule is oblivious
    /// to meetings, so the fork's port stream *is* the future.
    fn future_ports(&self, out: &mut Vec<PortId>, limit: usize) -> bool {
        let mut fork = self.clone();
        for _ in 0..limit {
            match fork.next_port() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        true
    }

    /// Primes the cursor to its next traversal: the first spec push and its
    /// frame expansion (repetition-count evaluation, walker construction)
    /// happen now, so forks answer their first `next_port` in O(1).
    fn warm(&mut self) {
        while !self.cursor.prime() {
            let spec = self.algorithm.next_spec(); // the RV schedule never ends
            self.cursor.push(spec);
        }
    }
}

/// The naive exponential baseline as a behavior: `X(n)` repeated
/// `(2P(n)+1)^L` times, then parked forever. Requires the graph order.
#[derive(Clone)]
pub struct NaiveBehavior<'g, P> {
    cursor: TrajectoryCursor<'g, P>,
    algorithm: NaiveAlgorithm,
    label: Label,
    start: NodeId,
}

impl<'g, P: ExplorationProvider + Clone> NaiveBehavior<'g, P> {
    /// Places a naive agent with `label` at `start`, told the graph order.
    pub fn new(g: &'g Graph, provider: P, start: NodeId, label: Label) -> Self {
        let algorithm = NaiveAlgorithm::new(&provider, g.order() as u64, label);
        NaiveBehavior {
            cursor: TrajectoryCursor::new(g, provider, start),
            algorithm,
            label,
            start,
        }
    }
}

impl<'g, P: ExplorationProvider + Clone> Behavior for NaiveBehavior<'g, P> {
    type Info = Label;

    fn start_node(&self) -> NodeId {
        self.start
    }

    fn next_port(&mut self) -> Option<PortId> {
        loop {
            if let Some(t) = self.cursor.next_traversal() {
                return Some(t.exit);
            }
            let spec = self.algorithm.next_spec()?; // finished → park forever
            self.cursor.push(spec);
        }
    }

    fn info(&self) -> Label {
        self.label
    }

    fn on_meeting(&mut self, _place: MeetingPlace, _peers: &[Label]) {}

    fn fork(&self) -> Self {
        self.clone()
    }

    /// Exact look-ahead by draining a fork; the naive schedule ignores
    /// meetings, so the preview is exact up to the terminal park.
    fn future_ports(&self, out: &mut Vec<PortId>, limit: usize) -> bool {
        let mut fork = self.clone();
        for _ in 0..limit {
            match fork.next_port() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        true
    }

    /// Primes the cursor to its next traversal (or leaves it idle if the
    /// finite naive schedule has already parked).
    fn warm(&mut self) {
        while !self.cursor.prime() {
            match self.algorithm.next_spec() {
                Some(spec) => self.cursor.push(spec),
                None => return, // parked forever
            }
        }
    }
}

/// A behavior that follows a fixed list of exit ports then parks — the
/// workhorse of the meeting-rule tests.
#[derive(Clone, Debug)]
pub struct ScriptBehavior {
    start: NodeId,
    ports: std::collections::VecDeque<PortId>,
}

impl ScriptBehavior {
    /// Creates a scripted agent at `start` following `ports` in order.
    pub fn new(start: NodeId, ports: impl IntoIterator<Item = usize>) -> Self {
        ScriptBehavior {
            start,
            ports: ports.into_iter().map(PortId).collect(),
        }
    }

    /// The unplayed tail of the script, in play order — together with
    /// [`Behavior::start_node`] this is the complete mid-run state, which
    /// is what the serde wire layer persists (see `rv_sim::wire`).
    pub fn remaining_ports(&self) -> impl Iterator<Item = PortId> + '_ {
        self.ports.iter().copied()
    }
}

impl Behavior for ScriptBehavior {
    type Info = ();

    fn start_node(&self) -> NodeId {
        self.start
    }

    fn next_port(&mut self) -> Option<PortId> {
        self.ports.pop_front()
    }

    fn info(&self) {}

    fn on_meeting(&mut self, _place: MeetingPlace, _peers: &[()]) {}

    fn fork(&self) -> Self {
        self.clone()
    }

    /// The unplayed script tail, verbatim — no fork needed.
    fn future_ports(&self, out: &mut Vec<PortId>, limit: usize) -> bool {
        out.extend(self.remaining_ports().take(limit));
        true
    }
}

/// A behavior that plays a fixed sequence of trajectory [`Spec`]s, optionally
/// looping over the final spec forever — used by the Lemma 3.1 tests and the
/// ablation experiments.
#[derive(Clone)]
pub struct SpecBehavior<'g, P> {
    cursor: TrajectoryCursor<'g, P>,
    specs: std::collections::VecDeque<Spec>,
    repeat_last: Option<Spec>,
    start: NodeId,
}

use rv_trajectory::Spec;

impl<'g, P: ExplorationProvider + Clone> SpecBehavior<'g, P> {
    /// Plays `specs` in order from `start`, then parks.
    pub fn new(g: &'g Graph, provider: P, start: NodeId, specs: Vec<Spec>) -> Self {
        SpecBehavior {
            cursor: TrajectoryCursor::new(g, provider, start),
            specs: specs.into(),
            repeat_last: None,
            start,
        }
    }

    /// Plays `specs` in order, then repeats `forever` indefinitely.
    pub fn looping(
        g: &'g Graph,
        provider: P,
        start: NodeId,
        specs: Vec<Spec>,
        forever: Spec,
    ) -> Self {
        SpecBehavior {
            cursor: TrajectoryCursor::new(g, provider, start),
            specs: specs.into(),
            repeat_last: Some(forever),
            start,
        }
    }
}

impl<'g, P: ExplorationProvider + Clone> Behavior for SpecBehavior<'g, P> {
    type Info = ();

    fn start_node(&self) -> NodeId {
        self.start
    }

    fn next_port(&mut self) -> Option<PortId> {
        loop {
            if let Some(t) = self.cursor.next_traversal() {
                return Some(t.exit);
            }
            match self.specs.pop_front().or(self.repeat_last) {
                Some(spec) => self.cursor.push(spec),
                None => return None,
            }
        }
    }

    fn info(&self) {}

    fn on_meeting(&mut self, _place: MeetingPlace, _peers: &[()]) {}

    fn fork(&self) -> Self {
        self.clone()
    }

    /// Exact look-ahead by draining a fork; spec playback never consults
    /// meetings.
    fn future_ports(&self, out: &mut Vec<PortId>, limit: usize) -> bool {
        let mut fork = self.clone();
        for _ in 0..limit {
            match fork.next_port() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_explore::SeededUxs;
    use rv_graph::generators;

    #[test]
    fn rv_behavior_streams_forever() {
        let g = generators::ring(4);
        let mut b = RvBehavior::new(&g, SeededUxs::default(), NodeId(0), Label::new(3).unwrap());
        for _ in 0..10_000 {
            assert!(b.next_port().is_some());
        }
        assert_eq!(b.label().value(), 3);
    }

    #[test]
    fn forked_rv_behavior_continues_bit_identically() {
        let g = generators::ring(4);
        let mut b = RvBehavior::new(&g, SeededUxs::default(), NodeId(0), Label::new(3).unwrap());
        for _ in 0..1234 {
            b.next_port().unwrap();
        }
        let mut fork = b.fork();
        assert_eq!(fork.label(), b.label());
        assert_eq!(fork.piece(), b.piece());
        for step in 0..5000 {
            assert_eq!(
                b.next_port(),
                fork.next_port(),
                "fork diverged at step {step}"
            );
        }
    }

    #[test]
    fn forked_script_behavior_is_independent() {
        let mut b = ScriptBehavior::new(NodeId(0), [0, 1, 0]);
        b.next_port().unwrap();
        let mut fork = b.fork();
        // Draining the fork leaves the original untouched.
        while fork.next_port().is_some() {}
        assert_eq!(b.next_port(), Some(PortId(1)));
        assert_eq!(b.next_port(), Some(PortId(0)));
        assert_eq!(b.next_port(), None);
    }

    #[test]
    fn future_ports_previews_without_consuming() {
        let g = generators::ring(4);
        let mut b = RvBehavior::new(&g, SeededUxs::default(), NodeId(0), Label::new(3).unwrap());
        for _ in 0..57 {
            b.next_port().unwrap();
        }
        let mut preview = Vec::new();
        assert!(b.future_ports(&mut preview, 40));
        assert_eq!(preview.len(), 40, "RV schedules never park");
        for (i, &p) in preview.iter().enumerate() {
            assert_eq!(b.next_port(), Some(p), "preview diverged at step {i}");
        }
    }

    #[test]
    fn future_ports_reports_early_park() {
        let s = ScriptBehavior::new(NodeId(0), [0, 1]);
        let mut preview = Vec::new();
        assert!(s.future_ports(&mut preview, 10));
        assert_eq!(preview, vec![PortId(0), PortId(1)]);
        // The preview consumed nothing.
        assert_eq!(s.remaining_ports().count(), 2);
    }

    #[test]
    fn naive_behavior_stops_after_its_repetitions() {
        let g = generators::ring(3);
        // Tiny provider so the schedule finishes quickly: P(3)=1 → 3 reps
        // of X(3) with |X(3)| = 2, for label 1.
        let uxs = rv_explore::TableUxs::new(vec![vec![1]]);
        let mut b = NaiveBehavior::new(&g, uxs, NodeId(0), Label::new(1).unwrap());
        let mut steps = 0;
        while b.next_port().is_some() {
            steps += 1;
        }
        assert_eq!(steps, 6); // 3 repetitions × 2 traversals
        assert!(b.next_port().is_none(), "parked agents stay parked");
    }
}
