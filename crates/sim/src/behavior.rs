//! The agent-behavior abstraction and the two rendezvous behaviors.

use crate::meeting::MeetingPlace;
use rv_core::{Label, NaiveAlgorithm, RvAlgorithm};
use rv_explore::ExplorationProvider;
use rv_graph::{Graph, NodeId, PortId};
use rv_trajectory::TrajectoryCursor;

/// An agent algorithm as seen by the scheduler.
///
/// The runtime queries `next_port` whenever the agent stands at a node and
/// must commit its next move; returning `None` parks the agent. A parked
/// agent is queried again after each meeting delivered to it (new
/// information may end the parking), so implementations must tolerate
/// repeated `None`-after-`None` queries.
pub trait Behavior {
    /// Information revealed to peers at a meeting.
    type Info: Clone;

    /// The node this agent is placed at initially.
    fn start_node(&self) -> NodeId;

    /// Commits the next traversal (exit port from the current node), or
    /// parks.
    fn next_port(&mut self) -> Option<PortId>;

    /// Snapshot of the information this agent shares when met.
    fn info(&self) -> Self::Info;

    /// Delivery of a meeting with `peers` at `place`.
    fn on_meeting(&mut self, place: MeetingPlace, peers: &[Self::Info]);
}

/// Algorithm RV-asynch-poly as a schedulable behavior: streams the infinite
/// piece/fence schedule through a [`TrajectoryCursor`]. Meetings carry the
/// agent's label; the behavior itself never reacts to them (rendezvous ends
/// the run).
pub struct RvBehavior<'g, P> {
    cursor: TrajectoryCursor<'g, P>,
    algorithm: RvAlgorithm,
    start: NodeId,
}

impl<'g, P: ExplorationProvider + Clone> RvBehavior<'g, P> {
    /// Places an agent with `label` at `start`.
    pub fn new(g: &'g Graph, provider: P, start: NodeId, label: Label) -> Self {
        Self::with_variant(g, provider, start, label, rv_core::RvVariant::default())
    }

    /// Places an agent running an ablated variant of the algorithm
    /// (experiment F6).
    pub fn with_variant(
        g: &'g Graph,
        provider: P,
        start: NodeId,
        label: Label,
        variant: rv_core::RvVariant,
    ) -> Self {
        RvBehavior {
            cursor: TrajectoryCursor::new(g, provider, start),
            algorithm: RvAlgorithm::with_variant(label, variant),
            start,
        }
    }

    /// The agent's label.
    pub fn label(&self) -> Label {
        self.algorithm.label()
    }

    /// The piece the schedule is currently in (instrumentation).
    pub fn piece(&self) -> u64 {
        self.algorithm.piece()
    }
}

impl<'g, P: ExplorationProvider + Clone> Behavior for RvBehavior<'g, P> {
    type Info = Label;

    fn start_node(&self) -> NodeId {
        self.start
    }

    fn next_port(&mut self) -> Option<PortId> {
        loop {
            if let Some(t) = self.cursor.next_traversal() {
                return Some(t.exit);
            }
            let spec = self.algorithm.next_spec(); // the RV schedule never ends
            self.cursor.push(spec);
        }
    }

    fn info(&self) -> Label {
        self.algorithm.label()
    }

    fn on_meeting(&mut self, _place: MeetingPlace, _peers: &[Label]) {}
}

/// The naive exponential baseline as a behavior: `X(n)` repeated
/// `(2P(n)+1)^L` times, then parked forever. Requires the graph order.
pub struct NaiveBehavior<'g, P> {
    cursor: TrajectoryCursor<'g, P>,
    algorithm: NaiveAlgorithm,
    label: Label,
    start: NodeId,
}

impl<'g, P: ExplorationProvider + Clone> NaiveBehavior<'g, P> {
    /// Places a naive agent with `label` at `start`, told the graph order.
    pub fn new(g: &'g Graph, provider: P, start: NodeId, label: Label) -> Self {
        let algorithm = NaiveAlgorithm::new(&provider, g.order() as u64, label);
        NaiveBehavior {
            cursor: TrajectoryCursor::new(g, provider, start),
            algorithm,
            label,
            start,
        }
    }
}

impl<'g, P: ExplorationProvider + Clone> Behavior for NaiveBehavior<'g, P> {
    type Info = Label;

    fn start_node(&self) -> NodeId {
        self.start
    }

    fn next_port(&mut self) -> Option<PortId> {
        loop {
            if let Some(t) = self.cursor.next_traversal() {
                return Some(t.exit);
            }
            let spec = self.algorithm.next_spec()?; // finished → park forever
            self.cursor.push(spec);
        }
    }

    fn info(&self) -> Label {
        self.label
    }

    fn on_meeting(&mut self, _place: MeetingPlace, _peers: &[Label]) {}
}

/// A behavior that follows a fixed list of exit ports then parks — the
/// workhorse of the meeting-rule tests.
#[derive(Clone, Debug)]
pub struct ScriptBehavior {
    start: NodeId,
    ports: std::collections::VecDeque<PortId>,
}

impl ScriptBehavior {
    /// Creates a scripted agent at `start` following `ports` in order.
    pub fn new(start: NodeId, ports: impl IntoIterator<Item = usize>) -> Self {
        ScriptBehavior {
            start,
            ports: ports.into_iter().map(PortId).collect(),
        }
    }
}

impl Behavior for ScriptBehavior {
    type Info = ();

    fn start_node(&self) -> NodeId {
        self.start
    }

    fn next_port(&mut self) -> Option<PortId> {
        self.ports.pop_front()
    }

    fn info(&self) {}

    fn on_meeting(&mut self, _place: MeetingPlace, _peers: &[()]) {}
}

/// A behavior that plays a fixed sequence of trajectory [`Spec`]s, optionally
/// looping over the final spec forever — used by the Lemma 3.1 tests and the
/// ablation experiments.
pub struct SpecBehavior<'g, P> {
    cursor: TrajectoryCursor<'g, P>,
    specs: std::collections::VecDeque<Spec>,
    repeat_last: Option<Spec>,
    start: NodeId,
}

use rv_trajectory::Spec;

impl<'g, P: ExplorationProvider + Clone> SpecBehavior<'g, P> {
    /// Plays `specs` in order from `start`, then parks.
    pub fn new(g: &'g Graph, provider: P, start: NodeId, specs: Vec<Spec>) -> Self {
        SpecBehavior {
            cursor: TrajectoryCursor::new(g, provider, start),
            specs: specs.into(),
            repeat_last: None,
            start,
        }
    }

    /// Plays `specs` in order, then repeats `forever` indefinitely.
    pub fn looping(
        g: &'g Graph,
        provider: P,
        start: NodeId,
        specs: Vec<Spec>,
        forever: Spec,
    ) -> Self {
        SpecBehavior {
            cursor: TrajectoryCursor::new(g, provider, start),
            specs: specs.into(),
            repeat_last: Some(forever),
            start,
        }
    }
}

impl<'g, P: ExplorationProvider + Clone> Behavior for SpecBehavior<'g, P> {
    type Info = ();

    fn start_node(&self) -> NodeId {
        self.start
    }

    fn next_port(&mut self) -> Option<PortId> {
        loop {
            if let Some(t) = self.cursor.next_traversal() {
                return Some(t.exit);
            }
            match self.specs.pop_front().or(self.repeat_last) {
                Some(spec) => self.cursor.push(spec),
                None => return None,
            }
        }
    }

    fn info(&self) {}

    fn on_meeting(&mut self, _place: MeetingPlace, _peers: &[()]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_explore::SeededUxs;
    use rv_graph::generators;

    #[test]
    fn rv_behavior_streams_forever() {
        let g = generators::ring(4);
        let mut b = RvBehavior::new(&g, SeededUxs::default(), NodeId(0), Label::new(3).unwrap());
        for _ in 0..10_000 {
            assert!(b.next_port().is_some());
        }
        assert_eq!(b.label().value(), 3);
    }

    #[test]
    fn naive_behavior_stops_after_its_repetitions() {
        let g = generators::ring(3);
        // Tiny provider so the schedule finishes quickly: P(3)=1 → 3 reps
        // of X(3) with |X(3)| = 2, for label 1.
        let uxs = rv_explore::TableUxs::new(vec![vec![1]]);
        let mut b = NaiveBehavior::new(&g, uxs, NodeId(0), Label::new(1).unwrap());
        let mut steps = 0;
        while b.next_port().is_some() {
            steps += 1;
        }
        assert_eq!(steps, 6); // 3 repetitions × 2 traversals
        assert!(b.next_port().is_none(), "parked agents stay parked");
    }
}
