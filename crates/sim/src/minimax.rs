//! Exhaustive worst-case scheduling for *tiny* horizons.
//!
//! The simulator's adversaries are heuristics; this module computes the
//! **true** worst case — the schedule maximising the cost of the first
//! forced meeting — by exhaustive depth-first search over adversary
//! choices, up to an action-depth cap. Exponential in the cap (branching
//! = number of legal actions), so only usable for small instances; it is
//! the calibration reference for experiment F5.
//!
//! Because behaviors are stateful and not cheaply clonable in general,
//! the search re-executes runs from scratch along each explored prefix
//! (`F: Fn() -> behaviors` factory). Three things keep that affordable:
//! the top-level branches fan out across threads (`std::thread::scope`,
//! one per root choice — the branches are disjoint subtrees); each thread
//! reuses one [`Runtime`] (via [`Runtime::reset`]) and one choice/meeting
//! buffer pair for every replay; and descent is *incremental* — after a
//! prefix replays clean, the search keeps stepping the same runtime down
//! the leftmost unexplored path instead of re-replaying one level deeper.
//! A full replay is paid only when a sibling branch is entered. Cost is
//! `O(b^depth · depth)` behavior steps — fine for depth ≤ ~14.

use crate::behavior::Behavior;
use crate::runtime::{ChoiceInfo, RunConfig, Runtime};
use rv_graph::Graph;

/// Result of an exhaustive search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorstCase {
    /// Highest meeting cost over all schedules that meet within the depth
    /// cap (`None` if no schedule meets within the cap).
    pub max_meeting_cost: Option<u64>,
    /// Whether some schedule within the cap avoids any meeting entirely.
    pub some_schedule_avoids: bool,
    /// Number of schedules (leaves) explored.
    pub schedules_explored: u64,
}

impl WorstCase {
    fn record_meeting(&mut self, cost: u64) {
        self.schedules_explored += 1;
        self.max_meeting_cost = Some(self.max_meeting_cost.map_or(cost, |m| m.max(cost)));
    }

    fn record_avoidance(&mut self) {
        self.schedules_explored += 1;
        self.some_schedule_avoids = true;
    }

    fn merge(&mut self, other: WorstCase) {
        self.max_meeting_cost = match (self.max_meeting_cost, other.max_meeting_cost) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.some_schedule_avoids |= other.some_schedule_avoids;
        self.schedules_explored += other.schedules_explored;
    }
}

/// Exhaustively explores every adversary schedule of at most `max_actions`
/// actions, re-instantiating the agents through `make_behaviors` for each
/// prefix. The disjoint subtrees under each root choice are searched in
/// parallel (scoped threads), so the factory must be callable from several
/// threads at once.
pub fn exhaustive_worst_case<B, F>(g: &Graph, make_behaviors: F, max_actions: usize) -> WorstCase
where
    B: Behavior,
    F: Fn() -> Vec<B> + Sync,
{
    let empty = WorstCase {
        max_meeting_cost: None,
        some_schedule_avoids: false,
        schedules_explored: 0,
    };
    // Root branching factor (asleep agents all offer Wake, so this is
    // normally the agent count). Deterministic: every replay re-derives it.
    let root_width = {
        let rt = Runtime::new(g, make_behaviors(), RunConfig::rendezvous());
        rt.legal_choices().len()
    };
    if max_actions == 0 || root_width == 0 {
        // The empty schedule is the only leaf, and it meets nothing.
        let mut result = empty;
        result.record_avoidance();
        return result;
    }
    let branches: Vec<WorstCase> = std::thread::scope(|scope| {
        let make = &make_behaviors;
        let handles: Vec<_> = (0..root_width)
            .map(|root| scope.spawn(move || explore_branch(g, make, max_actions, root)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut result = empty;
    for b in branches {
        result.merge(b);
    }
    result
}

/// Depth-first search of the subtree whose first action is root choice
/// `root`, enumerating exactly the schedules the sequential odometer of the
/// pre-parallel implementation visited under that digit.
fn explore_branch<B, F>(g: &Graph, make_behaviors: &F, max_actions: usize, root: usize) -> WorstCase
where
    B: Behavior,
    F: Fn() -> Vec<B>,
{
    let mut result = WorstCase {
        max_meeting_cost: None,
        some_schedule_avoids: false,
        schedules_explored: 0,
    };
    let mut rt = Runtime::new(g, make_behaviors(), RunConfig::rendezvous());
    let mut choices: Vec<ChoiceInfo> = Vec::new();
    let mut meetings = Vec::new();
    // The prefix under exploration, encoded as choice indices; digit 0 is
    // pinned to `root`. Bases are discovered lazily: replay detects
    // overflowed digits and backtracks.
    let mut prefix: Vec<usize> = vec![root];
    'outer: loop {
        // Replay the current prefix on a fresh run.
        rt.reset(make_behaviors());
        for depth in 0..prefix.len() {
            let idx = prefix[depth];
            rt.legal_choices_into(&mut choices);
            if idx >= choices.len() {
                // Overflowed digit: backtrack to its parent's next sibling.
                prefix.truncate(depth);
                if !advance(&mut prefix) {
                    return result;
                }
                continue 'outer;
            }
            meetings.clear();
            rt.apply_into(choices[idx].choice, &mut meetings);
            if !meetings.is_empty() {
                // This prefix ends in a meeting; score the leaf and try its
                // successor.
                result.record_meeting(rt.total_traversals());
                prefix.truncate(depth + 1);
                if !advance(&mut prefix) {
                    return result;
                }
                continue 'outer;
            }
        }
        // Clean replay: descend the leftmost unexplored path incrementally
        // in this same runtime (no re-replay per level).
        loop {
            if prefix.len() >= max_actions {
                // Depth cap without a meeting: an avoiding schedule exists.
                result.record_avoidance();
                break;
            }
            rt.legal_choices_into(&mut choices);
            if choices.is_empty() {
                // All parked counts as avoiding.
                result.record_avoidance();
                break;
            }
            prefix.push(0);
            meetings.clear();
            rt.apply_into(choices[0].choice, &mut meetings);
            if !meetings.is_empty() {
                result.record_meeting(rt.total_traversals());
                break;
            }
        }
        if !advance(&mut prefix) {
            return result;
        }
    }
}

/// Advances the prefix like an odometer whose digit bases are discovered
/// lazily (the replay detects overflow). Digit 0 is the thread's pinned
/// root choice; returns `false` when the subtree is exhausted.
fn advance(prefix: &mut [usize]) -> bool {
    if prefix.len() <= 1 {
        return false;
    }
    *prefix.last_mut().expect("non-empty by the length check") += 1;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ScriptBehavior;
    use rv_graph::{generators, NodeId};

    #[test]
    fn two_node_path_forces_meeting_on_every_schedule() {
        // Both agents must cross the single edge: every schedule meets.
        let g = generators::path(2);
        let res = exhaustive_worst_case(
            &g,
            || {
                vec![
                    ScriptBehavior::new(NodeId(0), [0]),
                    ScriptBehavior::new(NodeId(1), [0]),
                ]
            },
            10,
        );
        assert!(!res.some_schedule_avoids, "path(2) leaves no escape");
        // Worst case: one agent fully crosses, waking/finding the other —
        // at most 2 completed traversals before the meeting.
        assert!(res.max_meeting_cost.unwrap() <= 2);
        assert!(res.schedules_explored > 0);
    }

    #[test]
    fn parked_agents_allow_avoidance() {
        // Agent 1 never moves and agent 0 walks away from it: within a
        // short horizon no meeting is forced.
        let g = generators::path(3);
        let res = exhaustive_worst_case(
            &g,
            || {
                vec![
                    ScriptBehavior::new(
                        NodeId(1),
                        [g.port_towards(NodeId(1), NodeId(2)).unwrap().0],
                    ),
                    ScriptBehavior::new(NodeId(0), []),
                ]
            },
            6,
        );
        assert!(res.some_schedule_avoids);
    }

    #[test]
    fn worst_case_dominates_heuristic_adversaries() {
        // The exhaustive maximum is at least what greedy-avoid achieves on
        // the same instance.
        use crate::adversary::GreedyAvoid;
        use crate::RunConfig;
        let g = generators::ring(3);
        let make = || {
            vec![
                ScriptBehavior::new(NodeId(0), [0, 0, 0]),
                ScriptBehavior::new(NodeId(1), [0, 0, 0]),
            ]
        };
        let exhaustive = exhaustive_worst_case(&g, make, 12);
        let mut rt = Runtime::new(&g, make(), RunConfig::rendezvous());
        let out = rt.run(&mut GreedyAvoid::new(3));
        if let (Some(max), crate::RunEnd::Meeting) = (exhaustive.max_meeting_cost, out.end) {
            assert!(max >= out.total_traversals);
        }
    }

    #[test]
    fn zero_horizon_has_one_avoiding_schedule() {
        let g = generators::path(2);
        let res = exhaustive_worst_case(
            &g,
            || {
                vec![
                    ScriptBehavior::new(NodeId(0), [0]),
                    ScriptBehavior::new(NodeId(1), [0]),
                ]
            },
            0,
        );
        assert_eq!(res.max_meeting_cost, None);
        assert!(res.some_schedule_avoids);
        assert_eq!(res.schedules_explored, 1);
    }
}
